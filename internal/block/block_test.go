package block

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/feature"
	"repro/internal/rules"
	"repro/internal/table"
)

// figure1Tables reproduces the paper's Figure 1 example: two person tables
// with matches (a1,b1) and (a3,b2).
func figure1Tables(t *testing.T) (*table.Table, *table.Table, *table.Catalog) {
	t.Helper()
	sch := table.StringSchema("id", "name", "city", "state")
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.String("Dave Smith"), table.String("Madison"), table.String("WI"))
	a.MustAppend(table.String("a2"), table.String("Joe Wilson"), table.String("San Jose"), table.String("CA"))
	a.MustAppend(table.String("a3"), table.String("Dan Smith"), table.String("Middleton"), table.String("WI"))
	b := table.New("B", sch)
	b.MustAppend(table.String("b1"), table.String("David D. Smith"), table.String("Madison"), table.String("WI"))
	b.MustAppend(table.String("b2"), table.String("Daniel W. Smith"), table.String("Middleton"), table.String("WI"))
	if err := a.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	if err := b.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return a, b, table.NewCatalog()
}

func pairSet(t *testing.T, p *table.Table) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for i := 0; i < p.Len(); i++ {
		out[p.Get(i, "ltable_id").AsString()+"/"+p.Get(i, "rtable_id").AsString()] = true
	}
	return out
}

func TestCrossBlocker(t *testing.T) {
	a, b, cat := figure1Tables(t)
	pairs, err := CrossBlocker{}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Len() != 6 {
		t.Fatalf("cross = %d pairs, want 6", pairs.Len())
	}
	if err := cat.ValidatePair(pairs); err != nil {
		t.Fatalf("cross pairs fail FK validation: %v", err)
	}
}

func TestAttrEquivalenceBlocker(t *testing.T) {
	a, b, cat := figure1Tables(t)
	pairs, err := AttrEquivalenceBlocker{Attr: "state"}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(t, pairs)
	// WI rows: a1, a3 × b1, b2 = 4 pairs; CA row pairs with nothing.
	want := []string{"a1/b1", "a1/b2", "a3/b1", "a3/b2"}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing pair %s", w)
		}
	}
	// Both true matches survive: blocking on state keeps recall.
	if !got["a1/b1"] || !got["a3/b2"] {
		t.Error("state blocker dropped a true match")
	}
}

func TestAttrEquivalenceMissingAttr(t *testing.T) {
	a, b, cat := figure1Tables(t)
	if _, err := (AttrEquivalenceBlocker{Attr: "nope"}).Block(a, b, cat); err == nil {
		t.Fatal("want missing-attribute error")
	}
}

func TestBlockerRequiresKeys(t *testing.T) {
	a, b, cat := figure1Tables(t)
	noKey := table.New("NK", table.StringSchema("id", "name", "city", "state"))
	noKey.MustAppend(table.String("x"), table.String("n"), table.String("c"), table.String("s"))
	for _, blk := range []Blocker{CrossBlocker{}, AttrEquivalenceBlocker{Attr: "state"}, OverlapBlocker{Attr: "name"}} {
		if _, err := blk.Block(noKey, b, cat); err == nil {
			t.Errorf("%s: want no-key error (left)", blk.Name())
		}
		if _, err := blk.Block(a, noKey, cat); err == nil {
			t.Errorf("%s: want no-key error (right)", blk.Name())
		}
	}
}

func TestHashBlockerWithTransform(t *testing.T) {
	a, b, cat := figure1Tables(t)
	// Bucket by lower-cased first letter of city: Madison/Middleton share
	// 'm', so a1, a3 pair with both b rows.
	pairs, err := HashBlocker{Attr: "city", Transform: PrefixTransform(1)}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(t, pairs)
	if !got["a1/b1"] || !got["a3/b2"] {
		t.Errorf("prefix hash dropped a true match: %v", got)
	}
	if got["a2/b1"] {
		t.Error("San Jose should not bucket with Madison")
	}
}

func TestHashBlockerNulls(t *testing.T) {
	sch := table.StringSchema("id", "name")
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.Null(table.KindString))
	b := table.New("B", sch)
	b.MustAppend(table.String("b1"), table.Null(table.KindString))
	a.MustSetKey("id")
	b.MustSetKey("id")
	cat := table.NewCatalog()
	pairs, err := HashBlocker{Attr: "name"}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Len() != 0 {
		t.Errorf("null attributes must not pair, got %d", pairs.Len())
	}
}

func TestOverlapBlocker(t *testing.T) {
	a, b, cat := figure1Tables(t)
	pairs, err := OverlapBlocker{Attr: "name", MinOverlap: 1}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(t, pairs)
	// Every Smith pairs with every Smith; Joe Wilson pairs with nothing.
	if !got["a1/b1"] || !got["a3/b2"] {
		t.Errorf("overlap blocker dropped a true match: %v", got)
	}
	for k := range got {
		if strings.HasPrefix(k, "a2/") {
			t.Errorf("Wilson should not survive overlap blocking: %v", got)
		}
	}
}

func TestOverlapBlockerHigherK(t *testing.T) {
	a, b, cat := figure1Tables(t)
	p1, err := OverlapBlocker{Attr: "name", MinOverlap: 1}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := OverlapBlocker{Attr: "name", MinOverlap: 2}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Len() > p1.Len() {
		t.Error("raising MinOverlap must not grow the candidate set")
	}
}

func TestJaccardBlocker(t *testing.T) {
	a, b, cat := figure1Tables(t)
	pairs, err := JaccardBlocker{Attr: "city", Threshold: 0.9}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(t, pairs)
	if !got["a1/b1"] || !got["a3/b2"] {
		t.Errorf("city jaccard blocker dropped a true match: %v", got)
	}
	if got["a1/b2"] {
		t.Error("Madison vs Middleton should not clear 0.9 jaccard")
	}
}

func TestSortedNeighborhoodBlocker(t *testing.T) {
	a, b, cat := figure1Tables(t)
	pairs, err := SortedNeighborhoodBlocker{Attr: "name", Window: 3}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(t, pairs)
	// Sorted by name: Dan, Daniel, Dave, David, Joe — window 3 catches
	// (Dan, Daniel) and (Dave, David).
	if !got["a3/b2"] {
		t.Errorf("sorted neighborhood missed adjacent names: %v", got)
	}
	if !got["a1/b1"] {
		t.Errorf("sorted neighborhood missed Dave/David: %v", got)
	}
	if _, err := (SortedNeighborhoodBlocker{Attr: "nope"}).Block(a, b, cat); err == nil {
		t.Error("want missing-attribute error")
	}
}

func TestBlackBoxBlocker(t *testing.T) {
	a, b, cat := figure1Tables(t)
	blk := BlackBoxBlocker{
		Label: "same_state",
		Keep: func(lrow, rrow table.Row) bool {
			return lrow[3].AsString() == rrow[3].AsString()
		},
	}
	pairs, err := blk.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Len() != 4 {
		t.Fatalf("black box = %d pairs, want 4", pairs.Len())
	}
	if blk.Name() != "black_box(same_state)" {
		t.Errorf("name = %q", blk.Name())
	}
}

func TestRuleFilter(t *testing.T) {
	a, b, cat := figure1Tables(t)
	cand, err := CrossBlocker{}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := feature.AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Drop pairs with low whole-name q-gram similarity.
	var rs rules.RuleSet
	rs.Add(rules.MustParse("drop_dissimilar_names", "jaccard_3gram_name <= 0.2"))
	out, dropped, err := RuleFilter{Rules: rs, Features: fs}.Filter(cand, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(t, out)
	if !got["a1/b1"] || !got["a3/b2"] {
		t.Errorf("rule filter dropped a true match: %v", got)
	}
	if len(got) >= 6 {
		t.Error("rule filter dropped nothing")
	}
	if dropped[0] != 6-out.Len() {
		t.Errorf("dropped count = %v, candidates %d -> %d", dropped, 6, out.Len())
	}
}

func TestRuleFilterUnknownFeature(t *testing.T) {
	a, b, cat := figure1Tables(t)
	cand, err := CrossBlocker{}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := feature.AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var rs rules.RuleSet
	rs.Add(rules.MustParse("bad", "no_such_feature <= 0.2"))
	if _, _, err := (RuleFilter{Rules: rs, Features: fs}).Filter(cand, cat); err == nil {
		t.Fatal("want unknown-feature error")
	}
}

func TestRuleBlockerComposes(t *testing.T) {
	a, b, cat := figure1Tables(t)
	fs, err := feature.AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var rs rules.RuleSet
	rs.Add(rules.MustParse("drop", "jaccard_3gram_name <= 0.2"))
	blk := RuleBlocker{Seed: OverlapBlocker{Attr: "name"}, Rules: rs, Features: fs}
	pairs, err := blk.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(t, pairs)
	if !got["a1/b1"] || !got["a3/b2"] {
		t.Errorf("rule blocker dropped a true match: %v", got)
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a, b, cat := figure1Tables(t)
	p1, err := AttrEquivalenceBlocker{Attr: "city"}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := OverlapBlocker{Attr: "name"}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Union(cat, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	us := pairSet(t, u)
	for k := range pairSet(t, p1) {
		if !us[k] {
			t.Errorf("union missing %s from p1", k)
		}
	}
	for k := range pairSet(t, p2) {
		if !us[k] {
			t.Errorf("union missing %s from p2", k)
		}
	}
	in, err := Intersect(cat, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	is := pairSet(t, in)
	for k := range is {
		if !pairSet(t, p1)[k] || !pairSet(t, p2)[k] {
			t.Errorf("intersect contains %s absent from an input", k)
		}
	}
	m, err := Minus(cat, u, in)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != u.Len()-in.Len() {
		t.Errorf("minus size = %d, want %d", m.Len(), u.Len()-in.Len())
	}
	if _, err := Union(cat); err == nil {
		t.Error("want empty-union error")
	}
	if _, err := Intersect(cat); err == nil {
		t.Error("want empty-intersect error")
	}
}

func TestUnionRejectsDifferentBases(t *testing.T) {
	a, b, cat := figure1Tables(t)
	a2, b2, _ := figure1Tables(t)
	p1, err := CrossBlocker{}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CrossBlocker{}.Block(a2, b2, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Union(cat, p1, p2); err == nil {
		t.Fatal("want different-base-tables error")
	}
}

func TestDebugBlockerFindsMissedMatch(t *testing.T) {
	a, b, cat := figure1Tables(t)
	// A too-aggressive blocker: exact city equality drops (a3, b2)?
	// No — Middleton == Middleton. Block on exact name instead, which
	// drops everything.
	pairs, err := AttrEquivalenceBlocker{Attr: "name"}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Len() != 0 {
		t.Fatalf("exact-name blocker should drop all pairs, got %d", pairs.Len())
	}
	missed, err := DebugBlocker(pairs, cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, m := range missed {
		found[m.LID+"/"+m.RID] = true
	}
	if !found["a1/b1"] || !found["a3/b2"] {
		t.Errorf("debugger should surface the dropped true matches, got %v", missed)
	}
	// Results must be sorted by similarity descending.
	for i := 1; i < len(missed); i++ {
		if missed[i].Sim > missed[i-1].Sim {
			t.Error("debugger output not sorted")
		}
	}
}

func TestDebugBlockerUnregistered(t *testing.T) {
	cat := table.NewCatalog()
	orphan := table.New("x", table.DefaultPairSchema())
	if _, err := DebugBlocker(orphan, cat, 5); err == nil {
		t.Fatal("want unregistered error")
	}
}

func TestEvalAgainstGold(t *testing.T) {
	a, b, cat := figure1Tables(t)
	pairs, err := AttrEquivalenceBlocker{Attr: "state"}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	gold := [][2]string{{"a1", "b1"}, {"a3", "b2"}}
	st, err := EvalAgainstGold(pairs, cat, gold)
	if err != nil {
		t.Fatal(err)
	}
	if st.Recall != 1 {
		t.Errorf("recall = %v, want 1", st.Recall)
	}
	if st.Candidates != 4 || st.Found != 2 {
		t.Errorf("stats = %+v", st)
	}
	wantRR := 1 - 4.0/6.0
	if diff := st.ReductionRatio - wantRR; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("reduction ratio = %v, want %v", st.ReductionRatio, wantRR)
	}
	// Empty gold: recall 1 by convention.
	st2, err := EvalAgainstGold(pairs, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Recall != 1 {
		t.Errorf("empty-gold recall = %v", st2.Recall)
	}
}

func TestBlockerNames(t *testing.T) {
	blockers := []Blocker{
		CrossBlocker{},
		AttrEquivalenceBlocker{Attr: "x"},
		HashBlocker{Attr: "x"},
		OverlapBlocker{Attr: "x", MinOverlap: 2},
		JaccardBlocker{Attr: "x", Threshold: 0.5},
		SortedNeighborhoodBlocker{Attr: "x", Window: 4},
		BlackBoxBlocker{},
	}
	seen := map[string]bool{}
	for _, b := range blockers {
		n := b.Name()
		if n == "" || seen[n] {
			t.Errorf("blocker name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}

func TestOverlapBlockerScales(t *testing.T) {
	// A smoke test that the overlap blocker handles a few thousand rows
	// without the cross product.
	sch := table.StringSchema("id", "name")
	a := table.New("A", sch)
	b := table.New("B", sch)
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("widget model%d series%d", i, i%100)
		a.MustAppend(table.String(fmt.Sprintf("a%d", i)), table.String(name))
		b.MustAppend(table.String(fmt.Sprintf("b%d", i)), table.String(name))
	}
	a.MustSetKey("id")
	b.MustSetKey("id")
	cat := table.NewCatalog()
	pairs, err := OverlapBlocker{Attr: "name", MinOverlap: 2}.Block(a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Len() == 0 {
		t.Fatal("no candidates")
	}
	got := pairSet(t, pairs)
	for i := 0; i < 2000; i += 97 {
		if !got[fmt.Sprintf("a%d/b%d", i, i)] {
			t.Fatalf("identical pair a%d/b%d missing", i, i)
		}
	}
}
