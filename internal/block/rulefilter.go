package block

import (
	"fmt"

	"repro/internal/feature"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rules"
	"repro/internal/table"
)

// RuleFilter drops candidate pairs on which any blocking rule fires. Each
// rule is a conjunction describing a provably-non-matching region of
// feature space (e.g. "isbn_exact <= 0.5"), the exact semantics of the
// rules Falcon extracts from random-forest branches (Figure 4).
//
// A RuleFilter refines an existing candidate set rather than generating
// one: pair it with a cheap recall-oriented blocker (typically
// OverlapBlocker with MinOverlap 1) for end-to-end blocking. Pairs whose
// sides share no tokens at all score zero on every similarity feature,
// which fires any useful blocking rule anyway, so the composition loses
// essentially nothing while avoiding the cross product.
type RuleFilter struct {
	Rules    rules.RuleSet
	Features *feature.Set
	// Workers parallelizes feature extraction and rule evaluation;
	// 0 means GOMAXPROCS.
	Workers int
	// Metrics receives filter timings and considered/kept pair counters,
	// and is passed through to feature extraction; nil means off.
	Metrics obs.Recorder
}

// Filter returns a new pair table holding the pairs of cand on which no
// rule fires, registered in cat. It also reports how many pairs each rule
// dropped (aligned with Rules.Rules).
func (rf RuleFilter) Filter(cand *table.Table, cat *table.Catalog) (*table.Table, []int, error) {
	rec := obs.Or(rf.Metrics)
	bl := obs.L("blocker", "rule_filter")
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	meta, ok := cat.PairMeta(cand)
	if !ok {
		return nil, nil, fmt.Errorf("block: rule filter: pair table %q not registered", cand.Name())
	}
	// Score candidates on only the features the rules reference: the
	// seed candidate set can be enormous, and computing the full feature
	// battery for pairs the rules are about to drop wastes most of the
	// blocking stage's time.
	needed := referencedFeatures(rf.Rules)
	sub, err := rf.Features.Subset(needed...)
	if err != nil {
		return nil, nil, fmt.Errorf("block: rule filter: %w", err)
	}
	compiled, err := rules.CompileSet(rf.Rules, sub.Names())
	if err != nil {
		return nil, nil, fmt.Errorf("block: rule filter: %w", err)
	}
	x, err := feature.Vectors(sub, cand, cat, feature.ExtractOptions{Workers: rf.Workers, Metrics: rf.Metrics})
	if err != nil {
		return nil, nil, err
	}
	out, err := table.NewPairTable(cand.Name()+"+rules", meta.LTable, meta.RTable, cat)
	if err != nil {
		return nil, nil, err
	}
	// Evaluate the compiled rules over candidate shards; each worker
	// keeps local drop counters and a local survivor buffer, merged in
	// shard order so the output matches the serial scan.
	type shardResult struct {
		kept    []table.PairID
		dropped []int
	}
	shards, err := parallel.MapChunks(rf.Workers, cand.Len(), func(lo, hi int) (shardResult, error) {
		stop := obs.StartTimer(rec, obs.BlockShardSeconds, bl)
		defer stop()
		res := shardResult{dropped: make([]int, rf.Rules.Len())}
		for i := lo; i < hi; i++ {
			fired, idx := compiled.AnyFires(x[i])
			if fired {
				res.dropped[idx]++
				continue
			}
			res.kept = append(res.kept, table.PairID{
				L: cand.Get(i, meta.LID).AsString(),
				R: cand.Get(i, meta.RID).AsString(),
			})
		}
		return res, nil
	})
	if err != nil {
		return nil, nil, err
	}
	dropped := make([]int, rf.Rules.Len())
	for _, s := range shards {
		for ri, n := range s.dropped {
			dropped[ri] += n
		}
		table.AppendPairs(out, s.kept)
	}
	rec.Count(obs.BlockPairsConsidered, float64(cand.Len()), bl)
	rec.Count(obs.BlockPairsEmitted, float64(out.Len()), bl)
	return out, dropped, nil
}

// referencedFeatures returns the distinct feature names the rule set's
// predicates mention, in first-appearance order.
func referencedFeatures(rs rules.RuleSet) []string {
	seen := make(map[string]bool)
	out := make([]string, 0, len(rs.Rules))
	for _, r := range rs.Rules {
		for _, p := range r.Predicates {
			if !seen[p.Feature] {
				seen[p.Feature] = true
				out = append(out, p.Feature)
			}
		}
	}
	return out
}

// RuleBlocker composes a seed blocker with a RuleFilter into a single
// Blocker: seed first, then drop pairs on which any rule fires.
type RuleBlocker struct {
	Seed     Blocker
	Rules    rules.RuleSet
	Features *feature.Set
	Workers  int
	// Metrics is forwarded to the rule filter stage (the seed blocker
	// carries its own recorder); nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b RuleBlocker) Name() string {
	return fmt.Sprintf("rule_blocker(%s,%d rules)", b.Seed.Name(), b.Rules.Len())
}

// Block implements Blocker.
func (b RuleBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	cand, err := b.Seed.Block(lt, rt, cat)
	if err != nil {
		return nil, err
	}
	out, _, err := RuleFilter{Rules: b.Rules, Features: b.Features, Workers: b.Workers, Metrics: b.Metrics}.Filter(cand, cat)
	if err != nil {
		return nil, err
	}
	out.SetName(b.Name())
	return out, nil
}
