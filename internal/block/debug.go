package block

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// MissedPair is a likely match that blocking discarded, found by the
// blocking debugger.
type MissedPair struct {
	LID, RID string
	// Sim is the whole-tuple Jaccard similarity that flagged the pair.
	Sim float64
}

// DebugBlocker searches for probable matches missing from the candidate
// set — the "blocking debugger" pain-point tool of Table 3. It concatenates
// all non-key string attributes of each tuple, finds the topK most similar
// cross pairs via an inverted token index, and returns those not already
// in cand. A blocker whose debugger output contains plausible matches is
// too aggressive.
func DebugBlocker(cand *table.Table, cat *table.Catalog, topK int) ([]MissedPair, error) {
	meta, ok := cat.PairMeta(cand)
	if !ok {
		return nil, fmt.Errorf("block: debug: pair table %q not registered", cand.Name())
	}
	if topK <= 0 {
		topK = 20
	}
	lt, rt := meta.LTable, meta.RTable

	inCand := make(map[string]bool, cand.Len())
	for i := 0; i < cand.Len(); i++ {
		inCand[pairKey(cand, meta, i)] = true
	}

	tok := tokenize.Alphanumeric{ReturnSet: true}
	ltoks := tupleTokens(lt, tok)
	rtoks := tupleTokens(rt, tok)

	// Inverted index over the right table, skipping stop-word-like tokens.
	inv := make(map[string][]int)
	for j, toks := range rtoks {
		for _, t := range toks {
			inv[t] = append(inv[t], j)
		}
	}
	maxPosting := rt.Len()/10 + 50

	lkey := lt.Schema().Lookup(lt.Key())
	rkey := rt.Schema().Lookup(rt.Key())
	//emlint:allow hotalloc -- miss count is data-dependent and this explain path runs once per debug report, not per candidate pair
	var missed []MissedPair
	for i := 0; i < lt.Len(); i++ {
		counts := make(map[int]int)
		for _, t := range ltoks[i] {
			post := inv[t]
			if len(post) > maxPosting {
				continue
			}
			for _, j := range post {
				counts[j]++
			}
		}
		lid := lt.Row(i)[lkey].AsString()
		for j, c := range counts {
			if c < 2 && len(ltoks[i]) > 2 {
				continue // too little overlap to bother verifying
			}
			rid := rt.Row(j)[rkey].AsString()
			//emlint:allow hotalloc -- the concat IS the map key being probed; debug report path, not blocking hot loop
			if inCand[lid+"\x00"+rid] {
				continue
			}
			s := sim.Jaccard(ltoks[i], rtoks[j])
			missed = append(missed, MissedPair{LID: lid, RID: rid, Sim: s})
		}
	}
	sort.Slice(missed, func(a, b int) bool {
		if missed[a].Sim != missed[b].Sim {
			return missed[a].Sim > missed[b].Sim
		}
		if missed[a].LID != missed[b].LID {
			return missed[a].LID < missed[b].LID
		}
		return missed[a].RID < missed[b].RID
	})
	if len(missed) > topK {
		missed = missed[:topK]
	}
	return missed, nil
}

// tupleTokens concatenates all non-key string attributes of each row and
// tokenizes the result.
func tupleTokens(t *table.Table, tok tokenize.Tokenizer) [][]string {
	var cols []int
	for j := 0; j < t.Schema().Len(); j++ {
		c := t.Schema().Col(j)
		if c.Name == t.Key() {
			continue
		}
		cols = append(cols, j)
	}
	out := make([][]string, t.Len())
	var b strings.Builder
	for i := 0; i < t.Len(); i++ {
		b.Reset()
		for _, j := range cols {
			v := t.Row(i)[j]
			if v.IsNull() {
				continue
			}
			b.WriteString(v.AsString())
			b.WriteByte(' ')
		}
		out[i] = tok.Tokenize(b.String())
	}
	return out
}

// Stats summarizes a candidate set against known gold matches.
type Stats struct {
	// Candidates is the candidate-set size.
	Candidates int
	// GoldMatches is the number of known true matches.
	GoldMatches int
	// Found is how many gold matches survived blocking.
	Found int
	// Recall is Found / GoldMatches (1 when no gold matches).
	Recall float64
	// ReductionRatio is 1 - Candidates / (|L|·|R|): how much of the cross
	// product blocking eliminated.
	ReductionRatio float64
}

// EvalAgainstGold computes blocker recall and reduction ratio given the
// gold match pairs as (lid, rid) tuples.
func EvalAgainstGold(cand *table.Table, cat *table.Catalog, gold [][2]string) (Stats, error) {
	meta, ok := cat.PairMeta(cand)
	if !ok {
		return Stats{}, fmt.Errorf("block: eval: pair table %q not registered", cand.Name())
	}
	inCand := make(map[string]bool, cand.Len())
	for i := 0; i < cand.Len(); i++ {
		inCand[pairKey(cand, meta, i)] = true
	}
	st := Stats{Candidates: cand.Len(), GoldMatches: len(gold)}
	for _, g := range gold {
		if inCand[g[0]+"\x00"+g[1]] {
			st.Found++
		}
	}
	if st.GoldMatches == 0 {
		st.Recall = 1
	} else {
		st.Recall = float64(st.Found) / float64(st.GoldMatches)
	}
	cross := float64(meta.LTable.Len()) * float64(meta.RTable.Len())
	if cross > 0 {
		st.ReductionRatio = 1 - float64(cand.Len())/cross
	}
	return st, nil
}
