package block

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/feature"
	"repro/internal/rules"
	"repro/internal/table"
)

// parallelTables generates a person matching task large enough that every
// worker shard is non-trivial.
func parallelTables(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	task, err := datagen.Generate(datagen.Spec{
		Name: "partest", Domain: datagen.PersonDomain(),
		SizeA: 240, SizeB: 240, MatchFraction: 0.4, Typo: 0.2, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return task.A, task.B
}

// requireSameTable fails unless the two pair tables are identical row for
// row — including the _id column, so parallel emit order must exactly
// reproduce the serial order, not just the same set.
func requireSameTable(t *testing.T, serial, par *table.Table, label string) {
	t.Helper()
	if serial.Len() != par.Len() {
		t.Fatalf("%s: %d pairs parallel vs %d serial", label, par.Len(), serial.Len())
	}
	for i := 0; i < serial.Len(); i++ {
		rs, rp := serial.Row(i), par.Row(i)
		for j := range rs {
			if rs[j].AsString() != rp[j].AsString() {
				t.Fatalf("%s: row %d col %d = %q parallel vs %q serial",
					label, i, j, rp[j].AsString(), rs[j].AsString())
			}
		}
	}
}

// TestBlockersParallelDeterminism runs every sharded blocker at Workers=1
// and at several parallel settings and requires bit-identical candidate
// tables. Run under `go test -race` this also exercises the worker-local
// buffer discipline.
func TestBlockersParallelDeterminism(t *testing.T) {
	a, b := parallelTables(t)
	state := a.Schema().Lookup("state")
	blockers := []Blocker{
		CrossBlocker{},
		AttrEquivalenceBlocker{Attr: "state"},
		HashBlocker{Attr: "city", Transform: LowerTransform},
		HashBlocker{Attr: "zip", Transform: func(s string) string {
			if len(s) < 3 {
				return ""
			}
			return strings.ToLower(s[:3])
		}},
		SortedNeighborhoodBlocker{Attr: "name", Window: 7},
		BlackBoxBlocker{Label: "same_state", Keep: func(lrow, rrow table.Row) bool {
			return lrow[state].AsString() == rrow[state].AsString()
		}},
		OverlapBlocker{Attr: "name"},
		JaccardBlocker{Attr: "name", Threshold: 0.3},
		WholeTupleOverlapBlocker{MinOverlap: 2},
	}
	for _, blk := range blockers {
		serial, err := withWorkers(blk, 1).Block(a, b, table.NewCatalog())
		if err != nil {
			t.Fatalf("%s: %v", blk.Name(), err)
		}
		if serial.Len() == 0 {
			t.Fatalf("%s: empty candidate set, test exercises nothing", blk.Name())
		}
		for _, workers := range []int{0, 3, 16} {
			par, err := withWorkers(blk, workers).Block(a, b, table.NewCatalog())
			if err != nil {
				t.Fatalf("%s workers=%d: %v", blk.Name(), workers, err)
			}
			requireSameTable(t, serial, par, blk.Name())
		}
	}
}

// withWorkers returns a copy of the blocker with its Workers knob set.
func withWorkers(blk Blocker, workers int) Blocker {
	switch b := blk.(type) {
	case CrossBlocker:
		b.Workers = workers
		return b
	case AttrEquivalenceBlocker:
		b.Workers = workers
		return b
	case HashBlocker:
		b.Workers = workers
		return b
	case SortedNeighborhoodBlocker:
		b.Workers = workers
		return b
	case BlackBoxBlocker:
		b.Workers = workers
		return b
	case OverlapBlocker:
		b.Workers = workers
		return b
	case JaccardBlocker:
		b.Workers = workers
		return b
	case WholeTupleOverlapBlocker:
		b.Workers = workers
		return b
	}
	return blk
}

// TestRuleFilterParallelDeterminism checks the rule-based candidate filter:
// kept pairs and per-rule drop counts must not depend on Workers.
func TestRuleFilterParallelDeterminism(t *testing.T) {
	a, b := parallelTables(t)
	fs, err := feature.AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var rs rules.RuleSet
	rs.Add(rules.MustParse("drop_dissimilar_names", "jaccard_3gram_name <= 0.2"))
	// The filter resolves the candidate table's pair metadata through the
	// catalog, so each pass blocks and filters in its own catalog.
	runFilter := func(workers int) (*table.Table, []int) {
		cat := table.NewCatalog()
		cand, err := OverlapBlocker{Attr: "name"}.Block(a, b, cat)
		if err != nil {
			t.Fatal(err)
		}
		out, dropped, err := RuleFilter{Rules: rs, Features: fs, Workers: workers}.Filter(cand, cat)
		if err != nil {
			t.Fatal(err)
		}
		return out, dropped
	}
	serial, droppedSerial := runFilter(1)
	if serial.Len() == 0 || droppedSerial[0] == 0 {
		t.Fatalf("degenerate filter run: %d kept, dropped %v", serial.Len(), droppedSerial)
	}
	for _, workers := range []int{0, 3} {
		par, dropped := runFilter(workers)
		requireSameTable(t, serial, par, "rule_filter")
		if len(dropped) != len(droppedSerial) || dropped[0] != droppedSerial[0] {
			t.Fatalf("workers=%d: dropped %v vs serial %v", workers, dropped, droppedSerial)
		}
	}
}
