package block

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simjoin"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// WholeTupleOverlapBlocker keeps pairs whose concatenated non-key string
// attributes share at least MinOverlap tokens. It is the schema-agnostic,
// recall-oriented blocker Falcon seeds its candidate set with before
// applying learned blocking rules: a pair of tuples sharing no token at
// all scores zero on every similarity feature and could never survive a
// useful blocking rule anyway.
type WholeTupleOverlapBlocker struct {
	// MinOverlap is the required shared-token count; 0 means 1.
	MinOverlap int
	// Workers parallelizes the join; 0 means GOMAXPROCS.
	Workers int
	// Metrics receives blocking timings and pair counters, and is passed
	// through to the underlying similarity join; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b WholeTupleOverlapBlocker) Name() string {
	k := b.MinOverlap
	if k < 1 {
		k = 1
	}
	return fmt.Sprintf("whole_tuple_overlap(k=%d)", k)
}

// Block implements Blocker.
func (b WholeTupleOverlapBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	rec := obs.Or(b.Metrics)
	bl := obs.L("blocker", b.Name())
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	k := b.MinOverlap
	if k < 1 {
		k = 1
	}
	tok := tokenize.Alphanumeric{ReturnSet: true}
	lrecs := wholeTupleRecords(lt, tok)
	rrecs := wholeTupleRecords(rt, tok)
	joined, err := simjoin.OverlapJoin(lrecs, rrecs, k, simjoin.WithWorkers(b.Workers), simjoin.WithMetrics(b.Metrics))
	if err != nil {
		return nil, err
	}
	pairs, err := table.NewPairTable(b.Name(), lt, rt, cat)
	if err != nil {
		return nil, err
	}
	table.AppendPairs(pairs, joinedPairIDs(joined))
	rec.Count(obs.BlockPairsEmitted, float64(pairs.Len()), bl)
	return pairs, nil
}

// wholeTupleRecords tokenizes the concatenation of all non-key attributes
// of every row.
func wholeTupleRecords(t *table.Table, tok tokenize.Tokenizer) []simjoin.Record {
	toks := tupleTokens(t, tok)
	kj := t.Schema().Lookup(t.Key())
	out := make([]simjoin.Record, t.Len())
	for i := 0; i < t.Len(); i++ {
		out[i] = simjoin.Record{ID: t.Row(i)[kj].AsString(), Tokens: toks[i]}
	}
	return out
}
