package block

import (
	"fmt"

	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/simjoin"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// OverlapBlocker keeps pairs whose tokenized attribute values share at
// least MinOverlap tokens. It runs as a prefix-filtered set-overlap join
// (package simjoin), so it scales far beyond the cross product.
type OverlapBlocker struct {
	Attr string
	// Tokenizer splits the attribute value; nil means lower-cased
	// alphanumeric word tokens.
	Tokenizer tokenize.Tokenizer
	// MinOverlap is the required shared-token count; 0 means 1.
	MinOverlap int
	// Workers parallelizes the join; 0 means GOMAXPROCS.
	Workers int
	// Metrics receives blocking timings and pair counters, and is passed
	// through to the underlying similarity join; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b OverlapBlocker) Name() string {
	return fmt.Sprintf("overlap(%s,k=%d)", b.Attr, b.minOverlap())
}

func (b OverlapBlocker) minOverlap() int {
	if b.MinOverlap < 1 {
		return 1
	}
	return b.MinOverlap
}

func (b OverlapBlocker) tokenizer() tokenize.Tokenizer {
	if b.Tokenizer == nil {
		return tokenize.Alphanumeric{ReturnSet: true}
	}
	return b.Tokenizer
}

// Block implements Blocker.
func (b OverlapBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	rec := obs.Or(b.Metrics)
	bl := obs.L("blocker", b.Name())
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	d := intern.NewDict()
	lrecs, err := tokenIDRecords(lt, b.Attr, b.tokenizer(), d)
	if err != nil {
		return nil, err
	}
	rrecs, err := tokenIDRecords(rt, b.Attr, b.tokenizer(), d)
	if err != nil {
		return nil, err
	}
	joined, err := simjoin.OverlapJoinIDs(lrecs, rrecs, b.minOverlap(), simjoin.WithWorkers(b.Workers), simjoin.WithMetrics(b.Metrics))
	if err != nil {
		return nil, err
	}
	pairs, err := table.NewPairTable(b.Name(), lt, rt, cat)
	if err != nil {
		return nil, err
	}
	table.AppendPairs(pairs, joinedPairIDs(joined))
	rec.Count(obs.BlockPairsEmitted, float64(pairs.Len()), bl)
	return pairs, nil
}

// JaccardBlocker keeps pairs whose tokenized attribute Jaccard similarity
// is at least Threshold, executed as a filtered similarity join. It is the
// blocker equivalent of py_stringsimjoin's jaccard_join.
type JaccardBlocker struct {
	Attr      string
	Tokenizer tokenize.Tokenizer
	Threshold float64
	Workers   int
	// Metrics receives blocking timings and pair counters, and is passed
	// through to the underlying similarity join; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b JaccardBlocker) Name() string {
	return fmt.Sprintf("jaccard(%s,t=%.2f)", b.Attr, b.Threshold)
}

// Block implements Blocker.
func (b JaccardBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	rec := obs.Or(b.Metrics)
	bl := obs.L("blocker", b.Name())
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	tok := b.Tokenizer
	if tok == nil {
		tok = tokenize.Alphanumeric{ReturnSet: true}
	}
	d := intern.NewDict()
	lrecs, err := tokenIDRecords(lt, b.Attr, tok, d)
	if err != nil {
		return nil, err
	}
	rrecs, err := tokenIDRecords(rt, b.Attr, tok, d)
	if err != nil {
		return nil, err
	}
	joined, err := simjoin.JaccardJoinIDs(lrecs, rrecs, b.Threshold, simjoin.WithWorkers(b.Workers), simjoin.WithMetrics(b.Metrics))
	if err != nil {
		return nil, err
	}
	pairs, err := table.NewPairTable(b.Name(), lt, rt, cat)
	if err != nil {
		return nil, err
	}
	table.AppendPairs(pairs, joinedPairIDs(joined))
	rec.Count(obs.BlockPairsEmitted, float64(pairs.Len()), bl)
	return pairs, nil
}

// joinedPairIDs converts simjoin output to a batch-append buffer.
func joinedPairIDs(joined []simjoin.Pair) []table.PairID {
	out := make([]table.PairID, len(joined))
	for i, p := range joined {
		out[i] = table.PairID{L: p.LID, R: p.RID}
	}
	return out
}

// tokenIDRecords tokenizes one attribute of every row into pre-interned
// simjoin records keyed by the table key. Callers pass one dictionary for
// both tables of a blocking run, so the join never re-hashes token strings.
func tokenIDRecords(t *table.Table, attr string, tok tokenize.Tokenizer, d *intern.Dict) ([]simjoin.IDRecord, error) {
	j := t.Schema().Lookup(attr)
	if j < 0 {
		return nil, fmt.Errorf("block: attribute %q missing from %q", attr, t.Name())
	}
	kj := t.Schema().Lookup(t.Key())
	out := make([]simjoin.IDRecord, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		v := t.Row(i)[j]
		if v.IsNull() {
			continue
		}
		out = append(out, simjoin.IDRecord{
			ID:     t.Row(i)[kj].AsString(),
			Tokens: d.InternTokens(tok.Tokenize(v.AsString())),
		})
	}
	return out, nil
}
