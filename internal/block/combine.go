package block

import (
	"fmt"

	"repro/internal/table"
)

// pairKey canonicalizes one row of a pair table for set operations.
func pairKey(t *table.Table, meta table.PairMeta, i int) string {
	return t.Get(i, meta.LID).AsString() + "\x00" + t.Get(i, meta.RID).AsString()
}

// Union merges candidate sets produced over the same base tables,
// deduplicating pairs. Users union the outputs of several cheap blockers
// to recover matches any single one would miss.
func Union(cat *table.Catalog, cands ...*table.Table) (*table.Table, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("block: union of zero candidate sets")
	}
	meta0, ok := cat.PairMeta(cands[0])
	if !ok {
		return nil, fmt.Errorf("block: union: %q not registered", cands[0].Name())
	}
	out, err := table.NewPairTable("union", meta0.LTable, meta0.RTable, cat)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, c := range cands {
		meta, ok := cat.PairMeta(c)
		if !ok {
			return nil, fmt.Errorf("block: union: %q not registered", c.Name())
		}
		if meta.LTable != meta0.LTable || meta.RTable != meta0.RTable {
			return nil, fmt.Errorf("block: union: %q is over different base tables", c.Name())
		}
		for i := 0; i < c.Len(); i++ {
			k := pairKey(c, meta, i)
			if !seen[k] {
				seen[k] = true
				table.AppendPair(out, c.Get(i, meta.LID).AsString(), c.Get(i, meta.RID).AsString())
			}
		}
	}
	return out, nil
}

// Intersect keeps only pairs present in every candidate set. Users
// intersect blockers to tighten precision when each captures a necessary
// condition for matching.
func Intersect(cat *table.Catalog, cands ...*table.Table) (*table.Table, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("block: intersection of zero candidate sets")
	}
	meta0, ok := cat.PairMeta(cands[0])
	if !ok {
		return nil, fmt.Errorf("block: intersect: %q not registered", cands[0].Name())
	}
	counts := make(map[string]int)
	for ci, c := range cands {
		meta, ok := cat.PairMeta(c)
		if !ok {
			return nil, fmt.Errorf("block: intersect: %q not registered", c.Name())
		}
		if meta.LTable != meta0.LTable || meta.RTable != meta0.RTable {
			return nil, fmt.Errorf("block: intersect: %q is over different base tables", c.Name())
		}
		seenHere := make(map[string]bool)
		for i := 0; i < c.Len(); i++ {
			k := pairKey(c, meta, i)
			if !seenHere[k] {
				seenHere[k] = true
				if counts[k] == ci { // present in all previous sets
					counts[k]++
				}
			}
		}
	}
	out, err := table.NewPairTable("intersect", meta0.LTable, meta0.RTable, cat)
	if err != nil {
		return nil, err
	}
	// Preserve the order of the first candidate set.
	emitted := make(map[string]bool)
	for i := 0; i < cands[0].Len(); i++ {
		k := pairKey(cands[0], meta0, i)
		if counts[k] == len(cands) && !emitted[k] {
			emitted[k] = true
			table.AppendPair(out, cands[0].Get(i, meta0.LID).AsString(), cands[0].Get(i, meta0.RID).AsString())
		}
	}
	return out, nil
}

// Minus returns the pairs of a that are absent from b (both over the same
// base tables): the pairs a blocker change would add or drop, which the
// debugger reports.
func Minus(cat *table.Catalog, a, b *table.Table) (*table.Table, error) {
	metaA, ok := cat.PairMeta(a)
	if !ok {
		return nil, fmt.Errorf("block: minus: %q not registered", a.Name())
	}
	metaB, ok := cat.PairMeta(b)
	if !ok {
		return nil, fmt.Errorf("block: minus: %q not registered", b.Name())
	}
	if metaA.LTable != metaB.LTable || metaA.RTable != metaB.RTable {
		return nil, fmt.Errorf("block: minus: candidate sets are over different base tables")
	}
	inB := make(map[string]bool)
	for i := 0; i < b.Len(); i++ {
		inB[pairKey(b, metaB, i)] = true
	}
	out, err := table.NewPairTable(a.Name()+"-"+b.Name(), metaA.LTable, metaA.RTable, cat)
	if err != nil {
		return nil, err
	}
	for i := 0; i < a.Len(); i++ {
		if !inB[pairKey(a, metaA, i)] {
			table.AppendPair(out, a.Get(i, metaA.LID).AsString(), a.Get(i, metaA.RID).AsString())
		}
	}
	return out, nil
}
