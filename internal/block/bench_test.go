package block

import (
	"fmt"
	"testing"

	"repro/internal/table"
)

func benchTables(n int) (*table.Table, *table.Table) {
	sch := table.StringSchema("id", "name", "city")
	a := table.New("A", sch)
	b := table.New("B", sch)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("widget model%d series%d", i, i%100)
		city := fmt.Sprintf("city%d", i%50)
		a.MustAppend(table.String(fmt.Sprintf("a%d", i)), table.String(name), table.String(city))
		b.MustAppend(table.String(fmt.Sprintf("b%d", i)), table.String(name), table.String(city))
	}
	if err := a.SetKey("id"); err != nil {
		panic(err)
	}
	if err := b.SetKey("id"); err != nil {
		panic(err)
	}
	return a, b
}

func BenchmarkOverlapBlocker2K(b *testing.B) {
	at, bt := benchTables(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := table.NewCatalog()
		if _, err := (OverlapBlocker{Attr: "name", MinOverlap: 2}).Block(at, bt, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttrEquivalenceBlocker2K(b *testing.B) {
	at, bt := benchTables(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := table.NewCatalog()
		if _, err := (AttrEquivalenceBlocker{Attr: "city"}).Block(at, bt, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortedNeighborhood2K(b *testing.B) {
	at, bt := benchTables(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := table.NewCatalog()
		if _, err := (SortedNeighborhoodBlocker{Attr: "name", Window: 5}).Block(at, bt, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDebugBlocker(b *testing.B) {
	at, bt := benchTables(500)
	cat := table.NewCatalog()
	cand, err := AttrEquivalenceBlocker{Attr: "city"}.Block(at, bt, cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DebugBlocker(cand, cat, 20); err != nil {
			b.Fatal(err)
		}
	}
}
