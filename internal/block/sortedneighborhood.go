package block

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/table"
)

// SortedNeighborhoodBlocker merges both tables, sorts by a key derived
// from an attribute, slides a fixed-size window over the sorted sequence,
// and emits every cross-table pair that co-occurs in some window. It is
// the classic sorted-neighborhood method of record linkage.
type SortedNeighborhoodBlocker struct {
	Attr string
	// Window is the sliding-window size; 0 means 5.
	Window int
	// KeyFunc derives the sort key from the attribute value; nil means
	// lower-cased trimmed identity.
	KeyFunc func(string) string
}

// Name implements Blocker.
func (b SortedNeighborhoodBlocker) Name() string {
	return fmt.Sprintf("sorted_neighborhood(%s,w=%d)", b.Attr, b.window())
}

func (b SortedNeighborhoodBlocker) window() int {
	if b.Window < 2 {
		return 5
	}
	return b.Window
}

// Block implements Blocker.
func (b SortedNeighborhoodBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	lj := lt.Schema().Lookup(b.Attr)
	rj := rt.Schema().Lookup(b.Attr)
	if lj < 0 || rj < 0 {
		return nil, fmt.Errorf("block: %s: attribute %q missing", b.Name(), b.Attr)
	}
	keyFn := b.KeyFunc
	if keyFn == nil {
		keyFn = func(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
	}

	type entry struct {
		key  string
		id   string
		left bool
	}
	var entries []entry
	lkey := lt.Schema().Lookup(lt.Key())
	for i := 0; i < lt.Len(); i++ {
		v := lt.Row(i)[lj]
		if v.IsNull() {
			continue
		}
		entries = append(entries, entry{keyFn(v.AsString()), lt.Row(i)[lkey].AsString(), true})
	}
	rkey := rt.Schema().Lookup(rt.Key())
	for i := 0; i < rt.Len(); i++ {
		v := rt.Row(i)[rj]
		if v.IsNull() {
			continue
		}
		entries = append(entries, entry{keyFn(v.AsString()), rt.Row(i)[rkey].AsString(), false})
	}
	sort.SliceStable(entries, func(a, c int) bool { return entries[a].key < entries[c].key })

	pairs, err := table.NewPairTable(b.Name(), lt, rt, cat)
	if err != nil {
		return nil, err
	}
	w := b.window()
	seen := make(map[[2]string]bool)
	for i := range entries {
		hi := i + w
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			a, c := entries[i], entries[j]
			if a.left == c.left {
				continue
			}
			if !a.left {
				a, c = c, a
			}
			k := [2]string{a.id, c.id}
			if !seen[k] {
				seen[k] = true
				table.AppendPair(pairs, a.id, c.id)
			}
		}
	}
	return pairs, nil
}
