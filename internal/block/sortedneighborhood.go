package block

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/table"
)

// SortedNeighborhoodBlocker merges both tables, sorts by a key derived
// from an attribute, slides a fixed-size window over the sorted sequence,
// and emits every cross-table pair that co-occurs in some window. It is
// the classic sorted-neighborhood method of record linkage.
type SortedNeighborhoodBlocker struct {
	Attr string
	// Window is the sliding-window size; 0 means 5.
	Window int
	// KeyFunc derives the sort key from the attribute value; nil means
	// lower-cased trimmed identity. It must be safe for concurrent calls.
	KeyFunc func(string) string
	// Workers shards the window scan across goroutines; 0 means
	// GOMAXPROCS. The candidate set is identical for every setting.
	Workers int
	// Metrics receives blocking timings and pair counters; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b SortedNeighborhoodBlocker) Name() string {
	return fmt.Sprintf("sorted_neighborhood(%s,w=%d)", b.Attr, b.window())
}

func (b SortedNeighborhoodBlocker) window() int {
	if b.Window < 2 {
		return 5
	}
	return b.Window
}

// Block implements Blocker.
func (b SortedNeighborhoodBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	rec := obs.Or(b.Metrics)
	bl := obs.L("blocker", b.Name())
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	lj := lt.Schema().Lookup(b.Attr)
	rj := rt.Schema().Lookup(b.Attr)
	if lj < 0 || rj < 0 {
		return nil, fmt.Errorf("block: %s: attribute %q missing", b.Name(), b.Attr)
	}
	keyFn := b.KeyFunc
	if keyFn == nil {
		keyFn = func(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
	}

	// Row IDs are interned to dense uint32s so the window-scan dedup runs
	// on packed uint64 keys instead of [2]string map keys. The dictionary
	// is built serially here and only read (never grown) once the parallel
	// scan starts; d.Token turns the winners back into strings at emit.
	d := intern.NewDict()
	type entry struct {
		key  string
		id   uint32
		left bool
	}
	var entries []entry
	lkey := lt.Schema().Lookup(lt.Key())
	for i := 0; i < lt.Len(); i++ {
		v := lt.Row(i)[lj]
		if v.IsNull() {
			continue
		}
		entries = append(entries, entry{keyFn(v.AsString()), d.Intern(lt.Row(i)[lkey].AsString()), true})
	}
	rkey := rt.Schema().Lookup(rt.Key())
	for i := 0; i < rt.Len(); i++ {
		v := rt.Row(i)[rj]
		if v.IsNull() {
			continue
		}
		entries = append(entries, entry{keyFn(v.AsString()), d.Intern(rt.Row(i)[rkey].AsString()), false})
	}
	sort.SliceStable(entries, func(a, c int) bool { return entries[a].key < entries[c].key })

	pairs, err := table.NewPairTable(b.Name(), lt, rt, cat)
	if err != nil {
		return nil, err
	}
	w := b.window()
	// Each shard scans its own range of window starts, deduplicating
	// locally; windows starting near a shard boundary reach into the next
	// shard's entries, so the same pair can surface in two shards and a
	// final pass dedups globally. Both dedups keep the first occurrence
	// in window-start order, so the output matches the serial scan.
	// Pairs travel as packed (left id << 32 | right id) keys until the
	// final emit; interning is injective, so the packed key identifies the
	// (L, R) string pair exactly as the old [2]string key did.
	shards, err := parallel.MapChunks(b.Workers, len(entries), func(lo, hi int) ([]uint64, error) {
		stop := obs.StartTimer(rec, obs.BlockShardSeconds, bl)
		defer stop()
		out := make([]uint64, 0, hi-lo)
		local := make(map[uint64]bool)
		for i := lo; i < hi; i++ {
			end := i + w
			if end > len(entries) {
				end = len(entries)
			}
			for j := i + 1; j < end; j++ {
				a, c := entries[i], entries[j]
				if a.left == c.left {
					continue
				}
				if !a.left {
					a, c = c, a
				}
				k := uint64(a.id)<<32 | uint64(c.id)
				if !local[k] {
					local[k] = true
					out = append(out, k)
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	npairs := 0
	for _, shard := range shards {
		npairs += len(shard)
	}
	seen := make(map[uint64]bool, npairs)
	merged := make([]table.PairID, 0, npairs)
	for _, shard := range shards {
		for _, k := range shard {
			if !seen[k] {
				seen[k] = true
				merged = append(merged, table.PairID{L: d.Token(uint32(k >> 32)), R: d.Token(uint32(k))})
			}
		}
	}
	table.AppendPairs(pairs, merged)
	rec.Count(obs.BlockPairsEmitted, float64(pairs.Len()), bl)
	return pairs, nil
}
