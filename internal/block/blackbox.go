package block

import (
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/table"
)

// BlackBoxBlocker applies an arbitrary user predicate to every cross pair,
// keeping pairs for which Keep returns true. It is the escape hatch for
// blocking logic no built-in blocker expresses; like the cross blocker it
// enumerates |L|×|R| pairs, so it suits the down-sampled tables of the
// development stage rather than production runs.
type BlackBoxBlocker struct {
	// Label names the blocker in candidate-set provenance.
	Label string
	// Keep decides whether the pair survives blocking. It must be safe
	// for concurrent calls (predicates reading only their arguments are).
	Keep func(lrow, rrow table.Row) bool
	// Workers shards the left table across goroutines; 0 means GOMAXPROCS.
	Workers int
	// Metrics receives blocking timings and pair counters; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b BlackBoxBlocker) Name() string {
	if b.Label != "" {
		return "black_box(" + b.Label + ")"
	}
	return "black_box"
}

// Block implements Blocker.
func (b BlackBoxBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	rec := obs.Or(b.Metrics)
	bl := obs.L("blocker", b.Name())
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	pairs, err := table.NewPairTable(b.Name(), lt, rt, cat)
	if err != nil {
		return nil, err
	}
	lkey := lt.Schema().Lookup(lt.Key())
	rkey := rt.Schema().Lookup(rt.Key())
	shards, err := parallel.MapChunks(b.Workers, lt.Len(), func(lo, hi int) ([]table.PairID, error) {
		stop := obs.StartTimer(rec, obs.BlockShardSeconds, bl)
		defer stop()
		out := make([]table.PairID, 0, hi-lo)
		for i := lo; i < hi; i++ {
			for j := 0; j < rt.Len(); j++ {
				if b.Keep(lt.Row(i), rt.Row(j)) {
					out = append(out, table.PairID{L: lt.Row(i)[lkey].AsString(), R: rt.Row(j)[rkey].AsString()})
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, shard := range shards {
		table.AppendPairs(pairs, shard)
	}
	rec.Count(obs.BlockPairsConsidered, float64(lt.Len()*rt.Len()), bl)
	rec.Count(obs.BlockPairsEmitted, float64(pairs.Len()), bl)
	return pairs, nil
}
