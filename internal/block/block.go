// Package block implements the blocking step of entity matching: the
// heuristics that cheaply discard obviously non-matching tuple pairs so the
// matcher only scores a small candidate set. It provides the blocker
// inventory of PyMatcher (Table 3): attribute-equivalence, hash, overlap,
// rule-based, sorted-neighborhood, and black-box blockers, plus candidate
// set combinators and the blocking debugger that estimates how many true
// matches a blocker discarded.
//
// Every blocker produces a candidate-set table with the conventional
// (_id, ltable_id, rtable_id) schema, registered in a table.Catalog so
// downstream tools can re-validate its FK metadata (the paper's
// self-containment principle).
package block

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/table"
)

// Blocker generates a candidate set from two base tables.
type Blocker interface {
	// Block returns a new pair table over lt and rt registered in cat.
	Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error)
	// Name identifies the blocker, e.g. "overlap(name,k=2)".
	Name() string
}

// requireKeys validates that both tables have declared keys; every blocker
// needs them to emit (lid, rid) pairs.
func requireKeys(lt, rt *table.Table) error {
	if lt.Key() == "" {
		return fmt.Errorf("block: table %q has no key", lt.Name())
	}
	if rt.Key() == "" {
		return fmt.Errorf("block: table %q has no key", rt.Name())
	}
	return nil
}

// CrossBlocker emits the full cross product. It exists as the "no blocking"
// baseline for debugging and for tiny tables; the candidate set has
// |L|×|R| rows.
type CrossBlocker struct {
	// Workers shards the left table across goroutines; 0 means GOMAXPROCS.
	Workers int
	// Metrics receives blocking timings and pair counters; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (CrossBlocker) Name() string { return "cross" }

// Block implements Blocker.
func (b CrossBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	rec := obs.Or(b.Metrics)
	bl := obs.L("blocker", b.Name())
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	pairs, err := table.NewPairTable("cross("+lt.Name()+","+rt.Name()+")", lt, rt, cat)
	if err != nil {
		return nil, err
	}
	lkey := lt.Schema().Lookup(lt.Key())
	rkey := rt.Schema().Lookup(rt.Key())
	rids := make([]string, rt.Len())
	for j := range rids {
		rids[j] = rt.Row(j)[rkey].AsString()
	}
	shards, err := parallel.MapChunks(b.Workers, lt.Len(), func(lo, hi int) ([]table.PairID, error) {
		stop := obs.StartTimer(rec, obs.BlockShardSeconds, bl)
		defer stop()
		out := make([]table.PairID, 0, (hi-lo)*len(rids))
		for i := lo; i < hi; i++ {
			lid := lt.Row(i)[lkey].AsString()
			for _, rid := range rids {
				out = append(out, table.PairID{L: lid, R: rid})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, shard := range shards {
		table.AppendPairs(pairs, shard)
	}
	rec.Count(obs.BlockPairsConsidered, float64(lt.Len()*rt.Len()), bl)
	rec.Count(obs.BlockPairsEmitted, float64(pairs.Len()), bl)
	return pairs, nil
}

// AttrEquivalenceBlocker keeps pairs whose named attribute values are
// exactly equal (nulls never match). It is the classic equi-join blocker:
// "persons residing in different states cannot match".
type AttrEquivalenceBlocker struct {
	// Attr is the attribute name, which must exist in both tables.
	Attr string
	// Workers shards the probe side across goroutines; 0 means GOMAXPROCS.
	Workers int
	// Metrics receives blocking timings and pair counters; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b AttrEquivalenceBlocker) Name() string { return "attr_equiv(" + b.Attr + ")" }

// Block implements Blocker.
func (b AttrEquivalenceBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	return HashBlocker{Attr: b.Attr, Workers: b.Workers, Metrics: b.Metrics}.block(lt, rt, cat, b.Name())
}

// HashBlocker buckets tuples by a transform of an attribute value and
// keeps pairs falling in the same bucket. With a nil Transform it reduces
// to attribute equivalence; transforms like "lower-cased first 3 letters"
// trade precision for recall.
type HashBlocker struct {
	Attr string
	// Transform maps the attribute value to its bucket key; nil means
	// identity. Returning "" sends the tuple to no bucket (it pairs with
	// nothing), which is how nulls are handled. The transform must be
	// safe for concurrent calls (pure functions are).
	Transform func(string) string
	// Workers shards the probe (left) side across goroutines; 0 means
	// GOMAXPROCS. The candidate set is identical for every setting.
	Workers int
	// Metrics receives blocking timings and pair counters; nil means off.
	Metrics obs.Recorder
}

// Name implements Blocker.
func (b HashBlocker) Name() string { return "hash(" + b.Attr + ")" }

// Block implements Blocker.
func (b HashBlocker) Block(lt, rt *table.Table, cat *table.Catalog) (*table.Table, error) {
	return b.block(lt, rt, cat, b.Name())
}

func (b HashBlocker) block(lt, rt *table.Table, cat *table.Catalog, name string) (*table.Table, error) {
	if err := requireKeys(lt, rt); err != nil {
		return nil, err
	}
	rec := obs.Or(b.Metrics)
	bl := obs.L("blocker", name)
	defer obs.StartTimer(rec, obs.BlockSeconds, bl)()
	lj := lt.Schema().Lookup(b.Attr)
	rj := rt.Schema().Lookup(b.Attr)
	if lj < 0 || rj < 0 {
		return nil, fmt.Errorf("block: %s: attribute %q missing from %q or %q", name, b.Attr, lt.Name(), rt.Name())
	}
	key := func(v table.Value) string {
		if v.IsNull() {
			return ""
		}
		s := v.AsString()
		if b.Transform != nil {
			return b.Transform(s)
		}
		return s
	}
	// Bucket the right table.
	rkey := rt.Schema().Lookup(rt.Key())
	buckets := make(map[string][]string)
	for j := 0; j < rt.Len(); j++ {
		k := key(rt.Row(j)[rj])
		if k == "" {
			continue
		}
		buckets[k] = append(buckets[k], rt.Row(j)[rkey].AsString())
	}
	pairs, err := table.NewPairTable(name, lt, rt, cat)
	if err != nil {
		return nil, err
	}
	// Probe the left table in contiguous shards, each worker batching
	// into a local buffer; concatenating the buffers in shard order
	// reproduces the serial probe order exactly.
	lkey := lt.Schema().Lookup(lt.Key())
	shards, err := parallel.MapChunks(b.Workers, lt.Len(), func(lo, hi int) ([]table.PairID, error) {
		stop := obs.StartTimer(rec, obs.BlockShardSeconds, bl)
		defer stop()
		out := make([]table.PairID, 0, hi-lo)
		for i := lo; i < hi; i++ {
			k := key(lt.Row(i)[lj])
			if k == "" {
				continue
			}
			lid := lt.Row(i)[lkey].AsString()
			for _, rid := range buckets[k] {
				out = append(out, table.PairID{L: lid, R: rid})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, shard := range shards {
		table.AppendPairs(pairs, shard)
	}
	// Hash blocking examines exactly the bucket-sharing pairs it emits.
	rec.Count(obs.BlockPairsConsidered, float64(pairs.Len()), bl)
	rec.Count(obs.BlockPairsEmitted, float64(pairs.Len()), bl)
	return pairs, nil
}

// LowerTransform lower-cases and trims the value: the usual normalization
// for hash blocking on names.
func LowerTransform(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// PrefixTransform returns a transform taking the lower-cased first n runes.
func PrefixTransform(n int) func(string) string {
	return func(s string) string {
		s = LowerTransform(s)
		r := []rune(s)
		if len(r) > n {
			r = r[:n]
		}
		return string(r)
	}
}
