package sim

import "strings"

// soundexCode maps a letter to its Soundex digit, or 0 for vowels and the
// ignored letters h/w/y.
func soundexCode(r byte) byte {
	switch r {
	case 'b', 'f', 'p', 'v':
		return '1'
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return '2'
	case 'd', 't':
		return '3'
	case 'l':
		return '4'
	case 'm', 'n':
		return '5'
	case 'r':
		return '6'
	default:
		return 0
	}
}

// Soundex returns the four-character American Soundex encoding of s, or ""
// when s contains no ASCII letter. Adjacent letters with the same code
// collapse, and letters separated only by h or w also collapse, per the
// standard algorithm.
func Soundex(s string) string {
	s = strings.ToLower(s)
	// Find the first letter.
	i := 0
	for i < len(s) && (s[i] < 'a' || s[i] > 'z') {
		i++
	}
	if i == len(s) {
		return ""
	}
	out := []byte{s[i] - 'a' + 'A'}
	prev := soundexCode(s[i])
	for i++; i < len(s) && len(out) < 4; i++ {
		c := s[i]
		if c < 'a' || c > 'z' {
			prev = 0
			continue
		}
		code := soundexCode(c)
		switch {
		case code == 0:
			// h and w are transparent: keep prev so identical codes on
			// either side still collapse; vowels reset it.
			if c != 'h' && c != 'w' {
				prev = 0
			}
		case code != prev:
			out = append(out, code)
			prev = code
		}
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexSim returns 1 when the Soundex encodings of a and b are equal and
// non-empty, else 0.
func SoundexSim(a, b string) float64 {
	sa, sb := Soundex(a), Soundex(b)
	if sa == "" || sb == "" {
		return 0
	}
	if sa == sb {
		return 1
	}
	return 0
}
