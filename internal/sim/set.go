package sim

import (
	"math"
	"slices"
	"sort"
)

// The string set measures are thin wrappers around the merge kernels in
// setint.go: each call canonicalizes its token lists to sorted duplicate-free
// form once and runs the same generic merge the integer kernels use, instead
// of building throwaway hash sets per call. One-off scoring pays two small
// slice allocations here; bulk callers (simjoin, the feature cache) intern
// tokens up front and hit the []uint32 kernels with zero allocations per
// pair.

// sortedUnique returns a sorted duplicate-free copy of toks.
func sortedUnique(toks []string) []string {
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	copy(out, toks)
	sort.Strings(out)
	return slices.Compact(out)
}

// intersectionSize returns |set(a) ∩ set(b)| along with both set sizes,
// all derived from the two canonicalized sets built here.
func intersectionSize(a, b []string) (inter, sizeA, sizeB int) {
	sa, sb := sortedUnique(a), sortedUnique(b)
	return intersectSorted(sa, sb), len(sa), len(sb)
}

// Jaccard returns |A∩B| / |A∪B| of the token sets. Two empty sets score 1.
func Jaccard(a, b []string) float64 {
	inter, sa, sb := intersectionSize(a, b)
	union := sa + sb - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|A∩B| / (|A|+|B|).
func Dice(a, b []string) float64 {
	inter, sa, sb := intersectionSize(a, b)
	if sa+sb == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(sa+sb)
}

// OverlapCoefficient returns |A∩B| / min(|A|,|B|).
func OverlapCoefficient(a, b []string) float64 {
	inter, sa, sb := intersectionSize(a, b)
	m := sa
	if sb < m {
		m = sb
	}
	if m == 0 {
		if sa == 0 && sb == 0 {
			return 1
		}
		return 0
	}
	return float64(inter) / float64(m)
}

// OverlapSize returns the raw overlap |A∩B|; the overlap blocker thresholds
// on this count rather than a normalized score.
func OverlapSize(a, b []string) int {
	inter, _, _ := intersectionSize(a, b)
	return inter
}

// CosineSet returns |A∩B| / sqrt(|A|·|B|) over token sets (the set
// semantics py_stringsimjoin uses for its cosine join).
func CosineSet(a, b []string) float64 {
	inter, sa, sb := intersectionSize(a, b)
	if sa == 0 && sb == 0 {
		return 1
	}
	if sa == 0 || sb == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(sa)*float64(sb))
}

// Tversky returns the Tversky index with parameters alpha and beta
// (alpha=beta=0.5 reduces to Dice; alpha=beta=1 to Jaccard).
func Tversky(a, b []string, alpha, beta float64) float64 {
	inter, sa, sb := intersectionSize(a, b)
	onlyA := float64(sa - inter)
	onlyB := float64(sb - inter)
	den := float64(inter) + alpha*onlyA + beta*onlyB
	if den == 0 {
		return 1
	}
	return float64(inter) / den
}
