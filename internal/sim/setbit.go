package sim

import (
	"math"

	"repro/internal/bitvec"
)

// This file holds the dense-set similarity kernels: the same measures as
// setint.go, but over bitvec.Set compressed bitsets instead of sorted
// []uint32 slices. The intersection runs bitvec's hybrid container kernels
// (word-level AND + popcount on dense 64k blocks), which beat the sorted
// merge once sets grow past a few thousand tokens clustered into shared
// blocks — the dense half of the representation split simjoin's verifier
// chooses between per record.
//
// Every similarity formula is written with the identical operations, in
// the identical order, as its U32 counterpart, so the two paths agree bit
// for bit (pinned by the testing/quick properties in setbit_test.go).

// JaccardBits is Jaccard over compressed ID sets, bit-identical to
// JaccardU32 on the same members.
//
//emlint:zeroalloc
func JaccardBits(a, b *bitvec.Set) float64 {
	inter := bitvec.AndCount(a, b)
	union := a.Len() + b.Len() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// DiceBits is Dice over compressed ID sets, bit-identical to DiceU32.
//
//emlint:zeroalloc
func DiceBits(a, b *bitvec.Set) float64 {
	inter := bitvec.AndCount(a, b)
	if a.Len()+b.Len() == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(a.Len()+b.Len())
}

// OverlapCoefficientBits is the overlap coefficient over compressed ID
// sets, bit-identical to OverlapCoefficientU32.
//
//emlint:zeroalloc
func OverlapCoefficientBits(a, b *bitvec.Set) float64 {
	inter := bitvec.AndCount(a, b)
	m := a.Len()
	if b.Len() < m {
		m = b.Len()
	}
	if m == 0 {
		if a.Len() == 0 && b.Len() == 0 {
			return 1
		}
		return 0
	}
	return float64(inter) / float64(m)
}

// OverlapSizeBits is the raw overlap |a ∩ b| over compressed ID sets.
//
//emlint:zeroalloc
//emlint:hotpath
func OverlapSizeBits(a, b *bitvec.Set) int { return bitvec.AndCount(a, b) }

// CosineSetBits is set cosine over compressed ID sets, bit-identical to
// CosineSetU32.
//
//emlint:zeroalloc
func CosineSetBits(a, b *bitvec.Set) float64 {
	inter := bitvec.AndCount(a, b)
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(a.Len())*float64(b.Len()))
}

// TverskyBits is the Tversky index over compressed ID sets, bit-identical
// to TverskyU32.
//
//emlint:zeroalloc
func TverskyBits(a, b *bitvec.Set, alpha, beta float64) float64 {
	inter := bitvec.AndCount(a, b)
	onlyA := float64(a.Len() - inter)
	onlyB := float64(b.Len() - inter)
	den := float64(inter) + alpha*onlyA + beta*onlyB
	if den == 0 {
		return 1
	}
	return float64(inter) / den
}
