package sim

// LevenshteinDistance returns the minimum number of single-rune insertions,
// deletions, and substitutions needed to transform a into b.
func LevenshteinDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Levenshtein returns a normalized similarity: 1 - dist/max(len). Two empty
// strings are perfectly similar.
func Levenshtein(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	return 1 - float64(LevenshteinDistance(a, b))/float64(max2(la, lb))
}

// HammingDistance returns the number of positions at which equal-length
// strings differ; for unequal lengths the length difference is added, so
// the function is total.
func HammingDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n := min2(len(ra), len(rb))
	d := max2(len(ra), len(rb)) - n
	for i := 0; i < n; i++ {
		if ra[i] != rb[i] {
			d++
		}
	}
	return d
}

// Hamming returns the normalized Hamming similarity in [0, 1].
func Hamming(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	return 1 - float64(HammingDistance(a, b))/float64(max2(la, lb))
}

// NeedlemanWunschScore computes the global-alignment score with match
// reward +1, mismatch penalty -1 (via sub), and linear gap penalty
// gap (a negative number is expected, e.g. -0.5).
func NeedlemanWunschScore(a, b string, match, mismatch, gap float64) float64 {
	ra, rb := []rune(a), []rune(b)
	prev := make([]float64, len(rb)+1)
	cur := make([]float64, len(rb)+1)
	for j := range prev {
		prev[j] = float64(j) * gap
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = float64(i) * gap
		for j := 1; j <= len(rb); j++ {
			sub := mismatch
			if ra[i-1] == rb[j-1] {
				sub = match
			}
			best := prev[j-1] + sub
			if v := prev[j] + gap; v > best {
				best = v
			}
			if v := cur[j-1] + gap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// NeedlemanWunsch returns the global-alignment score with the conventional
// parameters (match +1, mismatch -1, gap -0.5) normalized into [0, 1] by
// the maximum attainable score.
func NeedlemanWunsch(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxScore := float64(max2(la, lb))
	score := NeedlemanWunschScore(a, b, 1, -1, -0.5)
	if score < 0 {
		score = 0
	}
	return score / maxScore
}

// SmithWatermanScore computes the local-alignment score with the given
// parameters.
func SmithWatermanScore(a, b string, match, mismatch, gap float64) float64 {
	ra, rb := []rune(a), []rune(b)
	prev := make([]float64, len(rb)+1)
	cur := make([]float64, len(rb)+1)
	var best float64
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := mismatch
			if ra[i-1] == rb[j-1] {
				sub = match
			}
			v := prev[j-1] + sub
			if w := prev[j] + gap; w > v {
				v = w
			}
			if w := cur[j-1] + gap; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return best
}

// SmithWaterman returns the local-alignment score (match +1, mismatch -1,
// gap -0.5) normalized by the shorter string's length.
func SmithWaterman(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	return SmithWatermanScore(a, b, 1, -1, -0.5) / float64(min2(la, lb))
}

// AffineGapScore computes a global alignment score with affine gaps:
// opening a gap costs open (negative), extending costs extend (negative).
// Uses the Gotoh three-matrix recurrence.
func AffineGapScore(a, b string, match, mismatch, open, extend float64) float64 {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	const negInf = -1e18
	// M: a aligned to b; X: gap in b (consume a); Y: gap in a (consume b).
	prevM := make([]float64, m+1)
	prevX := make([]float64, m+1)
	prevY := make([]float64, m+1)
	curM := make([]float64, m+1)
	curX := make([]float64, m+1)
	curY := make([]float64, m+1)
	prevM[0] = 0
	prevX[0], prevY[0] = negInf, negInf
	for j := 1; j <= m; j++ {
		prevM[j] = negInf
		prevX[j] = negInf
		prevY[j] = open + float64(j-1)*extend
	}
	for i := 1; i <= n; i++ {
		curM[0] = negInf
		curX[0] = open + float64(i-1)*extend
		curY[0] = negInf
		for j := 1; j <= m; j++ {
			sub := mismatch
			if ra[i-1] == rb[j-1] {
				sub = match
			}
			curM[j] = maxf(maxf(prevM[j-1], prevX[j-1]), prevY[j-1]) + sub
			curX[j] = maxf(prevM[j]+open, prevX[j]+extend)
			curY[j] = maxf(curM[j-1]+open, curY[j-1]+extend)
		}
		prevM, curM = curM, prevM
		prevX, curX = curX, prevX
		prevY, curY = curY, prevY
	}
	if n == 0 && m == 0 {
		return 0
	}
	return maxf(maxf(prevM[m], prevX[m]), prevY[m])
}

// AffineGap returns the affine-gap alignment score (match +1, mismatch -1,
// gap open -1, gap extend -0.25) normalized into [0, 1].
func AffineGap(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	score := AffineGapScore(a, b, 1, -1, -1, -0.25)
	if score < 0 {
		score = 0
	}
	return score / float64(max2(la, lb))
}
