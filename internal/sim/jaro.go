package sim

// Jaro returns the Jaro similarity of two strings in [0, 1]. Characters
// match when equal and within half the longer length of each other;
// transpositions are matched characters in different relative order.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !bMatched[j] && ra[i] == rb[j] {
				aMatched[i] = true
				bMatched[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 and a maximum considered prefix of 4 runes.
func JaroWinkler(a, b string) float64 {
	return JaroWinklerPrefix(a, b, 0.1, 4)
}

// JaroWinklerPrefix is JaroWinkler with explicit prefix scale p and maximum
// prefix length maxPrefix.
func JaroWinklerPrefix(a, b string, p float64, maxPrefix int) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	l := 0
	for l < len(ra) && l < len(rb) && l < maxPrefix && ra[l] == rb[l] {
		l++
	}
	return j + float64(l)*p*(1-j)
}
