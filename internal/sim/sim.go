// Package sim implements the string similarity measures of the Magellan
// ecosystem's py_stringmatching package: sequence-based measures
// (Levenshtein, Jaro, Jaro-Winkler, Needleman-Wunsch, Smith-Waterman,
// affine gap, Hamming), set-based measures (Jaccard, Dice, cosine, overlap
// coefficient, Tversky), hybrid measures (Monge-Elkan, generalized Jaccard,
// soft TF-IDF), corpus-weighted TF-IDF, and the Soundex phonetic encoding.
//
// All similarity functions return values in [0, 1] where 1 means identical,
// so they can be used interchangeably as EM features.
package sim

// StringSim scores the similarity of two raw strings in [0, 1].
type StringSim interface {
	Sim(a, b string) float64
	Name() string
}

// TokenSim scores the similarity of two token lists in [0, 1].
type TokenSim interface {
	SimTokens(a, b []string) float64
	Name() string
}

// Func adapts an ordinary function to StringSim.
type Func struct {
	F func(a, b string) float64
	N string
}

// Sim implements StringSim.
func (f Func) Sim(a, b string) float64 { return f.F(a, b) }

// Name implements StringSim.
func (f Func) Name() string { return f.N }

// ExactMatch returns 1 if the strings are byte-identical, else 0.
func ExactMatch(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
