package sim

import (
	"cmp"
	"math"
)

// This file holds the integer set-similarity kernels: the same measures as
// set.go, but over interned token IDs (package intern) held as sorted,
// duplicate-free []uint32. Every kernel is a zero-allocation merge over the
// two sorted slices — no maps, no copies — which is what lets the
// set-similarity joins and the feature-extraction cache run allocation-free
// per pair. The string APIs in set.go are thin wrappers over the same
// generic merge, so the two paths agree bit for bit (pinned by the
// testing/quick equivalence properties in setint_test.go).
//
// Contract: inputs must be sorted ascending with no duplicates (what
// intern.SortedDedup / Dict.SortedSet produce). The kernels do not verify
// this.

// intersectSorted is the shared merge kernel: |a ∩ b| for two ascending,
// duplicate-free slices.
//
//emlint:zeroalloc
func intersectSorted[T cmp.Ordered](a, b []T) int {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return inter
}

// IntersectSortedU32 returns |a ∩ b| for two sorted duplicate-free ID sets.
//
//emlint:zeroalloc
//emlint:hotpath
func IntersectSortedU32(a, b []uint32) int { return intersectSorted(a, b) }

// IntersectSortedU32Bounded returns |a ∩ b| when it is at least need, and -1
// as soon as the remaining suffixes cannot reach need (the suffix-length
// early exit the similarity joins use to abandon hopeless candidates
// mid-verify). A non-negative return is always the exact intersection size.
//
//emlint:zeroalloc
func IntersectSortedU32Bounded(a, b []uint32, need int) int {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		rem := len(a) - i
		if r := len(b) - j; r < rem {
			rem = r
		}
		if inter+rem < need {
			return -1
		}
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return inter
}

// JaccardU32 is Jaccard over sorted duplicate-free ID sets.
//
//emlint:zeroalloc
func JaccardU32(a, b []uint32) float64 {
	inter := intersectSorted(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// DiceU32 is Dice over sorted duplicate-free ID sets.
//
//emlint:zeroalloc
func DiceU32(a, b []uint32) float64 {
	inter := intersectSorted(a, b)
	if len(a)+len(b) == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// OverlapCoefficientU32 is the overlap coefficient over sorted
// duplicate-free ID sets.
//
//emlint:zeroalloc
func OverlapCoefficientU32(a, b []uint32) float64 {
	inter := intersectSorted(a, b)
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	if m == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	return float64(inter) / float64(m)
}

// OverlapSizeU32 is the raw overlap |a ∩ b| over sorted duplicate-free ID
// sets.
//
//emlint:zeroalloc
//emlint:hotpath
func OverlapSizeU32(a, b []uint32) int { return intersectSorted(a, b) }

// CosineSetU32 is set cosine over sorted duplicate-free ID sets.
//
//emlint:zeroalloc
func CosineSetU32(a, b []uint32) float64 {
	inter := intersectSorted(a, b)
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// TverskyU32 is the Tversky index over sorted duplicate-free ID sets.
//
//emlint:zeroalloc
func TverskyU32(a, b []uint32, alpha, beta float64) float64 {
	inter := intersectSorted(a, b)
	onlyA := float64(len(a) - inter)
	onlyB := float64(len(b) - inter)
	den := float64(inter) + alpha*onlyA + beta*onlyB
	if den == 0 {
		return 1
	}
	return float64(inter) / den
}
