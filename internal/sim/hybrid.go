package sim

// MongeElkan returns the Monge-Elkan hybrid similarity: for each token of a
// it finds the best-matching token of b under the inner measure and averages
// those maxima. It is asymmetric; callers wanting symmetry can average both
// directions with MongeElkanSym.
func MongeElkan(a, b []string, inner func(x, y string) float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var sum float64
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := inner(ta, tb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// MongeElkanSym is the symmetric mean of MongeElkan in both directions.
func MongeElkanSym(a, b []string, inner func(x, y string) float64) float64 {
	return (MongeElkan(a, b, inner) + MongeElkan(b, a, inner)) / 2
}

// GeneralizedJaccard computes Jaccard where tokens "match" when the inner
// similarity is at least threshold; matched pairs contribute their
// similarity instead of 1. Pairs are chosen greedily best-first, which is
// the standard approximation of the optimal bipartite matching.
func GeneralizedJaccard(a, b []string, inner func(x, y string) float64, threshold float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	type pair struct {
		i, j int
		s    float64
	}
	pairs := make([]pair, 0, len(a))
	for i, ta := range a {
		for j, tb := range b {
			if s := inner(ta, tb); s >= threshold {
				pairs = append(pairs, pair{i, j, s})
			}
		}
	}
	// Greedy best-first matching.
	usedA := make([]bool, len(a))
	usedB := make([]bool, len(b))
	var total float64
	matched := 0
	for matched < min2(len(a), len(b)) {
		best := -1
		for k, p := range pairs {
			if usedA[p.i] || usedB[p.j] {
				continue
			}
			if best < 0 || p.s > pairs[best].s {
				best = k
			}
		}
		if best < 0 {
			break
		}
		usedA[pairs[best].i] = true
		usedB[pairs[best].j] = true
		total += pairs[best].s
		matched++
	}
	den := float64(len(a) + len(b) - matched)
	if den == 0 {
		return 1
	}
	return total / den
}
