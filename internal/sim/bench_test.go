package sim

import (
	"strings"
	"testing"
)

var benchA = "mississippi department of revenue"
var benchB = "missisippi dept of revenue"

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein(benchA, benchB)
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler(benchA, benchB)
	}
}

func BenchmarkJaccardTokens(b *testing.B) {
	ta := strings.Fields(benchA)
	tb := strings.Fields(benchB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(ta, tb)
	}
}

func BenchmarkMongeElkan(b *testing.B) {
	ta := strings.Fields(benchA)
	tb := strings.Fields(benchB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MongeElkan(ta, tb, JaroWinkler)
	}
}

func BenchmarkSoftTFIDF(b *testing.B) {
	ta := strings.Fields(benchA)
	tb := strings.Fields(benchB)
	c := NewCorpus([][]string{ta, tb})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SoftTFIDF(ta, tb, JaroWinkler, 0.9)
	}
}

func BenchmarkSoundex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Soundex("Ashcraft")
	}
}
