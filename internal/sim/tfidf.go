package sim

import "math"

// Corpus holds document frequencies for TF-IDF weighting. Build one with
// NewCorpus over the token lists of the column(s) being matched, then score
// pairs with TFIDF or SoftTFIDF.
type Corpus struct {
	df   map[string]int
	docs int
}

// NewCorpus counts document frequencies over the given documents (each a
// token list; duplicate tokens within one document count once).
func NewCorpus(docs [][]string) *Corpus {
	c := &Corpus{df: make(map[string]int), docs: len(docs)}
	for _, d := range docs {
		for _, t := range sortedUnique(d) {
			c.df[t]++
		}
	}
	return c
}

// AddDoc adds one more document to the corpus statistics.
func (c *Corpus) AddDoc(d []string) {
	for _, t := range sortedUnique(d) {
		c.df[t]++
	}
	c.docs++
}

// Docs returns the number of documents seen.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of token t:
// ln(1 + N/df). Unknown tokens get the maximum weight ln(1 + N).
func (c *Corpus) IDF(t string) float64 {
	df := c.df[t]
	if df == 0 {
		df = 1
	}
	if c.docs == 0 {
		return 0
	}
	return math.Log(1 + float64(c.docs)/float64(df))
}

// tfVector returns token -> tf weight (raw counts) of the document.
func tfVector(d []string) map[string]float64 {
	v := make(map[string]float64, len(d))
	for _, t := range d {
		v[t]++
	}
	return v
}

// TFIDF returns the cosine similarity of the TF-IDF vectors of documents a
// and b under the corpus weights.
func (c *Corpus) TFIDF(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	va, vb := tfVector(a), tfVector(b)
	var dot, na, nb float64
	for t, tf := range va {
		w := tf * c.IDF(t)
		na += w * w
		if tfb, ok := vb[t]; ok {
			dot += w * tfb * c.IDF(t)
		}
	}
	for t, tf := range vb {
		w := tf * c.IDF(t)
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// SoftTFIDF generalizes TFIDF by letting distinct tokens contribute when
// their inner similarity is at least threshold (typically Jaro-Winkler with
// threshold 0.9), following Cohen et al.
func (c *Corpus) SoftTFIDF(a, b []string, inner func(x, y string) float64, threshold float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	va, vb := tfVector(a), tfVector(b)
	var na, nb float64
	for t, tf := range va {
		w := tf * c.IDF(t)
		na += w * w
	}
	for t, tf := range vb {
		w := tf * c.IDF(t)
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var dot float64
	for ta, tfa := range va {
		bestSim, bestTok := 0.0, ""
		for tb := range vb {
			if s := inner(ta, tb); s >= threshold && s > bestSim {
				bestSim, bestTok = s, tb
			}
		}
		if bestTok != "" {
			wa := tfa * c.IDF(ta)
			wb := vb[bestTok] * c.IDF(bestTok)
			dot += wa * wb * bestSim
		}
	}
	s := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if s > 1 {
		s = 1
	}
	return s
}
