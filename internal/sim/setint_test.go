package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/intern"
)

// tokenMultiset is a random token multiset drawn from a small alphabet, so
// duplicates and overlaps are common.
type tokenMultiset []string

// Generate implements quick.Generator.
func (tokenMultiset) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size%12 + 1)
	toks := make([]string, n)
	for i := range toks {
		toks[i] = fmt.Sprintf("t%d", rng.Intn(9))
	}
	return reflect.ValueOf(tokenMultiset(toks))
}

// internPair canonicalizes both multisets through one shared dictionary,
// the way every bulk caller does.
func internPair(a, b []string) (sa, sb []uint32) {
	d := intern.NewDict()
	return d.SortedSet(a), d.SortedSet(b)
}

// TestIntegerKernelsMatchStringKernels is the equivalence property of the
// interning layer: on any random token multisets, every integer kernel must
// reproduce its string counterpart bit for bit.
func TestIntegerKernelsMatchStringKernels(t *testing.T) {
	kernels := []struct {
		name string
		str  func(a, b []string) float64
		ids  func(a, b []uint32) float64
	}{
		{"jaccard", Jaccard, JaccardU32},
		{"dice", Dice, DiceU32},
		{"cosine", CosineSet, CosineSetU32},
		{"overlap_coeff", OverlapCoefficient, OverlapCoefficientU32},
		{"overlap_size",
			func(a, b []string) float64 { return float64(OverlapSize(a, b)) },
			func(a, b []uint32) float64 { return float64(OverlapSizeU32(a, b)) }},
		{"tversky",
			func(a, b []string) float64 { return Tversky(a, b, 0.7, 0.2) },
			func(a, b []uint32) float64 { return TverskyU32(a, b, 0.7, 0.2) }},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			f := func(a, b tokenMultiset) bool {
				sa, sb := internPair(a, b)
				return k.str(a, b) == k.ids(sa, sb)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBoundedIntersectExact: a non-negative bounded result is always the
// exact intersection size, and -1 only appears when the true intersection is
// below the bound.
func TestBoundedIntersectExact(t *testing.T) {
	f := func(a, b tokenMultiset, needRaw uint8) bool {
		sa, sb := internPair(a, b)
		need := int(needRaw % 8)
		exact := IntersectSortedU32(sa, sb)
		got := IntersectSortedU32Bounded(sa, sb, need)
		if got >= 0 {
			return got == exact
		}
		return exact < need
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestIntegerKernelsZeroAlloc pins the zero-allocation contract of every
// merge kernel: scoring a pre-interned pair must not touch the heap.
func TestIntegerKernelsZeroAlloc(t *testing.T) {
	d := intern.NewDict()
	a := d.SortedSet([]string{"acme", "widgets", "of", "madison", "wi"})
	b := d.SortedSet([]string{"acme", "widget", "co", "madison", "wi"})
	checks := map[string]func(){
		"intersectSorted":           func() { intersectSorted(a, b) },
		"IntersectSortedU32":        func() { IntersectSortedU32(a, b) },
		"IntersectSortedU32Bounded": func() { IntersectSortedU32Bounded(a, b, 3) },
		"JaccardU32":                func() { JaccardU32(a, b) },
		"DiceU32":                   func() { DiceU32(a, b) },
		"CosineSetU32":              func() { CosineSetU32(a, b) },
		"OverlapCoefficientU32":     func() { OverlapCoefficientU32(a, b) },
		"OverlapSizeU32":            func() { OverlapSizeU32(a, b) },
		"TverskyU32":                func() { TverskyU32(a, b, 0.5, 0.5) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestIntersectSortedU32Basics covers the deterministic corner cases the
// property tests may not hit.
func TestIntersectSortedU32Basics(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want int
	}{
		{nil, nil, 0},
		{[]uint32{1}, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 3},
		{[]uint32{1, 3, 5}, []uint32{2, 4, 6}, 0},
		{[]uint32{1, 2, 9}, []uint32{2, 9, 10}, 2},
	}
	for _, c := range cases {
		if got := IntersectSortedU32(c.a, c.b); got != c.want {
			t.Errorf("IntersectSortedU32(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := IntersectSortedU32Bounded([]uint32{1, 2}, []uint32{3, 4}, 2); got != -1 {
		t.Errorf("bounded intersect should early-exit, got %d", got)
	}
}
