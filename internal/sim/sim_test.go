package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLevenshteinDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"héllo", "hello", 1},
	}
	for _, c := range cases {
		if got := LevenshteinDistance(c.a, c.b); got != c.want {
			t.Errorf("lev(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if !almost(Levenshtein("", ""), 1) {
		t.Error("empty strings should be identical")
	}
	if !almost(Levenshtein("abc", "abc"), 1) {
		t.Error("equal strings should score 1")
	}
	if !almost(Levenshtein("abcd", "abce"), 0.75) {
		t.Errorf("got %v", Levenshtein("abcd", "abce"))
	}
}

func TestHamming(t *testing.T) {
	if got := HammingDistance("karolin", "kathrin"); got != 3 {
		t.Errorf("hamming = %d, want 3", got)
	}
	if got := HammingDistance("abc", "abcde"); got != 2 {
		t.Errorf("unequal lengths: %d, want 2", got)
	}
	if !almost(Hamming("", ""), 1) {
		t.Error("empty = 1")
	}
}

func TestJaro(t *testing.T) {
	// Classic textbook values.
	if got := Jaro("MARTHA", "MARHTA"); !almost(got, 0.944444444444444) {
		t.Errorf("jaro(MARTHA,MARHTA) = %v", got)
	}
	if got := Jaro("DIXON", "DICKSONX"); math.Abs(got-0.7667) > 0.001 {
		t.Errorf("jaro(DIXON,DICKSONX) = %v", got)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Error("edge cases broken")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("disjoint strings should score 0")
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("MARTHA", "MARHTA"); !almost(got, 0.961111111111111) {
		t.Errorf("jw(MARTHA,MARHTA) = %v", got)
	}
	// Winkler boost only helps shared prefixes.
	if JaroWinkler("abcdef", "abcxyz") <= Jaro("abcdef", "abcxyz") {
		t.Error("prefix boost missing")
	}
	if got := JaroWinkler("x", "x"); !almost(got, 1) {
		t.Errorf("identical = %v", got)
	}
}

func TestNeedlemanWunsch(t *testing.T) {
	if s := NeedlemanWunschScore("abc", "abc", 1, -1, -0.5); !almost(s, 3) {
		t.Errorf("identical score = %v", s)
	}
	if NeedlemanWunsch("", "") != 1 {
		t.Error("empty = 1")
	}
	if NeedlemanWunsch("abc", "abc") != 1 {
		t.Error("identical normalized = 1")
	}
	if got := NeedlemanWunsch("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestSmithWaterman(t *testing.T) {
	// Local alignment finds the common substring.
	if s := SmithWatermanScore("xxxhelloyyy", "zzhellozz", 1, -1, -0.5); !almost(s, 5) {
		t.Errorf("local score = %v, want 5", s)
	}
	if SmithWaterman("", "") != 1 || SmithWaterman("a", "") != 0 {
		t.Error("edge cases broken")
	}
	if !almost(SmithWaterman("hello", "hello"), 1) {
		t.Error("identical = 1")
	}
}

func TestAffineGap(t *testing.T) {
	// One long gap should cost less than many scattered gaps.
	long := AffineGapScore("abcdefgh", "abgh", 1, -1, -1, -0.25)
	if long <= 0 {
		t.Errorf("contiguous-gap alignment score = %v, want > 0", long)
	}
	if !almost(AffineGap("same", "same"), 1) {
		t.Error("identical = 1")
	}
	if AffineGap("", "") != 1 || AffineGap("a", "") != 0 {
		t.Error("edge cases broken")
	}
}

func TestExactMatch(t *testing.T) {
	if ExactMatch("a", "a") != 1 || ExactMatch("a", "b") != 0 {
		t.Error("exact match broken")
	}
}

func tk(s string) []string { return strings.Fields(s) }

func TestJaccard(t *testing.T) {
	if !almost(Jaccard(tk("a b c"), tk("b c d")), 0.5) {
		t.Error("jaccard of {a,b,c},{b,c,d} should be 0.5")
	}
	if Jaccard(nil, nil) != 1 {
		t.Error("empty sets = 1")
	}
	if Jaccard(tk("a"), nil) != 0 {
		t.Error("one empty = 0")
	}
	// Duplicates are set-collapsed.
	if !almost(Jaccard(tk("a a b"), tk("a b")), 1) {
		t.Error("duplicate collapse broken")
	}
}

func TestDiceOverlapCosine(t *testing.T) {
	a, b := tk("a b c"), tk("b c d")
	if !almost(Dice(a, b), 2.0*2/6) {
		t.Errorf("dice = %v", Dice(a, b))
	}
	if !almost(OverlapCoefficient(a, b), 2.0/3) {
		t.Errorf("overlap = %v", OverlapCoefficient(a, b))
	}
	if OverlapSize(a, b) != 2 {
		t.Errorf("overlap size = %d", OverlapSize(a, b))
	}
	if !almost(CosineSet(a, b), 2.0/3) {
		t.Errorf("cosine = %v", CosineSet(a, b))
	}
	if OverlapCoefficient(nil, nil) != 1 || OverlapCoefficient(tk("a"), nil) != 0 {
		t.Error("overlap edges broken")
	}
	if CosineSet(nil, nil) != 1 || CosineSet(tk("a"), nil) != 0 {
		t.Error("cosine edges broken")
	}
}

func TestTversky(t *testing.T) {
	a, b := tk("a b c"), tk("b c d")
	if !almost(Tversky(a, b, 0.5, 0.5), Dice(a, b)) {
		t.Error("tversky(0.5,0.5) should equal dice")
	}
	if !almost(Tversky(a, b, 1, 1), Jaccard(a, b)) {
		t.Error("tversky(1,1) should equal jaccard")
	}
	if Tversky(nil, nil, 1, 1) != 1 {
		t.Error("empty = 1")
	}
}

func TestMongeElkan(t *testing.T) {
	a := tk("comput sci dept")
	b := tk("computer science department")
	got := MongeElkan(a, b, JaroWinkler)
	if got < 0.85 {
		t.Errorf("monge-elkan of abbreviations = %v, want high", got)
	}
	if MongeElkan(nil, nil, JaroWinkler) != 1 {
		t.Error("empty = 1")
	}
	if MongeElkan(tk("a"), nil, JaroWinkler) != 0 {
		t.Error("one-empty = 0")
	}
	s := MongeElkanSym(a, b, JaroWinkler)
	if s <= 0 || s > 1 {
		t.Errorf("sym out of range: %v", s)
	}
}

func TestGeneralizedJaccard(t *testing.T) {
	a := tk("david smith")
	b := tk("dave smith")
	gj := GeneralizedJaccard(a, b, JaroWinkler, 0.8)
	plain := Jaccard(a, b)
	if gj <= plain {
		t.Errorf("generalized jaccard %v should beat plain %v on near-tokens", gj, plain)
	}
	if GeneralizedJaccard(nil, nil, JaroWinkler, 0.8) != 1 {
		t.Error("empty = 1")
	}
	if GeneralizedJaccard(tk("zzz"), tk("qqq"), JaroWinkler, 0.9) != 0 {
		t.Error("no pair above threshold = 0")
	}
}

func TestTFIDF(t *testing.T) {
	docs := [][]string{
		tk("acme corp madison"),
		tk("acme inc chicago"),
		tk("globex corp madison"),
		tk("initech llc austin"),
	}
	c := NewCorpus(docs)
	if c.Docs() != 4 {
		t.Fatalf("docs = %d", c.Docs())
	}
	// "acme" (df 2) should outweigh "madison" (df 2) equally, but "corp"
	// appears twice, "llc" once — rarer tokens get larger idf.
	if c.IDF("llc") <= c.IDF("corp") {
		t.Error("rarer token should have higher idf")
	}
	same := c.TFIDF(docs[0], docs[0])
	if !almost(same, 1) {
		t.Errorf("self similarity = %v", same)
	}
	cross := c.TFIDF(docs[0], docs[3])
	if cross != 0 {
		t.Errorf("disjoint docs = %v", cross)
	}
	if c.TFIDF(nil, nil) != 1 {
		t.Error("empty = 1")
	}
	mid := c.TFIDF(docs[0], docs[1])
	if mid <= 0 || mid >= 1 {
		t.Errorf("partial overlap = %v, want (0,1)", mid)
	}
}

func TestSoftTFIDF(t *testing.T) {
	docs := [][]string{
		tk("mississippi dept of revenue"),
		tk("missisippi department of revenue"),
	}
	c := NewCorpus(docs)
	hard := c.TFIDF(docs[0], docs[1])
	soft := c.SoftTFIDF(docs[0], docs[1], JaroWinkler, 0.85)
	if soft <= hard {
		t.Errorf("soft tfidf %v should beat hard %v on typos", soft, hard)
	}
	if soft > 1 {
		t.Errorf("soft tfidf %v exceeds 1", soft)
	}
	if c.SoftTFIDF(nil, nil, JaroWinkler, 0.9) != 1 {
		t.Error("empty = 1")
	}
	if c.SoftTFIDF(tk("a"), nil, JaroWinkler, 0.9) != 0 {
		t.Error("one-empty = 0")
	}
}

func TestCorpusAddDoc(t *testing.T) {
	c := NewCorpus(nil)
	if c.IDF("x") != 0 {
		t.Error("empty corpus idf should be 0")
	}
	c.AddDoc(tk("x y"))
	c.AddDoc(tk("x z"))
	if c.Docs() != 2 {
		t.Errorf("docs = %d", c.Docs())
	}
	if c.IDF("x") >= c.IDF("y") {
		t.Error("df=2 token should have lower idf than df=1")
	}
}

func TestSoundex(t *testing.T) {
	cases := map[string]string{
		"Robert":   "R163",
		"Rupert":   "R163",
		"Ashcraft": "A261", // h is transparent
		"Ashcroft": "A261",
		"Tymczak":  "T522",
		"Pfister":  "P236",
		"Honeyman": "H555",
		"":         "",
		"123":      "",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("soundex(%q) = %q, want %q", in, got, want)
		}
	}
	if SoundexSim("Robert", "Rupert") != 1 {
		t.Error("phonetic twins should match")
	}
	if SoundexSim("Robert", "Smith") != 0 {
		t.Error("distinct names should not match")
	}
	if SoundexSim("", "x") != 0 {
		t.Error("empty encodes to no match")
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func{F: ExactMatch, N: "exact"}
	if f.Sim("a", "a") != 1 || f.Name() != "exact" {
		t.Error("Func adapter broken")
	}
}

// Properties over random strings: range, symmetry, identity.

func TestSimilarityRangeProperty(t *testing.T) {
	sims := []func(a, b string) float64{Levenshtein, Jaro, JaroWinkler, Hamming, NeedlemanWunsch, SmithWaterman, AffineGap}
	f := func(a, b string) bool {
		for _, s := range sims {
			v := s(a, b)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilaritySymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return almost(Levenshtein(a, b), Levenshtein(b, a)) &&
			almost(Jaro(a, b), Jaro(b, a)) &&
			almost(Hamming(a, b), Hamming(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarityIdentityProperty(t *testing.T) {
	f := func(a string) bool {
		return almost(Levenshtein(a, a), 1) && almost(Jaro(a, a), 1) &&
			almost(JaroWinkler(a, a), 1) && almost(Hamming(a, a), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetSimRangeProperty(t *testing.T) {
	f := func(a, b []string) bool {
		for _, v := range []float64{Jaccard(a, b), Dice(a, b), OverlapCoefficient(a, b), CosineSet(a, b)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardTriangleWithDice(t *testing.T) {
	// For any pair, jaccard <= dice (algebraic identity j = d/(2-d)).
	f := func(a, b []string) bool {
		return Jaccard(a, b) <= Dice(a, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
