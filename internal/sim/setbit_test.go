package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/intern"
)

// genIDSet draws a sorted duplicate-free ID set that exercises both
// container shapes: sparse array blocks and (occasionally) dense bitmap
// blocks past the 64k boundary.
func genIDSet(rng *rand.Rand) []uint32 {
	var ids []uint32
	n := rng.Intn(60)
	if rng.Intn(8) == 0 {
		n = bitvec.ArrayMaxCard + 1 + rng.Intn(500) // force a bitmap container
	}
	for k := 0; k < n; k++ {
		ids = append(ids, uint32(rng.Intn(3<<16)))
	}
	return intern.SortedDedup(ids)
}

// TestQuickBitsKernelsMatchU32 is the equivalence oracle of the dense-set
// kernels: every *Bits measure must agree bit for bit with its merge-based
// *U32 counterpart on the same members, including empty sets and sets
// spanning the 64k container boundary.
func TestQuickBitsKernelsMatchU32(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prop := func() bool {
		a, b := genIDSet(rng), genIDSet(rng)
		sa, sb := bitvec.FromSorted(a), bitvec.FromSorted(b)
		for _, tc := range []struct {
			name      string
			want, got float64
		}{
			{"jaccard", JaccardU32(a, b), JaccardBits(sa, sb)},
			{"dice", DiceU32(a, b), DiceBits(sa, sb)},
			{"cosine", CosineSetU32(a, b), CosineSetBits(sa, sb)},
			{"overlap_coefficient", OverlapCoefficientU32(a, b), OverlapCoefficientBits(sa, sb)},
			{"overlap_size", float64(OverlapSizeU32(a, b)), float64(OverlapSizeBits(sa, sb))},
			{"tversky", TverskyU32(a, b, 0.3, 0.9), TverskyBits(sa, sb, 0.3, 0.9)},
		} {
			if tc.got != tc.want {
				t.Errorf("%s: bits %v != u32 %v (|a|=%d |b|=%d)", tc.name, tc.got, tc.want, len(a), len(b))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestBitsKernelsEmpty pins the degenerate-input conventions shared with
// the U32 kernels.
func TestBitsKernelsEmpty(t *testing.T) {
	e := bitvec.FromSorted(nil)
	x := bitvec.FromSorted([]uint32{1, 2, 3})
	if got := JaccardBits(e, e); got != 1 {
		t.Errorf("JaccardBits(∅,∅) = %v, want 1", got)
	}
	if got := CosineSetBits(e, x); got != 0 {
		t.Errorf("CosineSetBits(∅,x) = %v, want 0", got)
	}
	if got := OverlapCoefficientBits(e, x); got != 0 {
		t.Errorf("OverlapCoefficientBits(∅,x) = %v, want 0", got)
	}
}

// TestBitsKernelsZeroAlloc guards the dense-set kernels' allocation-free
// contract, mirroring the U32 guards.
func TestBitsKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a, b := genIDSet(rng), genIDSet(rng)
	sa, sb := bitvec.FromSorted(a), bitvec.FromSorted(b)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"JaccardBits", func() { JaccardBits(sa, sb) }},
		{"DiceBits", func() { DiceBits(sa, sb) }},
		{"CosineSetBits", func() { CosineSetBits(sa, sb) }},
		{"OverlapCoefficientBits", func() { OverlapCoefficientBits(sa, sb) }},
		{"OverlapSizeBits", func() { OverlapSizeBits(sa, sb) }},
		{"TverskyBits", func() { TverskyBits(sa, sb, 0.5, 0.5) }},
	} {
		if allocs := testing.AllocsPerRun(20, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per run, want 0", tc.name, allocs)
		}
	}
}
