// Package intern maps string tokens to dense uint32 IDs so the set-similarity
// hot paths (package sim's integer kernels, package simjoin's postings lists,
// package feature's per-row tokenization cache) can run merge-based integer
// comparisons instead of hashing strings per pair.
//
// ID assignment is deterministic: a Dict hands out IDs in first-intern order,
// so the same token stream always produces the same IDs. FrequencyRemap then
// reorders IDs by ascending frequency (ties broken by the lower original ID),
// which is the global ordering prefix-filter joins need: once a record's IDs
// are remapped and sorted ascending, its rarest tokens come first.
package intern

import (
	"slices"
	"sort"
)

// Dict assigns dense uint32 IDs to token strings in first-intern order. The
// zero value is not usable; call NewDict. A Dict is not safe for concurrent
// mutation — intern everything up front, then share the built dictionary
// read-only across goroutines (the DESIGN.md §5 convention).
type Dict struct {
	ids  map[string]uint32
	toks []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Len returns the number of distinct tokens interned so far.
func (d *Dict) Len() int { return len(d.toks) }

// Intern returns the ID of tok, assigning the next dense ID on first sight.
func (d *Dict) Intern(tok string) uint32 {
	if id, ok := d.ids[tok]; ok {
		return id
	}
	id := uint32(len(d.toks))
	d.ids[tok] = id
	d.toks = append(d.toks, tok)
	return id
}

// Lookup returns the ID of tok without interning it.
//
//emlint:zeroalloc
//emlint:hotpath
func (d *Dict) Lookup(tok string) (uint32, bool) {
	id, ok := d.ids[tok]
	return id, ok
}

// Token returns the string for an ID previously returned by Intern.
//
//emlint:zeroalloc
//emlint:hotpath
func (d *Dict) Token(id uint32) string { return d.toks[id] }

// InternTokens interns every token and returns the IDs in token order
// (duplicates preserved).
func (d *Dict) InternTokens(toks []string) []uint32 {
	out := make([]uint32, len(toks))
	for i, t := range toks {
		out[i] = d.Intern(t)
	}
	return out
}

// SortedSet interns toks and returns the ascending, duplicate-free ID set.
// The result is never nil, so callers can use nil to mean "no value" (the
// feature cache marks nulls that way).
func (d *Dict) SortedSet(toks []string) []uint32 {
	return SortedDedup(d.InternTokens(toks))
}

// SortedSetEphemeral returns the ascending, duplicate-free ID set of toks
// without mutating the dictionary: known tokens map to their interned IDs,
// and each distinct unknown token is assigned an ephemeral ID Len()+k in
// first-appearance order. Ephemeral IDs are disjoint from every interned
// ID, so set-size arithmetic (Jaccard/Dice denominators) over a mix of
// corpus and query sets stays exact — which is what lets a read-locked
// MatchOne featurize a query record that carries never-before-seen tokens.
// The result is never nil.
func (d *Dict) SortedSetEphemeral(toks []string) []uint32 {
	out := make([]uint32, 0, len(toks))
	var eph map[string]uint32
	for _, t := range toks {
		if id, ok := d.ids[t]; ok {
			out = append(out, id)
			continue
		}
		if id, ok := eph[t]; ok {
			out = append(out, id)
			continue
		}
		if eph == nil {
			eph = make(map[string]uint32)
		}
		id := uint32(len(d.toks) + len(eph))
		eph[t] = id
		out = append(out, id)
	}
	return SortedDedup(out)
}

// SortedDedup sorts ids in place and drops duplicates, returning the
// shortened slice (which aliases ids). The result is never nil.
//
//emlint:zeroalloc
func SortedDedup(ids []uint32) []uint32 {
	if ids == nil {
		return []uint32{}
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// FrequencyRemap returns a remapping of the dense ID space [0, len(freq))
// ordered by ascending frequency, ties broken by the lower original ID:
// remap[old] = new. Applying it to every record and re-sorting puts each
// record's rarest tokens first — the canonical order of the prefix-filter
// joins. The remap depends only on freq, so it is deterministic.
func FrequencyRemap(freq []int) []uint32 {
	perm := make([]uint32, len(freq)) // new ID -> old ID
	for i := range perm {
		perm[i] = uint32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		fa, fb := freq[perm[a]], freq[perm[b]]
		if fa != fb {
			return fa < fb
		}
		return perm[a] < perm[b]
	})
	remap := make([]uint32, len(freq))
	for newID, oldID := range perm {
		remap[oldID] = uint32(newID)
	}
	return remap
}
