package intern

import "sync/atomic"

// SnapDict is a single-writer dictionary whose read side is a lock-free
// open-addressing table. One goroutine (the owner) calls Intern; any number
// of goroutines may concurrently resolve tokens through a View captured at a
// publication point. This is the dictionary behind the serving corpus
// snapshots (DESIGN.md §13): the writer interns while queries run, and each
// published snapshot carries a View that sees exactly the tokens interned
// before the snapshot was built.
//
// The zero value is not usable; call NewSnapDict.
type SnapDict struct {
	ids  map[string]uint32 // writer-private
	toks []string          // writer-private
	tbl  atomic.Pointer[lfTable]
	n    atomic.Uint32 // tokens fully inserted into tbl
}

// lfTable is an open-addressing hash table with linear probing. Slots
// transition nil -> *lfEntry exactly once and entries are immutable, so
// readers only ever observe a slot as empty or as a finished entry. The
// single writer keeps the load factor at or below 1/2 and grows by building
// a fresh table, so probe chains are bounded and never relink.
type lfTable struct {
	mask  uint32
	slots []atomic.Pointer[lfEntry]
}

type lfEntry struct {
	tok string
	id  uint32
}

// View is a frozen read handle over a SnapDict: the table pointer and the
// number of tokens interned at capture time. Entries with id >= n were
// interned after the capture and are reported as unknown, so a View behaves
// exactly like an immutable dictionary of its first n tokens even while the
// writer keeps interning into the shared table. The zero View is a valid
// empty dictionary.
type View struct {
	tbl *lfTable
	n   uint32
}

const snapDictMinTable = 64

// NewSnapDict returns an empty single-writer dictionary.
func NewSnapDict() *SnapDict {
	d := &SnapDict{ids: make(map[string]uint32)}
	t := &lfTable{mask: snapDictMinTable - 1, slots: make([]atomic.Pointer[lfEntry], snapDictMinTable)}
	d.tbl.Store(t)
	return d
}

// Len returns the number of distinct tokens interned so far. Writer-side
// only; readers use View.Len.
func (d *SnapDict) Len() int { return len(d.toks) }

// Token returns the string for an ID previously returned by Intern.
// Writer-side only.
func (d *SnapDict) Token(id uint32) string { return d.toks[id] }

// Intern returns the ID of tok, assigning the next dense ID on first sight.
// Must be called from the single owner goroutine only.
func (d *SnapDict) Intern(tok string) uint32 {
	if id, ok := d.ids[tok]; ok {
		return id
	}
	id := uint32(len(d.toks))
	d.ids[tok] = id
	d.toks = append(d.toks, tok)
	t := d.tbl.Load()
	if uint64(len(d.toks))*2 > uint64(len(t.slots)) {
		t = d.grow(t)
	}
	t.insert(&lfEntry{tok: tok, id: id})
	d.n.Store(uint32(len(d.toks)))
	return id
}

// InternTokens interns every token and returns the IDs in token order
// (duplicates preserved).
func (d *SnapDict) InternTokens(toks []string) []uint32 {
	out := make([]uint32, len(toks))
	for i, t := range toks {
		out[i] = d.Intern(t)
	}
	return out
}

// SortedSet interns toks and returns the ascending, duplicate-free ID set.
// The result is never nil.
func (d *SnapDict) SortedSet(toks []string) []uint32 {
	return SortedDedup(d.InternTokens(toks))
}

// View captures a frozen read handle over the tokens interned so far. The
// returned View is safe to use concurrently with further Intern calls.
//
// Capture order matters: n is loaded before the table pointer, so the table
// the View holds is the same generation or newer than the count — and a
// newer table always contains every entry of the older one.
func (d *SnapDict) View() View {
	n := d.n.Load()
	return View{tbl: d.tbl.Load(), n: n}
}

// grow builds a table of twice the size holding every current entry, then
// publishes it. Old views keep their old table, which stops receiving
// writes; every token those views may legally resolve (id < view.n) was
// already in it.
func (d *SnapDict) grow(old *lfTable) *lfTable {
	size := uint32(len(old.slots)) * 2
	t := &lfTable{mask: size - 1, slots: make([]atomic.Pointer[lfEntry], size)}
	for i := range old.slots {
		if e := old.slots[i].Load(); e != nil {
			t.insert(e)
		}
	}
	d.tbl.Store(t)
	return t
}

// insert stores e in the first free slot of its probe chain. Single writer:
// no CAS needed, but the store is atomic so concurrent readers never see a
// torn slot.
func (t *lfTable) insert(e *lfEntry) {
	i := hashToken(e.tok) & t.mask
	for {
		if t.slots[i].Load() == nil {
			t.slots[i].Store(e)
			return
		}
		i = (i + 1) & t.mask
	}
}

// hashToken is 32-bit FNV-1a.
//
//emlint:zeroalloc
//emlint:hotpath
func hashToken(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Len returns the number of tokens the view can resolve.
func (v View) Len() int { return int(v.n) }

// Lookup returns the ID of tok if it was interned before the view was
// captured. Tokens interned after the capture point are reported unknown,
// which keeps every resolvable ID strictly below v.n — the invariant the
// serving snapshots rely on to bound postings reads.
//
//emlint:zeroalloc
func (v View) Lookup(tok string) (uint32, bool) {
	if v.tbl == nil {
		return 0, false
	}
	i := hashToken(tok) & v.tbl.mask
	for {
		e := v.tbl.slots[i].Load()
		if e == nil {
			return 0, false
		}
		if e.tok == tok {
			if e.id < v.n {
				return e.id, true
			}
			return 0, false
		}
		i = (i + 1) & v.tbl.mask
	}
}

// SortedSetEphemeral returns the ascending, duplicate-free ID set of toks
// without touching the dictionary: known tokens (interned before the view)
// map to their IDs, and each distinct unknown token gets an ephemeral ID
// v.n+k in first-appearance order. Ephemeral IDs are disjoint from every
// ID the view can resolve, so set-size arithmetic over a mix of corpus and
// query sets stays exact — the same contract as Dict.SortedSetEphemeral,
// minus any lock. The result is never nil.
func (v View) SortedSetEphemeral(toks []string) []uint32 {
	out := make([]uint32, 0, len(toks))
	var eph map[string]uint32
	for _, t := range toks {
		if id, ok := v.Lookup(t); ok {
			out = append(out, id)
			continue
		}
		if id, ok := eph[t]; ok {
			out = append(out, id)
			continue
		}
		if eph == nil {
			eph = make(map[string]uint32)
		}
		id := v.n + uint32(len(eph))
		eph[t] = id
		out = append(out, id)
	}
	return SortedDedup(out)
}
