package intern

import (
	"reflect"
	"testing"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Intern("acme")
	b := d.Intern("corp")
	if a != 0 || b != 1 {
		t.Fatalf("IDs not dense/first-intern ordered: %d %d", a, b)
	}
	if got := d.Intern("acme"); got != a {
		t.Errorf("re-intern changed ID: %d != %d", got, a)
	}
	if d.Token(a) != "acme" || d.Token(b) != "corp" {
		t.Errorf("Token round trip failed")
	}
	if id, ok := d.Lookup("corp"); !ok || id != b {
		t.Errorf("Lookup(corp) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Error("Lookup of uninterned token succeeded")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDictDeterministicAssignment(t *testing.T) {
	toks := []string{"c", "a", "b", "a", "c", "d"}
	d1, d2 := NewDict(), NewDict()
	if !reflect.DeepEqual(d1.InternTokens(toks), d2.InternTokens(toks)) {
		t.Fatal("same token stream produced different IDs")
	}
}

func TestSortedSet(t *testing.T) {
	d := NewDict()
	got := d.SortedSet([]string{"b", "a", "b", "c", "a"})
	// IDs: b=0 a=1 c=2; sorted deduped -> [0 1 2]
	if !reflect.DeepEqual(got, []uint32{0, 1, 2}) {
		t.Errorf("SortedSet = %v", got)
	}
	if got := d.SortedSet(nil); got == nil || len(got) != 0 {
		t.Errorf("SortedSet(nil) = %#v, want non-nil empty", got)
	}
}

func TestSortedDedup(t *testing.T) {
	got := SortedDedup([]uint32{5, 1, 5, 3, 1})
	if !reflect.DeepEqual(got, []uint32{1, 3, 5}) {
		t.Errorf("SortedDedup = %v", got)
	}
	if got := SortedDedup(nil); got == nil || len(got) != 0 {
		t.Errorf("SortedDedup(nil) = %#v, want non-nil empty", got)
	}
}

func TestFrequencyRemap(t *testing.T) {
	// freq by old ID: 0->3, 1->1, 2->1, 3->2. Ascending frequency with
	// old-ID tie-break orders old IDs 1,2,3,0 -> new IDs 0,1,2,3.
	remap := FrequencyRemap([]int{3, 1, 1, 2})
	want := []uint32{3, 0, 1, 2}
	if !reflect.DeepEqual(remap, want) {
		t.Errorf("FrequencyRemap = %v, want %v", remap, want)
	}
}

// TestSortedSetEphemeral: known tokens map to their interned IDs, unknown
// tokens get stable per-call ephemeral IDs past Len() — and the dictionary
// itself never changes (the read-locked MatchOne contract).
func TestSortedSetEphemeral(t *testing.T) {
	d := NewDict()
	d.Intern("acme") // 0
	d.Intern("corp") // 1
	before := d.Len()
	got := d.SortedSetEphemeral([]string{"zeta", "acme", "zeta", "omega", "corp"})
	// acme=0 corp=1, zeta=ephemeral 2 (first unknown), omega=ephemeral 3.
	want := []uint32{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedSetEphemeral = %v, want %v", got, want)
	}
	if d.Len() != before {
		t.Fatalf("dictionary grew from %d to %d tokens — ephemeral interning must not mutate", before, d.Len())
	}
	if _, ok := d.Lookup("zeta"); ok {
		t.Fatal("ephemeral token leaked into the dictionary")
	}
	// All-known inputs agree with SortedSet exactly.
	if got := d.SortedSetEphemeral([]string{"corp", "acme", "corp"}); !reflect.DeepEqual(got, []uint32{0, 1}) {
		t.Fatalf("all-known ephemeral set = %v, want [0 1]", got)
	}
	// Never nil, even for empty input.
	if got := d.SortedSetEphemeral(nil); got == nil || len(got) != 0 {
		t.Fatalf("empty input = %#v, want non-nil empty set", got)
	}
}

// TestInternKernelsZeroAlloc pins the allocation-free contract of the
// read-side dictionary operations and the in-place dedup.
func TestInternKernelsZeroAlloc(t *testing.T) {
	d := NewDict()
	d.InternTokens([]string{"acme", "widgets", "madison"})
	scratch := []uint32{2, 0, 1, 1, 2}
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Lookup", func() { d.Lookup("widgets") }},
		{"Token", func() { d.Token(1) }},
		{"SortedDedup", func() { SortedDedup(scratch) }},
	} {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per run, want 0", tc.name, allocs)
		}
	}
}
