package intern

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// TestSnapDictMatchesDict drives a SnapDict and a Dict with the same random
// token stream and checks that interning, lookups through a fresh view, and
// ephemeral set construction agree exactly.
func TestSnapDictMatchesDict(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDict()
		sd := NewSnapDict()
		vocab := make([]string, 200)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("tok%03d", rng.Intn(300))
		}
		for _, tok := range vocab {
			if d.Intern(tok) != sd.Intern(tok) {
				return false
			}
		}
		if d.Len() != sd.Len() {
			return false
		}
		v := sd.View()
		if v.Len() != d.Len() {
			return false
		}
		for i := 0; i < 100; i++ {
			tok := fmt.Sprintf("tok%03d", rng.Intn(600)) // half unknown
			wantID, wantOK := d.Lookup(tok)
			gotID, gotOK := v.Lookup(tok)
			if wantOK != gotOK || (wantOK && wantID != gotID) {
				return false
			}
		}
		for i := 0; i < 20; i++ {
			q := make([]string, rng.Intn(12))
			for j := range q {
				q[j] = fmt.Sprintf("tok%03d", rng.Intn(600))
			}
			if !reflect.DeepEqual(d.SortedSetEphemeral(q), v.SortedSetEphemeral(q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapDictViewFrozen checks that a view keeps answering from its capture
// point: tokens interned after the capture stay unknown even though they are
// in the shared table.
func TestSnapDictViewFrozen(t *testing.T) {
	sd := NewSnapDict()
	sd.Intern("a")
	sd.Intern("b")
	v := sd.View()
	sd.Intern("c")
	if id, ok := v.Lookup("b"); !ok || id != 1 {
		t.Fatalf("Lookup(b) = %d,%v, want 1,true", id, ok)
	}
	if _, ok := v.Lookup("c"); ok {
		t.Fatal("view resolved a token interned after capture")
	}
	// Ephemeral IDs start at the view's n, not the dict's current size.
	got := v.SortedSetEphemeral([]string{"c", "a"})
	want := []uint32{0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedSetEphemeral = %v, want %v", got, want)
	}
	if _, ok := sd.View().Lookup("c"); !ok {
		t.Fatal("fresh view missing token c")
	}
}

// TestSnapDictGrowth forces several table doublings and checks every token
// still resolves through old and new views.
func TestSnapDictGrowth(t *testing.T) {
	sd := NewSnapDict()
	const n = 10_000
	early := View{}
	for i := 0; i < n; i++ {
		sd.Intern(fmt.Sprintf("tok-%d", i))
		if i == 99 {
			early = sd.View()
		}
	}
	v := sd.View()
	if v.Len() != n {
		t.Fatalf("view Len = %d, want %d", v.Len(), n)
	}
	for i := 0; i < n; i++ {
		tok := fmt.Sprintf("tok-%d", i)
		if id, ok := v.Lookup(tok); !ok || id != uint32(i) {
			t.Fatalf("Lookup(%q) = %d,%v, want %d,true", tok, id, ok, i)
		}
		wantOK := i < 100
		if _, ok := early.Lookup(tok); ok != wantOK {
			t.Fatalf("early.Lookup(%q) ok = %v, want %v", tok, ok, wantOK)
		}
	}
}

// TestSnapDictZeroAllocKernels pins the //emlint:zeroalloc contract on the
// view read path.
func TestSnapDictZeroAllocKernels(t *testing.T) {
	sd := NewSnapDict()
	for i := 0; i < 100; i++ {
		sd.Intern(fmt.Sprintf("tok-%d", i))
	}
	v := sd.View()
	if allocs := testing.AllocsPerRun(100, func() {
		_ = hashToken("tok-42")
		if _, ok := v.Lookup("tok-42"); !ok {
			t.Error("tok-42 should resolve")
		}
		if _, ok := v.Lookup("no-such-token"); ok {
			t.Error("unexpected hit")
		}
	}); allocs != 0 {
		t.Fatalf("view read path allocs = %v, want 0", allocs)
	}
}

// TestSnapDictConcurrentReaders hammers views from several goroutines while
// the single writer keeps interning (and therefore growing the table). Run
// with -race this is the memory-model check for the lock-free read path.
func TestSnapDictConcurrentReaders(t *testing.T) {
	sd := NewSnapDict()
	const total = 5_000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := sd.View()
				n := v.Len()
				// Every token below the capture point must resolve to its
				// dense ID; a token at or above it must be unknown.
				for probe := 0; probe < 32; probe++ {
					i := rng.Intn(total)
					id, ok := v.Lookup(fmt.Sprintf("tok-%d", i))
					if i < n {
						if !ok || id != uint32(i) {
							t.Errorf("view(n=%d): Lookup(tok-%d) = %d,%v", n, i, id, ok)
							return
						}
					} else if ok {
						t.Errorf("view(n=%d): resolved future token tok-%d", n, i)
						return
					}
				}
			}
		}(r)
	}
	for i := 0; i < total; i++ {
		sd.Intern(fmt.Sprintf("tok-%d", i))
	}
	close(stop)
	wg.Wait()
}
