package label

import (
	"errors"
	"sync"
)

// ErrBudgetExhausted is returned through Budgeted.Exhausted after the
// question budget runs out; further Label calls answer false without
// consulting the wrapped labeler.
var ErrBudgetExhausted = errors.New("label: question budget exhausted")

// Budgeted caps the number of questions a labeler may be asked.
// CloudMatcher's deployments in Table 2 cap at 1200 questions; active
// learning loops wrap their labeler in a Budgeted to enforce that.
type Budgeted struct {
	inner Labeler
	// Max is the question budget.
	Max int

	mu        sync.Mutex
	asked     int
	exhausted bool
}

// NewBudgeted wraps inner with a budget of max questions.
func NewBudgeted(inner Labeler, max int) *Budgeted {
	return &Budgeted{inner: inner, Max: max}
}

// Label implements Labeler. Once the budget is spent it records exhaustion
// and answers false.
func (b *Budgeted) Label(lid, rid string) bool {
	b.mu.Lock()
	if b.asked >= b.Max {
		b.exhausted = true
		b.mu.Unlock()
		return false
	}
	b.asked++
	b.mu.Unlock()
	return b.inner.Label(lid, rid)
}

// Stats implements Labeler, delegating to the wrapped labeler.
func (b *Budgeted) Stats() Stats { return b.inner.Stats() }

// Remaining returns the unspent budget.
func (b *Budgeted) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.Max - b.asked
	if r < 0 {
		return 0
	}
	return r
}

// Exhausted reports whether a Label call was refused for lack of budget.
func (b *Budgeted) Exhausted() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.exhausted {
		return ErrBudgetExhausted
	}
	return nil
}
