package label

import (
	"testing"
	"time"
)

func gold() *Gold {
	return NewGold([][2]string{{"a1", "b1"}, {"a3", "b2"}})
}

func TestGold(t *testing.T) {
	g := gold()
	if !g.IsMatch("a1", "b1") || g.IsMatch("a1", "b2") {
		t.Error("gold lookup broken")
	}
	if g.Len() != 2 {
		t.Errorf("len = %d", g.Len())
	}
	g.Add("a9", "b9")
	if !g.IsMatch("a9", "b9") || g.Len() != 3 {
		t.Error("add broken")
	}
	if len(g.Pairs()) != 3 {
		t.Errorf("pairs = %v", g.Pairs())
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle(gold())
	if !o.Label("a1", "b1") || o.Label("a2", "b1") {
		t.Error("oracle answers wrong")
	}
	st := o.Stats()
	if st.Questions != 2 {
		t.Errorf("questions = %d", st.Questions)
	}
	if st.Elapsed != 10*time.Second {
		t.Errorf("elapsed = %v, want 10s at default rate", st.Elapsed)
	}
	if st.CostUSD != 0 {
		t.Errorf("oracle cost = %v, want 0 (single user)", st.CostUSD)
	}
	o2 := NewOracle(gold())
	o2.PerQuestion = time.Minute
	o2.Label("a1", "b1")
	if o2.Stats().Elapsed != time.Minute {
		t.Error("custom per-question time ignored")
	}
}

func TestNoisyUserZeroError(t *testing.T) {
	u := NewNoisyUser(gold(), 0, 1)
	for i := 0; i < 50; i++ {
		if !u.Label("a1", "b1") {
			t.Fatal("zero-error user flipped an answer")
		}
	}
}

func TestNoisyUserFlips(t *testing.T) {
	u := NewNoisyUser(gold(), 0.3, 42)
	flips := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if !u.Label("a1", "b1") {
			flips++
		}
	}
	rate := float64(flips) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("observed flip rate %.3f, want ~0.3", rate)
	}
	if u.Stats().Questions != n {
		t.Errorf("questions = %d", u.Stats().Questions)
	}
}

func TestNoisyUserDeterministic(t *testing.T) {
	u1 := NewNoisyUser(gold(), 0.5, 7)
	u2 := NewNoisyUser(gold(), 0.5, 7)
	for i := 0; i < 100; i++ {
		if u1.Label("a1", "b1") != u2.Label("a1", "b1") {
			t.Fatal("same seed diverged")
		}
	}
}

func TestCrowdMajorityBeatsWorkerError(t *testing.T) {
	// With 10% worker error and 3 workers, majority vote error is
	// ~2.8%; measure it.
	c := NewCrowd(gold(), 1)
	wrong := 0
	const n = 3000
	for i := 0; i < n; i++ {
		if !c.Label("a1", "b1") {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate > 0.06 {
		t.Errorf("crowd error rate %.3f, want < 0.06 (workers at 0.10)", rate)
	}
}

func TestCrowdCostModel(t *testing.T) {
	c := NewCrowd(gold(), 2)
	const n = 1200 // CloudMatcher's question cap
	for i := 0; i < n; i++ {
		c.Label("a1", "b1")
	}
	st := c.Stats()
	if st.Questions != n {
		t.Errorf("questions = %d", st.Questions)
	}
	// 1200 questions × 3 workers × $0.02 = $72, matching Table 2's "$72".
	if st.CostUSD < 71.99 || st.CostUSD > 72.01 {
		t.Errorf("cost = $%.2f, want $72", st.CostUSD)
	}
	// 1200 × 90 s = 30 h, inside Table 2's 22–36 h crowd window.
	if st.Elapsed < 22*time.Hour || st.Elapsed > 36*time.Hour {
		t.Errorf("elapsed = %v, want within 22h–36h", st.Elapsed)
	}
}

func TestCrowdCustomParameters(t *testing.T) {
	c := NewCrowd(gold(), 3)
	c.Workers = 5
	c.CostPerAnswer = 0.1
	c.Latency = time.Second
	c.Label("a1", "b1")
	st := c.Stats()
	if st.CostUSD != 0.5 {
		t.Errorf("cost = %v, want 0.5", st.CostUSD)
	}
	if st.Elapsed != time.Second {
		t.Errorf("elapsed = %v", st.Elapsed)
	}
}

func TestCrowdEvenWorkersTieIsNoMatch(t *testing.T) {
	c := NewCrowd(gold(), 4)
	c.Workers = 2
	c.WorkerError = 0 // both answer truthfully
	if !c.Label("a1", "b1") {
		t.Error("unanimous yes should be a match")
	}
	// For a non-match, unanimous no.
	if c.Label("a2", "b9") {
		t.Error("unanimous no should not be a match")
	}
}

func TestBudgeted(t *testing.T) {
	o := NewOracle(gold())
	b := NewBudgeted(o, 3)
	for i := 0; i < 3; i++ {
		b.Label("a1", "b1")
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d", b.Remaining())
	}
	if b.Exhausted() != nil {
		t.Error("budget not yet exceeded; Exhausted should be nil")
	}
	if b.Label("a1", "b1") {
		t.Error("over-budget Label must answer false")
	}
	if b.Exhausted() == nil {
		t.Error("want ErrBudgetExhausted after refusal")
	}
	if o.Stats().Questions != 3 {
		t.Errorf("inner labeler saw %d questions, want 3", o.Stats().Questions)
	}
	if b.Stats().Questions != 3 {
		t.Errorf("budgeted stats = %d", b.Stats().Questions)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Questions: 10, CostUSD: 1.5, Elapsed: 2 * time.Hour}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}
