// Package label simulates the human side of entity matching. The paper's
// tools require people — a single domain expert in PyMatcher, a lay user or
// a Mechanical Turk crowd in CloudMatcher — to answer "do these two tuples
// match?" questions. We cannot ship humans in a Go module, so this package
// substitutes configurable simulated labelers driven by a gold-truth
// oracle:
//
//   - Oracle       — perfect answers (an idealized expert),
//   - NoisyUser    — flips each answer with a given probability, modeling
//     the uncertain Vehicles expert of Table 2 who mislabeled pairs,
//   - Crowd        — N independent noisy workers per question combined by
//     majority vote, with per-answer monetary cost and latency, modeling
//     Mechanical Turk.
//
// Every labeler tracks questions asked, dollars spent, and simulated
// labeling time, which is exactly the data behind the Cost and Time columns
// of Table 2.
package label

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Gold is the ground-truth oracle: the set of truly matching id pairs.
type Gold struct {
	matches map[[2]string]bool
}

// NewGold builds a Gold from (lid, rid) match pairs.
func NewGold(pairs [][2]string) *Gold {
	g := &Gold{matches: make(map[[2]string]bool, len(pairs))}
	for _, p := range pairs {
		g.matches[p] = true
	}
	return g
}

// Add records one more true match.
func (g *Gold) Add(lid, rid string) { g.matches[[2]string{lid, rid}] = true }

// IsMatch reports the ground truth for a pair.
func (g *Gold) IsMatch(lid, rid string) bool { return g.matches[[2]string{lid, rid}] }

// Len returns the number of gold matches.
func (g *Gold) Len() int { return len(g.matches) }

// Pairs returns all gold match pairs, sorted so callers iterate the gold
// set in the same order every run.
func (g *Gold) Pairs() [][2]string {
	out := make([][2]string, 0, len(g.matches))
	for p := range g.matches {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Stats accumulates the cost of a labeling session.
type Stats struct {
	// Questions is the number of pairs labeled.
	Questions int
	// CostUSD is the simulated monetary cost (0 for a single user).
	CostUSD float64
	// Elapsed is the simulated wall-clock labeling time.
	Elapsed time.Duration
}

// String renders the stats in Table 2's units.
func (s Stats) String() string {
	return fmt.Sprintf("%d questions, $%.2f, %s", s.Questions, s.CostUSD, s.Elapsed.Round(time.Minute))
}

// Labeler answers match/no-match questions and meters its own effort.
// Implementations are safe for concurrent use.
type Labeler interface {
	// Label answers whether the pair matches.
	Label(lid, rid string) bool
	// Stats returns the session totals so far.
	Stats() Stats
}

// Oracle is a perfect labeler with configurable per-question time: the
// idealized single user of Table 2 whose labeling sessions took 9 minutes
// to 2 hours.
type Oracle struct {
	gold *Gold
	// PerQuestion is the simulated time per answer; 0 means 5 seconds,
	// the rate implied by Table 2's user-time column.
	PerQuestion time.Duration

	mu    sync.Mutex
	stats Stats
}

// NewOracle builds an Oracle over the gold truth.
func NewOracle(gold *Gold) *Oracle { return &Oracle{gold: gold} }

// Label implements Labeler.
func (o *Oracle) Label(lid, rid string) bool {
	o.mu.Lock()
	o.stats.Questions++
	o.stats.Elapsed += o.perQuestion()
	o.mu.Unlock()
	return o.gold.IsMatch(lid, rid)
}

func (o *Oracle) perQuestion() time.Duration {
	if o.PerQuestion <= 0 {
		return 5 * time.Second
	}
	return o.PerQuestion
}

// Stats implements Labeler.
func (o *Oracle) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// NoisyUser answers from gold truth but flips each answer independently
// with probability ErrorRate. It models the Table 2 "Vehicles" expert whose
// data was so incomplete that "even he was uncertain in many cases".
type NoisyUser struct {
	gold *Gold
	// ErrorRate is the per-answer flip probability in [0, 1).
	ErrorRate float64
	// PerQuestion is the simulated time per answer; 0 means 5 seconds.
	PerQuestion time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// NewNoisyUser builds a NoisyUser with a deterministic seed.
func NewNoisyUser(gold *Gold, errorRate float64, seed int64) *NoisyUser {
	return &NoisyUser{gold: gold, ErrorRate: errorRate, rng: rand.New(rand.NewSource(seed))}
}

// Label implements Labeler.
func (u *NoisyUser) Label(lid, rid string) bool {
	truth := u.gold.IsMatch(lid, rid)
	u.mu.Lock()
	defer u.mu.Unlock()
	u.stats.Questions++
	if u.PerQuestion > 0 {
		u.stats.Elapsed += u.PerQuestion
	} else {
		u.stats.Elapsed += 5 * time.Second
	}
	if u.rng.Float64() < u.ErrorRate {
		return !truth
	}
	return truth
}

// Stats implements Labeler.
func (u *NoisyUser) Stats() Stats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stats
}

// Crowd simulates a Mechanical Turk crowd: each question is answered by
// Workers independent labelers, each flipping the truth with WorkerError
// probability, combined by majority vote. Each answer costs CostPerAnswer
// dollars, and each question adds Latency of simulated wall-clock time
// (crowd rounds are serialized, matching the 22–36 hour turnarounds of
// Table 2).
type Crowd struct {
	gold *Gold
	// Workers answers per question; 0 means 3.
	Workers int
	// WorkerError is each worker's flip probability; default 0.1.
	WorkerError float64
	// CostPerAnswer in dollars; 0 means $0.02 (2¢ per HIT assignment).
	CostPerAnswer float64
	// Latency is simulated time per question; 0 means 90 seconds.
	Latency time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// NewCrowd builds a Crowd with a deterministic seed and default error rate
// 0.1.
func NewCrowd(gold *Gold, seed int64) *Crowd {
	return &Crowd{gold: gold, WorkerError: 0.1, rng: rand.New(rand.NewSource(seed))}
}

func (c *Crowd) workers() int {
	if c.Workers <= 0 {
		return 3
	}
	return c.Workers
}

func (c *Crowd) costPerAnswer() float64 {
	if c.CostPerAnswer <= 0 {
		return 0.02
	}
	return c.CostPerAnswer
}

func (c *Crowd) latency() time.Duration {
	if c.Latency <= 0 {
		return 90 * time.Second
	}
	return c.Latency
}

// Label implements Labeler.
func (c *Crowd) Label(lid, rid string) bool {
	truth := c.gold.IsMatch(lid, rid)
	c.mu.Lock()
	defer c.mu.Unlock()
	votes := 0
	n := c.workers()
	for w := 0; w < n; w++ {
		ans := truth
		if c.rng.Float64() < c.WorkerError {
			ans = !ans
		}
		if ans {
			votes++
		}
	}
	c.stats.Questions++
	c.stats.CostUSD += float64(n) * c.costPerAnswer()
	c.stats.Elapsed += c.latency()
	return votes*2 > n
}

// Stats implements Labeler.
func (c *Crowd) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
