// Package active implements the committee-based active learning at the
// heart of Falcon/CloudMatcher (Figure 3, steps 2 and 5). A random forest
// is trained on a small labeled seed; each round, the pairs on which the
// forest's trees disagree most (highest vote entropy) are sent to the
// labeler, and the forest is refit. Uncertainty sampling concentrates the
// lay user's scarce labels on the decision boundary, which is why
// CloudMatcher needs only 160–1200 questions per task (Table 2).
package active

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/label"
	"repro/internal/ml"
)

// Pool is the unlabeled example pool: one feature vector per candidate
// pair together with the pair ids used to phrase labeling questions.
type Pool struct {
	X     [][]float64
	LIDs  []string
	RIDs  []string
	Names []string // feature names (optional)
}

// Validate checks the pool's parallel slices agree.
func (p *Pool) Validate() error {
	if len(p.X) != len(p.LIDs) || len(p.X) != len(p.RIDs) {
		return fmt.Errorf("active: pool shape mismatch: %d vectors, %d/%d ids", len(p.X), len(p.LIDs), len(p.RIDs))
	}
	return nil
}

// Len returns the pool size.
func (p *Pool) Len() int { return len(p.X) }

// Config tunes the active-learning loop.
type Config struct {
	// SeedSize is the number of randomly chosen pairs labeled before the
	// first fit; 0 means 20.
	SeedSize int
	// BatchSize is the number of pairs labeled per round; 0 means 10.
	BatchSize int
	// MaxRounds bounds the number of query rounds; 0 means 20.
	MaxRounds int
	// Trees is the forest size; 0 means 10.
	Trees int
	// Alpha is the forest's match-vote fraction; 0 means 0.5.
	Alpha float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) seedSize() int {
	if c.SeedSize <= 0 {
		return 20
	}
	return c.SeedSize
}

func (c Config) batchSize() int {
	if c.BatchSize <= 0 {
		return 10
	}
	return c.BatchSize
}

func (c Config) maxRounds() int {
	if c.MaxRounds <= 0 {
		return 20
	}
	return c.MaxRounds
}

// Result is the outcome of an active-learning session.
type Result struct {
	// Forest is the final fitted model.
	Forest *ml.RandomForest
	// Labeled is the accumulated training set (one row per question).
	Labeled *ml.Dataset
	// Rounds is the number of query rounds executed after seeding.
	Rounds int
}

// Learn runs the active-learning loop over the pool, asking questions of
// the labeler. It stops early when the pool is exhausted, every remaining
// pair has zero committee entropy, or the labeler's budget runs out (when
// lab is a *label.Budgeted).
func Learn(pool *Pool, lab label.Labeler, cfg Config) (*Result, error) {
	if err := pool.Validate(); err != nil {
		return nil, err
	}
	if pool.Len() == 0 {
		return nil, fmt.Errorf("active: empty pool")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	labeled := make(map[int]int) // pool index -> label
	budget, budgeted := lab.(*label.Budgeted)

	ask := func(i int) bool {
		y := 0
		if lab.Label(pool.LIDs[i], pool.RIDs[i]) {
			y = 1
		}
		labeled[i] = y
		return !(budgeted && budget.Exhausted() != nil)
	}

	// Seed phase: label a random sample.
	perm := rng.Perm(pool.Len())
	seedN := cfg.seedSize()
	if seedN > pool.Len() {
		seedN = pool.Len()
	}
	for _, i := range perm[:seedN] {
		if !ask(i) {
			break
		}
	}

	// EM candidate pools are heavily skewed toward non-matches; a seed
	// with no positive example leaves the forest degenerate. Probe the
	// pairs with the highest mean feature value (most similar-looking)
	// until a positive turns up, as practical implementations do.
	if countPos(labeled) == 0 {
		order := byMeanFeatureDesc(pool)
		probes := 0
		for _, i := range order {
			if _, done := labeled[i]; done {
				continue
			}
			if !ask(i) {
				break
			}
			probes++
			if labeled[i] == 1 || probes >= cfg.batchSize()*2 {
				break
			}
		}
	}

	forest := &ml.RandomForest{NumTrees: cfg.Trees, Alpha: cfg.Alpha, Seed: cfg.Seed}
	fit := func() error {
		ds := datasetFrom(pool, labeled)
		if ds.Len() == 0 {
			return fmt.Errorf("active: no labels obtained")
		}
		return forest.Fit(ds)
	}
	if err := fit(); err != nil {
		return nil, err
	}

	rounds := 0
	for rounds < cfg.maxRounds() {
		if budgeted && budget.Remaining() == 0 {
			break
		}
		batch := selectUncertain(pool, labeled, forest, cfg.batchSize())
		if len(batch) == 0 {
			break // pool exhausted or committee unanimous everywhere
		}
		stopped := false
		for _, i := range batch {
			if !ask(i) {
				stopped = true
				break
			}
		}
		if err := fit(); err != nil {
			return nil, err
		}
		rounds++
		if stopped {
			break
		}
	}
	return &Result{Forest: forest, Labeled: datasetFrom(pool, labeled), Rounds: rounds}, nil
}

// selectUncertain returns up to k unlabeled pool indices with the highest
// committee entropy, skipping zero-entropy (unanimous) pairs.
func selectUncertain(pool *Pool, labeled map[int]int, f *ml.RandomForest, k int) []int {
	type cand struct {
		i int
		e float64
	}
	var cands []cand
	for i := range pool.X {
		if _, done := labeled[i]; done {
			continue
		}
		if e := f.Entropy(pool.X[i]); e > 0 {
			cands = append(cands, cand{i, e})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].e != cands[b].e {
			return cands[a].e > cands[b].e
		}
		return cands[a].i < cands[b].i
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int, len(cands))
	for j, c := range cands {
		out[j] = c.i
	}
	return out
}

func countPos(labeled map[int]int) int {
	n := 0
	for _, y := range labeled {
		n += y
	}
	return n
}

func byMeanFeatureDesc(pool *Pool) []int {
	means := make([]float64, pool.Len())
	for i, x := range pool.X {
		var s float64
		for _, v := range x {
			s += v
		}
		if len(x) > 0 {
			means[i] = s / float64(len(x))
		}
	}
	order := make([]int, pool.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if means[order[a]] != means[order[b]] {
			return means[order[a]] > means[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

func datasetFrom(pool *Pool, labeled map[int]int) *ml.Dataset {
	idxs := make([]int, 0, len(labeled))
	for i := range labeled {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	x := make([][]float64, len(idxs))
	y := make([]int, len(idxs))
	for k, i := range idxs {
		x[k] = pool.X[i]
		y[k] = labeled[i]
	}
	return &ml.Dataset{X: x, Y: y, Names: pool.Names}
}
