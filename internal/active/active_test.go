package active

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/label"
	"repro/internal/ml"
)

// simPool builds a pool whose single feature cleanly separates matches
// (feature near 1) from non-matches (near 0), with gold truth to drive the
// oracle. ratio controls the match fraction.
func simPool(n int, ratio float64, seed int64) (*Pool, *label.Gold) {
	rng := rand.New(rand.NewSource(seed))
	pool := &Pool{Names: []string{"sim"}}
	gold := label.NewGold(nil)
	for i := 0; i < n; i++ {
		lid := fmt.Sprintf("a%d", i)
		rid := fmt.Sprintf("b%d", i)
		isMatch := rng.Float64() < ratio
		var f float64
		if isMatch {
			f = 0.7 + 0.3*rng.Float64()
			gold.Add(lid, rid)
		} else {
			f = 0.3 * rng.Float64()
		}
		pool.X = append(pool.X, []float64{f})
		pool.LIDs = append(pool.LIDs, lid)
		pool.RIDs = append(pool.RIDs, rid)
	}
	return pool, gold
}

func TestLearnSeparableProblem(t *testing.T) {
	pool, gold := simPool(500, 0.2, 1)
	oracle := label.NewOracle(gold)
	res, err := Learn(pool, oracle, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The forest should classify the pool nearly perfectly.
	wrong := 0
	for i := range pool.X {
		pred := ml.Predict(res.Forest, pool.X[i]) == 1
		if pred != gold.IsMatch(pool.LIDs[i], pool.RIDs[i]) {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(pool.Len()); frac > 0.02 {
		t.Errorf("error rate %.3f after active learning, want <= 0.02", frac)
	}
	// Far fewer questions than pool size.
	if q := oracle.Stats().Questions; q >= pool.Len()/2 {
		t.Errorf("asked %d questions for %d pairs; active learning should need far fewer", q, pool.Len())
	}
	if res.Labeled.Len() != oracle.Stats().Questions {
		t.Errorf("labeled set %d != questions %d", res.Labeled.Len(), oracle.Stats().Questions)
	}
}

func TestLearnSkewedPoolFindsPositives(t *testing.T) {
	// 2% positives: a random 20-pair seed almost surely has none, forcing
	// the high-similarity probe path.
	pool, gold := simPool(1000, 0.02, 2)
	oracle := label.NewOracle(gold)
	res, err := Learn(pool, oracle, Config{Seed: 3, SeedSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labeled.Positives() == 0 {
		t.Fatal("active learning never found a positive example")
	}
	found := 0
	for i := range pool.X {
		if gold.IsMatch(pool.LIDs[i], pool.RIDs[i]) && ml.Predict(res.Forest, pool.X[i]) == 1 {
			found++
		}
	}
	if found == 0 {
		t.Error("model predicts no matches at all on a learnable pool")
	}
}

func TestLearnRespectsBudget(t *testing.T) {
	pool, gold := simPool(500, 0.2, 4)
	budget := label.NewBudgeted(label.NewOracle(gold), 30)
	res, err := Learn(pool, budget, Config{Seed: 1, SeedSize: 10, BatchSize: 10, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	if q := budget.Stats().Questions; q > 30 {
		t.Errorf("budgeted labeler answered %d questions, cap 30", q)
	}
	if res.Labeled.Len() > 31 {
		t.Errorf("labeled set %d exceeds budget", res.Labeled.Len())
	}
}

func TestLearnEmptyPool(t *testing.T) {
	if _, err := Learn(&Pool{}, label.NewOracle(label.NewGold(nil)), Config{}); err == nil {
		t.Fatal("want empty-pool error")
	}
}

func TestPoolValidate(t *testing.T) {
	p := &Pool{X: [][]float64{{1}}, LIDs: []string{"a"}} // missing RIDs
	if err := p.Validate(); err == nil {
		t.Fatal("want shape-mismatch error")
	}
	if _, err := Learn(p, label.NewOracle(label.NewGold(nil)), Config{}); err == nil {
		t.Fatal("Learn must surface pool validation errors")
	}
}

func TestLearnTinyPool(t *testing.T) {
	// Pool smaller than the seed size must still work.
	pool, gold := simPool(5, 0.4, 5)
	res, err := Learn(pool, label.NewOracle(gold), Config{Seed: 1, SeedSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labeled.Len() != 5 {
		t.Errorf("labeled = %d, want all 5", res.Labeled.Len())
	}
}

func TestLearnStopsWhenUnanimous(t *testing.T) {
	// All features identical: after the seed, entropy is zero everywhere
	// and the loop must stop before MaxRounds.
	pool := &Pool{Names: []string{"f"}}
	gold := label.NewGold(nil)
	for i := 0; i < 200; i++ {
		pool.X = append(pool.X, []float64{0.5})
		pool.LIDs = append(pool.LIDs, fmt.Sprintf("a%d", i))
		pool.RIDs = append(pool.RIDs, fmt.Sprintf("b%d", i))
	}
	oracle := label.NewOracle(gold)
	res, err := Learn(pool, oracle, Config{Seed: 1, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds >= 50 {
		t.Errorf("loop ran all %d rounds on a zero-entropy pool", res.Rounds)
	}
	if oracle.Stats().Questions > 60 {
		t.Errorf("asked %d questions on an unlearnable pool", oracle.Stats().Questions)
	}
}

func TestLearnDeterministic(t *testing.T) {
	pool, gold := simPool(300, 0.2, 6)
	r1, err := Learn(pool, label.NewOracle(gold), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Learn(pool, label.NewOracle(gold), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Labeled.Len() != r2.Labeled.Len() || r1.Rounds != r2.Rounds {
		t.Error("same seed produced different sessions")
	}
	for i := range pool.X {
		if r1.Forest.PredictProba(pool.X[i]) != r2.Forest.PredictProba(pool.X[i]) {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestLearnWithNoisyLabeler(t *testing.T) {
	pool, gold := simPool(500, 0.2, 7)
	noisy := label.NewNoisyUser(gold, 0.1, 1)
	res, err := Learn(pool, noisy, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Still learns something despite 10% label noise.
	correct := 0
	for i := range pool.X {
		if (ml.Predict(res.Forest, pool.X[i]) == 1) == gold.IsMatch(pool.LIDs[i], pool.RIDs[i]) {
			correct++
		}
	}
	if frac := float64(correct) / float64(pool.Len()); frac < 0.85 {
		t.Errorf("accuracy %.3f under label noise, want >= 0.85", frac)
	}
}
