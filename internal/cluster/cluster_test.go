package cluster

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func matchFixture(t *testing.T) (*table.Table, *table.Catalog) {
	t.Helper()
	sch := table.StringSchema("id", "name", "city")
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.String("dave smith"), table.String("madison"))
	a.MustAppend(table.String("a2"), table.String("dan smith"), table.String("middleton"))
	a.MustAppend(table.String("a3"), table.String("joe wilson"), table.String("san jose"))
	b := table.New("B", sch)
	b.MustAppend(table.String("b1"), table.String("david smith"), table.String("madison"))
	b.MustAppend(table.String("b2"), table.String("d smith"), table.String("madison"))
	b.MustAppend(table.String("b3"), table.String("daniel smith"), table.String("middleton"))
	if err := a.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	if err := b.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	cat := table.NewCatalog()
	m, err := table.NewPairTable("matches", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	// a1 matches b1 and b2 (a chain); a2 matches b3; a3 matches nothing.
	table.AppendPair(m, "a1", "b1")
	table.AppendPair(m, "a1", "b2")
	table.AppendPair(m, "a2", "b3")
	return m, cat
}

func TestConnectedComponents(t *testing.T) {
	m, cat := matchFixture(t)
	clusters, err := ConnectedComponents(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2: %v", len(clusters), clusters)
	}
	want0 := []string{"A:a1", "B:b1", "B:b2"}
	if strings.Join(clusters[0].Members, ",") != strings.Join(want0, ",") {
		t.Errorf("cluster 0 = %v, want %v", clusters[0].Members, want0)
	}
	want1 := []string{"A:a2", "B:b3"}
	if strings.Join(clusters[1].Members, ",") != strings.Join(want1, ",") {
		t.Errorf("cluster 1 = %v, want %v", clusters[1].Members, want1)
	}
}

func TestConnectedComponentsTransitive(t *testing.T) {
	sch := table.StringSchema("id", "name")
	a := table.New("A", sch)
	b := table.New("B", sch)
	for _, id := range []string{"a1", "a2", "a3"} {
		a.MustAppend(table.String(id), table.String("x"))
	}
	for _, id := range []string{"b1", "b2"} {
		b.MustAppend(table.String(id), table.String("x"))
	}
	a.MustSetKey("id")
	b.MustSetKey("id")
	cat := table.NewCatalog()
	m, err := table.NewPairTable("m", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	// a1-b1, a2-b1, a2-b2, a3-b2: all five records chain into one entity.
	table.AppendPair(m, "a1", "b1")
	table.AppendPair(m, "a2", "b1")
	table.AppendPair(m, "a2", "b2")
	table.AppendPair(m, "a3", "b2")
	clusters, err := ConnectedComponents(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || len(clusters[0].Members) != 5 {
		t.Fatalf("expected one 5-member cluster, got %v", clusters)
	}
}

func TestConnectedComponentsUnregistered(t *testing.T) {
	cat := table.NewCatalog()
	orphan := table.New("x", table.DefaultPairSchema())
	if _, err := ConnectedComponents(orphan, cat); err == nil {
		t.Fatal("want unregistered error")
	}
}

func TestMerge(t *testing.T) {
	m, cat := matchFixture(t)
	clusters, err := ConnectedComponents(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(clusters, m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 2 {
		t.Fatalf("merged = %d rows", merged.Len())
	}
	// Cluster 0 (a1, b1, b2): city "madison" wins 3-0.
	if got := merged.Get(0, "city").AsString(); got != "madison" {
		t.Errorf("merged city = %q", got)
	}
	// Members column lists all three records.
	mem := merged.Get(0, "members").AsString()
	for _, want := range []string{"A:a1", "B:b1", "B:b2"} {
		if !strings.Contains(mem, want) {
			t.Errorf("members %q missing %s", mem, want)
		}
	}
	if merged.Key() != "entity_id" {
		t.Error("merged table should have entity_id as key")
	}
}

func TestMergeMajorityTieBreak(t *testing.T) {
	sch := table.StringSchema("id", "name")
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.String("beta"))
	b := table.New("B", sch)
	b.MustAppend(table.String("b1"), table.String("alpha"))
	a.MustSetKey("id")
	b.MustSetKey("id")
	cat := table.NewCatalog()
	m, err := table.NewPairTable("m", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	table.AppendPair(m, "a1", "b1")
	clusters, err := ConnectedComponents(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(clusters, m, cat)
	if err != nil {
		t.Fatal(err)
	}
	// 1-1 tie: lexically smallest value wins.
	if got := merged.Get(0, "name").AsString(); got != "alpha" {
		t.Errorf("tie break = %q, want alpha", got)
	}
}

func TestMergeIgnoresNulls(t *testing.T) {
	sch := table.StringSchema("id", "name")
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.Null(table.KindString))
	b := table.New("B", sch)
	b.MustAppend(table.String("b1"), table.String("present"))
	a.MustSetKey("id")
	b.MustSetKey("id")
	cat := table.NewCatalog()
	m, err := table.NewPairTable("m", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	table.AppendPair(m, "a1", "b1")
	clusters, err := ConnectedComponents(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(clusters, m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Get(0, "name").AsString(); got != "present" {
		t.Errorf("null beat a present value: %q", got)
	}
}

func TestMajorityHelper(t *testing.T) {
	if majority(map[string]int{}) != "" {
		t.Error("empty majority should be empty")
	}
	if majority(map[string]int{"x": 2, "y": 1}) != "x" {
		t.Error("majority broken")
	}
}
