// Package cluster implements the post-processing stage of EM workflows
// that the paper notes recent work includes alongside blocking and
// matching: "post-processing, e.g., clustering and merging matches"
// (Section 3). Predicted match pairs are grouped into entity clusters by
// connected components (optionally with a minimum-agreement filter), and
// each cluster can be merged into one canonical record by per-attribute
// voting.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// Cluster is one resolved entity: the record ids (qualified as "A:id" or
// "B:id") it spans.
type Cluster struct {
	// Members lists the qualified record ids, sorted.
	Members []string
}

// ConnectedComponents groups the pairs of a match table into clusters:
// two records are in the same cluster when connected by any chain of
// matches. Left ids are qualified "A:", right ids "B:"; singleton records
// that never matched are not reported.
func ConnectedComponents(matches *table.Table, cat *table.Catalog) ([]Cluster, error) {
	meta, ok := cat.PairMeta(matches)
	if !ok {
		return nil, fmt.Errorf("cluster: match table %q not registered in catalog", matches.Name())
	}
	uf := newUnionFind()
	for i := 0; i < matches.Len(); i++ {
		l := "A:" + matches.Get(i, meta.LID).AsString()
		r := "B:" + matches.Get(i, meta.RID).AsString()
		uf.union(l, r)
	}
	ids := make([]string, 0, len(uf.parent))
	for id := range uf.parent {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	groups := make(map[string][]string)
	for _, id := range ids {
		root := uf.find(id)
		groups[root] = append(groups[root], id)
	}
	clusters := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		clusters = append(clusters, Cluster{Members: members})
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].Members[0] < clusters[b].Members[0] })
	return clusters, nil
}

// unionFind is a path-compressing disjoint-set over string ids.
type unionFind struct {
	parent map[string]string
	rank   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string), rank: make(map[string]int)}
}

func (u *unionFind) find(x string) string {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
	}
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Merge builds one canonical record per cluster by per-attribute majority
// vote over the member records (ties broken by the lexically smallest
// value; nulls never win over present values). Only attributes shared by
// both base tables are merged; the output table's "members" column lists
// the qualified source ids.
func Merge(clusters []Cluster, matches *table.Table, cat *table.Catalog) (*table.Table, error) {
	meta, ok := cat.PairMeta(matches)
	if !ok {
		return nil, fmt.Errorf("cluster: match table %q not registered in catalog", matches.Name())
	}
	lt, rt := meta.LTable, meta.RTable
	lidx, err := lt.KeyIndex()
	if err != nil {
		return nil, err
	}
	ridx, err := rt.KeyIndex()
	if err != nil {
		return nil, err
	}

	// Shared non-key attributes in left-table order.
	var attrs []string
	for _, c := range lt.Schema().Columns() {
		if c.Name == lt.Key() || c.Name == rt.Key() {
			continue
		}
		if rt.Schema().Has(c.Name) {
			attrs = append(attrs, c.Name)
		}
	}
	cols := make([]table.Column, 0, len(attrs)+2)
	cols = append(cols, table.Column{Name: "entity_id", Kind: table.KindInt})
	for _, a := range attrs {
		cols = append(cols, table.Column{Name: a, Kind: table.KindString})
	}
	cols = append(cols, table.Column{Name: "members", Kind: table.KindString})
	out := table.New("merged_entities", table.MustSchema(cols...))

	for ci, cl := range clusters {
		row := make(table.Row, 0, len(cols))
		row = append(row, table.Int(int64(ci)))
		for _, attr := range attrs {
			counts := make(map[string]int)
			for _, m := range cl.Members {
				v, err := memberValue(m, attr, lt, rt, lidx, ridx)
				if err != nil {
					return nil, err
				}
				if v != "" {
					counts[v]++
				}
			}
			row = append(row, table.String(majority(counts)))
		}
		row = append(row, table.String(join(cl.Members)))
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	if err := out.SetKey("entity_id"); err != nil {
		return nil, err
	}
	return out, nil
}

// memberValue resolves a qualified member id to its attribute value.
func memberValue(member, attr string, lt, rt *table.Table, lidx, ridx map[string]int) (string, error) {
	if len(member) < 2 {
		return "", fmt.Errorf("cluster: malformed member id %q", member)
	}
	side, id := member[:2], member[2:]
	switch side {
	case "A:":
		i, ok := lidx[id]
		if !ok {
			return "", fmt.Errorf("cluster: member %q not in left table", member)
		}
		return lt.Get(i, attr).AsString(), nil
	case "B:":
		i, ok := ridx[id]
		if !ok {
			return "", fmt.Errorf("cluster: member %q not in right table", member)
		}
		return rt.Get(i, attr).AsString(), nil
	default:
		return "", fmt.Errorf("cluster: member id %q lacks an A:/B: qualifier", member)
	}
}

// majority returns the most frequent value, ties broken lexically; ""
// when no values were present.
func majority(counts map[string]int) string {
	best, bestN := "", 0
	for v, n := range counts {
		if n > bestN || (n == bestN && (best == "" || v < best)) {
			best, bestN = v, n
		}
	}
	return best
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ";"
		}
		out += s
	}
	return out
}
