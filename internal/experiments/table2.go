// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index). Each harness returns structured rows; FormatX renders them in
// the paper's layout. The root bench_test.go and cmd/benchem drive these.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/falcon"
	"repro/internal/label"
	"repro/internal/table"
)

// Table2Row is one row of Table 2: a CloudMatcher deployment.
type Table2Row struct {
	Task      string
	Org       string
	SizeA     int
	SizeB     int
	Questions int
	// CrowdCost is the Mechanical Turk spend; 0 renders "-" (single
	// user).
	CrowdCost float64
	// ComputeCost is the simulated AWS bill; 0 renders "-" (local
	// machine).
	ComputeCost float64
	Precision   float64
	Recall      float64
	// LabelTime is simulated user/crowd time; MachineTime is measured
	// compute.
	LabelTime   time.Duration
	MachineTime time.Duration
	Crowd       bool
}

// awsRatePerHour approximates the paper's 4-node EMR cluster of m4-class
// machines (Appendix D): 4 × $0.20/hr.
const awsRatePerHour = 0.80

// RunTable2Task executes one CloudMatcher deployment: generate the task,
// build the deployment's labeler (crowd or single user, noisy where the
// paper reports unreliable labels), cap questions at the task's budget,
// run Falcon, and score against gold.
func RunTable2Task(ts datagen.TaskSpec, seed int64) (Table2Row, error) {
	task, err := datagen.Generate(ts.Spec)
	if err != nil {
		return Table2Row{}, err
	}
	var lab label.Labeler
	switch {
	case ts.Crowd:
		lab = label.NewCrowd(task.Gold, seed)
	default:
		if noise, ok := datagen.NoisyLabelTasks()[ts.Spec.Name]; ok {
			lab = label.NewNoisyUser(task.Gold, noise, seed)
		} else {
			lab = label.NewOracle(task.Gold)
		}
	}
	budget := label.NewBudgeted(lab, ts.QuestionCap)
	cat := table.NewCatalog()
	res, err := falcon.Run(task.A, task.B, budget, cat, falcon.Config{
		SampleSize: 2000,
		Seed:       seed,
	})
	if err != nil {
		return Table2Row{}, fmt.Errorf("task %s: %w", ts.Spec.Name, err)
	}
	p, r := scorePairTable(res.Matches, task.Gold)
	st := lab.Stats()
	row := Table2Row{
		Task: ts.Spec.Name, Org: ts.Org,
		SizeA: ts.Spec.SizeA, SizeB: ts.Spec.SizeB,
		Questions: st.Questions,
		Precision: p, Recall: r,
		LabelTime:   st.Elapsed,
		MachineTime: res.MachineTime,
		Crowd:       ts.Crowd,
	}
	if ts.Crowd {
		row.CrowdCost = st.CostUSD
		row.ComputeCost = res.MachineTime.Hours() * awsRatePerHour
	}
	return row, nil
}

// RunTable2 executes every Table 2 task.
func RunTable2(seed int64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, ts := range datagen.Table2Tasks(seed) {
		row, err := RunTable2Task(ts, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders rows in the paper's column layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-22s %7s %7s | %5s %6s %8s | %6s %6s | %9s %9s\n",
		"Task", "Org", "|A|", "|B|", "Qs", "Crowd", "Compute", "P", "R", "Label", "Machine")
	b.WriteString(strings.Repeat("-", 130) + "\n")
	for _, r := range rows {
		crowd := "-"
		if r.CrowdCost > 0 {
			crowd = fmt.Sprintf("$%.0f", r.CrowdCost)
		}
		compute := "-"
		if r.ComputeCost > 0 {
			compute = fmt.Sprintf("$%.2f", r.ComputeCost)
		}
		fmt.Fprintf(&b, "%-18s %-22s %7d %7d | %5d %6s %8s | %5.1f%% %5.1f%% | %9s %9s\n",
			r.Task, r.Org, r.SizeA, r.SizeB, r.Questions, crowd, compute,
			100*r.Precision, 100*r.Recall,
			r.LabelTime.Round(time.Minute), r.MachineTime.Round(time.Millisecond))
	}
	return b.String()
}

// scorePairTable computes precision/recall of a predicted match pair table
// against gold.
func scorePairTable(matches *table.Table, gold *label.Gold) (p, r float64) {
	tp := 0
	for i := 0; i < matches.Len(); i++ {
		if gold.IsMatch(matches.Get(i, "ltable_id").AsString(), matches.Get(i, "rtable_id").AsString()) {
			tp++
		}
	}
	if matches.Len() > 0 {
		p = float64(tp) / float64(matches.Len())
	} else {
		p = 1
	}
	if gold.Len() > 0 {
		r = float64(tp) / float64(gold.Len())
	} else {
		r = 1
	}
	return
}
