package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tokenize"
)

// ServePhase is one point of the ingest-while-querying interference sweep:
// a fixed query load measured against a corpus that is idle, trickling
// mutations, or ingesting as fast as the write lock allows.
type ServePhase struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	// Rejected counts ErrOverloaded refusals; the closed-loop phases keep
	// it at zero, the overload phase exists to drive it up.
	Rejected   int     `json:"rejected"`
	Mutations  int     `json:"mutations"`
	WallMillis int64   `json:"wall_millis"`
	QPS        float64 `json:"qps"`
	MutPerSec  float64 `json:"mutations_per_sec"`
	P50Micros  int64   `json:"p50_micros"`
	P99Micros  int64   `json:"p99_micros"`
	P999Micros int64   `json:"p999_micros"`
}

// ServeCell is one cell of the concurrent-reader scaling sweep: a fixed
// query load driven through a pool of Workers match workers, with the
// ingest column toggling a concurrent mutation trickle. Because MatchOne
// takes no locks, QPS should rise with workers even while ingest runs —
// the property the workers=4 speedup gate checks on multi-core boxes.
type ServeCell struct {
	Workers    int     `json:"workers"`
	Ingest     bool    `json:"ingest"`
	Requests   int     `json:"requests"`
	Mutations  int     `json:"mutations"`
	QPS        float64 `json:"qps"`
	P50Micros  int64   `json:"p50_micros"`
	P99Micros  int64   `json:"p99_micros"`
	P999Micros int64   `json:"p999_micros"`
}

// ServeOverload is the admission-control run: a burst of non-blocking
// submissions against a deliberately tiny pool, proving the queue refuses
// with ErrOverloaded instead of buffering without bound.
type ServeOverload struct {
	Workers   int     `json:"workers"`
	QueueCap  int     `json:"queue_cap"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Rejected  int     `json:"rejected"`
	RejFrac   float64 `json:"rejected_frac"`
}

// ServeBench is the machine-readable payload of BENCH_serve.json: the
// serving core's sustained throughput, tail latency under concurrent
// ingest, backpressure behavior, and the incremental-vs-rebuild identity
// check that gates it all.
type ServeBench struct {
	Provenance Provenance `json:"provenance"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	// CoresOK records whether this box has the cores to show reader
	// scaling (GOMAXPROCS >= 2); cells measured with CoresOK=false pin
	// correctness and latency but their QPS ratios are noise around 1.0,
	// so benchem's speedup gate stays disarmed.
	CoresOK      bool          `json:"cores_ok"`
	N            int           `json:"n"`
	Queries      int           `json:"queries"`
	Workers      int           `json:"workers"`
	MatchWorkers []int         `json:"match_workers"`
	Phases       []ServePhase  `json:"phases"`
	Cells        []ServeCell   `json:"cells"`
	Overload     ServeOverload `json:"overload"`
	// Identical reports whether, after every phase's mutations, MatchOne
	// on the incrementally-maintained corpus returned bit-identical scored
	// pairs to a from-scratch rebuild on a fresh probe set.
	Identical bool `json:"identical_to_rebuild"`
	// FlatIdentical reports whether every probe score from the serving
	// path — the flat batched forest over cached feature sets — was
	// bit-identical to the pointer-walking classifier over the pure string
	// feature path. False means the flattened inference kernel diverged.
	FlatIdentical bool `json:"flat_identical_to_pointer"`
}

// QPSAt returns the sweep cell's QPS at the given worker count and ingest
// setting, 0 when the cell is absent.
func (p *ServeBench) QPSAt(workers int, ingest bool) float64 {
	for _, c := range p.Cells {
		if c.Workers == workers && c.Ingest == ingest {
			return c.QPS
		}
	}
	return 0
}

// ScalingAt returns the query-only QPS ratio of the given worker count
// over the workers=1 cell — the reader-scaling figure the benchem gate
// checks at workers=4 on boxes with real cores. 0 when either cell is
// missing.
func (p *ServeBench) ScalingAt(workers int) float64 {
	base := p.QPSAt(1, false)
	at := p.QPSAt(workers, false)
	if base <= 0 || at <= 0 {
		return 0
	}
	return at / base
}

// MarshalBenchJSON renders the payload for BENCH_serve.json.
func (p *ServeBench) MarshalBenchJSON() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// serveVocab and serveRandomRecord generate a workload whose token overlap
// is dense enough that queries surface real candidate sets.
func serveVocab(n int) []string {
	size := n / 4
	if size < 200 {
		size = 200
	}
	out := make([]string, size)
	for i := range out {
		out[i] = fmt.Sprintf("w%d", i)
	}
	return out
}

func serveRandomRecord(id string, vocab []string, rng *rand.Rand) serve.Record {
	pick := func(k int) string {
		toks := make([]string, k)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		return strings.Join(toks, " ")
	}
	return serve.Record{ID: id, Attrs: map[string]string{
		"name": pick(2 + rng.Intn(3)),
		"desc": pick(4 + rng.Intn(5)),
	}}
}

// serveMatcher builds the resident feature battery and classifier the
// bench corpus scores with: two token-set features riding the interned
// fast path plus one pure string feature exercising the fallback.
func serveMatcher(seed int64) (*feature.Set, ml.Classifier, error) {
	ws := tokenize.Whitespace{ReturnSet: true}
	jacc := func(l, r string) float64 {
		return sim.Jaccard(ws.Tokenize(strings.ToLower(l)), ws.Tokenize(strings.ToLower(r)))
	}
	fs := &feature.Set{Features: []feature.Feature{
		{Name: "jaccard_ws_name", LAttr: "name", RAttr: "name", Fn: jacc, Tok: ws, SetFn: sim.JaccardU32},
		{Name: "jaccard_ws_desc", LAttr: "desc", RAttr: "desc", Fn: jacc, Tok: ws, SetFn: sim.JaccardU32},
		{Name: "lev_name", LAttr: "name", RAttr: "name", Fn: sim.Levenshtein},
	}}
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []int
	for i := 0; i < 256; i++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		label := 0
		if v[0]+v[1] > 1 {
			label = 1
		}
		x = append(x, v)
		y = append(y, label)
	}
	ds, err := ml.NewDataset(x, y, []string{"jaccard_ws_name", "jaccard_ws_desc", "lev_name"})
	if err != nil {
		return nil, nil, err
	}
	clf := &ml.RandomForest{NumTrees: 16, Seed: seed, Workers: 1}
	if err := clf.Fit(ds); err != nil {
		return nil, nil, err
	}
	return fs, clf, nil
}

// serveMutate applies one weighted add/update/delete against the corpus,
// keeping the live-ID list and the shadow record map (the flat-identity
// check's ground truth) in sync.
func serveMutate(c *serve.Corpus, ids *[]string, recs map[string]serve.Record, next *int, vocab []string, rng *rand.Rand) error {
	op := rng.Intn(10)
	switch {
	case op < 5 || len(*ids) == 0:
		id := fmt.Sprintf("m%d", *next)
		*next++
		rec := serveRandomRecord(id, vocab, rng)
		if err := c.Add(rec); err != nil {
			return err
		}
		*ids = append(*ids, id)
		recs[id] = rec
	case op < 8:
		id := (*ids)[rng.Intn(len(*ids))]
		rec := serveRandomRecord(id, vocab, rng)
		if err := c.Update(rec); err != nil {
			return err
		}
		recs[id] = rec
	default:
		k := rng.Intn(len(*ids))
		id := (*ids)[k]
		if err := c.Delete(id); err != nil {
			return err
		}
		delete(recs, id)
		(*ids)[k] = (*ids)[len(*ids)-1]
		*ids = (*ids)[:len(*ids)-1]
	}
	return nil
}

func percentileMicros(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Microseconds()
}

// runServePhase drives `queries` closed-loop matches through the pool from
// 2x GOMAXPROCS submitters while mutations interleave: mutEvery = 0 means
// no ingest, 1 floods from a dedicated writer (tight loop), and k > 1 has
// the submitters themselves apply one mutation per k queries — paced by
// query progress, so the trickle rate holds on any core count.
//
//emlint:allow nondeterminism -- this is the benchmark harness's stopwatch
func runServePhase(name string, p *serve.Pool, c *serve.Corpus, queries []serve.Record,
	ids *[]string, recs map[string]serve.Record, next *int, vocab []string, mutEvery int, seed int64) (ServePhase, error) {

	durs := make([]time.Duration, len(queries))
	var idx, completed, rejected atomic.Int64
	var wg sync.WaitGroup
	workers := 2 * runtime.GOMAXPROCS(0)
	errc := make(chan error, workers+1)
	var mutations atomic.Int64
	// Mutators share one guarded rng + ID list; serveMutate itself is not
	// concurrency-safe.
	var mutMu sync.Mutex
	mrng := rand.New(rand.NewSource(seed))
	mutate := func() error {
		mutMu.Lock()
		defer mutMu.Unlock()
		if err := serveMutate(c, ids, recs, next, vocab, mrng); err != nil {
			return err
		}
		mutations.Add(1)
		return nil
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//emlint:allow nogoroutine -- closed-loop load generator measuring the pool's own concurrency, not a fan-out computation
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				t0 := time.Now()
				_, err := p.Match(context.Background(), queries[i])
				if errors.Is(err, serve.ErrOverloaded) {
					rejected.Add(1)
					completed.Add(1)
					continue
				}
				if err != nil {
					errc <- err
					return
				}
				durs[i] = time.Since(t0)
				completed.Add(1)
				if mutEvery > 1 && i%mutEvery == 0 {
					if err := mutate(); err != nil {
						errc <- err
						return
					}
				}
			}
		}()
	}
	if mutEvery == 1 {
		wg.Add(1)
		//emlint:allow nogoroutine -- the concurrent-ingest writer the flood phase exists to measure
		go func() {
			defer wg.Done()
			for completed.Load() < int64(len(queries)) {
				if err := mutate(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errc:
		return ServePhase{}, fmt.Errorf("phase %s: %w", name, err)
	default:
	}
	ok := durs[:0:0]
	for _, d := range durs {
		if d > 0 {
			ok = append(ok, d)
		}
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
	ph := ServePhase{
		Name:       name,
		Requests:   len(queries),
		Rejected:   int(rejected.Load()),
		Mutations:  int(mutations.Load()),
		WallMillis: wall.Milliseconds(),
		QPS:        float64(len(queries)) / wall.Seconds(),
		MutPerSec:  float64(mutations.Load()) / wall.Seconds(),
		P50Micros:  percentileMicros(ok, 0.50),
		P99Micros:  percentileMicros(ok, 0.99),
		P999Micros: percentileMicros(ok, 0.999),
	}
	return ph, nil
}

// runServeOverload bursts non-blocking submissions at a one-worker pool
// with a tiny queue and counts the ErrOverloaded refusals — the typed
// backpressure contract under load the pool cannot absorb.
func runServeOverload(c *serve.Corpus, queries []serve.Record) (ServeOverload, error) {
	const queueCap = 2
	p := serve.NewPool(c, 1, queueCap)
	defer p.Close()
	ov := ServeOverload{Workers: 1, QueueCap: queueCap}
	var tickets []*serve.Ticket
	n := len(queries)
	if n > 500 {
		n = 500
	}
	for i := 0; i < n; i++ {
		ov.Submitted++
		tk, err := p.Submit(context.Background(), queries[i])
		switch {
		case err == nil:
			tickets = append(tickets, tk)
		case errors.Is(err, serve.ErrOverloaded):
			ov.Rejected++
		default:
			return ov, err
		}
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			return ov, err
		}
	}
	ov.Completed = len(tickets)
	ov.RejFrac = float64(ov.Rejected) / float64(ov.Submitted)
	return ov, nil
}

// RunServeBench measures the incremental serving core end to end: build an
// n-record corpus with a resident matcher, sweep a fixed query load across
// increasing concurrent-ingest pressure, sweep reader concurrency across
// matchWorkers x ingest on/off, burst a tiny pool into overload, and
// finish with two identity gates — scored output against a from-scratch
// rebuild, and the flat batched forest against the pointer-walking
// classifier over the pure string feature path.
func RunServeBench(seed int64, workers, n, queries int, matchWorkers []int) (*ServeBench, error) {
	if n <= 0 {
		n = 5000
	}
	if queries <= 0 {
		queries = 2000
	}
	if len(matchWorkers) == 0 {
		matchWorkers = []int{1, 2, 4, 8}
	}
	vocab := serveVocab(n)
	rng := rand.New(rand.NewSource(seed))
	c := serve.NewCorpus(serve.WithMinOverlap(2), serve.WithLimit(10))
	ids := make([]string, 0, n)
	recs := make(map[string]serve.Record, n)
	next := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%d", next)
		next++
		rec := serveRandomRecord(id, vocab, rng)
		if err := c.Add(rec); err != nil {
			return nil, err
		}
		ids = append(ids, id)
		recs[id] = rec
	}
	fs, clf, err := serveMatcher(seed)
	if err != nil {
		return nil, err
	}
	if err := c.SetMatcher(fs, clf); err != nil {
		return nil, err
	}
	qs := make([]serve.Record, queries)
	for i := range qs {
		qs[i] = serveRandomRecord(fmt.Sprintf("q%d", i), vocab, rng)
	}

	res := &ServeBench{
		Provenance:   CollectProvenance(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		CoresOK:      runtime.GOMAXPROCS(0) >= 2,
		N:            n,
		Queries:      queries,
		Workers:      workers,
		MatchWorkers: matchWorkers,
	}
	p := serve.NewPool(c, workers, 0)
	defer p.Close()
	// The interference sweep: same query load, rising mutation pressure.
	for _, sw := range []struct {
		name     string
		mutEvery int
	}{
		{"query_only", 0},
		{"ingest_per_16_queries", 16},
		{"ingest_flood", 1},
	} {
		ph, err := runServePhase(sw.name, p, c, qs, &ids, recs, &next, vocab, sw.mutEvery, seed+int64(sw.mutEvery))
		if err != nil {
			return nil, err
		}
		res.Phases = append(res.Phases, ph)
	}

	// The reader-scaling sweep: the same query load through pools of
	// rising worker counts, with and without a concurrent ingest trickle.
	// Lock-free reads are what let the ingest column keep scaling — under
	// the old RWMutex every writer stalled the whole reader pool.
	for _, mw := range matchWorkers {
		for _, ingest := range []bool{false, true} {
			mutEvery := 0
			if ingest {
				mutEvery = 16
			}
			cp := serve.NewPool(c, mw, 0)
			name := fmt.Sprintf("cell_w%d_ingest_%v", mw, ingest) //emlint:allow hotalloc -- sweep setup, one format per cell (a handful per run)
			ph, err := runServePhase(name, cp, c, qs, &ids, recs, &next, vocab, mutEvery, seed+int64(100*mw)+int64(mutEvery))
			cp.Close()
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, ServeCell{
				Workers:    mw,
				Ingest:     ingest,
				Requests:   ph.Requests,
				Mutations:  ph.Mutations,
				QPS:        ph.QPS,
				P50Micros:  ph.P50Micros,
				P99Micros:  ph.P99Micros,
				P999Micros: ph.P999Micros,
			})
		}
	}

	ov, err := runServeOverload(c, qs)
	if err != nil {
		return nil, err
	}
	res.Overload = ov

	// Gate one: after every phase's concurrent mutations, the incremental
	// corpus must score probes bit-identically to a from-scratch rebuild.
	// Gate two: every probe score — produced by the flat batched forest
	// over cached token sets — must be bit-identical to the pointer
	// classifier walking the pure string feature path by hand.
	oracle := c.Rebuilt()
	if err := oracle.SetMatcher(fs, clf); err != nil {
		return nil, err
	}
	res.Identical = true
	res.FlatIdentical = true
	for i := 0; i < 25; i++ {
		q := serveRandomRecord(fmt.Sprintf("probe%d", i), vocab, rng)
		got, err := c.MatchOne(context.Background(), q)
		if err != nil {
			return nil, err
		}
		want, err := oracle.MatchOne(context.Background(), q)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(got, want) {
			res.Identical = false
		}
		for _, pair := range got {
			rec, ok := recs[pair.ID]
			if !ok {
				return nil, fmt.Errorf("probe %d surfaced %q, which the shadow record map does not hold", i, pair.ID)
			}
			if ref := clf.PredictProba(fs.VectorWith(q.Attrs, rec.Attrs, nil, nil)); pair.Score != ref {
				res.FlatIdentical = false
			}
		}
	}
	return res, nil
}

// FormatServeBench renders the human-readable table benchem prints.
func FormatServeBench(p *ServeBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving core: n=%d queries=%d workers=%d GOMAXPROCS=%d cores_ok=%v\n",
		p.N, p.Queries, p.Workers, p.GOMAXPROCS, p.CoresOK)
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %10s\n",
		"phase", "qps", "p50(us)", "p99(us)", "p999(us)", "mut/s")
	for _, ph := range p.Phases {
		fmt.Fprintf(&b, "%-22s %10.0f %10d %10d %10d %10.0f\n",
			ph.Name, ph.QPS, ph.P50Micros, ph.P99Micros, ph.P999Micros, ph.MutPerSec)
	}
	if len(p.Cells) > 0 {
		fmt.Fprintf(&b, "reader scaling (match workers x concurrent ingest):\n")
		fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %10s\n",
			"cell", "qps", "p50(us)", "p99(us)", "p999(us)", "scaling")
		for _, c := range p.Cells {
			name := fmt.Sprintf("w=%d ingest=%v", c.Workers, c.Ingest)
			scaling := "-"
			if !c.Ingest {
				if s := p.ScalingAt(c.Workers); s > 0 {
					scaling = fmt.Sprintf("%.2fx", s)
				}
			}
			fmt.Fprintf(&b, "%-22s %10.0f %10d %10d %10d %10s\n",
				name, c.QPS, c.P50Micros, c.P99Micros, c.P999Micros, scaling)
		}
	}
	fmt.Fprintf(&b, "overload: %d submitted to a %d-worker/%d-slot pool -> %d completed, %d rejected (%.0f%%)\n",
		p.Overload.Submitted, p.Overload.Workers, p.Overload.QueueCap,
		p.Overload.Completed, p.Overload.Rejected, 100*p.Overload.RejFrac)
	fmt.Fprintf(&b, "identical to from-scratch rebuild: %v\n", p.Identical)
	fmt.Fprintf(&b, "flat forest identical to pointer path: %v\n", p.FlatIdentical)
	return b.String()
}
