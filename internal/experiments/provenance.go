package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Provenance pins the environment a benchmark payload was measured in, so
// a committed BENCH_*.json is comparable against a regenerated one: the
// toolchain (inlining budgets and escape analysis shift across releases),
// the core budget the parallel layer saw, and the exact commit. It is
// embedded in every benchmark payload.
type Provenance struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GitCommit is the HEAD hash read directly from the .git directory
	// (no git executable needed); empty outside a git checkout.
	GitCommit string `json:"git_commit,omitempty"`
}

// CollectProvenance snapshots the current environment. The git commit is
// resolved from the nearest .git directory at or above the working
// directory.
func CollectProvenance() Provenance {
	return Provenance{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitCommit:  headCommit(findGitDir()),
	}
}

// findGitDir walks upward from the working directory to the nearest .git
// directory; "" when none exists (e.g. an exported tarball).
func findGitDir() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		gitDir := filepath.Join(dir, ".git")
		if fi, err := os.Stat(gitDir); err == nil && fi.IsDir() {
			return gitDir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// headCommit resolves HEAD to a commit hash by reading the repository
// files directly: .git/HEAD either holds the hash (detached) or a
// "ref: refs/heads/..." pointer resolved through the loose ref file or
// .git/packed-refs.
func headCommit(gitDir string) string {
	if gitDir == "" {
		return ""
	}
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	target := strings.TrimSpace(string(head))
	ref, ok := strings.CutPrefix(target, "ref: ")
	if !ok {
		return target // detached HEAD: the hash itself
	}
	ref = strings.TrimSpace(ref)
	if loose, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(loose))
	}
	packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(packed), "\n") {
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "^") {
			continue
		}
		if hash, name, ok := strings.Cut(line, " "); ok && name == ref {
			return hash
		}
	}
	return ""
}
