package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strconv"

	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/simjoin"
	"repro/internal/table"
)

// TokensBenchRow compares one workload on the retained string kernels
// (map-backed token sets, per-pair retokenization) against the interned
// integer kernels of this PR.
type TokensBenchRow struct {
	Name string `json:"name"`
	// StringNs times the string-kernel path; for figure2_guide_workflow it
	// is instead the PR-1 baseline read from BENCH_parallel.json (0 when
	// the file is absent), since the end-to-end guide has no string mode.
	StringNs int64 `json:"string_ns_per_op,omitempty"`
	// InternedNs times the integer-kernel path at the same worker count.
	InternedNs int64 `json:"interned_ns_per_op"`
	// Speedup is StringNs/InternedNs.
	Speedup float64 `json:"speedup,omitempty"`
	// StringAllocs and InternedAllocs count heap allocations per op at
	// Workers=1 (runtime.ReadMemStats deltas, so they include the
	// workload's own setup, not just the kernels).
	StringAllocs   int64 `json:"string_allocs_per_op,omitempty"`
	InternedAllocs int64 `json:"interned_allocs_per_op"`
	// AllocReduction is StringAllocs/InternedAllocs — the ISSUE's
	// acceptance bar demands >= 2 on the join and feature rows.
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
	// Identical reports that both paths produced bit-identical results
	// (pairs with equal Sim floats, equal feature matrices, equal guide
	// outputs). CI fails the tokens smoke run when any row is false.
	Identical bool `json:"identical"`
}

// TokensBench is the machine-readable payload of BENCH_tokens.json.
type TokensBench struct {
	Provenance   Provenance       `json:"provenance"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	Workers      int              `json:"workers"`
	N            int              `json:"n"`
	BaselineFrom string           `json:"baseline_from,omitempty"`
	Rows         []TokensBenchRow `json:"benchmarks"`
}

// MarshalBenchJSON renders the payload for BENCH_tokens.json.
func (p *TokensBench) MarshalBenchJSON() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Diverged lists the rows whose string and interned paths disagreed;
// non-empty means the equivalence contract is broken and the bench run
// must fail.
func (p *TokensBench) Diverged() []string {
	var out []string
	for _, r := range p.Rows {
		if !r.Identical {
			out = append(out, r.Name)
		}
	}
	return out
}

// allocsPerOp reports the mean heap allocations of one fn() call, measured
// as a runtime.MemStats.Mallocs delta over iters calls after a warm-up run
// and a GC. Callers keep fn single-threaded (Workers=1) so no concurrent
// allocator noise leaks into the count.
func allocsPerOp(iters int, fn func() error) (int64, error) {
	if err := fn(); err != nil { // warm up: lazy caches, map growth
		return 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs-before.Mallocs) / int64(iters), nil
}

// tokensRecords synthesizes n simjoin records with zipf-ish token sets: a
// small hot vocabulary most records share plus a long tail, the shape that
// makes prefix filtering (and its allocation behavior) representative.
func tokensRecords(n int, side string, rng *rand.Rand) []simjoin.Record {
	vocab := make([]string, 20+n)
	for v := range vocab {
		vocab[v] = "t" + strconv.Itoa(v)
	}
	out := make([]simjoin.Record, n)
	for i := range out {
		k := 4 + rng.Intn(9)
		toks := make([]string, k)
		for j := range toks {
			if rng.Intn(3) == 0 {
				toks[j] = vocab[rng.Intn(20)] // hot head
			} else {
				toks[j] = vocab[20+rng.Intn(n)] // long tail
			}
		}
		out[i] = simjoin.Record{ID: side + strconv.Itoa(i), Tokens: toks}
	}
	return out
}

// denseIDRecords synthesizes the dense-workload join inputs: n record
// pairs whose token sets are card IDs drawn from a vocab-sized space —
// the shape of q-gram sets over long text attributes, where cardinality
// per 64k block crosses bitvec.ArrayMaxCard and the sets become packed
// bitmap containers. Each right record is its left partner with churn
// tokens replaced, so the join finds real matches and verification runs
// deep instead of early-exiting.
func denseIDRecords(n, vocab, card, churn int, seed int64) (l, r []simjoin.IDRecord) {
	rng := rand.New(rand.NewSource(seed))
	draw := func(id string, k int) simjoin.IDRecord {
		toks := make([]uint32, k)
		for j := range toks {
			toks[j] = uint32(rng.Intn(vocab))
		}
		return simjoin.IDRecord{ID: id, Tokens: toks}
	}
	l = make([]simjoin.IDRecord, n)
	r = make([]simjoin.IDRecord, n)
	for i := range l {
		l[i] = draw("l"+strconv.Itoa(i), card)
		perturbed := make([]uint32, len(l[i].Tokens))
		copy(perturbed, l[i].Tokens)
		for c := 0; c < churn; c++ {
			perturbed[rng.Intn(len(perturbed))] = uint32(rng.Intn(vocab))
		}
		r[i] = simjoin.IDRecord{ID: "r" + strconv.Itoa(i), Tokens: perturbed}
	}
	return l, r
}

// tokensFeatureSetup builds the feature-extraction workload: two n-row
// string tables with multi-token attributes and an n-pair candidate table.
func tokensFeatureSetup(n int, seed int64) (*feature.Set, *table.Table, *table.Catalog, error) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"acme", "widget", "store", "global", "supply", "north", "west", "madison", "dane", "county", "lake", "street"}
	phrase := func(k int) string {
		s := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return s
	}
	// "name" averages ~1 token (short string: edit-distance features plus a
	// cached jaccard_3gram), "desc" and "notes" exceed 8 (long text: every
	// feature token-set) — the attribute mix the extraction cache targets.
	sch := table.StringSchema("id", "name", "desc", "notes")
	a := table.New("A", sch)
	b := table.New("B", sch)
	for i := 0; i < n; i++ {
		a.MustAppend(table.String(fmt.Sprintf("a%d", i)), table.String(phrase(1)),
			table.String(phrase(9+rng.Intn(6))), table.String(phrase(10+rng.Intn(8))))
		b.MustAppend(table.String(fmt.Sprintf("b%d", i)), table.String(phrase(1)),
			table.String(phrase(9+rng.Intn(6))), table.String(phrase(10+rng.Intn(8))))
	}
	a.MustSetKey("id")
	b.MustSetKey("id")
	cat := table.NewCatalog()
	pairs, err := table.NewPairTable("C", a, b, cat)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < n; i++ {
		table.AppendPair(pairs, fmt.Sprintf("a%d", rng.Intn(n)), fmt.Sprintf("b%d", rng.Intn(n)))
	}
	s, err := feature.AutoGenerate(a, b)
	if err != nil {
		return nil, nil, nil, err
	}
	return s, pairs, cat, nil
}

// RunTokensBench measures the string-kernel baselines against the interned
// integer kernels on three workloads — a Jaccard join, an overlap join, and
// bulk feature extraction — plus the end-to-end Figure 2 guide workflow
// against its PR-1 ns/op from baselinePath. Timing runs at the requested
// worker count; allocation counts run at Workers=1. Every row also checks
// the two paths produce bit-identical output.
func RunTokensBench(seed int64, workers, n int, baselinePath string) (*TokensBench, error) {
	w := parallel.Resolve(workers)
	baseline := loadParallelBaseline(baselinePath)
	out := &TokensBench{Provenance: CollectProvenance(), GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: w, N: n}
	if len(baseline) > 0 {
		out.BaselineFrom = baselinePath
	}
	const iters = 3
	rng := rand.New(rand.NewSource(seed))
	l := tokensRecords(n, "l", rng)
	r := tokensRecords(n, "r", rng)

	// Jaccard join at a selective threshold.
	type joinFns struct {
		name      string
		str, fast func() ([]simjoin.Pair, error)
	}
	for _, j := range []joinFns{
		{
			name: fmt.Sprintf("jaccard_join_%dk", (n+999)/1000),
			str: func() ([]simjoin.Pair, error) {
				return simjoin.ReferenceJaccardJoin(l, r, 0.5, simjoin.WithWorkers(w))
			},
			fast: func() ([]simjoin.Pair, error) { return simjoin.JaccardJoin(l, r, 0.5, simjoin.WithWorkers(w)) },
		},
		{
			name: fmt.Sprintf("overlap_join_%dk", (n+999)/1000),
			str: func() ([]simjoin.Pair, error) {
				return simjoin.ReferenceOverlapJoin(l, r, 2, simjoin.WithWorkers(w))
			},
			fast: func() ([]simjoin.Pair, error) { return simjoin.OverlapJoin(l, r, 2, simjoin.WithWorkers(w)) },
		},
	} {
		row, err := tokensJoinRow(j.name, iters, j.str, j.fast)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}

	// Dense workloads: bitset kernels (default knobs) vs the PR-5 merge
	// kernels (knobs disabled) on records big enough that their token sets
	// become packed bitmap containers. Both paths run interned IDs — this
	// pair of rows isolates the representation change, and Identical pins
	// bit-identity between the two verifiers.
	const denseN, denseVocab, denseCard, denseChurn = 192, 16384, 5000, 400
	dl, dr := denseIDRecords(denseN, denseVocab, denseCard, denseChurn, seed)
	mergeOpts := []simjoin.JoinOption{simjoin.WithWorkers(w), simjoin.WithDenseMinTokens(-1), simjoin.WithBitmapPostingMin(-1)}
	bitsetOpts := []simjoin.JoinOption{simjoin.WithWorkers(w)}
	for _, j := range []joinFns{
		{
			name: "dense_jaccard_bitset_vs_merge",
			str:  func() ([]simjoin.Pair, error) { return simjoin.JaccardJoinIDs(dl, dr, 0.8, mergeOpts...) },
			fast: func() ([]simjoin.Pair, error) { return simjoin.JaccardJoinIDs(dl, dr, 0.8, bitsetOpts...) },
		},
		{
			name: "dense_overlap_bitset_vs_merge",
			str:  func() ([]simjoin.Pair, error) { return simjoin.OverlapJoinIDs(dl, dr, denseCard/2, mergeOpts...) },
			fast: func() ([]simjoin.Pair, error) { return simjoin.OverlapJoinIDs(dl, dr, denseCard/2, bitsetOpts...) },
		},
	} {
		row, err := tokensJoinRow(j.name, iters, j.str, j.fast)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}

	// Bulk feature extraction: NoTokenCache (per-pair retokenization, the
	// string path) vs the per-row interning cache.
	fs, pairs, cat, err := tokensFeatureSetup(n, seed)
	if err != nil {
		return nil, err
	}
	runVectors := func(noCache bool, workers int) ([][]float64, error) {
		return feature.Vectors(fs, pairs, cat, feature.ExtractOptions{Workers: workers, NoTokenCache: noCache})
	}
	frow := TokensBenchRow{Name: fmt.Sprintf("feature_extract_%dk", (n+999)/1000)}
	if frow.StringNs, err = benchIters(iters, func() error { _, err := runVectors(true, w); return err }); err != nil {
		return nil, err
	}
	if frow.InternedNs, err = benchIters(iters, func() error { _, err := runVectors(false, w); return err }); err != nil {
		return nil, err
	}
	if frow.StringAllocs, err = allocsPerOp(iters, func() error { _, err := runVectors(true, 1); return err }); err != nil {
		return nil, err
	}
	if frow.InternedAllocs, err = allocsPerOp(iters, func() error { _, err := runVectors(false, 1); return err }); err != nil {
		return nil, err
	}
	vStr, err := runVectors(true, 1)
	if err != nil {
		return nil, err
	}
	vInt, err := runVectors(false, w)
	if err != nil {
		return nil, err
	}
	frow.Identical = reflect.DeepEqual(vStr, vInt)
	out.Rows = append(out.Rows, finishTokensRow(frow))

	// Flat vs pointer forest inference: the same fitted trees walked
	// node-by-node through pointers (the pre-flattening serving path, in
	// the string columns) against the SoA flat-array batch kernel the
	// corpus now scores through (interned columns). Identical pins the two
	// paths bit-for-bit across the whole probe matrix.
	forestRow, err := tokensForestRow(seed, n, iters)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, forestRow)

	// End-to-end Figure 2 guide workflow: interned kernels now sit under
	// its blockers and feature extraction; column one is the PR-1 ns/op.
	runGuideAt := func(workers int) (*GuideResult, error) {
		return RunGuideWorkers(800, 800, 400, 400, seed, workers)
	}
	grow := TokensBenchRow{Name: "figure2_guide_workflow", StringNs: baseline["figure2_guide_workflow"]}
	if grow.InternedNs, err = benchIters(1, func() error { _, err := runGuideAt(w); return err }); err != nil {
		return nil, err
	}
	if grow.InternedAllocs, err = allocsPerOp(1, func() error { _, err := runGuideAt(1); return err }); err != nil {
		return nil, err
	}
	gSerial, err := runGuideAt(1)
	if err != nil {
		return nil, err
	}
	gParallel, err := runGuideAt(w)
	if err != nil {
		return nil, err
	}
	grow.Identical = reflect.DeepEqual(gSerial, gParallel)
	out.Rows = append(out.Rows, finishTokensRow(grow))

	return out, nil
}

// tokensForestRow benches batched forest inference on a fitted random
// forest: the pointer-walking PredictProba loop against the flat SoA
// batch kernel, over an n-row probe matrix. Both paths are single
// threaded — the comparison isolates the memory-layout change.
func tokensForestRow(seed int64, n, iters int) (TokensBenchRow, error) {
	row := TokensBenchRow{Name: "forest_flat_vs_pointer"}
	const nf = 8
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []int
	for i := 0; i < 512; i++ {
		v := make([]float64, nf)
		s := 0.0
		for j := range v {
			v[j] = rng.Float64()
			s += v[j]
		}
		label := 0
		if s > nf/2 {
			label = 1
		}
		x = append(x, v)
		y = append(y, label)
	}
	names := make([]string, nf)
	for j := range names {
		names[j] = "f" + strconv.Itoa(j)
	}
	ds, err := ml.NewDataset(x, y, names)
	if err != nil {
		return row, err
	}
	clf := &ml.RandomForest{NumTrees: 32, Seed: seed, Workers: 1}
	if err := clf.Fit(ds); err != nil {
		return row, err
	}
	ff, err := ml.NewFlatForest(clf)
	if err != nil {
		return row, err
	}
	rows := n
	if rows < 256 {
		rows = 256
	}
	xs := make([][]float64, rows)
	for i := range xs {
		v := make([]float64, nf)
		for j := range v {
			v[j] = rng.Float64()
		}
		xs[i] = v
	}
	outPtr := make([]float64, rows)
	outFlat := make([]float64, rows)
	pointer := func() error {
		for i := range xs {
			outPtr[i] = clf.PredictProba(xs[i])
		}
		return nil
	}
	flat := func() error {
		ff.PredictProbaBatch(xs, outFlat)
		return nil
	}
	if row.StringNs, err = benchIters(iters, pointer); err != nil {
		return row, err
	}
	if row.InternedNs, err = benchIters(iters, flat); err != nil {
		return row, err
	}
	if row.StringAllocs, err = allocsPerOp(iters, pointer); err != nil {
		return row, err
	}
	if row.InternedAllocs, err = allocsPerOp(iters, flat); err != nil {
		return row, err
	}
	row.Identical = true
	for i := range outPtr {
		if math.Float64bits(outPtr[i]) != math.Float64bits(outFlat[i]) {
			row.Identical = false
			break
		}
	}
	return finishTokensRow(row), nil
}

// tokensJoinRow benches one join workload on both kernel paths.
func tokensJoinRow(name string, iters int, str, fast func() ([]simjoin.Pair, error)) (TokensBenchRow, error) {
	row := TokensBenchRow{Name: name}
	var err error
	if row.StringNs, err = benchIters(iters, func() error { _, e := str(); return e }); err != nil {
		return row, err
	}
	if row.InternedNs, err = benchIters(iters, func() error { _, e := fast(); return e }); err != nil {
		return row, err
	}
	if row.StringAllocs, err = allocsPerOp(iters, func() error { _, e := str(); return e }); err != nil {
		return row, err
	}
	if row.InternedAllocs, err = allocsPerOp(iters, func() error { _, e := fast(); return e }); err != nil {
		return row, err
	}
	want, err := str()
	if err != nil {
		return row, err
	}
	got, err := fast()
	if err != nil {
		return row, err
	}
	row.Identical = reflect.DeepEqual(got, want)
	return finishTokensRow(row), nil
}

// finishTokensRow derives the ratio columns.
func finishTokensRow(r TokensBenchRow) TokensBenchRow {
	if r.StringNs > 0 && r.InternedNs > 0 {
		r.Speedup = float64(r.StringNs) / float64(r.InternedNs)
	}
	if r.StringAllocs > 0 && r.InternedAllocs > 0 {
		r.AllocReduction = float64(r.StringAllocs) / float64(r.InternedAllocs)
	}
	return r
}

// FormatTokensBench renders the comparison for terminal output.
func FormatTokensBench(p *TokensBench) string {
	s := fmt.Sprintf("%-24s %14s %14s %8s %14s %14s %8s %5s\n",
		"benchmark", "string ns/op", "intern ns/op", "speedup", "string allocs", "intern allocs", "alloc÷", "same")
	for _, r := range p.Rows {
		col := func(v int64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", v)
		}
		ratio := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", v)
		}
		s += fmt.Sprintf("%-24s %14s %14d %8s %14s %14d %8s %5v\n",
			r.Name, col(r.StringNs), r.InternedNs, ratio(r.Speedup),
			col(r.StringAllocs), r.InternedAllocs, ratio(r.AllocReduction), r.Identical)
	}
	s += fmt.Sprintf("(GOMAXPROCS=%d, workers=%d, n=%d", p.GOMAXPROCS, p.Workers, p.N)
	if p.BaselineFrom != "" {
		s += ", figure2 baseline from " + p.BaselineFrom
	}
	return s + ")\n"
}
