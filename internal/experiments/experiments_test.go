package experiments

import (
	"strings"
	"testing"

	"repro/internal/datagen"
)

func TestRunTable2TaskMembers(t *testing.T) {
	// The smallest Table 2 row: 300×300 "members".
	var spec datagen.TaskSpec
	for _, ts := range datagen.Table2Tasks(1) {
		if ts.Spec.Name == "members" {
			spec = ts
		}
	}
	row, err := RunTable2Task(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Questions == 0 || row.Questions > spec.QuestionCap {
		t.Errorf("questions = %d, cap %d", row.Questions, spec.QuestionCap)
	}
	if row.Precision < 0.85 || row.Recall < 0.85 {
		t.Errorf("members P=%.3f R=%.3f, want both >= 0.85", row.Precision, row.Recall)
	}
	if row.CrowdCost != 0 {
		t.Error("single-user task should have no crowd cost")
	}
	if row.LabelTime <= 0 || row.MachineTime <= 0 {
		t.Error("time columns missing")
	}
	out := FormatTable2([]Table2Row{row})
	if !strings.Contains(out, "members") {
		t.Error("rendering lost the task name")
	}
}

func TestRunTable2CrowdTaskHasCosts(t *testing.T) {
	// A small crowd task variant to exercise the cost columns without
	// paying for a full-size task in tests.
	ts := datagen.TaskSpec{
		Org: "test", Crowd: true, QuestionCap: 400,
		Spec: datagen.Spec{Name: "crowdtest", Domain: datagen.RestaurantDomain(),
			SizeA: 300, SizeB: 300, MatchFraction: 0.5, Typo: 0.25, Seed: 5},
	}
	row, err := RunTable2Task(ts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.CrowdCost <= 0 {
		t.Error("crowd task should report a crowd cost")
	}
	if row.ComputeCost <= 0 {
		t.Error("crowd task should report a compute cost")
	}
	// $0.06 per question (3 workers × 2¢).
	want := float64(row.Questions) * 0.06
	if diff := row.CrowdCost - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("crowd cost = %v, want %v", row.CrowdCost, want)
	}
}

func TestRunTable1Deployment(t *testing.T) {
	d := datagen.Deployment{
		Org: "Test Org", Purpose: "test", InProduction: true,
		Spec: datagen.Spec{Name: "t1", Domain: datagen.RanchDomain(),
			SizeA: 400, SizeB: 400, MatchFraction: 0.4, Typo: 0.35, Missing: 0.1, Seed: 6},
	}
	row, err := RunTable1Deployment(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: ML recall beats the incumbent's at
	// comparable precision.
	if row.MLRecall <= row.BaseRecall {
		t.Errorf("ML recall %.3f should beat incumbent %.3f", row.MLRecall, row.BaseRecall)
	}
	if row.MLF1 <= row.BaseF1 {
		t.Errorf("ML F1 %.3f should beat incumbent %.3f", row.MLF1, row.BaseF1)
	}
	out := FormatTable1([]Table1Row{row})
	if !strings.Contains(out, "Test Org") {
		t.Error("rendering lost the org")
	}
}

func TestRunGuide(t *testing.T) {
	res, err := RunGuide(400, 400, 250, 250, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownsampledA != 250 || res.DownsampledB != 250 {
		t.Errorf("downsample sizes = %d/%d", res.DownsampledA, res.DownsampledB)
	}
	if res.BlockerChosen == "" || res.CVWinner == "" {
		t.Error("guide steps missing outputs")
	}
	if res.CVF1 < 0.7 {
		t.Errorf("cv f1 = %.3f suspiciously low", res.CVF1)
	}
	if res.Precision < 0.8 {
		t.Errorf("guide precision = %.3f", res.Precision)
	}
}

func TestRunConcurrency(t *testing.T) {
	res, err := RunConcurrency(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 3 {
		t.Errorf("jobs = %d", res.Jobs)
	}
	// Interleaving must help when labeling latency dominates; allow a
	// generous margin for scheduler noise but demand a real win.
	if res.Speedup < 1.2 {
		t.Errorf("concurrent speedup = %.2fx, want >= 1.2x", res.Speedup)
	}
	if FormatConcurrency(res) == "" {
		t.Error("empty rendering")
	}
}

func TestRunSmurfComparisonShape(t *testing.T) {
	rows, err := RunSmurfComparison(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reduction <= 0 {
			t.Errorf("%s: smurf did not reduce labeling (%d vs %d)", r.Task, r.SmurfQuestions, r.FalconQuestions)
		}
		if r.SmurfF1 < r.FalconF1-0.15 {
			t.Errorf("%s: smurf F1 %.3f collapsed vs falcon %.3f", r.Task, r.SmurfF1, r.FalconF1)
		}
	}
	if FormatSmurf(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestRunMLRulesAblation(t *testing.T) {
	rows, err := RunMLRulesAblation(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]MLRulesRow{}
	for _, r := range rows {
		byName[r.Workflow] = r
	}
	if byName["ml_only"].F1 <= byName["rules_only"].F1 {
		t.Errorf("ml %.3f should beat rules-only %.3f", byName["ml_only"].F1, byName["rules_only"].F1)
	}
	if byName["ml_plus_rules"].F1 < byName["ml_only"].F1-0.01 {
		t.Errorf("ml+rules %.3f should not trail ml-only %.3f (the §6 claim)",
			byName["ml_plus_rules"].F1, byName["ml_only"].F1)
	}
	if byName["rules_only"].Precision < 0.9 {
		t.Errorf("rules-only precision %.3f should be high (conservative)", byName["rules_only"].Precision)
	}
	if FormatMLRules(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestRunBlockerAblation(t *testing.T) {
	rows, err := RunBlockerAblation(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]BlockerRow{}
	for _, r := range rows {
		byName[r.Blocker] = r
	}
	// Loosening the overlap threshold must not lower recall.
	if byName["overlap(name,k=1)"].Recall < byName["overlap(name,k=2)"].Recall {
		t.Error("k=1 overlap should have >= recall of k=2")
	}
	// State equivalence keeps nearly all matches (state rarely corrupts
	// into another valid value) but reduces far less.
	se := byName["attr_equiv(state)"]
	ov := byName["overlap(name,k=2)"]
	if se.Reduction >= ov.Reduction {
		t.Error("state blocking should reduce less than name overlap")
	}
	if FormatBlockers(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestTable3And4Render(t *testing.T) {
	t3 := FormatTable3(Table3())
	if !strings.Contains(t3, "Blocking") || !strings.Contains(t3, "TOTAL") {
		t.Error("table 3 rendering incomplete")
	}
	total := 0
	for _, r := range Table3() {
		total += len(r.Tools)
	}
	if total < 60 {
		t.Errorf("tool inventory = %d commands, suspiciously small", total)
	}
	t4 := FormatTable4()
	if !strings.Contains(t4, "falcon") || !strings.Contains(t4, "18 basic + 2 composite") {
		t.Errorf("table 4 rendering incomplete:\n%s", t4)
	}
}

// TestProvenance pins that every benchmark payload can identify its
// environment: toolchain, platform, core budget, and (inside a checkout)
// the commit read straight from the .git directory.
func TestProvenance(t *testing.T) {
	p := CollectProvenance()
	if p.GoVersion == "" || p.GOOS == "" || p.GOARCH == "" || p.NumCPU < 1 || p.GOMAXPROCS < 1 {
		t.Fatalf("incomplete provenance: %+v", p)
	}
	if p.GitCommit != "" {
		if len(p.GitCommit) != 40 {
			t.Fatalf("implausible git commit %q", p.GitCommit)
		}
		for _, c := range p.GitCommit {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("git commit %q is not hex", p.GitCommit)
			}
		}
	}
}
