package experiments

import (
	"fmt"
	"strings"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
)

// Table1Row compares the PyMatcher guide workflow against the incumbent
// rule-only solution on one deployment, reproducing Table 1's "found EM
// workflows significantly better than the EM workflows in production"
// finding.
type Table1Row struct {
	Org, Purpose  string
	InProduction  bool
	MLPrecision   float64
	MLRecall      float64
	MLF1          float64
	BasePrecision float64
	BaseRecall    float64
	BaseF1        float64
}

// RunTable1Deployment runs one deployment: the PyMatcher guide (block →
// sample → label → train random forest → predict) and the incumbent
// baseline (exact-match rules) over the same candidate set.
func RunTable1Deployment(d datagen.Deployment, seed int64) (Table1Row, error) {
	task, err := datagen.Generate(d.Spec)
	if err != nil {
		return Table1Row{}, err
	}
	oracle := label.NewOracle(task.Gold)
	s, err := core.NewSession(task.A, task.B, seed)
	if err != nil {
		return Table1Row{}, err
	}
	if _, err := s.Block(block.WholeTupleOverlapBlocker{MinOverlap: 2}); err != nil {
		return Table1Row{}, err
	}
	if _, err := s.SampleAndLabel(500, oracle); err != nil {
		return Table1Row{}, err
	}
	mlMatches, _, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: seed} })
	if err != nil {
		return Table1Row{}, err
	}
	mlConf := core.Evaluate(mlMatches, task.Gold)

	baseline, err := incumbentMatcher(s)
	if err != nil {
		return Table1Row{}, err
	}
	baseMatches, _, err := s.TrainAndPredict(func() ml.Classifier { return baseline })
	if err != nil {
		return Table1Row{}, err
	}
	baseConf := core.Evaluate(baseMatches, task.Gold)

	return Table1Row{
		Org: d.Org, Purpose: d.Purpose, InProduction: d.InProduction,
		MLPrecision: mlConf.Precision(), MLRecall: mlConf.Recall(), MLF1: mlConf.F1(),
		BasePrecision: baseConf.Precision(), BaseRecall: baseConf.Recall(), BaseF1: baseConf.F1(),
	}, nil
}

// incumbentMatcher builds the conservative rule-only "company solution":
// a pair matches when every exact-match feature fires. Such systems have
// near-perfect precision and poor recall on dirty data — the behaviour
// the paper's partners reported for their production pipelines.
func incumbentMatcher(s *core.Session) (*core.RuleMatcher, error) {
	var preds []string
	for _, name := range s.Features.Names() {
		if strings.HasPrefix(name, "exact_") {
			preds = append(preds, name+" >= 1")
		}
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("experiments: no exact features to build the incumbent from")
	}
	r, err := rules.Parse("incumbent", strings.Join(preds, " AND "))
	if err != nil {
		return nil, err
	}
	var rs rules.RuleSet
	rs.Add(r)
	return core.NewRuleMatcher(rs, s.Features.Names())
}

// RunTable1 executes every deployment.
func RunTable1(seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, d := range datagen.Table1Deployments(seed) {
		row, err := RunTable1Deployment(d, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-36s %-6s | %-24s | %-24s\n",
		"Org", "Purpose", "Prod", "PyMatcher P/R/F1", "Incumbent P/R/F1")
	b.WriteString(strings.Repeat("-", 122) + "\n")
	for _, r := range rows {
		prod := "no"
		if r.InProduction {
			prod = "yes"
		}
		fmt.Fprintf(&b, "%-20s %-36s %-6s | %5.1f%% %5.1f%% %5.1f%%    | %5.1f%% %5.1f%% %5.1f%%\n",
			r.Org, r.Purpose, prod,
			100*r.MLPrecision, 100*r.MLRecall, 100*r.MLF1,
			100*r.BasePrecision, 100*r.BaseRecall, 100*r.BaseF1)
	}
	return b.String()
}
