package experiments

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
	"repro/internal/falcon"
	"repro/internal/label"
	"repro/internal/smurf"
	"repro/internal/table"
)

// SmurfRow compares Falcon and Smurf labeling effort on one string-
// matching task — the §5.3 claim that Smurf cuts labeling 43–76% at the
// same accuracy.
type SmurfRow struct {
	Task            string
	FalconQuestions int
	SmurfQuestions  int
	Reduction       float64 // 1 - smurf/falcon
	FalconF1        float64
	SmurfF1         float64
}

// smurfTasks are the string-matching workloads for the comparison.
func smurfTasks(seed int64) []datagen.Spec {
	return []datagen.Spec{
		{Name: "company_names", Domain: datagen.VendorDomain(), SizeA: 400, SizeB: 400, MatchFraction: 0.5, Typo: 0.25, Seed: seed + 41},
		{Name: "person_names", Domain: datagen.PersonDomain(), SizeA: 400, SizeB: 400, MatchFraction: 0.5, Typo: 0.25, Seed: seed + 42},
		{Name: "book_titles", Domain: datagen.BookDomain(), SizeA: 400, SizeB: 400, MatchFraction: 0.5, Typo: 0.25, Seed: seed + 43},
	}
}

// RunSmurfComparison runs Falcon and Smurf on each task with the same
// oracle and reports questions and F1 for both.
func RunSmurfComparison(seed int64) ([]SmurfRow, error) {
	var rows []SmurfRow
	for _, spec := range smurfTasks(seed) {
		task, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		// Falcon over the full tuples.
		fOracle := label.NewOracle(task.Gold)
		cat := table.NewCatalog()
		fres, err := falcon.Run(task.A, task.B, fOracle, cat, falcon.Config{SampleSize: 1000, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("falcon on %s: %w", spec.Name, err)
		}
		fp, fr := scorePairTable(fres.Matches, task.Gold)

		// Smurf over concatenated strings.
		items := func(t *table.Table) []smurf.Item {
			out := make([]smurf.Item, t.Len())
			for i := 0; i < t.Len(); i++ {
				var sb strings.Builder
				for _, c := range t.Schema().Names() {
					if c == "id" {
						continue
					}
					sb.WriteString(t.Get(i, c).AsString())
					sb.WriteByte(' ')
				}
				out[i] = smurf.Item{ID: t.Get(i, "id").AsString(), Str: sb.String()}
			}
			return out
		}
		sOracle := label.NewOracle(task.Gold)
		sres, err := smurf.MatchStrings(items(task.A), items(task.B), sOracle, smurf.Config{SampleSize: 1000, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("smurf on %s: %w", spec.Name, err)
		}
		sp, sr := scoreMatches(sres.Matches, task.Gold)

		fq := fOracle.Stats().Questions
		sq := sOracle.Stats().Questions
		rows = append(rows, SmurfRow{
			Task:            spec.Name,
			FalconQuestions: fq,
			SmurfQuestions:  sq,
			Reduction:       1 - float64(sq)/float64(fq),
			FalconF1:        f1(fp, fr),
			SmurfF1:         f1(sp, sr),
		})
	}
	return rows, nil
}

// FormatSmurf renders the comparison.
func FormatSmurf(rows []SmurfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %10s | %9s %9s\n",
		"Task", "Falcon Qs", "Smurf Qs", "Reduction", "Falcon F1", "Smurf F1")
	b.WriteString(strings.Repeat("-", 75) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %10d %9.0f%% | %8.1f%% %8.1f%%\n",
			r.Task, r.FalconQuestions, r.SmurfQuestions, 100*r.Reduction,
			100*r.FalconF1, 100*r.SmurfF1)
	}
	return b.String()
}

func scoreMatches(matches [][2]string, gold *label.Gold) (p, r float64) {
	tp := 0
	for _, m := range matches {
		if gold.IsMatch(m[0], m[1]) {
			tp++
		}
	}
	if len(matches) > 0 {
		p = float64(tp) / float64(len(matches))
	} else {
		p = 1
	}
	if gold.Len() > 0 {
		r = float64(tp) / float64(gold.Len())
	} else {
		r = 1
	}
	return
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
