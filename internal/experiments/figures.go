package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// GuideResult reports one run of the Figure 2 PyMatcher guide.
type GuideResult struct {
	// DownsampledA/B are the working-table sizes after down-sampling.
	DownsampledA, DownsampledB int
	// BlockerChosen names the winner of the blocker experiment.
	BlockerChosen string
	// Candidates is the candidate-set size.
	Candidates int
	// CVWinner and CVF1 report matcher selection.
	CVWinner string
	CVF1     float64
	// Precision/Recall score the final predictions against gold.
	Precision, Recall float64
	// Questions counts all labels spent.
	Questions int
}

// RunGuide executes the full Figure 2 guide on a generated person task:
// down-sample → try blockers → block → sample+label → CV-select matcher →
// predict → evaluate. It runs with GOMAXPROCS workers; RunGuideWorkers
// exposes the knob.
func RunGuide(sizeA, sizeB, downA, downB int, seed int64) (*GuideResult, error) {
	return RunGuideWorkers(sizeA, sizeB, downA, downB, seed, 0)
}

// RunGuideWorkers is RunGuide with an explicit worker count for every
// parallelized stage (blocking, feature extraction, forest training, CV);
// 0 means GOMAXPROCS. Results are identical for every setting.
func RunGuideWorkers(sizeA, sizeB, downA, downB int, seed int64, workers int) (*GuideResult, error) {
	return RunGuideObserved(sizeA, sizeB, downA, downB, seed, workers, nil)
}

// RunGuideObserved is RunGuideWorkers with a metrics recorder threaded
// through the session and every blocker, so one guide run yields the full
// per-stage timing breakdown (benchem -metrics). nil means off.
func RunGuideObserved(sizeA, sizeB, downA, downB int, seed int64, workers int, rec obs.Recorder) (*GuideResult, error) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "guide", Domain: datagen.PersonDomain(),
		SizeA: sizeA, SizeB: sizeB, MatchFraction: 0.4, Typo: 0.2, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	oracle := label.NewOracle(task.Gold)
	s, err := core.NewSession(task.A, task.B, seed)
	if err != nil {
		return nil, err
	}
	s.Workers = workers
	s.Metrics = rec
	if err := s.DownSample(downA, downB); err != nil {
		return nil, err
	}
	out := &GuideResult{DownsampledA: s.A.Len(), DownsampledB: s.B.Len()}

	blockers := []block.Blocker{
		block.AttrEquivalenceBlocker{Attr: "state", Workers: workers, Metrics: rec}, // blocker X
		block.OverlapBlocker{Attr: "name", Workers: workers, Metrics: rec},          // blocker Y
		block.WholeTupleOverlapBlocker{MinOverlap: 2, Workers: workers, Metrics: rec},
	}
	best, _, err := s.TryBlockers(blockers, oracle, 10)
	if err != nil {
		return nil, err
	}
	out.BlockerChosen = blockers[best].Name()
	cand, err := s.Block(blockers[best])
	if err != nil {
		return nil, err
	}
	out.Candidates = cand.Len()

	if _, err := s.SampleAndLabel(400, oracle); err != nil {
		return nil, err
	}
	cv, err := s.SelectMatcher(ml.DefaultMatcherFactories(seed), 5)
	if err != nil {
		return nil, err
	}
	out.CVWinner = cv[0].Name
	out.CVF1 = cv[0].F1
	var factory func() ml.Classifier
	for _, f := range ml.DefaultMatcherFactories(seed) {
		if f().Name() == cv[0].Name {
			factory = f
		}
	}
	matches, _, err := s.TrainAndPredict(factory)
	if err != nil {
		return nil, err
	}
	// The development stage runs on down-sampled tables, so recall is
	// measured against the gold pairs whose both sides survived
	// down-sampling — the matches the session could possibly find.
	aIdx, err := s.A.KeyIndex()
	if err != nil {
		return nil, err
	}
	bIdx, err := s.B.KeyIndex()
	if err != nil {
		return nil, err
	}
	reachable := label.NewGold(nil)
	for _, g := range task.Gold.Pairs() {
		if _, okA := aIdx[g[0]]; !okA {
			continue
		}
		if _, okB := bIdx[g[1]]; !okB {
			continue
		}
		reachable.Add(g[0], g[1])
	}
	conf := core.Evaluate(matches, reachable)
	out.Precision = conf.Precision()
	out.Recall = conf.Recall()
	out.Questions = oracle.Stats().Questions
	return out, nil
}

// ConcurrencyResult compares CloudMatcher 0.1 (one workflow at a time)
// against the CloudMatcher 1.0 metamanager on the same batch of jobs —
// the system motivation behind Figure 5.
type ConcurrencyResult struct {
	Jobs       int
	SerialTime time.Duration
	Concurrent time.Duration
	Speedup    float64
}

// RunConcurrency submits n identical Falcon jobs serially and then
// concurrently and compares wall-clock time. The jobs' simulated labeling
// latency (PerQuestion) is what concurrency hides, exactly as interleaving
// user-interaction fragments hides users' think time in the real system.
//
//emlint:allow nondeterminism -- wall-clock speedup is this experiment's product
func RunConcurrency(n int, seed int64) (*ConcurrencyResult, error) {
	makeJob := func(j int) (*cloud.Job, error) {
		task, err := datagen.Generate(datagen.Spec{
			Name: "conc", Domain: datagen.PersonDomain(),
			SizeA: 120, SizeB: 120, MatchFraction: 0.5, Typo: 0.2, Seed: seed + int64(j),
		})
		if err != nil {
			return nil, err
		}
		// A slow labeler makes user think-time the bottleneck, as in
		// production.
		oracle := label.NewOracle(task.Gold)
		oracle.PerQuestion = time.Nanosecond // metered, not slept
		slow := &sleepingLabeler{inner: oracle, sleep: 500 * time.Microsecond}
		ctx := cloud.NewJobContext(slow, seed+int64(j))
		var sbA, sbB strings.Builder
		if err := task.A.WriteCSV(&sbA); err != nil {
			return nil, err
		}
		if err := task.B.WriteCSV(&sbB); err != nil {
			return nil, err
		}
		return cloud.FalconJob(fmt.Sprintf("job%d", j), sbA.String(), sbB.String(), "id", "id", ctx, 400), nil
	}

	// Build each phase's jobs up front so only submission is timed (a Job
	// carries mutable per-run context, so the phases get separate copies).
	buildJobs := func() ([]*cloud.Job, error) {
		jobs := make([]*cloud.Job, n)
		for j := range jobs {
			job, err := makeJob(j)
			if err != nil {
				return nil, err
			}
			jobs[j] = job
		}
		return jobs, nil
	}

	// Serial: CloudMatcher 0.1 — one workflow at a time.
	mmSerial := cloud.NewMetamanager(cloud.NewRegistry(), cloud.EngineConfig{BatchWorkers: 2, UserWorkers: 1, CrowdWorkers: 1})
	defer mmSerial.Close()
	serialJobs, err := buildJobs()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, job := range serialJobs {
		if res := mmSerial.Submit(context.Background(), job); res.Err != nil {
			return nil, res.Err
		}
	}
	serial := time.Since(start)

	// Concurrent: CloudMatcher 1.0 — interleaved fragments. Every job is
	// in flight at once (n workers), the scenario the metamanager exists
	// for; the pool still propagates the lowest-index failure.
	mmConc := cloud.NewMetamanager(cloud.NewRegistry(), cloud.EngineConfig{BatchWorkers: 4, UserWorkers: 16, CrowdWorkers: 4})
	defer mmConc.Close()
	concJobs, err := buildJobs()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := parallel.ForEach(n, n, func(j int) error {
		if res := mmConc.Submit(context.Background(), concJobs[j]); res.Err != nil {
			return res.Err
		}
		return nil
	}); err != nil {
		return nil, err
	}
	concurrent := time.Since(start)

	return &ConcurrencyResult{
		Jobs:       n,
		SerialTime: serial,
		Concurrent: concurrent,
		Speedup:    float64(serial) / float64(concurrent),
	}, nil
}

// sleepingLabeler wraps a labeler with real wall-clock think time, so
// concurrency experiments have latency to hide.
type sleepingLabeler struct {
	inner label.Labeler
	sleep time.Duration
}

func (s *sleepingLabeler) Label(lid, rid string) bool {
	time.Sleep(s.sleep)
	return s.inner.Label(lid, rid)
}

func (s *sleepingLabeler) Stats() label.Stats { return s.inner.Stats() }

// FormatConcurrency renders the Figure 5 comparison.
func FormatConcurrency(r *ConcurrencyResult) string {
	return fmt.Sprintf("jobs=%d  serial(0.1)=%s  concurrent(1.0)=%s  speedup=%.2fx\n",
		r.Jobs, r.SerialTime.Round(time.Millisecond), r.Concurrent.Round(time.Millisecond), r.Speedup)
}

// Table3Row maps one step of the PyMatcher guide to the modules and tool
// counts of this reproduction (the analogue of Table 3's command counts).
type Table3Row struct {
	Step    string
	Modules string
	Tools   []string
}

// Table3 returns the live tool inventory per guide step.
func Table3() []Table3Row {
	return []Table3Row{
		{"Read/Write Data", "internal/table", []string{"ReadCSV", "ReadCSVFile", "WriteCSV", "WriteCSVFile", "AppendStrings", "Project"}},
		{"Down Sample", "internal/table", []string{"DownSample"}},
		{"Data Exploration", "internal/table", []string{"Profile", "KeyCandidates", "Head", "SortBy"}},
		{"Blocking", "internal/block, internal/simjoin", []string{"AttrEquivalenceBlocker", "HashBlocker", "OverlapBlocker", "JaccardBlocker", "SortedNeighborhoodBlocker", "WholeTupleOverlapBlocker", "RuleBlocker", "BlackBoxBlocker", "CrossBlocker", "Union", "Intersect", "Minus", "DebugBlocker", "EvalAgainstGold", "JaccardJoin", "CosineJoin", "DiceJoin", "OverlapJoin", "EditDistanceJoin"}},
		{"Sampling", "internal/table", []string{"Sample", "SampleWithReplacement", "Split", "StratifiedSplit"}},
		{"Labeling", "internal/label", []string{"Oracle", "NoisyUser", "Crowd", "Budgeted"}},
		{"Creating Feature Vectors", "internal/feature, internal/sim, internal/tokenize", []string{"AutoGenerate", "Add", "Remove", "Vectors", "VectorForIDs", "InferType", "RelDiff", "Whitespace", "QGram", "Alphanumeric", "Delimiter"}},
		{"Matching", "internal/ml, internal/deepmatch", []string{"DecisionTree", "RandomForest", "LogisticRegression", "GaussianNB", "LinearSVM", "KNN", "MLP", "TextMatcher", "CrossValidate", "SelectMatcher"}},
		{"Computing Accuracy", "internal/ml, internal/core", []string{"NewConfusion", "Evaluate", "Precision", "Recall", "F1"}},
		{"Adding Rules", "internal/rules, internal/core", []string{"Parse", "ParseSet", "Compile", "CompileSet", "EvalMap", "MatchRules", "RuleMatcher"}},
		{"Managing Metadata", "internal/table", []string{"Catalog", "SetKey", "ValidateKey", "RegisterPair", "ValidatePair", "KeyIndex"}},
	}
}

// FormatTable3 renders the inventory.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	total := 0
	fmt.Fprintf(&b, "%-26s %-46s %6s\n", "Guide step", "Modules", "Tools")
	b.WriteString(strings.Repeat("-", 82) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %-46s %6d\n", r.Step, r.Modules, len(r.Tools))
		total += len(r.Tools)
	}
	fmt.Fprintf(&b, "%-26s %-46s %6d\n", "TOTAL", "", total)
	return b.String()
}

// FormatTable4 renders the live CloudMatcher service catalog.
func FormatTable4() string {
	reg := cloud.NewRegistry()
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-7s %-10s %s\n", "Service", "Engine", "Kind", "Description")
	b.WriteString(strings.Repeat("-", 100) + "\n")
	for _, s := range reg.List() {
		kind := "basic"
		if s.Composite {
			kind = "composite"
		}
		fmt.Fprintf(&b, "%-26s %-7s %-10s %s\n", s.Name, s.Kind.String(), kind, s.Doc)
	}
	basic, comp := reg.Counts()
	fmt.Fprintf(&b, "total: %d basic + %d composite\n", basic, comp)
	return b.String()
}
