package experiments

import (
	"fmt"
	"strings"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/table"
)

// MLRulesRow compares ML-only, rules-only, and ML+rules workflows on one
// task — testing Section 6's claim that "the most accurate EM workflows
// are likely to involve a combination of ML and rules".
type MLRulesRow struct {
	Workflow  string
	Precision float64
	Recall    float64
	F1        float64
}

// RunMLRulesAblation runs the three workflow variants on a dirty person
// task whose corruption model includes zip typos that ML generalizes over
// and a small systematic pattern (exact zip + exact name) that a promote
// rule captures better than the learned threshold.
func RunMLRulesAblation(seed int64) ([]MLRulesRow, error) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "ablation", Domain: datagen.PersonDomain(),
		SizeA: 800, SizeB: 800, MatchFraction: 0.4, Typo: 0.4, Missing: 0.1, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	oracle := label.NewOracle(task.Gold)
	s, err := core.NewSession(task.A, task.B, seed)
	if err != nil {
		return nil, err
	}
	if _, err := s.Block(block.WholeTupleOverlapBlocker{MinOverlap: 2}); err != nil {
		return nil, err
	}
	if _, err := s.SampleAndLabel(500, oracle); err != nil {
		return nil, err
	}

	score := func(matches ml.Confusion) MLRulesRow {
		return MLRulesRow{Precision: matches.Precision(), Recall: matches.Recall(), F1: matches.F1()}
	}

	// ML only.
	mlMatches, model, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: seed} })
	if err != nil {
		return nil, err
	}
	mlRow := score(core.Evaluate(mlMatches, task.Gold))
	mlRow.Workflow = "ml_only"

	// Rules only: the conservative incumbent.
	baseline, err := incumbentMatcher(s)
	if err != nil {
		return nil, err
	}
	ruleMatches, _, err := s.TrainAndPredict(func() ml.Classifier { return baseline })
	if err != nil {
		return nil, err
	}
	ruleRow := score(core.Evaluate(ruleMatches, task.Gold))
	ruleRow.Workflow = "rules_only"

	// ML + rules: the trained model with a promote rule (strong name
	// agreement plus exact zip => match, recovering under-scored true
	// matches) and a veto rule (zip, address, AND city all disagree =>
	// not a match, killing same-name-different-person false positives)
	// layered on top. The conjunction keeps the veto from firing on true
	// matches that merely have a missing field.
	var promote, veto rules.RuleSet
	promote.Add(rules.MustParse("promote", "monge_elkan_jw_name >= 0.9 AND exact_zip >= 1"))
	veto.Add(rules.MustParse("veto", "exact_state <= 0.5 AND cosine_ws_name <= 0.6 AND jaro_zip <= 0.6"))
	wf := &core.Workflow{
		Blocker:  block.WholeTupleOverlapBlocker{MinOverlap: 2},
		Features: s.Features,
		Matcher:  model,
		Rules:    &core.MatchRules{Promote: promote, Veto: veto},
	}
	res, err := wf.Execute(task.A, task.B, s.Catalog)
	if err != nil {
		return nil, err
	}
	comboRow := score(core.Evaluate(res.Matches, task.Gold))
	comboRow.Workflow = "ml_plus_rules"

	return []MLRulesRow{mlRow, ruleRow, comboRow}, nil
}

// FormatMLRules renders the ablation.
func FormatMLRules(rows []MLRulesRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %9s %9s %9s\n", "Workflow", "P", "R", "F1")
	b.WriteString(strings.Repeat("-", 46) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %8.1f%% %8.1f%% %8.1f%%\n", r.Workflow, 100*r.Precision, 100*r.Recall, 100*r.F1)
	}
	return b.String()
}

// BlockerRow reports one blocker's candidate-set size / recall trade-off.
type BlockerRow struct {
	Blocker    string
	Candidates int
	Recall     float64
	Reduction  float64
}

// RunBlockerAblation runs the blocker inventory on one task and measures
// each blocker's recall and reduction ratio against gold — the trade-off
// the guide's "experiment with blockers" step navigates.
func RunBlockerAblation(seed int64) ([]BlockerRow, error) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "blockers", Domain: datagen.PersonDomain(),
		SizeA: 1000, SizeB: 1000, MatchFraction: 0.4, Typo: 0.25, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	blockers := []block.Blocker{
		block.AttrEquivalenceBlocker{Attr: "state"},
		block.AttrEquivalenceBlocker{Attr: "city"},
		block.HashBlocker{Attr: "name", Transform: block.PrefixTransform(3)},
		block.OverlapBlocker{Attr: "name", MinOverlap: 1},
		block.OverlapBlocker{Attr: "name", MinOverlap: 2},
		block.JaccardBlocker{Attr: "name", Threshold: 0.4},
		block.SortedNeighborhoodBlocker{Attr: "name", Window: 10},
		block.WholeTupleOverlapBlocker{MinOverlap: 2},
	}
	gold := task.Gold.Pairs()
	var rows []BlockerRow
	for _, blk := range blockers {
		cat := table.NewCatalog()
		cand, err := blk.Block(task.A, task.B, cat)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", blk.Name(), err)
		}
		st, err := block.EvalAgainstGold(cand, cat, gold)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BlockerRow{
			Blocker: blk.Name(), Candidates: st.Candidates,
			Recall: st.Recall, Reduction: st.ReductionRatio,
		})
	}
	return rows, nil
}

// FormatBlockers renders the blocker ablation.
func FormatBlockers(rows []BlockerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %9s %11s\n", "Blocker", "Candidates", "Recall", "Reduction")
	b.WriteString(strings.Repeat("-", 70) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %12d %8.1f%% %10.2f%%\n", r.Blocker, r.Candidates, 100*r.Recall, 100*r.Reduction)
	}
	return b.String()
}
