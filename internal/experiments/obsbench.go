package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/block"
	"repro/internal/datagen"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/table"
)

// ObsBenchRow compares one instrumented hot path with the recorder off
// (no-op) and on (live registry), against the pre-instrumentation baseline
// from BENCH_parallel.json when available.
type ObsBenchRow struct {
	Name string `json:"name"`
	// BaselineNs is the PR-1 parallel ns/op for the same workload, 0 when
	// no baseline file was found.
	BaselineNs int64 `json:"baseline_ns_per_op,omitempty"`
	// NopNs times the instrumented path with metrics disabled — the
	// configuration every default caller runs.
	NopNs int64 `json:"nop_ns_per_op"`
	// LiveNs times the same path recording into a live Registry.
	LiveNs int64 `json:"live_ns_per_op"`
	// NopVsBaselinePct is (NopNs-BaselineNs)/BaselineNs, the overhead the
	// disabled instrumentation added over PR 1. Noise puts it slightly
	// negative as often as positive.
	NopVsBaselinePct float64 `json:"nop_vs_baseline_pct,omitempty"`
	// LiveVsNopPct is the cost of actually recording.
	LiveVsNopPct float64 `json:"live_vs_nop_pct"`
}

// ObsBench is the machine-readable payload of BENCH_obs.json: evidence that
// the no-op recorder keeps the instrumented hot paths at their PR-1 cost.
type ObsBench struct {
	Provenance   Provenance    `json:"provenance"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Workers      int           `json:"workers"`
	BaselineFrom string        `json:"baseline_from,omitempty"`
	Rows         []ObsBenchRow `json:"benchmarks"`
}

// MarshalBenchJSON renders the payload for BENCH_obs.json.
func (p *ObsBench) MarshalBenchJSON() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// loadParallelBaseline reads BENCH_parallel.json and indexes each
// workload's Workers=1 ns/op at its largest swept n by workload name; a
// missing or unreadable file (or one whose workloads don't overlap the obs
// bench's) yields an empty map — the bench still runs, just without the
// baseline column.
func loadParallelBaseline(path string) map[string]int64 {
	out := map[string]int64{}
	data, err := os.ReadFile(path)
	if err != nil {
		return out
	}
	var base ParallelBench
	if err := json.Unmarshal(data, &base); err != nil {
		return out
	}
	bestN := map[string]int{}
	for _, wl := range base.Workloads {
		for _, c := range wl.Cells {
			if c.Workers == 1 && c.N >= bestN[wl.Name] {
				bestN[wl.Name] = c.N
				out[wl.Name] = c.NsPerOp
			}
		}
	}
	return out
}

// RunObsBench measures the two instrumented hot paths BENCH_parallel.json
// also covers — hash blocking and 5-fold cross-validation, identical
// workloads — first with the recorder disabled (nil → obs.Nop), then
// recording into a live Registry, and compares the no-op timings against
// the PR-1 baselines read from baselinePath.
func RunObsBench(seed int64, workers int, baselinePath string) (*ObsBench, error) {
	w := parallel.Resolve(workers)
	baseline := loadParallelBaseline(baselinePath)
	out := &ObsBench{Provenance: CollectProvenance(), GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: w}
	if len(baseline) > 0 {
		out.BaselineFrom = baselinePath
	}
	const iters = 5

	// Hash blocking: same 2k-person workload as hash_blocking_2k.
	task, err := datagen.Generate(datagen.Spec{
		Name: "parbench", Domain: datagen.PersonDomain(),
		SizeA: 2000, SizeB: 2000, MatchFraction: 0.4, Typo: 0.2, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	runHash := func(rec obs.Recorder) (*table.Table, error) {
		cat := table.NewCatalog()
		return block.HashBlocker{
			Attr: "city", Transform: block.LowerTransform, Workers: w, Metrics: rec,
		}.Block(task.A, task.B, cat)
	}
	nopNs, err := benchIters(iters, func() error { _, err := runHash(nil); return err })
	if err != nil {
		return nil, err
	}
	liveNs, err := benchIters(iters, func() error { _, err := runHash(obs.NewRegistry()); return err })
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, obsBenchRow("hash_blocking_2k", baseline["hash_blocking_2k"], nopNs, liveNs))

	// Cross-validation: same dataset and fold count as cross_validate_5fold.
	ds, err := benchDataset(800, 16, seed)
	if err != nil {
		return nil, err
	}
	runCV := func(rec obs.Recorder) (ml.CVResult, error) {
		rng := rand.New(rand.NewSource(seed))
		return ml.CrossValidate(func() ml.Classifier {
			return &ml.RandomForest{NumTrees: 16, Seed: seed, Workers: 1}
		}, ds, 5, rng, ml.WithWorkers(w), ml.WithMetrics(rec))
	}
	nopNs, err = benchIters(iters, func() error { _, err := runCV(nil); return err })
	if err != nil {
		return nil, err
	}
	liveNs, err = benchIters(iters, func() error { _, err := runCV(obs.NewRegistry()); return err })
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, obsBenchRow("cross_validate_5fold", baseline["cross_validate_5fold"], nopNs, liveNs))

	return out, nil
}

func obsBenchRow(name string, baselineNs, nopNs, liveNs int64) ObsBenchRow {
	r := ObsBenchRow{Name: name, BaselineNs: baselineNs, NopNs: nopNs, LiveNs: liveNs}
	if baselineNs > 0 {
		r.NopVsBaselinePct = 100 * float64(nopNs-baselineNs) / float64(baselineNs)
	}
	if nopNs > 0 {
		r.LiveVsNopPct = 100 * float64(liveNs-nopNs) / float64(nopNs)
	}
	return r
}

// FormatObsBench renders the overhead comparison for terminal output.
func FormatObsBench(p *ObsBench) string {
	s := fmt.Sprintf("%-22s %14s %14s %14s %12s %12s\n",
		"benchmark", "baseline ns/op", "nop ns/op", "live ns/op", "nop vs base", "live vs nop")
	for _, r := range p.Rows {
		base := "-"
		delta := "-"
		if r.BaselineNs > 0 {
			base = fmt.Sprintf("%d", r.BaselineNs)
			delta = fmt.Sprintf("%+.1f%%", r.NopVsBaselinePct)
		}
		s += fmt.Sprintf("%-22s %14s %14d %14d %12s %+11.1f%%\n",
			r.Name, base, r.NopNs, r.LiveNs, delta, r.LiveVsNopPct)
	}
	s += fmt.Sprintf("(GOMAXPROCS=%d, workers=%d", p.GOMAXPROCS, p.Workers)
	if p.BaselineFrom != "" {
		s += ", baseline from " + p.BaselineFrom
	}
	return s + ")\n"
}
