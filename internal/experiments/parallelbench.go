package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/simjoin"
)

// ParallelCell is one point of the workers x n scaling sweep: how fast one
// workload ran at this worker count and input size, how much it allocated,
// and whether its output stayed bit-identical to the Workers=1 run on the
// same input — the determinism contract of internal/parallel.
type ParallelCell struct {
	Workers     int   `json:"workers"`
	N           int   `json:"n"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Speedup is serial ns / this cell's ns at the same n; 1.0 by
	// construction on the workers=1 cells.
	Speedup   float64 `json:"speedup_vs_workers1"`
	Identical bool    `json:"identical"`
}

// ParallelWorkload is one benchmarked hot path with its sweep cells in
// (n, workers) order.
type ParallelWorkload struct {
	Name  string         `json:"name"`
	Cells []ParallelCell `json:"cells"`
}

// ParallelBench is the machine-readable payload of BENCH_parallel.json:
// the scaling surface of the parallel execution layer. CoresOK records
// whether the box could show scaling at all (GOMAXPROCS >= 2) — cells
// measured with CoresOK=false pin determinism and allocation counts, but
// their speedups are meaningless and regression gates must skip them.
type ParallelBench struct {
	Provenance      Provenance         `json:"provenance"`
	GOMAXPROCS      int                `json:"gomaxprocs"`
	CoresOK         bool               `json:"cores_ok"`
	WorkerSweep     []int              `json:"worker_sweep"`
	NSweep          []int              `json:"n_sweep"`
	SerialFallbacks int64              `json:"serial_fallbacks_total"`
	Workloads       []ParallelWorkload `json:"workloads"`
}

// MarshalBenchJSON renders the payload for BENCH_parallel.json.
func (p *ParallelBench) MarshalBenchJSON() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Diverged returns the workload/cell labels whose output differed from the
// Workers=1 run — the failures CI must treat as hard errors regardless of
// core count.
//
//emlint:allow hotalloc -- cold diagnostic path over a handful of cells, expected empty
func (p *ParallelBench) Diverged() []string {
	var out []string
	for _, wl := range p.Workloads {
		for _, c := range wl.Cells {
			if !c.Identical {
				out = append(out, fmt.Sprintf("%s[workers=%d,n=%d]", wl.Name, c.Workers, c.N))
			}
		}
	}
	return out
}

// SpeedupAt returns the speedup of the named workload at the given worker
// count and the largest swept n, or 0 when no such cell exists.
func (p *ParallelBench) SpeedupAt(name string, workers int) float64 {
	best := 0.0
	bestN := -1
	for _, wl := range p.Workloads {
		if wl.Name != name {
			continue
		}
		for _, c := range wl.Cells {
			if c.Workers == workers && c.N > bestN {
				bestN, best = c.N, c.Speedup
			}
		}
	}
	return best
}

// benchIters times fn over iters runs after one warmup and returns the
// fastest ns/op — the usual minimum-of-k estimator, robust to scheduler
// noise at these run lengths.
//
//emlint:allow nondeterminism -- this is the benchmark harness's stopwatch
func benchIters(iters int, fn func() error) (int64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	best := int64(-1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// benchAllocs returns the heap allocation count of one fn run along with
// its result (reused for the output-identity check, saving a run). The
// warmup in benchIters has already happened, so steady-state lazily-built
// state is in place.
func benchAllocs(fn func() (any, error)) (int64, any, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	out, err := fn()
	if err != nil {
		return 0, nil, err
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs - before.Mallocs), out, nil
}

// benchDataset builds the deterministic dense dataset the ML benches use.
func benchDataset(n, d int, seed int64) (*ml.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0]+row[1] > 1 {
			y[i] = 1
		}
	}
	return ml.NewDataset(x, y, nil)
}

// scalingWorkload is one swept hot path: build prepares the size-n input,
// run executes it at a worker count and returns a comparable output.
type scalingWorkload struct {
	name  string
	build func(n int, seed int64) error
	run   func(workers int) (any, error)
}

// benchJoinRecords generates one side of the simjoin scaling workload:
// n records of 4-10 tokens over a vocabulary that grows with n, zipf-ish
// skewed so high-frequency tokens (the bitmap-postings case) exist at
// every size.
func benchJoinRecords(n int, seed int64) []simjoin.IDRecord {
	rng := rand.New(rand.NewSource(seed))
	vocab := n / 4
	if vocab < 256 {
		vocab = 256
	}
	out := make([]simjoin.IDRecord, n)
	for i := range out {
		k := 4 + rng.Intn(7)
		toks := make([]uint32, k)
		for j := range toks {
			v := rng.Intn(vocab)
			if rng.Intn(4) == 0 {
				v = rng.Intn(vocab/16 + 1) // hot tokens
			}
			toks[j] = uint32(v)
		}
		out[i] = simjoin.IDRecord{ID: fmt.Sprintf("r%d", i), Tokens: toks}
	}
	return out
}

// RunParallelBench sweeps the parallelized hot paths — the Jaccard
// similarity join and random-forest training — over every (workers, n)
// combination, recording ns/op, allocs/op, speedup against the Workers=1
// run at the same n, and whether the output stayed bit-identical to it.
func RunParallelBench(seed int64, workerSweep, nSweep []int) (*ParallelBench, error) {
	if len(workerSweep) == 0 {
		workerSweep = []int{1, 2, 4, 8}
	}
	if len(nSweep) == 0 {
		nSweep = []int{1000, 10000, 100000}
	}
	out := &ParallelBench{
		Provenance:  CollectProvenance(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CoresOK:     runtime.GOMAXPROCS(0) >= 2,
		WorkerSweep: workerSweep,
		NSweep:      nSweep,
	}
	fallbacksBefore := parallel.SerialFallbacks()

	var joinL, joinR []simjoin.IDRecord
	var forestDS *ml.Dataset
	workloads := []scalingWorkload{
		{
			name: "simjoin_jaccard",
			build: func(n int, seed int64) error {
				joinL = benchJoinRecords(n, seed)
				joinR = benchJoinRecords(n, seed+1)
				return nil
			},
			run: func(workers int) (any, error) {
				return simjoin.JaccardJoinIDs(joinL, joinR, 0.5, simjoin.WithWorkers(workers))
			},
		},
		{
			name: "forest_fit_32trees",
			build: func(n int, seed int64) error {
				var err error
				forestDS, err = benchDataset(n, 16, seed)
				return err
			},
			run: func(workers int) (any, error) {
				f := &ml.RandomForest{NumTrees: 32, Seed: seed, Workers: workers}
				if err := f.Fit(forestDS); err != nil {
					return nil, err
				}
				// Reduce the forest to a comparable fingerprint: vote
				// fractions over a sample of the training rows.
				votes := make([]float64, 0, 64)
				step := forestDS.Len()/64 + 1
				for i := 0; i < forestDS.Len(); i += step {
					votes = append(votes, f.VoteFraction(forestDS.X[i]))
				}
				return votes, nil
			},
		},
	}

	for _, wl := range workloads {
		work := ParallelWorkload{Name: wl.name}
		for _, n := range nSweep {
			if err := wl.build(n, seed); err != nil {
				return nil, err
			}
			iters := 3
			if n > 10000 {
				iters = 1 // big inputs: one timed run after warmup
			}
			var serialNs int64
			var serialOut any
			for _, w := range workerSweep {
				w := w
				ns, err := benchIters(iters, func() error { _, err := wl.run(w); return err })
				if err != nil {
					return nil, err
				}
				allocs, got, err := benchAllocs(func() (any, error) { return wl.run(w) })
				if err != nil {
					return nil, err
				}
				cell := ParallelCell{Workers: w, N: n, NsPerOp: ns, AllocsPerOp: allocs}
				if w == workerSweep[0] {
					serialNs, serialOut = ns, got
				}
				if ns > 0 {
					cell.Speedup = float64(serialNs) / float64(ns)
				}
				cell.Identical = reflect.DeepEqual(got, serialOut)
				work.Cells = append(work.Cells, cell)
			}
		}
		out.Workloads = append(out.Workloads, work)
	}
	out.SerialFallbacks = parallel.SerialFallbacks() - fallbacksBefore
	return out, nil
}

// FormatParallelBench renders the scaling surface for terminal output.
//
//emlint:allow hotalloc -- terminal rendering runs once per bench invocation
func FormatParallelBench(p *ParallelBench) string {
	s := fmt.Sprintf("%-20s %8s %8s %14s %14s %8s %10s\n",
		"workload", "n", "workers", "ns/op", "allocs/op", "speedup", "identical")
	for _, wl := range p.Workloads {
		for _, c := range wl.Cells {
			s += fmt.Sprintf("%-20s %8d %8d %14d %14d %7.2fx %10v\n",
				wl.Name, c.N, c.Workers, c.NsPerOp, c.AllocsPerOp, c.Speedup, c.Identical)
		}
	}
	s += fmt.Sprintf("(GOMAXPROCS=%d, cores_ok=%v, gated serial fallbacks=%d)\n",
		p.GOMAXPROCS, p.CoresOK, p.SerialFallbacks)
	return s
}
