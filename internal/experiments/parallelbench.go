package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"repro/internal/block"
	"repro/internal/datagen"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/table"
)

// ParallelBenchRow compares one hot path at Workers=1 against the tuned
// worker count. Identical reports whether the two runs produced
// bit-identical output — the determinism contract of internal/parallel.
type ParallelBenchRow struct {
	Name       string  `json:"name"`
	SerialNs   int64   `json:"serial_ns_per_op"`
	ParallelNs int64   `json:"parallel_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"`
}

// ParallelBench is the machine-readable payload of BENCH_parallel.json:
// the perf trajectory of the parallel execution layer, tracked from the
// PR that introduced it onward.
type ParallelBench struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Rows       []ParallelBenchRow `json:"benchmarks"`
}

// MarshalBenchJSON renders the payload for BENCH_parallel.json.
func (p *ParallelBench) MarshalBenchJSON() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// benchIters times fn over iters runs after one warmup and returns the
// fastest ns/op — the usual minimum-of-k estimator, robust to scheduler
// noise at these run lengths.
//
//emlint:allow nondeterminism -- this is the benchmark harness's stopwatch
func benchIters(iters int, fn func() error) (int64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	best := int64(-1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// benchDataset builds the deterministic dense dataset the ML benches use.
func benchDataset(n, d int, seed int64) (*ml.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0]+row[1] > 1 {
			y[i] = 1
		}
	}
	return ml.NewDataset(x, y, nil)
}

// samePairs reports whether two pair tables hold identical rows in
// identical order.
func samePairs(a, b *table.Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j].AsString() != rb[j].AsString() {
				return false
			}
		}
	}
	return true
}

// RunParallelBench measures the parallelized hot paths — random-forest
// training, cross-validation, hash blocking, and the end-to-end Figure 2
// workflow — at Workers=1 vs the requested worker count (0 means
// GOMAXPROCS), verifying on every comparison that the parallel output is
// bit-identical to the serial one.
func RunParallelBench(seed int64, workers int) (*ParallelBench, error) {
	w := parallel.Resolve(workers)
	out := &ParallelBench{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: w}
	const iters = 3

	// Random-forest training: NumTrees >= 32 per the acceptance bar.
	ds, err := benchDataset(800, 16, seed)
	if err != nil {
		return nil, err
	}
	fitForest := func(workers int) (*ml.RandomForest, error) {
		f := &ml.RandomForest{NumTrees: 48, Seed: seed, Workers: workers}
		if err := f.Fit(ds); err != nil {
			return nil, err
		}
		return f, nil
	}
	serialNs, err := benchIters(iters, func() error { _, err := fitForest(1); return err })
	if err != nil {
		return nil, err
	}
	parallelNs, err := benchIters(iters, func() error { _, err := fitForest(w); return err })
	if err != nil {
		return nil, err
	}
	fSerial, err := fitForest(1)
	if err != nil {
		return nil, err
	}
	fParallel, err := fitForest(w)
	if err != nil {
		return nil, err
	}
	identical := true
	for i := 0; i < ds.Len(); i += 7 {
		if fSerial.VoteFraction(ds.X[i]) != fParallel.VoteFraction(ds.X[i]) {
			identical = false
			break
		}
	}
	out.Rows = append(out.Rows, benchRow("forest_fit_48trees", serialNs, parallelNs, identical))

	// Cross-validation of the forest lineup member on the same dataset.
	runCV := func(workers int) (ml.CVResult, error) {
		rng := rand.New(rand.NewSource(seed))
		return ml.CrossValidate(func() ml.Classifier {
			return &ml.RandomForest{NumTrees: 16, Seed: seed, Workers: 1}
		}, ds, 5, rng, ml.WithWorkers(workers))
	}
	serialNs, err = benchIters(iters, func() error { _, err := runCV(1); return err })
	if err != nil {
		return nil, err
	}
	parallelNs, err = benchIters(iters, func() error { _, err := runCV(w); return err })
	if err != nil {
		return nil, err
	}
	cvSerial, err := runCV(1)
	if err != nil {
		return nil, err
	}
	cvParallel, err := runCV(w)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, benchRow("cross_validate_5fold", serialNs, parallelNs, cvSerial == cvParallel))

	// Hash blocking on synthetic datagen person tables.
	task, err := datagen.Generate(datagen.Spec{
		Name: "parbench", Domain: datagen.PersonDomain(),
		SizeA: 2000, SizeB: 2000, MatchFraction: 0.4, Typo: 0.2, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	runHash := func(workers int) (*table.Table, error) {
		cat := table.NewCatalog()
		return block.HashBlocker{Attr: "city", Transform: block.LowerTransform, Workers: workers}.Block(task.A, task.B, cat)
	}
	serialNs, err = benchIters(iters, func() error { _, err := runHash(1); return err })
	if err != nil {
		return nil, err
	}
	parallelNs, err = benchIters(iters, func() error { _, err := runHash(w); return err })
	if err != nil {
		return nil, err
	}
	hSerial, err := runHash(1)
	if err != nil {
		return nil, err
	}
	hParallel, err := runHash(w)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, benchRow("hash_blocking_2k", serialNs, parallelNs, samePairs(hSerial, hParallel)))

	// End-to-end Figure 2 guide workflow.
	runGuideAt := func(workers int) (*GuideResult, error) {
		return RunGuideWorkers(800, 800, 400, 400, seed, workers)
	}
	serialNs, err = benchIters(1, func() error { _, err := runGuideAt(1); return err })
	if err != nil {
		return nil, err
	}
	parallelNs, err = benchIters(1, func() error { _, err := runGuideAt(w); return err })
	if err != nil {
		return nil, err
	}
	gSerial, err := runGuideAt(1)
	if err != nil {
		return nil, err
	}
	gParallel, err := runGuideAt(w)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, benchRow("figure2_guide_workflow", serialNs, parallelNs, reflect.DeepEqual(gSerial, gParallel)))

	return out, nil
}

func benchRow(name string, serialNs, parallelNs int64, identical bool) ParallelBenchRow {
	speedup := 0.0
	if parallelNs > 0 {
		speedup = float64(serialNs) / float64(parallelNs)
	}
	return ParallelBenchRow{Name: name, SerialNs: serialNs, ParallelNs: parallelNs, Speedup: speedup, Identical: identical}
}

// FormatParallelBench renders the comparison for terminal output.
func FormatParallelBench(p *ParallelBench) string {
	s := fmt.Sprintf("%-24s %14s %14s %8s %10s\n", "benchmark", "serial ns/op", "parallel ns/op", "speedup", "identical")
	for _, r := range p.Rows {
		s += fmt.Sprintf("%-24s %14d %14d %7.2fx %10v\n", r.Name, r.SerialNs, r.ParallelNs, r.Speedup, r.Identical)
	}
	s += fmt.Sprintf("(GOMAXPROCS=%d, workers=%d)\n", p.GOMAXPROCS, p.Workers)
	return s
}
