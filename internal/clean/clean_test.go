package clean

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/table"
)

func TestDetectOverFrequentFindsGarbage(t *testing.T) {
	// Generate the Vendors pathology and check the detector finds the
	// generic addresses.
	task, err := datagen.Generate(datagen.Spec{
		Name: "vendors", Domain: datagen.VendorDomain(),
		SizeA: 400, SizeB: 400, MatchFraction: 0.4, GarbageFraction: 0.25, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	flagged, err := DetectOverFrequent(task.B, "address", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) == 0 {
		t.Fatal("garbage addresses not detected")
	}
	// The three generic strings account for ~25% of rows; each should be
	// flagged well above the 2% threshold.
	totalShare := 0.0
	for _, f := range flagged {
		totalShare += f.Share
	}
	if totalShare < 0.2 {
		t.Errorf("flagged values cover only %.2f of rows", totalShare)
	}
	// Flagged list is sorted by count descending.
	for i := 1; i < len(flagged); i++ {
		if flagged[i].Count > flagged[i-1].Count {
			t.Fatal("not sorted")
		}
	}
}

func TestDetectOverFrequentCleanData(t *testing.T) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "clean", Domain: datagen.VendorDomain(),
		SizeA: 400, SizeB: 400, MatchFraction: 0.4, Seed: 82,
	})
	if err != nil {
		t.Fatal(err)
	}
	flagged, err := DetectOverFrequent(task.B, "address", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 0 {
		t.Errorf("clean data flagged: %v", flagged)
	}
}

func TestDetectOverFrequentValidation(t *testing.T) {
	tab := table.New("t", table.StringSchema("id", "x"))
	if _, err := DetectOverFrequent(tab, "ghost", 0.1); err == nil {
		t.Error("want missing-column error")
	}
	if _, err := DetectOverFrequent(tab, "x", 0); err == nil {
		t.Error("want share-range error")
	}
	if _, err := DetectOverFrequent(tab, "x", 1); err == nil {
		t.Error("want share-range error")
	}
	// Empty table: no values, no error.
	out, err := DetectOverFrequent(tab, "x", 0.5)
	if err != nil || out != nil {
		t.Errorf("empty table: %v %v", out, err)
	}
}

func TestNullReport(t *testing.T) {
	tab := table.New("t", table.StringSchema("id", "mostly_null", "full"))
	for i := 0; i < 10; i++ {
		nv := table.Null(table.KindString)
		if i == 0 {
			nv = table.String("x")
		}
		tab.MustAppend(table.String(string(rune('a'+i))), nv, table.String("v"))
	}
	cols := NullReport(tab, 0.5)
	if len(cols) != 1 || cols[0] != "mostly_null" {
		t.Errorf("null report = %v", cols)
	}
	if got := NullReport(tab, 0.95); len(got) != 0 {
		t.Errorf("high-threshold report = %v", got)
	}
}

func TestIsolate(t *testing.T) {
	tab := table.New("t", table.StringSchema("id", "addr"))
	tab.MustAppend(table.String("1"), table.String("real address 12"))
	tab.MustAppend(table.String("2"), table.String("junk"))
	tab.MustAppend(table.String("3"), table.String("junk"))
	tab.MustAppend(table.String("4"), table.Null(table.KindString))
	if err := tab.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	clean, dirty, err := Isolate(tab, "addr", []SuspiciousValue{{Value: "junk"}})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != 2 || dirty.Len() != 2 {
		t.Fatalf("split = %d/%d", clean.Len(), dirty.Len())
	}
	if clean.Key() != "id" || dirty.Key() != "id" {
		t.Error("key metadata lost")
	}
	if _, _, err := Isolate(tab, "ghost", nil); err == nil {
		t.Error("want missing-column error")
	}
}

// TestCleaningRecoversVendorsAccuracy demonstrates the Table 2 story end
// to end at miniature scale: detect the garbage segment, isolate it, and
// confirm far more of the remaining gold matches are resolvable by exact
// address than before cleaning.
func TestCleaningRecoversVendorsAccuracy(t *testing.T) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "vendors", Domain: datagen.VendorDomain(),
		SizeA: 400, SizeB: 400, MatchFraction: 0.4, GarbageFraction: 0.3, Seed: 83,
	})
	if err != nil {
		t.Fatal(err)
	}
	flagged, err := DetectOverFrequent(task.B, "address", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cleanB, dirtyB, err := Isolate(task.B, "address", flagged)
	if err != nil {
		t.Fatal(err)
	}
	if dirtyB.Len() == 0 {
		t.Fatal("nothing isolated")
	}
	// Within the dirty segment, addresses are shared by many unrelated
	// vendors; within the clean segment they are nearly unique.
	distinctRatio := func(tb *table.Table) float64 {
		if tb.Len() == 0 {
			return 1
		}
		seen := map[string]bool{}
		for i := 0; i < tb.Len(); i++ {
			seen[tb.Get(i, "address").AsString()] = true
		}
		return float64(len(seen)) / float64(tb.Len())
	}
	if dr := distinctRatio(dirtyB); dr > 0.1 {
		t.Errorf("dirty segment address distinct ratio %.2f, want tiny", dr)
	}
	if cr := distinctRatio(cleanB); cr < 0.8 {
		t.Errorf("clean segment address distinct ratio %.2f, want high", cr)
	}
}
