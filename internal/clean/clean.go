// Package clean implements the dirty-data detection the paper's lessons
// call for: "it is important that we can detect dirty data, isolate it,
// and then clean it, to maximize EM accuracy" (§5.3). The Vendors task of
// Table 2 is the motivating case: Brazilian vendors entered a handful of
// generic addresses instead of real ones, making those records
// unmatchable; once detected and removed, accuracy recovered.
//
// The detectors here are the self-service analogues: over-frequent value
// detection (copy-pasted placeholder values repeat across far more records
// than a genuine value would), null-rate screening, and row isolation.
package clean

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// SuspiciousValue is one flagged attribute value.
type SuspiciousValue struct {
	Value string
	Count int
	// Share is Count / non-null rows.
	Share float64
}

// DetectOverFrequent flags values of the named column that occur in more
// than share (0..1) of the non-null rows — the signature of placeholder
// junk like "main street 1". Values are returned most frequent first.
// Columns expected to be low-cardinality (categories) should not be
// screened; pick share well above their natural frequency.
func DetectOverFrequent(t *table.Table, attr string, share float64) ([]SuspiciousValue, error) {
	j := t.Schema().Lookup(attr)
	if j < 0 {
		return nil, fmt.Errorf("clean: no column %q in %q", attr, t.Name())
	}
	if share <= 0 || share >= 1 {
		return nil, fmt.Errorf("clean: share %v out of (0, 1)", share)
	}
	counts := make(map[string]int)
	nonNull := 0
	for i := 0; i < t.Len(); i++ {
		v := t.Row(i)[j]
		if v.IsNull() {
			continue
		}
		nonNull++
		counts[v.AsString()]++
	}
	if nonNull == 0 {
		return nil, nil
	}
	var out []SuspiciousValue
	for v, c := range counts {
		s := float64(c) / float64(nonNull)
		if s > share {
			out = append(out, SuspiciousValue{Value: v, Count: c, Share: s})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	return out, nil
}

// NullReport lists columns whose null ratio exceeds the threshold — the
// Vehicles pathology ("the data was so incomplete").
func NullReport(t *table.Table, threshold float64) []string {
	var out []string
	for _, cp := range t.Profile(1).Columns {
		if cp.NullRatio > threshold {
			out = append(out, cp.Name)
		}
	}
	return out
}

// Isolate splits the table into (clean, dirty): rows whose attr value is
// in the flagged set go to dirty. The flagged set typically comes from
// DetectOverFrequent. Metadata (name, key) is preserved on both halves.
func Isolate(t *table.Table, attr string, flagged []SuspiciousValue) (clean, dirty *table.Table, err error) {
	j := t.Schema().Lookup(attr)
	if j < 0 {
		return nil, nil, fmt.Errorf("clean: no column %q in %q", attr, t.Name())
	}
	bad := make(map[string]bool, len(flagged))
	for _, f := range flagged {
		bad[f.Value] = true
	}
	clean = t.Filter(func(r table.Row) bool {
		return r[j].IsNull() || !bad[r[j].AsString()]
	})
	dirty = t.Filter(func(r table.Row) bool {
		return !r[j].IsNull() && bad[r[j].AsString()]
	})
	clean.SetName(t.Name() + "_clean")
	dirty.SetName(t.Name() + "_dirty")
	return clean, dirty, nil
}
