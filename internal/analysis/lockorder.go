package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder detects inconsistent lock acquisition orders across the whole
// program: if one code path takes lock A and then (directly or through any
// chain of module-local calls) lock B, while another path takes B then A,
// two goroutines running those paths can each hold one lock and wait
// forever for the other. Locks are compared by type-level identity
// (pkg.Type.field or a package-level variable, via locks.go), so
// Registry.mu → Pool.mu ordering is tracked from cloud handlers down
// through serve even though no single function sees both acquires.
//
// The scan is linear per function (held set maintained in source order,
// closures excluded — they run under their own dynamic context) and
// call-graph transitive for the second lock: a call made while holding A
// contributes (A, X) for every identified lock X the callee may acquire.
// Diagnostics anchor at acquisition sites in the package under analysis
// and cite the opposite-order site.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "Inconsistent pairwise lock acquisition order across the program (deadlock risk)",
	Run: func(pass *Pass) {
		graph := pass.Prog.CallGraph()
		acq := &acquiredLocks{graph: graph, memo: make(map[*types.Func][]string)}
		type rec struct {
			first, second string
			pos           token.Pos
			via           string
		}
		var recs []rec
		for _, fn := range graph.Functions() {
			fd := graph.Decl(fn)
			pkg := graph.PackageOf(fn)
			if strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
				continue
			}
			var held []lockCall
			walkUnit(fd.Body, func(n ast.Node) bool {
				if lc, ok := resolveLockCall(pkg.Info, n); ok {
					if _, isAcquire := syncLockMethods[lc.method]; isAcquire {
						for _, h := range held {
							if h.id != "" && lc.id != "" && h.id != lc.id {
								recs = append(recs, rec{h.id, lc.id, n.Pos(), ""})
							}
						}
						held = append(held, lc)
					} else {
						// Release: drop the most recent matching acquire.
						for i := len(held) - 1; i >= 0; i-- {
							if held[i].key == lc.key {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
					return true
				}
				if call, ok := n.(*ast.CallExpr); ok && len(held) > 0 {
					callee := calleeFunc(pkg.Info, call)
					if callee != nil && graph.Decl(callee) != nil {
						for _, id := range acq.ids(callee) {
							for _, h := range held {
								if h.id != "" && id != h.id {
									recs = append(recs, rec{h.id, id, call.Pos(), callee.Name()})
								}
							}
						}
					}
				}
				return true
			})
		}
		// First occurrence of each ordered pair, in deterministic
		// collection order, is the site conflicts cite.
		firstAt := make(map[[2]string]token.Pos)
		for _, r := range recs {
			k := [2]string{r.first, r.second}
			if _, ok := firstAt[k]; !ok {
				firstAt[k] = r.pos
			}
		}
		rootFiles := make(map[string]bool)
		for _, f := range pass.Files {
			rootFiles[pass.Fset.Position(f.Pos()).Filename] = true
		}
		reported := make(map[string]bool)
		for _, r := range recs {
			opp, conflict := firstAt[[2]string{r.second, r.first}]
			if !conflict || !rootFiles[pass.Fset.Position(r.pos).Filename] {
				continue
			}
			key := pass.Fset.Position(r.pos).String() + "|" + r.first + "|" + r.second
			if reported[key] {
				continue
			}
			reported[key] = true
			how := "acquired here"
			if r.via != "" {
				how = "acquired via call to " + r.via
			}
			pass.Reportf(r.pos, "lock order inconsistency: %s %s while %s is held, but the opposite order occurs at %s (deadlock risk); pick one global order", r.second, how, r.first, pass.Fset.Position(opp))
		}
	},
}

// acquiredLocks memoizes, per program function, the sorted set of
// identified lock ids the function acquires directly or through any chain
// of program-local calls.
type acquiredLocks struct {
	graph *CallGraph
	memo  map[*types.Func][]string
}

// ids returns the transitive acquired-lock identity set of fn.
func (a *acquiredLocks) ids(fn *types.Func) []string {
	if v, ok := a.memo[fn]; ok {
		return v
	}
	a.memo[fn] = nil // cycle guard: recursive chains contribute nothing extra
	set := make(map[string]bool)
	fd := a.graph.Decl(fn)
	pkg := a.graph.PackageOf(fn)
	if fd != nil && pkg != nil {
		walkUnit(fd.Body, func(n ast.Node) bool {
			if lc, ok := resolveLockCall(pkg.Info, n); ok {
				if _, isAcquire := syncLockMethods[lc.method]; isAcquire && lc.id != "" {
					set[lc.id] = true
				}
			}
			return true
		})
	}
	for _, callee := range a.graph.Callees(fn) {
		for _, id := range a.ids(callee) {
			set[id] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	a.memo[fn] = out
	return out
}
