package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-pair allocation patterns in inner loops — the code
// paths internal/block, internal/simjoin, and internal/feature run once
// per candidate pair, where an avoidable allocation multiplies by |L|×|R|.
// Three patterns are reported, each per function body (closures are
// independent units):
//
//   - an un-preallocated slice (var s []T, s := []T{}, s := make([]T, 0))
//     grown by append inside a loop nested two deep, or inside any loop
//     when the declaration itself already sits in a loop. When the trip
//     count of the declaration-adjacent loop is derivable from pure
//     expressions, the diagnostic carries a machine-applicable fix that
//     rewrites the declaration to make([]T, 0, n).
//   - fmt.Sprintf/fmt.Sprint in a loop nested two deep: per-pair
//     formatting; hoist it or build keys with strconv/Builder.
//   - non-constant string concatenation in a loop nested two deep.
//   - make() inside a closure passed to parallel.ForEach, ForEachMin, or
//     Map: those closures run once per task, so the scratch allocates per
//     element. Per-worker scratch belongs outside the closure, indexed by
//     parallel.ForEachShard's shard argument, or per chunk via
//     parallel.MapChunks/MapChunksMin (whose closures run once per chunk
//     and are therefore exempt).
//
// Cold paths (error formatting) and intentionally lazy slices opt out
// with //emlint:allow hotalloc -- reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "per-pair inner-loop allocations: un-preallocated append (auto-fixable), fmt.Sprintf, string concatenation, make() in per-task parallel closures",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, unit := range funcUnits(f) {
				checkHotAllocUnit(pass, unit)
			}
		}
	},
}

func checkHotAllocUnit(pass *Pass, unit funcUnit) {
	checkPrealloc(pass, unit)
	checkInnerLoopTransients(pass, unit)
	checkParallelTaskAllocs(pass, unit)
}

// parallelPkg is the import path of the fan-out layer whose per-task entry
// points checkParallelTaskAllocs watches.
const parallelPkg = "repro/internal/parallel"

// perTaskEntryPoints are the parallel entry points whose closure argument
// executes once per task (per input element). MapChunks/MapChunksMin are
// deliberately absent — their closures run once per chunk, which the cost
// gate sizes to at most one per worker, so allocating there IS the
// sanctioned per-worker-scratch pattern. ForEachShard is absent for the
// same reason: its shard argument exists precisely so scratch can live
// outside the closure.
var perTaskEntryPoints = map[string]bool{
	"ForEach":    true,
	"ForEachMin": true,
	"Map":        true,
}

// checkParallelTaskAllocs reports make() calls inside function literals
// passed to the per-task parallel entry points. Anything made there is
// remade n times; hoist it per worker (ForEachShard) or per chunk
// (MapChunksMin).
func checkParallelTaskAllocs(pass *Pass, unit funcUnit) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch v := n.(type) {
		case nil, *ast.FuncLit:
			// Nested literals are independent units; any parallel calls
			// inside them are found when funcUnits yields that body.
			return
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, v)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == parallelPkg &&
				perTaskEntryPoints[fn.Name()] && len(v.Args) > 0 {
				if lit, ok := v.Args[len(v.Args)-1].(*ast.FuncLit); ok {
					reportTaskClosureMakes(pass, fn.Name(), lit)
					// The literal was handled here; skip it in the outer
					// walk but keep scanning the other arguments.
					for _, a := range v.Args[:len(v.Args)-1] {
						walk(a)
					}
					return
				}
			}
		}
		children(n, func(c ast.Node) { walk(c) })
	}
	walk(unit.body)
}

// reportTaskClosureMakes flags every make() under the per-task closure
// body, including inside literals nested within it — those still execute
// (and so allocate) per task when called.
func reportTaskClosureMakes(pass *Pass, entry string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		pass.Reportf(call.Pos(), "make inside a parallel.%s closure allocates once per task; keep scratch per worker via parallel.ForEachShard or per chunk via parallel.MapChunksMin (//emlint:allow hotalloc -- reason to keep)", entry)
		return true
	})
}

// checkInnerLoopTransients reports Sprintf/Sprint calls and string
// concatenation at loop depth >= 2 of the unit.
func checkInnerLoopTransients(pass *Pass, unit funcUnit) {
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		switch v := n.(type) {
		case nil, *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		case *ast.CallExpr:
			if depth >= 2 {
				if fn := calleeFunc(pass.Info, v); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "fmt" && (fn.Name() == "Sprintf" || fn.Name() == "Sprint") {
					pass.Reportf(v.Pos(), "fmt.%s allocates per inner-loop iteration; hoist the formatting or use strconv/strings.Builder (//emlint:allow hotalloc -- reason to keep)", fn.Name())
				}
			}
		case *ast.BinaryExpr:
			if depth >= 2 && v.Op == token.ADD && isStringExpr(pass.Info, v) && pass.Info.Types[v].Value == nil {
				pass.Reportf(v.Pos(), "string concatenation allocates per inner-loop iteration; build with strings.Builder or hoist (//emlint:allow hotalloc -- reason to keep)")
				return // don't re-report each + of a chain
			}
		}
		children(n, func(c ast.Node) { walk(c, depth) })
	}
	walk(unit.body, 0)
}

// children visits the direct AST children of n.
func children(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		visit(m)
		return false
	})
}

// isStringExpr reports whether e has (possibly named) string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// preallocCandidate is one un-preallocated slice declaration.
type preallocCandidate struct {
	obj types.Object
	// stmt is the whole declaration statement (replaced by a fix).
	stmt ast.Stmt
	// typ is the slice type expression, reused in the fix's make call.
	typ ast.Expr
	// inLoop records whether the declaration itself sits inside a loop.
	inLoop bool
	// blockStmts is the statement list the declaration belongs to, and
	// index its position there, for locating the adjacent loop.
	blockStmts []ast.Stmt
	index      int
}

// checkPrealloc finds un-preallocated slice declarations grown by append
// in a qualifying loop and reports them, attaching a make(cap) rewrite
// when the trip count is derivable.
func checkPrealloc(pass *Pass, unit funcUnit) {
	var cands []preallocCandidate
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		switch v := n.(type) {
		case nil, *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		case *ast.BlockStmt:
			for i, stmt := range v.List {
				if obj, typ := uninitSliceDecl(pass, stmt); obj != nil {
					cands = append(cands, preallocCandidate{
						obj: obj, stmt: stmt, typ: typ,
						inLoop: depth > 0, blockStmts: v.List, index: i,
					})
				}
			}
		}
		children(n, func(c ast.Node) { scan(c, depth) })
	}
	scan(unit.body, 0)

	for _, c := range cands {
		loop, appendDepth := adjacentGrowthLoop(pass, c)
		if loop == nil {
			continue
		}
		// Per-pair shape: append nested two deep, or any append loop when
		// the declaration re-executes per outer iteration.
		if appendDepth < 2 && !c.inLoop {
			continue
		}
		capText, ok := tripCountText(pass, loop)
		if !ok {
			pass.Reportf(c.stmt.Pos(), "slice grown by append in a per-pair inner loop without preallocation; size it with make([]T, 0, n) (//emlint:allow hotalloc -- reason if the size is unknowable)")
			continue
		}
		newText := c.obj.Name() + " := make(" + types.ExprString(c.typ) + ", 0, " + capText + ")"
		fix := SuggestedFix{
			Message: "preallocate with the loop's trip count as capacity",
			Edits:   []TextEdit{pass.Edit(c.stmt.Pos(), c.stmt.End(), newText)},
		}
		pass.ReportFix(c.stmt.Pos(), fix,
			"slice grown by append in a per-pair inner loop without preallocation; preallocate: %s", newText)
	}
}

// uninitSliceDecl matches the un-preallocated slice declaration forms and
// returns the declared object and its slice type expression.
func uninitSliceDecl(pass *Pass, stmt ast.Stmt) (types.Object, ast.Expr) {
	switch v := stmt.(type) {
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR || len(gd.Specs) != 1 {
			return nil, nil
		}
		spec, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok || len(spec.Names) != 1 || len(spec.Values) != 0 {
			return nil, nil
		}
		at, ok := spec.Type.(*ast.ArrayType)
		if !ok || at.Len != nil {
			return nil, nil
		}
		return pass.Info.Defs[spec.Names[0]], spec.Type
	case *ast.AssignStmt:
		if v.Tok != token.DEFINE || len(v.Lhs) != 1 || len(v.Rhs) != 1 {
			return nil, nil
		}
		id, ok := v.Lhs[0].(*ast.Ident)
		if !ok {
			return nil, nil
		}
		switch rhs := ast.Unparen(v.Rhs[0]).(type) {
		case *ast.CompositeLit:
			at, ok := rhs.Type.(*ast.ArrayType)
			if !ok || at.Len != nil || len(rhs.Elts) != 0 {
				return nil, nil
			}
			return pass.Info.Defs[id], rhs.Type
		case *ast.CallExpr:
			// make([]T, 0) with no capacity argument.
			if fn, ok := ast.Unparen(rhs.Fun).(*ast.Ident); !ok || fn.Name != "make" {
				return nil, nil
			} else if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
				return nil, nil
			}
			if len(rhs.Args) != 2 {
				return nil, nil
			}
			at, ok := rhs.Args[0].(*ast.ArrayType)
			if !ok || at.Len != nil {
				return nil, nil
			}
			if lit, ok := rhs.Args[1].(*ast.BasicLit); !ok || lit.Value != "0" {
				return nil, nil
			}
			return pass.Info.Defs[id], rhs.Args[0]
		}
	}
	return nil, nil
}

// adjacentGrowthLoop finds the first loop following the declaration in
// its block that appends to the declared slice, returning the loop and
// the nesting depth of the deepest such append within it (1 = directly in
// the loop body).
func adjacentGrowthLoop(pass *Pass, c preallocCandidate) (ast.Stmt, int) {
	for _, stmt := range c.blockStmts[c.index+1:] {
		switch stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
		default:
			continue
		}
		depth := deepestAppendDepth(pass, stmt, c.obj)
		if depth > 0 {
			return stmt, depth
		}
	}
	return nil, 0
}

// deepestAppendDepth returns the maximum loop-nesting depth (counting the
// root loop as 1) of `obj = append(obj, ...)` statements under the loop,
// or 0 when none exists. Nested function literals are skipped.
func deepestAppendDepth(pass *Pass, loop ast.Stmt, obj types.Object) int {
	maxDepth := 0
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		switch v := n.(type) {
		case nil, *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		case *ast.CallExpr:
			if isBuiltinAppend(pass.Info, v) && len(v.Args) > 0 &&
				objOf(pass.Info, v.Args[0]) == obj && depth > maxDepth {
				maxDepth = depth
			}
		}
		children(n, func(m ast.Node) { walk(m, depth) })
	}
	walk(loop, 0)
	return maxDepth
}

// tripCountText derives a pure capacity expression for the loop's trip
// count: len(X) for `range X` over a pure expression, and B - A (or B
// when A is 0) for `for i := A; i < B; i++` with pure bounds.
func tripCountText(pass *Pass, loop ast.Stmt) (string, bool) {
	switch v := loop.(type) {
	case *ast.RangeStmt:
		if !isPureExpr(v.X) {
			return "", false
		}
		if t := pass.Info.TypeOf(v.X); t != nil {
			switch u := t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Map:
				return "len(" + types.ExprString(v.X) + ")", true
			case *types.Basic:
				if u.Info()&types.IsString != 0 {
					return "len(" + types.ExprString(v.X) + ")", true
				}
				if u.Info()&types.IsInteger != 0 { // range-over-int
					return types.ExprString(v.X), true
				}
			}
		}
		return "", false
	case *ast.ForStmt:
		init, ok := v.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return "", false
		}
		cond, ok := v.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS {
			return "", false
		}
		iv := objOf(pass.Info, init.Lhs[0])
		if iv == nil || objOf(pass.Info, cond.X) != iv {
			return "", false
		}
		lo, hi := init.Rhs[0], cond.Y
		if !isPureExpr(lo) || !isPureExpr(hi) {
			return "", false
		}
		if lit, ok := ast.Unparen(lo).(*ast.BasicLit); ok && lit.Value == "0" {
			return types.ExprString(hi), true
		}
		return types.ExprString(hi) + "-" + types.ExprString(lo), true
	}
	return "", false
}

// isPureExpr reports whether e is a side-effect-free, loop-invariant
// expression safe to hoist into a make capacity: identifiers, selector
// chains, literals, len of a pure expression, and arithmetic over those.
func isPureExpr(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return isPureExpr(v.X)
	case *ast.BinaryExpr:
		return isPureExpr(v.X) && isPureExpr(v.Y)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "len" && len(v.Args) == 1 {
			return isPureExpr(v.Args[0])
		}
	}
	return false
}
