package analysis

import (
	"go/ast"
	"go/types"
)

// syncTypes are the sync primitives whose copy is a latent deadlock or
// lost-update bug.
var syncTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Pool":      true,
	"Map":       true,
}

// MutexCopy flags declared API surface — receivers, parameters, and
// results — that passes a lock-bearing type (one containing a sync
// primitive, directly or through nested structs/arrays) by value. Copying
// an obs.Registry or a Metamanager forks its lock away from its state.
// Interior copies (assignments, ranges) are govet's copylocks territory;
// this check guards the signatures where such types escape a package.
var MutexCopy = &Analyzer{
	Name:  "mutexcopy",
	Doc:   "receivers, params, and results must not pass lock-bearing types (sync.Mutex holders) by value",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ft, recv, name := funcSurface(n)
				if ft == nil {
					return true
				}
				if recv != nil && len(recv.List) == 1 {
					field := recv.List[0]
					if lock := lockIn(pass.Info.TypeOf(field.Type), nil); lock != "" {
						pass.Reportf(field.Pos(), "%s uses a value receiver of a type containing sync.%s; use a pointer receiver", name, lock)
					}
				}
				if ft.Params != nil {
					for _, field := range ft.Params.List {
						if lock := lockIn(pass.Info.TypeOf(field.Type), nil); lock != "" {
							pass.Reportf(field.Pos(), "%s passes a type containing sync.%s by value; pass a pointer", name, lock)
						}
					}
				}
				if ft.Results != nil {
					for _, field := range ft.Results.List {
						if lock := lockIn(pass.Info.TypeOf(field.Type), nil); lock != "" {
							pass.Reportf(field.Pos(), "%s returns a type containing sync.%s by value; return a pointer", name, lock)
						}
					}
				}
				return true
			})
		}
	},
}

// funcSurface extracts the signature surface of a function declaration or
// literal, with a display name for diagnostics.
func funcSurface(n ast.Node) (*ast.FuncType, *ast.FieldList, string) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Type, fn.Recv, fn.Name.Name
	case *ast.FuncLit:
		return fn.Type, nil, "function literal"
	}
	return nil, nil, ""
}

// lockIn returns the name of the sync primitive t contains by value
// (transitively through structs, arrays, and named types), or "".
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch v := t.(type) {
	case *types.Named:
		obj := v.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncTypes[obj.Name()] {
			return obj.Name()
		}
		return lockIn(v.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if lock := lockIn(v.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockIn(v.Elem(), seen)
	}
	// Pointers, slices, maps, chans, interfaces, and basics break value
	// containment: the lock is shared, not copied.
	return ""
}
