package analysis

import "go/ast"

// NoGoroutine flags naked go statements. DESIGN.md §5 requires every
// fan-out to run through internal/parallel so the Workers knob governs it
// and the deterministic-output contract (bit-identical to serial) holds;
// a raw goroutine bypasses both. The pool package itself is exempt — it is
// the one place goroutines are supposed to be spawned — and long-lived
// worker loops that are infrastructure rather than fan-out (the cloud
// engine workers) opt out with an allow directive.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "go statements outside internal/parallel; fan out through the shared pool so Workers and determinism hold",
	Run: func(pass *Pass) {
		if pass.Path == pass.Module+"/internal/parallel" {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "naked go statement: route fan-out through internal/parallel (ForEach/Map/MapChunks) so the Workers knob and deterministic output hold")
				}
				return true
			})
		}
	},
}
