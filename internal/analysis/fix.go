package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Applied counts the suggested fixes whose edits were accepted.
	Applied int
	// Skipped counts fixes dropped because an edit overlapped one already
	// accepted from an earlier diagnostic (first reported wins).
	Skipped int
	// Files lists the files rewritten, sorted.
	Files []string
}

// ApplyFixes applies the suggested fixes carried by diags to the files on
// disk. Fixes are taken in diagnostic order; a fix is accepted only if
// none of its edits overlaps an already-accepted edit, so the applied set
// is always a consistent non-overlapping collection of byte replacements.
// Every touched file is reformatted with go/format before being written
// back, which makes the engine idempotent: a second run over the fixed
// tree produces zero edits because the diagnostics themselves are gone.
func ApplyFixes(diags []Diagnostic) (FixResult, error) {
	var res FixResult
	accepted := make(map[string][]TextEdit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			if fixConflicts(accepted, fix) {
				res.Skipped++
				continue
			}
			for _, e := range fix.Edits {
				accepted[e.Filename] = append(accepted[e.Filename], e)
			}
			res.Applied++
		}
	}
	for file, edits := range accepted {
		if err := applyToFile(file, edits); err != nil {
			return res, err
		}
	}
	for file := range accepted {
		res.Files = append(res.Files, file)
	}
	sort.Strings(res.Files)
	return res, nil
}

// fixConflicts reports whether any edit of fix overlaps an edit already
// accepted for the same file. Two edits overlap when their [Start, End)
// ranges intersect; equal-position insertions also conflict (their order
// would be ambiguous).
func fixConflicts(accepted map[string][]TextEdit, fix SuggestedFix) bool {
	for _, e := range fix.Edits {
		for _, a := range accepted[e.Filename] {
			if e.Start < a.End && a.Start < e.End {
				return true
			}
			if e.Start == e.End && a.Start == a.End && e.Start == a.Start {
				return true
			}
		}
	}
	return false
}

// applyToFile rewrites one file with its accepted edits and gofmts it.
func applyToFile(file string, edits []TextEdit) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("analysis: fix %s: %w", file, err)
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start < edits[j].Start })
	var out []byte
	last := 0
	for _, e := range edits {
		if e.Start < last || e.End > len(src) || e.Start > e.End {
			return fmt.Errorf("analysis: fix %s: edit range [%d,%d) out of bounds", file, e.Start, e.End)
		}
		out = append(out, src[last:e.Start]...)
		out = append(out, e.NewText...)
		last = e.End
	}
	out = append(out, src[last:]...)
	formatted, err := format.Source(out)
	if err != nil {
		return fmt.Errorf("analysis: fix %s produced unparsable code: %w", file, err)
	}
	info, err := os.Stat(file)
	if err != nil {
		return fmt.Errorf("analysis: fix %s: %w", file, err)
	}
	if err := os.WriteFile(file, formatted, info.Mode().Perm()); err != nil {
		return fmt.Errorf("analysis: fix %s: %w", file, err)
	}
	return nil
}
