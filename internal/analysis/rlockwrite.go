package analysis

import (
	"go/ast"
	"go/types"
)

// RLockWrite flags writes performed under a read lock: inside a region
// where only `x.RLock()` is held, any assignment, increment, or delete
// whose target hangs off x — or a call to a method of x that (transitively,
// through the program call graph) writes its receiver's fields — is a data
// race the moment two readers overlap. Before this check the only proof
// that Corpus.MatchOne stays read-only under its RLock was eyeballing it
// against Add/Update/Delete.
//
// The region scan mirrors locksafety: statement siblings forward from the
// RLock to its RUnlock; a deferred RUnlock extends the region to the end
// of the unit. Function literals are separate units (a closure created
// under the lock may run after release).
var RLockWrite = &Analyzer{
	Name:  "rlockwrite",
	Doc:   "Field write on a struct while only its RWMutex.RLock is held",
	Tests: true,
	Run: func(pass *Pass) {
		graph := pass.Prog.CallGraph()
		w := &receiverWrites{graph: graph, memo: make(map[*types.Func]int)}
		for _, f := range pass.Files {
			for _, unit := range funcUnits(f) {
				rlockScanUnit(pass, unit, w)
			}
		}
	},
}

// rlockScanUnit scans every statement list of the unit for RLock regions.
func rlockScanUnit(pass *Pass, unit funcUnit, w *receiverWrites) {
	var lists func(n ast.Node)
	lists = func(n ast.Node) {
		switch v := n.(type) {
		case nil, *ast.FuncLit:
			return
		case *ast.BlockStmt:
			rlockScanList(pass, unit, v.List, w)
		case *ast.CaseClause:
			rlockScanList(pass, unit, v.Body, w)
		case *ast.CommClause:
			rlockScanList(pass, unit, v.Body, w)
		}
		children(n, lists)
	}
	lists(unit.body)
}

// rlockScanList walks one statement list and checks the region following
// each RLock acquire on an identifier-rooted lock.
func rlockScanList(pass *Pass, unit funcUnit, stmts []ast.Stmt, w *receiverWrites) {
	for i, stmt := range stmts {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		lc, ok := resolveLockCall(pass.Info, es.X)
		if !ok || lc.method != "RLock" || lc.base == nil {
			continue
		}
		for _, rest := range stmts[i+1:] {
			if d, ok := rest.(*ast.DeferStmt); ok {
				if k, m, ok := lockCallInfo(pass.Info, d.Call); ok && k == lc.key && m == "RUnlock" {
					// Held until the unit returns: audit everything after.
					walkUnit(unit.body, func(n ast.Node) bool {
						if n == nil || n.Pos() <= d.End() {
							return true
						}
						reportRLockWrites(pass, n, lc, w)
						return true
					})
					return
				}
			}
			if e, ok := rest.(*ast.ExprStmt); ok {
				if k, m, ok := lockCallInfo(pass.Info, e.X); ok && k == lc.key && m == "RUnlock" {
					break // region closed cleanly
				}
			}
			if stmtHasRelease(pass, rest, lc.key, "RUnlock") {
				break // released inside branching flow; assume balanced
			}
			ast.Inspect(rest, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				reportRLockWrites(pass, n, lc, w)
				return true
			})
		}
	}
}

// reportRLockWrites flags n if it writes through the read-locked base.
func reportRLockWrites(pass *Pass, n ast.Node, lc lockCall, w *receiverWrites) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			if writesThrough(pass.Info, lhs, lc.base) {
				pass.Reportf(lhs.Pos(), "write to %s while only %s.RLock is held; writers must hold the write lock", types.ExprString(lhs), lc.key)
			}
		}
	case *ast.IncDecStmt:
		if writesThrough(pass.Info, v.X, lc.base) {
			pass.Reportf(v.Pos(), "write to %s while only %s.RLock is held; writers must hold the write lock", types.ExprString(v.X), lc.key)
		}
	case *ast.CallExpr:
		// delete(base.m, k) is a map write.
		if isBuiltinDelete(pass.Info, v) {
			if len(v.Args) > 0 && writesThrough(pass.Info, v.Args[0], lc.base) {
				pass.Reportf(v.Pos(), "delete on %s while only %s.RLock is held; writers must hold the write lock", types.ExprString(v.Args[0]), lc.key)
			}
			return
		}
		// base.Method() where the method mutates its receiver.
		fn := calleeFunc(pass.Info, v)
		if fn == nil {
			return
		}
		if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
			if root, _, exact := selectorChain(pass.Info, sel.X); exact && root != nil && root == lc.base && w.writes(fn) {
				pass.Reportf(v.Pos(), "%s mutates its receiver and is called on %s while only %s.RLock is held", fn.Name(), root.Name(), lc.key)
			}
		}
	}
}

// isBuiltinDelete matches a call to the delete builtin.
func isBuiltinDelete(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// writesThrough reports whether the write target e dereferences base — a
// selector, index, or star chain rooted at the base identifier. A plain
// `base = x` rebinds the variable and is not a write through it.
func writesThrough(info *types.Info, e ast.Expr, base types.Object) bool {
	e = ast.Unparen(e)
	hops := 0
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e, hops = ast.Unparen(v.X), hops+1
		case *ast.IndexExpr:
			e, hops = ast.Unparen(v.X), hops+1
		case *ast.StarExpr:
			e, hops = ast.Unparen(v.X), hops+1
		case *ast.Ident:
			return hops > 0 && objOf(info, v) == base
		default:
			return false
		}
	}
}

// receiverWrites memoizes the "this method writes its own receiver's
// state" fact across the program call graph: a direct field assignment,
// increment, or delete through the receiver, or a call to another method
// on the same receiver that does.
type receiverWrites struct {
	graph *CallGraph
	memo  map[*types.Func]int // 0 in progress (cycle: assume clean), 1 writes, -1 clean
}

func (w *receiverWrites) writes(fn *types.Func) bool {
	if v, ok := w.memo[fn]; ok {
		return v == 1
	}
	fd := w.graph.Decl(fn)
	pkg := w.graph.PackageOf(fn)
	if fd == nil || pkg == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		w.memo[fn] = -1
		return false
	}
	recv := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if recv == nil {
		w.memo[fn] = -1
		return false
	}
	w.memo[fn] = 0
	result := -1
	walkUnit(fd.Body, func(n ast.Node) bool {
		if result == 1 {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if writesThrough(pkg.Info, lhs, recv) {
					result = 1
				}
			}
		case *ast.IncDecStmt:
			if writesThrough(pkg.Info, v.X, recv) {
				result = 1
			}
		case *ast.CallExpr:
			if isBuiltinDelete(pkg.Info, v) {
				if len(v.Args) > 0 && writesThrough(pkg.Info, v.Args[0], recv) {
					result = 1
				}
				return true
			}
			callee := calleeFunc(pkg.Info, v)
			if callee == nil || callee == fn {
				return true
			}
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				if root, _, exact := selectorChain(pkg.Info, sel.X); exact && root == recv && w.writes(callee) {
					result = 1
				}
			}
		}
		return result != 1
	})
	w.memo[fn] = result
	return result == 1
}
