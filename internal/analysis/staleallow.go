package analysis

// StaleAllow audits the suppression directives themselves: an
// //emlint:allow directive whose check ran over the package but suppressed
// no diagnostic is dead weight — usually the flagged code was refactored
// and the escape hatch outlived it. Reporting stale directives keeps the
// allow inventory honest: every surviving directive marks a real,
// currently-firing diagnostic someone chose to accept.
//
// The analyzer body is empty on purpose: usage tracking lives in the run
// driver (RunProgram), which knows which directives matched after every
// other analyzer has reported. Listing StaleAllow in the suite is what
// switches the audit on; directives citing checks outside the executed
// list are never reported (a partial -c run cannot tell if they still
// earn their keep).
var StaleAllow = &Analyzer{
	Name:  "staleallow",
	Doc:   "//emlint:allow directive that no longer suppresses any diagnostic",
	Tests: true,
	Run:   func(pass *Pass) {},
}
