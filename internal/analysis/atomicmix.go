package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix detects mixed access disciplines on one field: accessed through
// sync/atomic somewhere in the program and through plain reads or writes
// somewhere else. Atomic and plain accesses do not synchronize with each
// other — a plain `c.hits = 0` next to `atomic.AddUint64(&c.hits, 1)` is a
// data race even under a lock, because the atomic side does not take the
// lock. Fields are compared by the same cross-package identity the lock
// analyzers use (pkg.Type.fieldpath / pkg.var), and the scan is
// program-wide: the atomic site may live in another package than the plain
// one. A second rule flags whole-value stores to fields of the typed
// sync/atomic types (`c.mode = atomic.Int64{}`), which bypass the type's
// Store method — go vet's copylocks deliberately permits the zero-value
// form, so emlint closes that gap.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "Field accessed both through sync/atomic and with plain reads/writes (unsynchronized mix)",
	Run: func(pass *Pass) {
		atomicSites := collectAtomicSites(pass.Prog)
		if len(atomicSites.byID) > 0 {
			reportPlainAccesses(pass, atomicSites)
		}
		reportTypedAtomicStores(pass)
	},
}

// atomicSiteIndex records, per field identity, one representative
// sync/atomic call site and the exact operand expressions so the operand
// of `&c.hits` is not also counted as a plain access.
type atomicSiteIndex struct {
	byID     map[string]token.Position
	operands map[ast.Expr]bool
}

// atomicFuncPrefixes match the function-style sync/atomic entry points.
var atomicFuncPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

// isAtomicFunc reports whether fn is a function-style sync/atomic entry
// point (not a method of the typed atomics).
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// collectAtomicSites walks every non-test file of the program for
// `atomic.Op(&expr, ...)` calls and indexes the identities they access.
func collectAtomicSites(prog *Program) *atomicSiteIndex {
	idx := &atomicSiteIndex{
		byID:     make(map[string]token.Position),
		operands: make(map[ast.Expr]bool),
	}
	forEachProgramFile(prog, func(pkg *Package, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(calleeFunc(pkg.Info, call)) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			operand := ast.Unparen(addr.X)
			idx.operands[operand] = true
			if id := accessIdentity(pkg.Info, operand); id != "" {
				if _, seen := idx.byID[id]; !seen {
					idx.byID[id] = pkg.Fset.Position(call.Pos())
				}
			}
			return true
		})
	})
	return idx
}

// reportPlainAccesses walks the root package's files and flags every plain
// read/write of an identity that has an atomic site somewhere in the
// program.
func reportPlainAccesses(pass *Pass, idx *atomicSiteIndex) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var id string
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if idx.operands[v] {
					return true
				}
				if fs, ok := pass.Info.Selections[v]; !ok || fs.Kind() != types.FieldVal {
					return true
				}
				id = accessIdentity(pass.Info, v)
			case *ast.Ident:
				if idx.operands[v] {
					return true
				}
				obj := pass.Info.Uses[v]
				if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
					return true
				}
				if _, isVar := obj.(*types.Var); !isVar {
					return true
				}
				id = accessIdentity(pass.Info, v)
			default:
				return true
			}
			if site, mixed := idx.byID[id]; mixed && id != "" {
				pass.Reportf(n.Pos(), "%s is accessed atomically at %s:%d but plainly here; every access must go through sync/atomic (or drop the atomics and guard all sides with one lock)", id, site.Filename, site.Line)
				return false // the chain is reported once, not per sub-selector
			}
			return true
		})
	}
}

// reportTypedAtomicStores flags whole-value assignment to fields (or
// variables) of the typed sync/atomic types in the root package.
func reportTypedAtomicStores(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				t := pass.Info.TypeOf(lhs)
				if name := syncAtomicTypeName(t); name != "" {
					pass.Reportf(lhs.Pos(), "whole-value store to %s of type atomic.%s bypasses its atomic Store method; use %s.Store(...)", types.ExprString(lhs), name, types.ExprString(lhs))
				}
			}
			return true
		})
	}
}

// syncAtomicTypeName returns the bare name of t when it is a named type
// declared in sync/atomic (Int64, Uint64, Bool, Pointer, Value, ...), "".
func syncAtomicTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return ""
	}
	return named.Obj().Name()
}

// accessIdentity canonicalizes an access expression to the cross-package
// identity of the field or package-level variable it denotes; "" for
// locals and unresolvable chains.
func accessIdentity(info *types.Info, e ast.Expr) string {
	root, fields, exact := selectorChain(info, e)
	if !exact || root == nil {
		return ""
	}
	return lockIdentity(root, fields)
}

// forEachProgramFile visits every non-test file of every program package
// (the root's test files are governed by the analyzer's Tests flag and are
// visited only through pass.Files, never here).
func forEachProgramFile(prog *Program, visit func(pkg *Package, f *ast.File)) {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			if isTestFile(pkg.Fset, f) {
				continue
			}
			visit(pkg, f)
		}
	}
}
