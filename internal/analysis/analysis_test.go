package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureLoader is shared across fixture tests so the (expensive)
// from-source type-checking of stdlib and repo dependencies is paid once.
var fixtureLoader *Loader

func loader(t *testing.T) *Loader {
	t.Helper()
	if fixtureLoader != nil {
		return fixtureLoader
	}
	root, err := FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	fixtureLoader = l
	return l
}

// loadFixture type-checks one testdata fixture package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := loader(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, "repro/internal/analysis/testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantMarkers extracts the "// want <check>" expectations of a fixture:
// one diagnostic of the named check is expected on each marked line. The
// marker may appear anywhere in the comment text, so a line that is itself
// a comment (an //emlint:allow directive the staleallow fixture flags) can
// carry its expectation inline.
func wantMarkers(pkg *Package) map[string]bool {
	want := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				for _, check := range strings.Fields(rest) {
					want[fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, check)] = true
				}
			}
		}
	}
	return want
}

// TestFixtures runs each analyzer over its violating + allowed fixture
// pair and requires the diagnostics to match the want markers exactly —
// which also proves the //emlint:allow escape hatch suppresses the ok.go
// variants.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			want := wantMarkers(pkg)
			suite := []*Analyzer{a}
			if a.Name == StaleAllow.Name {
				// The audit only reports directives whose check actually
				// ran, so it is exercised against the full suite; other
				// analyzers' diagnostics are filtered below.
				suite = All()
			}
			got := make(map[string]bool)
			for _, d := range Run(pkg, suite) {
				if d.Check != a.Name {
					continue
				}
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check)] = true
			}
			for key := range want {
				if !got[key] {
					t.Errorf("missing diagnostic %s", key)
				}
			}
			for key := range got {
				if !want[key] {
					t.Errorf("unexpected diagnostic %s", key)
				}
			}
			if len(want) == 0 {
				t.Fatalf("fixture %s has no want markers; the violating case is untested", a.Name)
			}
		})
	}
}

// TestFixtureTestFileFiltering: analyzers that opt out of test files must
// not see them. The nogoroutine fixture is reloaded with a synthetic
// _test.go violation injected through the parsed file list.
func TestAnalyzerTestFileOptOut(t *testing.T) {
	pkg := loadFixture(t, "nogoroutine")
	// nogoroutine has Tests=false: a pass over the package must filter
	// *_test.go files out of pass.Files. No fixture _test.go exists, so
	// assert the wiring directly on the analyzer metadata plus a pass run.
	if NoGoroutine.Tests {
		t.Fatal("nogoroutine must skip test files (tests orchestrate goroutines legitimately)")
	}
	if !NoDeprecated.Tests || !CtxFirst.Tests || !MutexCopy.Tests {
		t.Fatal("API-surface analyzers must cover test files")
	}
	if NonDeterminism.Tests || MetricNames.Tests {
		t.Fatal("clock/metric analyzers must skip test files")
	}
	if !ErrDrop.Tests || !LockSafety.Tests || !RLockWrite.Tests {
		t.Fatal("errdrop, locksafety, and rlockwrite guard correctness in test files too")
	}
	if MapOrder.Tests || HotAlloc.Tests {
		t.Fatal("ordering/allocation analyzers must skip test files (tests assert on small fixed inputs)")
	}
	if CtxFlow.Tests || LockOrder.Tests || HTTPErrors.Tests {
		t.Fatal("serving-path analyzers must skip test files (tests spawn helpers and fake handlers legitimately)")
	}
	if !StaleAllow.Tests {
		t.Fatal("the allow audit must cover directives in test files too")
	}
	if AliasLeak.Tests || AtomicMix.Tests || EscapeCheck.Tests {
		t.Fatal("performance-contract analyzers must skip test files (contracts annotate shipped code)")
	}
	if !AllocGuard.Tests {
		t.Fatal("allocguard must see test files: that is where the AllocsPerRun guards live")
	}
	_ = pkg
}

// TestByName resolves subsets and rejects unknown checks.
func TestByName(t *testing.T) {
	got, err := ByName("nogoroutine, mutexcopy")
	if err != nil || len(got) != 2 {
		t.Fatalf("ByName = %v, %v", got, err)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Fatal("unknown check accepted")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("empty check list accepted")
	}
}

// TestParseAllow covers the directive grammar.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//emlint:allow nogoroutine", []string{"nogoroutine"}},
		{"//emlint:allow a,b -- reason text", []string{"a", "b"}},
		{"//emlint:allow a, b", []string{"a", "b"}},
		{"// emlint:allow a", nil}, // not a directive: space after //
		{"//emlint:allowx a", nil},
		{"// ordinary comment", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.text)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestExpand: pattern expansion walks recursively, skips testdata, and
// produces module-qualified paths.
func TestExpand(t *testing.T) {
	l := loader(t)
	paths, err := l.Expand([]string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range paths {
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into expansion: %s", p)
		}
	}
	for _, must := range []string{
		"repro/internal/analysis",
		"repro/internal/parallel",
		"repro/cmd/emlint",
	} {
		if !seen[must] {
			t.Errorf("expansion missing %s (got %d paths)", must, len(paths))
		}
	}
}

// TestDiagnosticString pins the file:line:col output format make lint
// consumers grep.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: "nogoroutine", Message: "naked go statement"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: [nogoroutine] naked go statement"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

var _ = ast.IsExported // keep go/ast imported for future harness growth
