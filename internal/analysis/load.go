package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of this module using only the
// standard library. Module-local import paths are mapped onto directories
// under the module root and compiled from source recursively; every other
// path (the standard library) is delegated to
// importer.ForCompiler(fset, "source", nil), so the loader works with an
// empty go.mod and no golang.org/x/tools dependency.
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	std      types.Importer
	cache    map[string]*types.Package // import-facing packages, test files excluded
	pkgs     map[string]*Package       // full syntax+info for module-local imports
	checking map[string]bool           // cycle guard
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     root,
		Module:   module,
		Fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		cache:    make(map[string]*types.Package),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}, nil
}

// FindRoot walks upward from dir to the nearest directory holding go.mod.
func FindRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: %s has no module declaration", gomod)
}

// local reports whether path belongs to this module, and if so the
// directory it maps to.
func (l *Loader) local(path string) (string, bool) {
	if path == l.Module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer: module-local packages are compiled
// from source (without their test files, matching how the go tool resolves
// imports); all other paths go to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir, ok := l.local(path)
	if !ok {
		return l.std.Import(path)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// Retain syntax and type info alongside the import-facing package so
	// LoadProgram can hand analyzers the dependency's bodies (the
	// cross-package call graph needs callee syntax, not just signatures).
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking dependency %s: %w", path, err)
	}
	l.cache[path] = pkg
	l.pkgs[path] = &Package{
		Path:   path,
		Module: l.Module,
		Fset:   l.Fset,
		Files:  files,
		Types:  pkg,
		Info:   info,
	}
	return pkg, nil
}

// parseDir parses the Go files of one directory in name order, optionally
// including _test.go files. Files starting with "_" or "." are skipped,
// matching the go tool, as are files excluded by a build constraint — a
// //go:build (or legacy // +build) line, or a _GOOS/_GOARCH filename
// suffix — that does not match the current platform.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !matchFileName(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !matchBuildConstraint(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// knownOS and knownArch drive the filename-suffix build constraints
// (name_GOOS.go, name_GOARCH.go, name_GOOS_GOARCH.go), mirroring the go
// tool's rule for the platforms this repo plausibly meets.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// matchFileName applies the _GOOS/_GOARCH filename constraint of the go
// tool: a trailing _linux or _amd64 (or _linux_amd64) component restricts
// the file to that platform.
func matchFileName(name string) bool {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// matchBuildConstraint evaluates the file's //go:build (or legacy
// // +build) lines against the current platform. Unknown tags evaluate
// false, so `//go:build ignore` files are skipped like the go tool does.
func matchBuildConstraint(f *ast.File) bool {
	tagOK := func(tag string) bool {
		if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
			return true
		}
		// Treat every go1.N language gate as satisfied: the loader runs
		// under the same toolchain that builds the module.
		return strings.HasPrefix(tag, "go1")
	}
	for _, group := range f.Comments {
		if group.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range group.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(tagOK) {
				return false
			}
		}
	}
	return true
}

// Package is one type-checked analysis unit: a package directory with its
// in-package test files included, so invariants hold in tests too.
type Package struct {
	// Path is the unit's import path.
	Path string
	// Module is the module path of the enclosing module.
	Module string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Load type-checks the module-local package at the given import path as an
// analysis unit.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.local(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is not in module %s", path, l.Module)
	}
	return l.LoadDir(dir, path)
}

// LoadDir type-checks the package in dir under the given import path. It
// is the entry point fixture tests use for packages outside the module's
// build graph (testdata trees).
//
// Test files are included, so invariants hold in tests too. A directory
// may legally hold two package clauses — foo plus the external test
// package foo_test — which cannot type-check as one unit; the in-package
// group is chosen and the external test files are skipped. A directory
// holding only external test files (a test-only package like the module
// root's bench harness) is analyzed as that _test package.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	files, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	files = primaryPackageFiles(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:   path,
		Module: l.Module,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}, nil
}

// primaryPackageFiles keeps the files of one package clause: the
// non-_test package when present, else the (test-only) _test package.
func primaryPackageFiles(files []*ast.File) []*ast.File {
	var primary, external []*ast.File
	for _, f := range files {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			primary = append(primary, f)
		}
	}
	if len(primary) > 0 {
		return primary
	}
	return external
}

// Expand resolves go-style package patterns ("./internal/...",
// "./cmd/emlint") relative to the module root into sorted import paths.
// Directories named testdata, and hidden or underscore-prefixed
// directories, are skipped, as are directories without Go files.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") &&
				!strings.HasPrefix(e.Name(), "_") && !strings.HasPrefix(e.Name(), ".") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		fi, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
