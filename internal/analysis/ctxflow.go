package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow audits request-path context hygiene in two ways:
//
//  1. A function that already receives a context.Context must not start a
//     fresh root with context.Background() or context.TODO() — doing so
//     severs cancellation: the request times out or the client leaves,
//     and the downstream work keeps running.
//  2. A go statement must spawn a body with a visible stop path — a
//     mention of a context, a channel operation (a worker draining
//     `for t := range tasks` stops when the channel closes), a select, or
//     a WaitGroup hand-off. A goroutine with none of these can never be
//     shut down, which is how serving processes leak. For `go p.worker()`
//     the callee's body is resolved through the program call graph, so
//     the lifecycle check crosses package boundaries.
//
// nogoroutine (DESIGN.md §5) governs where go statements may appear at
// all; ctxflow governs whether the ones that are sanctioned can stop.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "Context dropped for a fresh Background/TODO, or a goroutine with no stop path",
	Run: func(pass *Pass) {
		graph := pass.Prog.CallGraph()
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if v.Body != nil && hasCtxParam(pass.Info, v.Type) {
						reportFreshContexts(pass, v.Body)
					}
				case *ast.FuncLit:
					if hasCtxParam(pass.Info, v.Type) {
						reportFreshContexts(pass, v.Body)
					}
				case *ast.GoStmt:
					checkGoStop(pass, graph, v)
				}
				return true
			})
		}
	},
}

// hasCtxParam reports whether the function type takes a context.Context.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// reportFreshContexts flags context.Background()/TODO() calls in a body
// that already has a context in scope. Nested literals are their own
// units: a literal without a ctx param is not re-flagged here, and one
// with its own ctx param gets its own visit.
func reportFreshContexts(pass *Pass, body *ast.BlockStmt) {
	walkUnit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
			pass.Reportf(call.Pos(), "context.%s() inside a function that already receives a ctx; derive from the incoming context so cancellation propagates", fn.Name())
		}
		return true
	})
}

// checkGoStop verifies the spawned body has a stop path.
func checkGoStop(pass *Pass, graph *CallGraph, g *ast.GoStmt) {
	var body *ast.BlockStmt
	var info *types.Info
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body, info = fun.Body, pass.Info
	default:
		fn := calleeFunc(pass.Info, g.Call)
		if fn == nil {
			return // spawned through a function value: body not visible
		}
		fd := graph.Decl(fn)
		pkg := graph.PackageOf(fn)
		if fd == nil || pkg == nil {
			return // callee outside the program
		}
		body, info = fd.Body, pkg.Info
	}
	// Arguments evaluated at spawn (including a ctx passed in) count: the
	// goroutine received the means to stop even if the literal wrapper
	// only forwards it.
	for _, arg := range g.Call.Args {
		if isContextType(pass.Info.TypeOf(arg)) {
			return
		}
	}
	if bodyHasStopPath(info, body) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine has no stop path (no context, channel operation, select, or WaitGroup in its body); it cannot be shut down and will leak in a long-lived process")
}

// bodyHasStopPath reports whether the goroutine body contains any of the
// recognized lifecycle signals. Channel operations count wholesale: a
// worker draining a channel stops on close, a producer sending results
// hands its lifetime to the consumer, and a select is the idiomatic
// shutdown shape.
func bodyHasStopPath(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, v); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				switch fn.Name() {
				case "Done", "Wait", "Add":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
