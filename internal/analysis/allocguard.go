package analysis

import (
	"go/ast"
	"go/types"
)

// AllocGuard enforces the dynamic half of the zeroalloc contract: every
// //emlint:zeroalloc function must be pinned by a testing.AllocsPerRun
// guard somewhere in the package's tests. escapecheck proves the compiler
// currently sees no escapes; the AllocsPerRun guard keeps the property
// true at runtime across toolchain upgrades that escapecheck's baseline
// might grandfather. A function counts as guarded when any test-file
// function whose body calls testing.AllocsPerRun also calls it (directly
// or inside the measured closure).
var AllocGuard = &Analyzer{
	Name:  "allocguard",
	Doc:   "//emlint:zeroalloc function without a testing.AllocsPerRun guard in the package tests",
	Tests: true,
	Run: func(pass *Pass) {
		var contracts []contract
		for _, c := range collectContracts(pass.Package, pass.Files) {
			if c.zeroalloc {
				contracts = append(contracts, c)
			}
		}
		if len(contracts) == 0 {
			return
		}
		guarded := guardedFuncs(pass)
		for _, c := range contracts {
			fn, _ := pass.Info.Defs[c.decl.Name].(*types.Func)
			if fn == nil || guarded[fn] {
				continue
			}
			pass.Reportf(c.decl.Pos(), "zeroalloc function %s has no testing.AllocsPerRun guard in the package tests; add one (or drop the contract)", c.name())
		}
	},
}

// guardedFuncs collects every function called from a test-file function
// that also calls testing.AllocsPerRun. The whole body counts, not just
// the measured closure: guards conventionally call the kernel once more
// outside AllocsPerRun to sanity-check the result.
func guardedFuncs(pass *Pass) map[*types.Func]bool {
	guarded := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var calls []*types.Func
			hasGuard := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				if callee == nil {
					return true
				}
				if callee.Name() == "AllocsPerRun" && callee.Pkg() != nil && callee.Pkg().Path() == "testing" {
					hasGuard = true
				}
				calls = append(calls, callee)
				return true
			})
			if hasGuard {
				for _, c := range calls {
					guarded[c] = true
				}
			}
		}
	}
	return guarded
}
