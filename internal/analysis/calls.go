package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes, or
// nil for calls through function-typed values, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function path.name
// (not a method).
func isPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != path || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
