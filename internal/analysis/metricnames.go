package analysis

import (
	"go/ast"
	"go/types"
)

// recorderMethods maps the obs.Recorder methods to the index of their
// metric-name argument.
var recorderMethods = map[string]int{
	"Count":    0,
	"Gauge":    0,
	"SetGauge": 0,
	"Observe":  0,
}

// obsNameFuncs maps package-level obs functions that take a metric name to
// the index of that argument.
var obsNameFuncs = map[string]int{
	"StartTimer": 1, // StartTimer(r, name, labels...)
	"Since":      1, // Since(r, name, start, labels...)
}

// MetricNames enforces that every metric-emitting call site passes a
// canonical name constant from internal/obs/names.go rather than a raw
// string (or a locally invented constant). Series identity is the name
// plus ordered labels (DESIGN.md §6); ad-hoc strings silently fork a
// series away from the dashboards and the -metrics JSON dumps. The obs
// package itself is exempt — it is where the names are defined and where
// the registry's own unit tests exercise scratch series.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "obs.Recorder call sites must pass a constant from internal/obs/names.go, never a raw string literal",
	Run: func(pass *Pass) {
		if pass.Path == pass.Module+"/internal/obs" {
			return
		}
		obsPath := pass.Module + "/internal/obs"
		recorder := recorderInterface(pass, obsPath)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				var nameIdx = -1
				if idx, ok := obsNameFuncs[fn.Name()]; ok && isPkgFunc(fn, obsPath, fn.Name()) {
					nameIdx = idx
				} else if idx, ok := recorderMethods[fn.Name()]; ok && recorder != nil {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if s := pass.Info.Selections[sel]; s != nil && implementsRecorder(s.Recv(), recorder) {
							nameIdx = idx
						}
					}
				}
				if nameIdx < 0 || nameIdx >= len(call.Args) {
					return true
				}
				if !isObsConstant(pass, call.Args[nameIdx], obsPath) {
					pass.Reportf(call.Args[nameIdx].Pos(), "metric name must be a canonical constant from internal/obs/names.go (series identity feeds dashboards and -metrics dumps)")
				}
				return true
			})
		}
	},
}

// recorderInterface finds the obs.Recorder interface type through the
// package's import graph, or nil when the package cannot reach obs.
func recorderInterface(pass *Pass, obsPath string) *types.Interface {
	var obsPkg *types.Package
	var walk func(p *types.Package)
	seen := make(map[*types.Package]bool)
	walk = func(p *types.Package) {
		if seen[p] || obsPkg != nil {
			return
		}
		seen[p] = true
		if p.Path() == obsPath {
			obsPkg = p
			return
		}
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	walk(pass.Types)
	if obsPkg == nil {
		return nil
	}
	obj := obsPkg.Scope().Lookup("Recorder")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsRecorder reports whether the receiver type (or a pointer to
// it) satisfies obs.Recorder.
func implementsRecorder(recv types.Type, iface *types.Interface) bool {
	return types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface)
}

// isObsConstant reports whether the expression resolves to a constant
// declared in the obs package.
func isObsConstant(pass *Pass, e ast.Expr, obsPath string) bool {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return false
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Path() == obsPath
}
