package analysis

import "go/ast"

// deprecatedFuncs lists the retired entry points by module-relative
// package path. PR 2 redesigned cross-validation and matcher selection
// around variadic functional options; the struct-options wrappers stay
// exported for external compatibility but in-repo code must use the new
// forms. Grow this table as future redesigns deprecate more surface.
var deprecatedFuncs = map[string]map[string]string{
	"/internal/ml": {
		"CrossValidateOpt": "call CrossValidate(factory, d, k, rng, ml.WithWorkers(n), ...)",
		"SelectMatcherOpt": "call SelectMatcher(factories, d, k, rng, ml.WithWorkers(n), ...)",
	},
}

// NoDeprecated flags in-repo calls to deprecated wrappers. The wrappers'
// own equivalence tests (which exist precisely to pin the wrapper to the
// new API) opt out with an allow directive.
var NoDeprecated = &Analyzer{
	Name:  "nodeprecated",
	Doc:   "calls to deprecated *Opt wrappers; use the variadic functional-options API",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				for suffix, funcs := range deprecatedFuncs {
					if fn.Pkg().Path() != pass.Module+suffix {
						continue
					}
					if fix, ok := funcs[fn.Name()]; ok {
						pass.Reportf(call.Pos(), "%s is deprecated: %s", fn.Name(), fix)
					}
				}
				return true
			})
		}
	},
}
