package analysis

import "go/ast"

// deprecatedFuncs lists the retired entry points by module-relative
// package path. The ml struct-options wrappers deprecated in PR 2 were
// deleted in PR 7; the current entry is the simjoin Options-struct bridge
// kept for one release while callers migrate to individual JoinOption
// values. Grow this table as future redesigns deprecate more surface.
var deprecatedFuncs = map[string]map[string]string{
	"/internal/simjoin": {
		"WithOptions": "pass simjoin.WithWorkers/WithMetrics/WithDenseMinTokens/WithBitmapPostingMin directly",
	},
}

// NoDeprecated flags in-repo calls to deprecated wrappers. The wrappers'
// own equivalence tests (which exist precisely to pin the wrapper to the
// new API) opt out with an allow directive.
var NoDeprecated = &Analyzer{
	Name:  "nodeprecated",
	Doc:   "calls to deprecated *Opt wrappers; use the variadic functional-options API",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				for suffix, funcs := range deprecatedFuncs {
					if fn.Pkg().Path() != pass.Module+suffix {
						continue
					}
					if fix, ok := funcs[fn.Name()]; ok {
						pass.Reportf(call.Pos(), "%s is deprecated: %s", fn.Name(), fix)
					}
				}
				return true
			})
		}
	},
}
