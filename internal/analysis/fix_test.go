package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSrc drops one Go file in a temp dir and returns its path.
func writeSrc(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixDiag(file string, edits ...TextEdit) Diagnostic {
	return Diagnostic{
		Pos:     token.Position{Filename: file, Line: 1, Column: 1},
		Check:   "testcheck",
		Message: "m",
		Fixes:   []SuggestedFix{{Message: "f", Edits: edits}},
	}
}

func TestApplyFixesRewritesAndFormats(t *testing.T) {
	src := "package p\n\nvar  answer = 0\n"
	path := writeSrc(t, src)
	// Replace "0" with "42"; the doubled space before "answer" proves the
	// gofmt pass ran on the whole file, not just the edit.
	off := strings.Index(src, "0")
	res, err := ApplyFixes([]Diagnostic{
		fixDiag(path, TextEdit{Filename: path, Start: off, End: off + 1, NewText: "42"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 0 || len(res.Files) != 1 {
		t.Fatalf("res = %+v", res)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "package p\n\nvar answer = 42\n" {
		t.Fatalf("rewritten file:\n%s", got)
	}
}

func TestApplyFixesOverlapFirstWins(t *testing.T) {
	src := "package p\n\nvar answer = 1234\n"
	path := writeSrc(t, src)
	off := strings.Index(src, "1234")
	first := fixDiag(path, TextEdit{Filename: path, Start: off, End: off + 4, NewText: "1"})
	overlapping := fixDiag(path, TextEdit{Filename: path, Start: off + 2, End: off + 4, NewText: "9"})
	res, err := ApplyFixes([]Diagnostic{first, overlapping})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Fatalf("res = %+v, want 1 applied / 1 skipped", res)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "answer = 1\n") {
		t.Fatalf("first fix did not win:\n%s", got)
	}
}

func TestApplyFixesDisjointEditsCompose(t *testing.T) {
	src := "package p\n\nvar a = 1\n\nvar b = 2\n"
	path := writeSrc(t, src)
	offA := strings.Index(src, "1")
	offB := strings.Index(src, "2")
	res, err := ApplyFixes([]Diagnostic{
		fixDiag(path, TextEdit{Filename: path, Start: offB, End: offB + 1, NewText: "20"}),
		fixDiag(path, TextEdit{Filename: path, Start: offA, End: offA + 1, NewText: "10"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Skipped != 0 {
		t.Fatalf("res = %+v", res)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "var a = 10") || !strings.Contains(string(got), "var b = 20") {
		t.Fatalf("edits out of order:\n%s", got)
	}
}

func TestApplyFixesRejectsUnparsableResult(t *testing.T) {
	src := "package p\n\nvar a = 1\n"
	path := writeSrc(t, src)
	res, err := ApplyFixes([]Diagnostic{
		fixDiag(path, TextEdit{Filename: path, Start: 0, End: 7, NewText: "pack age"}),
	})
	if err == nil {
		t.Fatalf("broken rewrite accepted: %+v", res)
	}
	// The file must be left untouched on error.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != src {
		t.Fatalf("file mutated despite error:\n%s", got)
	}
}

func TestApplyFixesOutOfBoundsEdit(t *testing.T) {
	path := writeSrc(t, "package p\n")
	if _, err := ApplyFixes([]Diagnostic{
		fixDiag(path, TextEdit{Filename: path, Start: 5, End: 99999, NewText: "x"}),
	}); err == nil {
		t.Fatal("out-of-bounds edit accepted")
	}
}

func TestApplyFixesNoFixesNoTouch(t *testing.T) {
	res, err := ApplyFixes([]Diagnostic{{
		Pos: token.Position{Filename: "nonexistent.go", Line: 1}, Check: "c", Message: "m",
	}})
	if err != nil || res.Applied != 0 || len(res.Files) != 0 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}
