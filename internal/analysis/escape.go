// escape.go verifies the performance contracts of contracts.go against the
// compiler's own escape analysis and inlining decisions: it shells out to
// `go build -gcflags=-m=2` for the package under analysis, parses the
// diagnostics into per-function facts, and checks every //emlint:zeroalloc
// function for heap-escaping values and every //emlint:hotpath function
// for falling out of the inlining budget. Because the go build cache
// replays compiler output on unchanged packages, repeat runs cost one
// cache probe, not a rebuild.
//
// Verdicts are gated by a checked-in golden baseline
// (lint/escape_baseline.json at the module root): a violation recorded
// there is grandfathered and only *regressions* — new facts the baseline
// does not list — fail the build. `emlint -update-baseline` rewrites the
// file from current state; DESIGN.md §12 records the workflow and the
// compiler-version caveats (facts are a property of the toolchain, so the
// baseline is honest only on the pinned CI Go version).
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// EscapeBaselinePath is the baseline's module-root-relative location.
const EscapeBaselinePath = "lint/escape_baseline.json"

// EscapeCheck verifies //emlint:zeroalloc and //emlint:hotpath contracts
// against the compiler: a zeroalloc function must have no heap-escaping
// locals or parameters, a hotpath function must stay inlinable. Packages
// without contract annotations are skipped without shelling out, so the
// check is free for most of the tree.
var EscapeCheck = &Analyzer{
	Name: "escapecheck",
	Doc:  "Compiler-verified //emlint:zeroalloc / //emlint:hotpath contract violation (escape analysis, inlining budget)",
	Run: func(pass *Pass) {
		rep, err := CollectEscapeReport(pass.Package, pass.Files)
		if err != nil {
			if len(pass.Files) > 0 {
				pass.Reportf(pass.Files[0].Pos(), "escapecheck: %v", err)
			}
			return
		}
		if rep == nil {
			return
		}
		baseline, err := LoadEscapeBaseline(filepath.Join(rep.Root, EscapeBaselinePath))
		if err != nil {
			pass.Reportf(pass.Files[0].Pos(), "escapecheck: %v", err)
			return
		}
		for _, fn := range rep.Funcs {
			for _, v := range fn.Violations {
				if baseline.Allows(rep.Package, fn.Name, v) {
					continue
				}
				contract := "zeroalloc"
				if strings.HasPrefix(v, "cannot inline") {
					contract = "hotpath"
				}
				pass.Reportf(fn.pos, "%s contract of %s violated: %s (fix the function, or accept with emlint -update-baseline)", contract, fn.Name, v)
			}
		}
	},
}

// EscapeFunc is the parsed compiler verdict for one contract-annotated
// function.
type EscapeFunc struct {
	// Name is the compiler-style function name (Func, (*T).Method).
	Name string `json:"name"`
	// File/Line locate the declaration (module-root-relative file).
	File string `json:"file"`
	Line int    `json:"line"`
	// Zeroalloc/Hotpath are the promises the function makes.
	Zeroalloc bool `json:"zeroalloc,omitempty"`
	Hotpath   bool `json:"hotpath,omitempty"`
	// Facts are every compiler diagnostic attributed to the function's
	// line range (escape facts, inlining verdicts), normalized.
	Facts []string `json:"facts,omitempty"`
	// Violations is the contract-violating subset of Facts.
	Violations []string `json:"violations,omitempty"`

	pos token.Pos // declaration position for diagnostics
}

// EscapeReport is the parsed escape/inlining state of one package's
// contract-annotated functions — the artifact CI uploads next to
// emlint-report.json.
type EscapeReport struct {
	// Package is the import path the baseline is keyed by.
	Package string `json:"package"`
	// Dir is the module-root-relative package directory that was built.
	Dir string `json:"dir"`
	// GoVersion records the toolchain the facts belong to (escape analysis
	// and inlining budgets change across releases).
	GoVersion string       `json:"go_version"`
	Funcs     []EscapeFunc `json:"funcs"`

	// Root is the absolute module root the build ran in.
	Root string `json:"-"`
}

// CollectEscapeReport builds and parses the compiler diagnostics for the
// contract-annotated functions of pkg. It returns (nil, nil) when the
// given files carry no contracts — the fast path that keeps unannotated
// packages from shelling out.
func CollectEscapeReport(pkg *Package, files []*ast.File) (*EscapeReport, error) {
	contracts := collectContracts(pkg, files)
	if len(contracts) == 0 {
		return nil, nil
	}
	absDir, err := filepath.Abs(filepath.Dir(contracts[0].file))
	if err != nil {
		return nil, err
	}
	root, err := FindRoot(absDir)
	if err != nil {
		return nil, err
	}
	relDir, err := filepath.Rel(root, absDir)
	if err != nil {
		return nil, err
	}
	diags, err := compileEscapeDiags(root, relDir)
	if err != nil {
		return nil, err
	}
	rep := &EscapeReport{
		Package:   pkg.Path,
		Dir:       filepath.ToSlash(relDir),
		GoVersion: runtime.Version(),
		Root:      root,
	}
	for _, c := range contracts {
		absFile, err := filepath.Abs(c.file)
		if err != nil {
			return nil, err
		}
		fn := EscapeFunc{
			Name:      c.name(),
			File:      filepath.ToSlash(relPathOr(root, absFile)),
			Line:      c.from,
			Zeroalloc: c.zeroalloc,
			Hotpath:   c.hotpath,
			pos:       c.decl.Pos(),
		}
		for _, d := range diags {
			if d.file != absFile || d.line < c.from || d.line > c.to {
				continue
			}
			fn.Facts = append(fn.Facts, d.message)
			if v, ok := contractViolation(c, d.message); ok {
				fn.Violations = append(fn.Violations, v)
			}
		}
		sort.Strings(fn.Facts)
		sort.Strings(fn.Violations)
		rep.Funcs = append(rep.Funcs, fn)
	}
	sort.Slice(rep.Funcs, func(i, j int) bool { return rep.Funcs[i].Name < rep.Funcs[j].Name })
	return rep, nil
}

// relPathOr renders path relative to root, falling back to path itself.
func relPathOr(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return rel
	}
	return path
}

// contractViolation classifies one compiler message against the
// function's contracts, returning the violation text when it breaks one.
//
// zeroalloc breaks on heap escapes: "X escapes to heap", "moved to heap:
// x", and "leaking param: p" WITHOUT a "to result" destination (a
// result-directed leak only threads the caller's pointer through, it does
// not force a heap allocation). hotpath breaks on "cannot inline".
func contractViolation(c contract, msg string) (string, bool) {
	if c.zeroalloc {
		switch {
		case strings.HasSuffix(msg, "escapes to heap"),
			strings.HasPrefix(msg, "moved to heap:"),
			strings.HasPrefix(msg, "leaking param") && !strings.Contains(msg, " to result "):
			return msg, true
		}
	}
	if c.hotpath && strings.HasPrefix(msg, "cannot inline ") {
		return msg, true
	}
	return "", false
}

// escapeDiag is one parsed compiler diagnostic line.
type escapeDiag struct {
	file    string // absolute path
	line    int
	message string
}

// compileEscapeDiags runs `go build -gcflags=-m=2` over the package
// directory (module-root-relative) and parses the diagnostics. The build
// cache replays compiler output for unchanged packages, so no forced
// rebuild is needed.
func compileEscapeDiags(root, relDir string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./"+filepath.ToSlash(relDir))
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2 ./%s: %v\n%s", relDir, err, out)
	}
	var diags []escapeDiag
	prefix := filepath.ToSlash(relDir) + "/"
	for _, line := range strings.Split(string(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, lineNo, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		// Keep only this package's files: generic instantiations can
		// surface diagnostics attributed to dependency or stdlib sources.
		file = strings.TrimPrefix(filepath.ToSlash(file), "./")
		if !strings.HasPrefix(file, prefix) {
			continue
		}
		// At -m=2 every escape fact appears twice: a verbose header ending
		// in ":" followed by indented "flow:"/"from ..." continuations,
		// then the plain fact line. Keep only the plain facts.
		if strings.HasSuffix(msg, ":") || strings.HasPrefix(msg, " ") {
			continue
		}
		// Inlining verdicts carry the whole inlined body after " as: ";
		// drop it — the verdict and cost are the fact.
		if i := strings.Index(msg, " as: "); i >= 0 && strings.HasPrefix(msg, "can inline ") {
			msg = msg[:i]
		}
		diags = append(diags, escapeDiag{
			file:    filepath.Join(root, filepath.FromSlash(file)),
			line:    lineNo,
			message: msg,
		})
	}
	return diags, nil
}

// splitDiagLine parses "path/file.go:line:col: message".
func splitDiagLine(line string) (file string, lineNo int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, "", false
	}
	return file, n, strings.TrimPrefix(parts[2], " "), true
}

// EscapeBaseline is the golden state: package path → function name →
// sorted accepted violation messages. Messages are position-independent,
// so unrelated edits to a file do not invalidate the baseline.
type EscapeBaseline map[string]map[string][]string

// LoadEscapeBaseline reads the baseline file; a missing file is an empty
// baseline (every violation is a regression).
func LoadEscapeBaseline(path string) (EscapeBaseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return EscapeBaseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b EscapeBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return b, nil
}

// SaveEscapeBaseline writes the baseline with stable formatting, creating
// the directory as needed.
func SaveEscapeBaseline(path string, b EscapeBaseline) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Allows reports whether the baseline grandfathers the violation.
func (b EscapeBaseline) Allows(pkg, fn, msg string) bool {
	for _, m := range b[pkg][fn] {
		if m == msg {
			return true
		}
	}
	return false
}

// Record adds a violation to the baseline, keeping lists sorted and
// duplicate-free.
func (b EscapeBaseline) Record(pkg, fn, msg string) {
	if b[pkg] == nil {
		b[pkg] = make(map[string][]string)
	}
	for _, m := range b[pkg][fn] {
		if m == msg {
			return
		}
	}
	b[pkg][fn] = append(b[pkg][fn], msg)
	sort.Strings(b[pkg][fn])
}
