package analysis

import (
	"go/ast"
	"go/types"
)

// errdropExemptPkgFuncs lists stdlib package functions whose error result
// is conventionally ignored: terminal printing to stdout cannot be
// meaningfully handled by this codebase.
var errdropExemptPkgFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
}

// errdropExemptRecvTypes lists receiver types whose Write/WriteString
// style methods are documented to always return a nil error.
var errdropExemptRecvTypes = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// fprintFuncs are the fmt functions whose first argument is the writer;
// calls targeting a never-failing or terminal writer are exempt.
var fprintFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// localWriterMethods are the Write-family method names eligible for the
// program-local never-failing-writer exemption. The scope is deliberately
// narrow: a dropped Close or Flush error stays flagged even when today's
// body happens to return nil, because those are contracts callers are
// expected to check; Write on an in-memory sink is the one shape where
// the stdlib itself (strings.Builder, bytes.Buffer) blesses the drop.
var localWriterMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// neverFailingWriter reports whether the writer expression is one whose
// Write cannot usefully fail: a *strings.Builder or *bytes.Buffer
// (documented to always return nil), or the process's own stdout/stderr
// (a failed diagnostic print has nowhere left to be reported).
func neverFailingWriter(info *types.Info, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if named, ok := types.Unalias(derefType(t)).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return false
}

// ErrDrop flags error-typed results that are silently discarded: a call
// used as a bare expression statement, or an error result assigned to the
// blank identifier. The signature is resolved through go/types, so drops
// through local wrappers — a method like (*Metamanager).Close, or a call
// through a variable of type func() error — are caught the same as direct
// stdlib calls. Deferred calls are exempt: `defer f.Close()` on a
// read-side resource is the established cleanup idiom, and the check
// targets silent mid-flow drops where an error influences nothing.
// Legitimate discards (best-effort metrics writes, close-on-error-path)
// opt out with //emlint:allow errdrop -- reason.
//
// In program mode the check consults the cross-package call graph:
// Write-family methods on program-local types whose declared bodies
// provably return a nil error on every path are exempt, the same way
// bytes.Buffer is — an in-repo in-memory sink does not need its Write
// errors checked just because it lives outside the stdlib.
var ErrDrop = &Analyzer{
	Name:  "errdrop",
	Doc:   "error results discarded via bare calls or _ assignment; check, propagate, or allow-list with a reason",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.ExprStmt:
					call, ok := stmt.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					if idx := droppedErrors(pass, call); len(idx) > 0 {
						pass.Reportf(call.Pos(), "%s returns an error that is silently dropped; handle it, or annotate //emlint:allow errdrop -- reason", calleeLabel(pass.Info, call))
					}
				case *ast.AssignStmt:
					reportBlankErrorAssigns(pass, stmt)
				}
				return true
			})
		}
	},
}

// droppedErrors returns the error result indices of the call, or nil when
// the call has none or is exempt.
func droppedErrors(pass *Pass, call *ast.CallExpr) []int {
	info := pass.Info
	sig := callSignature(info, call)
	idx := errorResults(sig)
	if len(idx) == 0 {
		return nil
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		if byName := errdropExemptPkgFuncs[fn.Pkg().Path()]; byName[fn.Name()] {
			return nil
		}
		if fn.Pkg().Path() == "fmt" && fprintFuncs[fn.Name()] && len(call.Args) > 0 &&
			(neverFailingWriter(info, call.Args[0]) || localNeverFailingWriterArg(pass, call.Args[0])) {
			return nil
		}
		if recv := sig.Recv(); recv != nil {
			if exemptRecvType(recv.Type()) {
				return nil
			}
			// Interface dispatch hides the concrete receiver (hash.Hash32
			// resolves Write to io.Writer.Write); check the operand's own
			// static type as well.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if t := info.TypeOf(sel.X); t != nil && exemptRecvType(t) {
					return nil
				}
			}
			if localWriterMethods[fn.Name()] && alwaysNilReturns(pass, fn, idx) {
				return nil
			}
		}
	}
	return idx
}

// alwaysNilReturns reports whether fn is a program-local function whose
// declared body provably returns nil at every listed error result index:
// each return statement carries an explicit nil in those positions. Bare
// returns (named results) and result-count passthroughs defeat the proof,
// which is the conservative answer — the fact is consulted only to
// suppress, never to report.
func alwaysNilReturns(pass *Pass, fn *types.Func, idx []int) bool {
	if pass.Prog == nil || fn.Pkg() == nil {
		return false
	}
	pkg := pass.Prog.Local(fn.Pkg())
	if pkg == nil {
		return false
	}
	decl := pass.Prog.CallGraph().Decl(fn)
	if decl == nil || decl.Body == nil {
		return false
	}
	nResults := fn.Type().(*types.Signature).Results().Len()
	proved, sawReturn := true, false
	walkUnit(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return proved
		}
		sawReturn = true
		if len(ret.Results) != nResults {
			proved = false
			return false
		}
		for _, i := range idx {
			if !isUniverseNil(pkg.Info, ret.Results[i]) {
				proved = false
				return false
			}
		}
		return true
	})
	return proved && sawReturn
}

// isUniverseNil reports whether e is the predeclared nil.
func isUniverseNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// localNeverFailingWriterArg reports whether the writer expression has a
// program-local named type whose Write method provably returns a nil
// error — the in-repo analogue of passing a *bytes.Buffer to fmt.Fprintf.
func localNeverFailingWriterArg(pass *Pass, e ast.Expr) bool {
	if pass.Prog == nil {
		return false
	}
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := types.Unalias(derefType(t)).(*types.Named)
	if !ok || named.Obj().Pkg() == nil || pass.Prog.Local(named.Obj().Pkg()) == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, named.Obj().Pkg(), "Write")
	wfn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	wsig, ok := wfn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return alwaysNilReturns(pass, wfn, errorResults(wsig))
}

// reportBlankErrorAssigns flags `_ = errCall()` and `v, _ := errCall()`
// where a blank identifier swallows an error-typed result.
func reportBlankErrorAssigns(pass *Pass, stmt *ast.AssignStmt) {
	// Multi-value form: one call on the RHS fanned out across the LHS.
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for _, i := range droppedErrors(pass, call) {
			if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
				pass.Reportf(stmt.Lhs[i].Pos(), "error result of %s assigned to _; handle it, or annotate //emlint:allow errdrop -- reason", calleeLabel(pass.Info, call))
			}
		}
		return
	}
	// Paired form: each LHS matches one RHS expression.
	for i, rhs := range stmt.Rhs {
		if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		sig := callSignature(pass.Info, call)
		if sig == nil || sig.Results().Len() != 1 {
			continue
		}
		if len(droppedErrors(pass, call)) > 0 {
			pass.Reportf(stmt.Lhs[i].Pos(), "error result of %s assigned to _; handle it, or annotate //emlint:allow errdrop -- reason", calleeLabel(pass.Info, call))
		}
	}
}

// exemptRecvType reports whether t names one of the never-failing
// receiver types.
func exemptRecvType(t types.Type) bool {
	named, ok := types.Unalias(derefType(t)).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && errdropExemptRecvTypes[obj.Pkg().Path()+"."+obj.Name()]
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// calleeLabel renders a short human name for the called function.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if named, ok := types.Unalias(derefType(recv.Type())).(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
