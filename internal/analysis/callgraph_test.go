package analysis

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// loadSource type-checks an in-memory package through the real loader so
// the graph is built the same way analyzers see it.
func loadSource(t *testing.T, src string) *Package {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixturemod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("fixturemod/pkg")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

const graphSrc = `package pkg

import "sort"

func a() { b(); c() }
func b() { c() }
func c() { leaf() }
func leaf() {
	ch := make(chan int, 1)
	ch <- 1
}
func standalone() { sort.Strings(nil) }

type T struct{}

func (T) M() { a() }
`

func fnByName(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	if name == "T.M" {
		obj, _, _ := types.LookupFieldOrMethod(pkg.Types.Scope().Lookup("T").Type(), false, pkg.Types, "M")
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
		t.Fatalf("method M not found")
	}
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found", name)
	}
	return fn
}

func TestCallGraphEdges(t *testing.T) {
	pkg := loadSource(t, graphSrc)
	g := NewCallGraph(pkg)

	a := fnByName(t, pkg, "a")
	callees := g.Callees(a)
	if len(callees) != 2 {
		t.Fatalf("a calls %d functions, want 2", len(callees))
	}
	// Callees is sorted by full name: b before c.
	if callees[0].Name() != "b" || callees[1].Name() != "c" {
		t.Fatalf("callees of a = [%s %s], want sorted [b c]", callees[0].Name(), callees[1].Name())
	}

	// Cross-package calls (sort.Strings) never become edges.
	if got := g.Callees(fnByName(t, pkg, "standalone")); len(got) != 0 {
		t.Fatalf("standalone has %d same-package callees, want 0", len(got))
	}
}

func TestCallGraphReaches(t *testing.T) {
	pkg := loadSource(t, graphSrc)
	g := NewCallGraph(pkg)

	a, leaf, standalone := fnByName(t, pkg, "a"), fnByName(t, pkg, "leaf"), fnByName(t, pkg, "standalone")
	if !g.Reaches(a, leaf) {
		t.Fatal("a must reach leaf through b/c")
	}
	if g.Reaches(leaf, a) {
		t.Fatal("reachability must be directional")
	}
	if g.Reaches(standalone, leaf) {
		t.Fatal("standalone must not reach leaf")
	}
	if !g.Reaches(a, a) {
		t.Fatal("a function reaches itself")
	}
	// Methods participate: T.M -> a -> ... -> leaf.
	if !g.Reaches(fnByName(t, pkg, "T.M"), leaf) {
		t.Fatal("method M must reach leaf")
	}
}

func TestCallGraphAnyReachable(t *testing.T) {
	pkg := loadSource(t, graphSrc)
	g := NewCallGraph(pkg)

	hasChan := func(fd *ast.FuncDecl) bool {
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.SendStmt); ok {
				found = true
			}
			return !found
		})
		return found
	}
	if !g.AnyReachable(fnByName(t, pkg, "a"), hasChan) {
		t.Fatal("a transitively performs a channel send")
	}
	if g.AnyReachable(fnByName(t, pkg, "standalone"), hasChan) {
		t.Fatal("standalone performs no channel op anywhere")
	}
}
