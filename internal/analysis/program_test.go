package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// progFixture is a two-package module: root imports dep, calls into it
// directly and through an interface, and dep carries a build-constrained
// file that must stay out of the unit.
func progFixture(t *testing.T) *Loader {
	t.Helper()
	return tempModule(t, map[string]string{
		"root/root.go": `package root

import "fixturemod/dep"

type Runner interface{ Run() int }

func Use(d *dep.D) int {
	return d.Touch() + dep.Free()
}

func Dispatch(r Runner) int {
	return r.Run()
}
`,
		"dep/dep.go": `package dep

type D struct{ n int }

func (d *D) Touch() int { d.n++; return d.n }

func Free() int { return 1 }

type Impl struct{}

func (Impl) Run() int { return 2 }
`,
		"dep/tagged.go": "//go:build windows\n\npackage dep\n\nfunc Broken() int { return undefinedOnPurpose }\n",
	})
}

// TestLoadProgramMembers: the program holds root plus its module-local
// dependency closure, sorted by path, with full syntax for both.
func TestLoadProgramMembers(t *testing.T) {
	l := progFixture(t)
	prog, err := l.LoadProgram("fixturemod/root")
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	if prog.Root.Path != "fixturemod/root" {
		t.Fatalf("root path = %q", prog.Root.Path)
	}
	var paths []string
	for _, pkg := range prog.Packages {
		paths = append(paths, pkg.Path)
		if len(pkg.Files) == 0 || pkg.Info == nil {
			t.Errorf("member %s lacks syntax or info", pkg.Path)
		}
	}
	if strings.Join(paths, " ") != "fixturemod/dep fixturemod/root" {
		t.Fatalf("members = %v, want sorted [dep root]", paths)
	}
	dep := prog.Package("fixturemod/dep")
	if dep == nil || prog.Local(dep.Types) != dep {
		t.Fatal("Package/Local do not round-trip the dependency")
	}
	// The build-constrained dep file must be excluded (it would not even
	// type-check), so the dependency has exactly one file.
	if len(dep.Files) != 1 {
		t.Fatalf("dep has %d files, want 1 (tagged file excluded)", len(dep.Files))
	}
}

// TestProgramCallGraphCrossPackage: edges cross the package boundary for
// both plain calls and method calls, and interface dispatch fans out to
// the program-local implementer.
func TestProgramCallGraphCrossPackage(t *testing.T) {
	l := progFixture(t)
	prog, err := l.LoadProgram("fixturemod/root")
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	g := prog.CallGraph()
	find := func(name string) *types.Func {
		for _, fn := range g.Functions() {
			if fn.Name() == name {
				return fn
			}
		}
		t.Fatalf("function %s not in graph", name)
		return nil
	}
	use, touch, free := find("Use"), find("Touch"), find("Free")
	callees := g.Callees(use)
	if len(callees) != 2 || callees[0] != touch && callees[1] != touch {
		t.Fatalf("Use callees = %v, want Touch and Free across the package boundary", callees)
	}
	if !g.Reaches(use, free) {
		t.Fatal("Use must reach dep.Free")
	}
	dispatch, run := find("Dispatch"), find("Run")
	if !g.Reaches(dispatch, run) {
		t.Fatal("interface dispatch must resolve Runner.Run to dep.Impl.Run")
	}
	if pkg := g.PackageOf(touch); pkg == nil || pkg.Path != "fixturemod/dep" {
		t.Fatalf("PackageOf(Touch) = %v", pkg)
	}
}

// TestLoadProgramDepTypeError: a type error in a dependency surfaces as a
// load error on the root naming the broken dependency — never a panic.
func TestLoadProgramDepTypeError(t *testing.T) {
	l := tempModule(t, map[string]string{
		"root/root.go": `package root

import "fixturemod/broken"

func Use() int { return broken.X }
`,
		"broken/broken.go": "package broken\n\nvar X = undefinedSymbol\n",
	})
	prog, err := l.LoadProgram("fixturemod/root")
	if err == nil {
		t.Fatalf("LoadProgram returned %+v, want dependency type error", prog)
	}
	msg := err.Error()
	if !strings.Contains(msg, "fixturemod/broken") || !strings.Contains(msg, "undefinedSymbol") {
		t.Fatalf("error does not name the broken dependency: %v", msg)
	}
}

// TestLoadProgramTestOnlyDependencySibling: a test-only package elsewhere
// in the module does not disturb program loading, and the root's own test
// files are part of the unit while the dependency's are not.
func TestLoadProgramRootTestsIncluded(t *testing.T) {
	l := tempModule(t, map[string]string{
		"root/root.go":      "package root\n\nimport \"fixturemod/dep\"\n\nfunc Use() int { return dep.Free() }\n",
		"root/root_test.go": "package root\n\nimport \"testing\"\n\nfunc TestUse(t *testing.T) { _ = Use() }\n",
		"dep/dep.go":        "package dep\n\nfunc Free() int { return 1 }\n",
		"dep/dep_test.go":   "package dep\n\nimport \"testing\"\n\nfunc TestFree(t *testing.T) { _ = Free() }\n",
	})
	prog, err := l.LoadProgram("fixturemod/root")
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	if len(prog.Root.Files) != 2 {
		t.Fatalf("root has %d files, want 2 (its tests are analyzed)", len(prog.Root.Files))
	}
	dep := prog.Package("fixturemod/dep")
	if dep == nil || len(dep.Files) != 1 {
		t.Fatalf("dep = %+v, want 1 file (dependency tests are not imported)", dep)
	}
}

// TestSingleProgramCompat: Run over a bare package behaves as a
// single-package program — no cross-package members, graph identical to
// NewCallGraph's historical same-package behavior.
func TestSingleProgramCompat(t *testing.T) {
	l := progFixture(t)
	pkg, err := l.Load("fixturemod/dep")
	if err != nil {
		t.Fatal(err)
	}
	prog := singleProgram(pkg)
	if len(prog.Packages) != 1 || prog.Root != pkg {
		t.Fatalf("singleProgram members = %d", len(prog.Packages))
	}
	if prog.Local(pkg.Types) != pkg {
		t.Fatal("Local must resolve the root")
	}
}
