package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// HTTPErrors enforces the structured error envelope on HTTP handler code:
// in any function that receives an http.ResponseWriter, error responses
// must go through the module's writeError helper with a canonical code
// from the error-code registry. Concretely it flags (1) calls to
// http.Error / http.NotFound — they emit text/plain bodies no client of
// the JSON API can parse, (2) direct w.WriteHeader(4xx/5xx) with a
// constant status — a naked error status with whatever body follows,
// and (3) writeError calls whose code argument is an inline string
// literal rather than a named constant — stringly-typed codes drift and
// never make it into the registry docs. The envelope helpers themselves
// (writeError, writeJSON) opt out with an allow directive where they
// terminate the chain.
var HTTPErrors = &Analyzer{
	Name: "httperrors",
	Doc:  "HTTP error paths bypassing the structured envelope or using unregistered error codes",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if v.Body != nil && hasResponseWriterParam(pass.Info, v.Type) {
						checkHandlerBody(pass, v.Body)
					}
				case *ast.FuncLit:
					if hasResponseWriterParam(pass.Info, v.Type) {
						checkHandlerBody(pass, v.Body)
					}
				}
				return true
			})
		}
	},
}

// hasResponseWriterParam reports whether the function type takes an
// http.ResponseWriter.
func hasResponseWriterParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isResponseWriter(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter"
}

// checkHandlerBody scans one handler unit. Nested literals are visited by
// the file walk when they have their own ResponseWriter param; without one
// they share this handler's writer, so the walk descends.
func checkHandlerBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		if isPkgFunc(fn, "net/http", "Error") || isPkgFunc(fn, "net/http", "NotFound") {
			pass.Reportf(call.Pos(), "http.%s bypasses the structured error envelope; respond through writeError with a canonical code", fn.Name())
			return true
		}
		if fn.Name() == "WriteHeader" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
			if status, ok := constStatus(pass.Info, call); ok && status >= 400 {
				pass.Reportf(call.Pos(), "WriteHeader(%d) writes a naked error status; respond through writeError so the body carries the envelope", status)
			}
			return true
		}
		if fn.Name() == "writeError" && pass.Prog.Local(fn.Pkg()) != nil {
			checkErrorCodeArg(pass, fn, call)
		}
		return true
	})
}

// constStatus extracts the constant value of a WriteHeader argument.
func constStatus(info *types.Info, call *ast.CallExpr) (int64, bool) {
	if len(call.Args) != 1 {
		return 0, false
	}
	tv, ok := info.Types[ast.Unparen(call.Args[0])]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return v, exact
}

// checkErrorCodeArg verifies the argument bound to the callee's "code"
// parameter is a reference to a named constant, not an inline literal.
func checkErrorCodeArg(pass *Pass, fn *types.Func, call *ast.CallExpr) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	idx := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == "code" {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(call.Args) {
		return
	}
	arg := ast.Unparen(call.Args[idx])
	var id *ast.Ident
	switch v := arg.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	}
	if id != nil {
		if _, isConst := pass.Info.Uses[id].(*types.Const); isConst {
			return
		}
	}
	pass.Reportf(arg.Pos(), "error code must be a named constant from the code registry, not an inline value; register the code so clients can rely on it")
}
