package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafety flags mutex regions with unsound shapes: a Lock (or RLock)
// with no matching Unlock anywhere in the function, a return statement
// between Lock and Unlock (the lock leaks on that path), and a lock held
// across a channel operation — including one performed by a module-local
// function the locked region calls, resolved through the program call
// graph (cross-package under emlint's program mode). Holding a lock across
// a blocking channel op is the classic pool/metamanager deadlock: the
// goroutine that would drain the channel may need the same lock.
//
// Lock expressions are canonicalized through locks.go, so a promoted
// acquire via an embedded mutex (`c.Lock()`) pairs with its explicit
// release (`c.Mutex.Unlock()`) and vice versa.
//
// The analysis is intra-procedural per function body (closures are
// separate units) and scans statement siblings forward from each Lock:
// a defer Unlock protects the rest of the unit (only the channel-op check
// still applies); an Unlock nested inside branching control flow ends the
// scan conservatively without reports. Deliberate hand-off patterns opt
// out with //emlint:allow locksafety -- reason.
var LockSafety = &Analyzer{
	Name:  "locksafety",
	Doc:   "Lock without Unlock on some path, or a lock held across a channel operation (call-graph aware)",
	Tests: true,
	Run: func(pass *Pass) {
		graph := pass.Prog.CallGraph()
		chanFuncs := make(map[*ast.FuncDecl]bool)
		reachesChan := func(fn *types.Func) bool {
			return graph.AnyReachable(fn, func(fd *ast.FuncDecl) bool {
				has, ok := chanFuncs[fd]
				if !ok {
					has = fd.Body != nil && hasChanOp(fd.Body)
					chanFuncs[fd] = has
				}
				return has
			})
		}
		for _, f := range pass.Files {
			for _, unit := range funcUnits(f) {
				checkLockUnit(pass, unit, reachesChan)
			}
		}
	},
}

// checkLockUnit scans every statement list of the unit for lock regions.
func checkLockUnit(pass *Pass, unit funcUnit, reachesChan func(*types.Func) bool) {
	var lists func(n ast.Node)
	lists = func(n ast.Node) {
		switch v := n.(type) {
		case nil, *ast.FuncLit:
			return
		case *ast.BlockStmt:
			scanLockRegions(pass, unit, v.List, reachesChan)
		case *ast.CaseClause:
			scanLockRegions(pass, unit, v.Body, reachesChan)
		case *ast.CommClause:
			scanLockRegions(pass, unit, v.Body, reachesChan)
		}
		children(n, lists)
	}
	lists(unit.body)
}

// scanLockRegions walks one statement list and checks the region following
// each Lock/RLock expression statement.
func scanLockRegions(pass *Pass, unit funcUnit, stmts []ast.Stmt, reachesChan func(*types.Func) bool) {
	for i, stmt := range stmts {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		key, method, ok := lockCallInfo(pass.Info, es.X)
		if !ok {
			continue
		}
		release, isAcquire := syncLockMethods[method]
		if !isAcquire {
			continue
		}
		if !unitHasRelease(pass, unit, key, release) {
			pass.Reportf(es.Pos(), "%s.%s has no matching %s in this function; unlock on every path (or //emlint:allow locksafety -- reason for hand-off)", key, method, release)
			continue
		}
		checkRegion(pass, unit, stmts[i+1:], es, key, release, reachesChan)
	}
}

// checkRegion inspects the statements following a Lock until its release.
func checkRegion(pass *Pass, unit funcUnit, rest []ast.Stmt, lock *ast.ExprStmt, key, release string, reachesChan func(*types.Func) bool) {
	for _, stmt := range rest {
		switch v := stmt.(type) {
		case *ast.DeferStmt:
			if k, m, ok := lockCallInfo(pass.Info, v.Call); ok && k == key && m == release {
				// Protected until the unit returns; the lock is still held
				// across anything after this point.
				reportChanOpsAfter(pass, unit, v.End(), key, reachesChan)
				return
			}
		case *ast.ExprStmt:
			if k, m, ok := lockCallInfo(pass.Info, v.X); ok && k == key && m == release {
				return // clean linear region
			}
		}
		if stmtHasRelease(pass, stmt, key, release) {
			return // released inside branching flow; assume the branches balance
		}
		if ret := firstNode(stmt, isReturnStmt); ret != nil {
			pass.Reportf(ret.Pos(), "return while %s is locked (no %s on this path); release before returning or use defer", key, release)
			return
		}
		if op := firstNode(stmt, isChanOpNode); op != nil {
			pass.Reportf(op.Pos(), "channel operation while %s is locked; a blocked send/receive here can deadlock the lock's other users", key)
			return
		}
		if call := firstChanReachingCall(pass, stmt, reachesChan); call != nil {
			pass.Reportf(call.Pos(), "%s performs channel operations and is called while %s is locked; a blocked send/receive there can deadlock the lock's other users", calleeLabel(pass.Info, call), key)
			return
		}
	}
}

// reportChanOpsAfter flags channel ops (direct or one call hop away)
// positioned after pos in the unit — the region a defer Unlock leaves
// covered by the lock.
func reportChanOpsAfter(pass *Pass, unit funcUnit, pos token.Pos, key string, reachesChan func(*types.Func) bool) {
	walkUnit(unit.body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= pos {
			return true
		}
		if isChanOpNode(n) {
			pass.Reportf(n.Pos(), "channel operation while %s is locked (deferred unlock runs at return); a blocked send/receive here can deadlock the lock's other users", key)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil && pass.Prog.Local(fn.Pkg()) != nil && reachesChan(fn) {
				pass.Reportf(call.Pos(), "%s performs channel operations and is called while %s is locked (deferred unlock runs at return)", calleeLabel(pass.Info, call), key)
				return false
			}
		}
		return true
	})
}

// unitHasRelease reports whether the unit contains key.release() anywhere,
// as a statement or deferred.
func unitHasRelease(pass *Pass, unit funcUnit, key, release string) bool {
	found := false
	walkUnit(unit.body, func(n ast.Node) bool {
		if found {
			return false
		}
		if k, m, ok := lockCallInfo(pass.Info, n); ok && k == key && m == release {
			found = true
		}
		return !found
	})
	return found
}

// stmtHasRelease reports whether the statement subtree contains
// key.release(), not descending into function literals.
func stmtHasRelease(pass *Pass, stmt ast.Stmt, key, release string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if k, m, ok := lockCallInfo(pass.Info, n); ok && k == key && m == release {
			found = true
		}
		return !found
	})
	return found
}

// firstNode returns the first node in the statement subtree satisfying
// pred, skipping nested function literals.
func firstNode(stmt ast.Stmt, pred func(ast.Node) bool) ast.Node {
	var hit ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if hit != nil || n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if pred(n) {
			hit = n
			return false
		}
		return true
	})
	return hit
}

func isReturnStmt(n ast.Node) bool {
	_, ok := n.(*ast.ReturnStmt)
	return ok
}

func isChanOpNode(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.SendStmt, *ast.SelectStmt:
		return true
	case *ast.UnaryExpr:
		return v.Op == token.ARROW
	}
	return false
}

// firstChanReachingCall returns the first call in the statement subtree
// whose same-package callee (transitively) performs a channel operation.
func firstChanReachingCall(pass *Pass, stmt ast.Stmt, reachesChan func(*types.Func) bool) *ast.CallExpr {
	var hit *ast.CallExpr
	ast.Inspect(stmt, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil && pass.Prog.Local(fn.Pkg()) != nil && reachesChan(fn) {
				hit = call
				return false
			}
		}
		return true
	})
	return hit
}
