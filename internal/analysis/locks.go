// locks.go is the shared lock-site resolution layer for the mutex
// analyzers (locksafety, rlockwrite, lockorder). It matches
// `expr.Lock()`-shaped calls to the sync package's primitives and
// canonicalizes the lock expression: a promoted call through an embedded
// mutex (`c.Lock()`) and its explicit spelling (`c.Mutex.Lock()`) resolve
// to the same key, so mixed forms pair up instead of producing phantom
// "missing unlock" reports. Beyond the textual key it resolves a
// type-level identity ("pkg.Type.field") that is stable across functions
// and packages — the unit lockorder compares acquisition orders with.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// syncLockMethods pairs each acquire method with its release.
var syncLockMethods = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// lockCall is one resolved call to a sync lock method.
type lockCall struct {
	// key is the canonical textual form of the lock expression within its
	// function ("c.mu", "c.Mutex" — embedded hops spelled out), the unit
	// locksafety and rlockwrite pair acquires with releases by.
	key string
	// method is Lock, Unlock, RLock, or RUnlock.
	method string
	// id is the type-level identity of the lock — "pkgpath.Type.field"
	// for a mutex field, "pkgpath.var" for a package-level mutex — or ""
	// when the lock lives in a local variable or behind an expression the
	// resolver cannot canonicalize (index, call result). Only identified
	// locks participate in cross-function order comparison.
	id string
	// base is the object at the root of the selector chain (the receiver
	// or variable the lock hangs off), or nil when the root is not a plain
	// identifier.
	base types.Object
	// rw reports whether the primitive is a sync.RWMutex.
	rw bool
}

// resolveLockCall matches a node against `expr.(R)Lock()` / `expr.(R)Unlock()`
// on a sync primitive (including promoted calls through embedding and
// calls via a sync.Locker) and canonicalizes the lock expression.
func resolveLockCall(info *types.Info, n ast.Node) (lockCall, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return lockCall{}, false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockCall{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	lc := lockCall{method: fn.Name(), rw: recvIsRWMutex(fn)}

	// The method selection's implicit steps are the embedded-field hops a
	// promoted call (`c.Lock()`) elides; spelling them out is what makes
	// the key canonical.
	var implicit []*types.Var
	if ms, ok := info.Selections[sel]; ok && ms.Kind() == types.MethodVal {
		idx := ms.Index()
		implicit = fieldsAt(ms.Recv(), idx[:len(idx)-1])
	}
	root, fields, exact := selectorChain(info, sel.X)
	fields = append(fields, implicit...)

	if !exact || root == nil {
		// Not an identifier-rooted chain (s.items[i].mu, pool().mu):
		// fall back to a best-effort textual key so pairing inside one
		// function still works; no cross-function identity.
		lc.key = joinKey(types.ExprString(ast.Unparen(sel.X)), implicit)
		return lc, true
	}
	lc.base = root
	lc.key = joinKey(root.Name(), fields)
	lc.id = lockIdentity(root, fields)
	return lc, true
}

// recvIsRWMutex reports whether the sync method's receiver is RWMutex.
func recvIsRWMutex(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "RWMutex"
}

// selectorChain unwinds an expression like c.inner.mu to its root object
// and the ordered field path, expanding implicit embedded hops inside
// every selector. exact is false when the chain passes through anything
// that is not a plain field selection (an index, a call, a dereference of
// a computed value) — the caller falls back to a textual key.
func selectorChain(info *types.Info, e ast.Expr) (root types.Object, fields []*types.Var, exact bool) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		return objOf(info, v), nil, true
	case *ast.SelectorExpr:
		if fs, ok := info.Selections[v]; ok && fs.Kind() == types.FieldVal {
			r, outer, ok := selectorChain(info, v.X)
			if !ok {
				return nil, nil, false
			}
			return r, append(outer, fieldsAt(fs.Recv(), fs.Index())...), true
		}
		// Qualified identifier: pkg.GlobalMu has no Selection entry.
		if obj := info.Uses[v.Sel]; obj != nil {
			if _, isPkg := info.Uses[rootIdent(v.X)].(*types.PkgName); isPkg {
				return obj, nil, true
			}
		}
		return nil, nil, false
	case *ast.StarExpr:
		return selectorChain(info, v.X)
	default:
		return nil, nil, false
	}
}

// rootIdent returns e as a plain identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// fieldsAt resolves a types.Selection index path to the field objects it
// traverses.
func fieldsAt(t types.Type, index []int) []*types.Var {
	var out []*types.Var
	for _, i := range index {
		st, ok := underlyingStruct(t)
		if !ok || i >= st.NumFields() {
			return out
		}
		f := st.Field(i)
		out = append(out, f)
		t = f.Type()
	}
	return out
}

// underlyingStruct unwraps pointers and named types down to a struct.
func underlyingStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// joinKey renders root.field1.field2 for the canonical textual key.
func joinKey(root string, fields []*types.Var) string {
	parts := []string{root}
	for _, f := range fields {
		parts = append(parts, f.Name())
	}
	return strings.Join(parts, ".")
}

// lockIdentity derives the cross-function identity of a lock: the struct
// field that holds it (qualified by the field's declaring package — the
// same field reached through different receivers is the same lock class)
// or a package-level variable. Locals yield "".
func lockIdentity(root types.Object, fields []*types.Var) string {
	if len(fields) > 0 {
		f := fields[len(fields)-1]
		if f.Pkg() == nil {
			return ""
		}
		var path []string
		for _, hop := range fields {
			path = append(path, hop.Name())
		}
		// Qualify by the root's type when it has a name, so Pool.mu and
		// Registry.mu stay distinct even if both fields are spelled "mu".
		owner := namedTypeName(root.Type())
		if owner == "" {
			owner = f.Pkg().Path()
		}
		return owner + "." + strings.Join(path, ".")
	}
	if root == nil || root.Pkg() == nil {
		return ""
	}
	// A package-level mutex variable is its own identity; locals are not
	// comparable across functions.
	if root.Parent() == root.Pkg().Scope() {
		return root.Pkg().Path() + "." + root.Name()
	}
	return ""
}

// namedTypeName renders the named type behind t (through pointers) as
// pkgpath.Name, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// lockCallInfo is the legacy (key, method) view of resolveLockCall that
// the region scanner in locksafety pairs acquires and releases with.
func lockCallInfo(info *types.Info, n ast.Node) (key, method string, ok bool) {
	lc, ok := resolveLockCall(info, n)
	if !ok {
		return "", "", false
	}
	return lc.key, lc.method, true
}
