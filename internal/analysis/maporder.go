package analysis

import (
	"go/ast"
	"go/types"
)

// writerMethods are the method/function names treated as emission sinks:
// once a value reaches one of these in map-iteration order, the output
// stream is order-dependent.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true,
}

// MapOrder is the semantic successor of the syntactic nondeterminism
// check: it flags values that flow from a map iteration into an ordered
// sink — a slice built by append, or writer/printer output — with no
// intervening sort. Go randomizes map iteration order per run, so such a
// flow makes emitted candidate sets, CSV rows, and metric dumps differ
// between identical runs, exactly the irreproducibility class Meduri et
// al.'s EM benchmark warns about. The analysis is a single forward taint
// walk per function body: range variables of a map range (and locals
// assigned from them) are tainted; appending a tainted value to a slice
// that the function also passes to sort.*/slices.Sort* is fine (the
// collect-then-sort idiom); appending to an unsorted slice, or passing a
// tainted value to a Write/Print/Encode-style call, is reported. Flows
// that are ordered downstream (a caller sorts the returned pairs) opt out
// with //emlint:allow maporder -- reason.
//
// In program mode, passing the collected slice to a program-local helper
// that transitively sorts (resolved through the cross-package call graph)
// counts as establishing order, so `orderPairs(out)` suppresses like an
// inline sort.Slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map-iteration values flowing into appended slices or writer output without a sort; collect and sort, or allow-list with a reason",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, unit := range funcUnits(f) {
				checkMapOrderUnit(pass, unit)
			}
		}
	},
}

func checkMapOrderUnit(pass *Pass, unit funcUnit) {
	sorted := sortedExprs(pass, unit.body)
	walkUnit(unit.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !rangesOverMap(pass.Info, rng) {
			return true
		}
		tainted := make(map[types.Object]bool)
		for _, v := range []ast.Expr{rng.Key, rng.Value} {
			if v == nil {
				continue
			}
			if obj := objOf(pass.Info, v); obj != nil {
				tainted[obj] = true
			}
		}
		if len(tainted) == 0 {
			return true // `for range m` without variables carries no order
		}
		// Forward walk of the loop body in source order: propagate taint
		// through local assignments, then report ordered sinks.
		walkUnit(bodyBlock(rng.Body), func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.AssignStmt:
				propagateTaint(pass, s, tainted, sorted)
			case *ast.CallExpr:
				reportTaintedWrite(pass, s, tainted)
			}
			return true
		})
		return true
	})
}

// bodyBlock keeps the range body walk shaped like a unit walk.
func bodyBlock(b *ast.BlockStmt) *ast.BlockStmt { return b }

// rangesOverMap reports whether the range statement iterates a map or a
// maps.Keys/maps.Values iterator (equally order-randomized).
func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	if call, ok := ast.Unparen(rng.X).(*ast.CallExpr); ok {
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "maps" && (fn.Name() == "Keys" || fn.Name() == "Values") {
			return true
		}
	}
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// propagateTaint extends the tainted set through one assignment and
// reports appends of tainted values to unsorted slices.
func propagateTaint(pass *Pass, s *ast.AssignStmt, tainted map[types.Object]bool, sorted map[string]bool) {
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		if isCall && isBuiltinAppend(pass.Info, call) {
			if len(call.Args) == 0 {
				continue
			}
			carriesOrder := false
			for _, arg := range call.Args[1:] {
				if mentionsAny(pass.Info, arg, tainted) {
					carriesOrder = true
				}
			}
			if !carriesOrder {
				continue
			}
			if sorted[types.ExprString(ast.Unparen(call.Args[0]))] {
				continue // collect-then-sort idiom
			}
			pass.Reportf(call.Pos(), "value from map iteration appended in map order; sort the destination slice (or the keys first), or annotate //emlint:allow maporder -- reason")
			if target := objOf(pass.Info, call.Args[0]); target != nil {
				tainted[target] = true
			}
			continue
		}
		if mentionsAny(pass.Info, rhs, tainted) {
			if obj := objOf(pass.Info, s.Lhs[i]); obj != nil {
				tainted[obj] = true
			}
		}
	}
}

// reportTaintedWrite flags tainted values reaching a writer/printer call.
func reportTaintedWrite(pass *Pass, call *ast.CallExpr, tainted map[types.Object]bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return
	}
	if !writerMethods[name] {
		return
	}
	for _, arg := range call.Args {
		if mentionsAny(pass.Info, arg, tainted) {
			pass.Reportf(call.Pos(), "map-iteration value reaches %s in map order; emit from a sorted collection, or annotate //emlint:allow maporder -- reason", name)
			return
		}
	}
}

// isBuiltinAppend reports whether the call invokes the append built-in.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
