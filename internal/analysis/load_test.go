package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// tempModule writes a throwaway module and returns a loader rooted at it.
func tempModule(t *testing.T, files map[string]string) *Loader {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixturemod\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLoadSkipsForeignBuildTags proves constraint handling by making the
// excluded files type-invalid: if either the //go:build file or the
// _GOOS-suffix file were parsed into the package, type-checking would fail.
func TestLoadSkipsForeignBuildTags(t *testing.T) {
	foreignOS := "windows"
	l := tempModule(t, map[string]string{
		"pkg/ok.go": "package pkg\n\nfunc Ok() int { return 1 }\n",
		"pkg/tagged.go": "//go:build " + foreignOS + "\n\npackage pkg\n\n" +
			"func Broken() int { return undefinedOnPurpose }\n",
		"pkg/suffix_" + foreignOS + ".go": "package pkg\n\n" +
			"func AlsoBroken() int { return undefinedOnPurpose }\n",
		"pkg/ignored.go": "//go:build ignore\n\npackage pkg\n\n" +
			"func Scratch() int { return undefinedOnPurpose }\n",
	})
	pkg, err := l.Load("fixturemod/pkg")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (constrained files must be skipped)", len(pkg.Files))
	}
}

// TestLoadMatchingBuildTag keeps files whose constraint matches the host.
func TestLoadMatchingBuildTag(t *testing.T) {
	l := tempModule(t, map[string]string{
		"pkg/ok.go": "package pkg\n\nfunc Ok() int { return Extra() }\n",
		"pkg/tagged.go": "//go:build linux || darwin || windows || freebsd || netbsd || openbsd || solaris || aix || dragonfly || illumos || plan9 || js || wasip1 || android || ios\n\n" +
			"package pkg\n\nfunc Extra() int { return 2 }\n",
	})
	pkg, err := l.Load("fixturemod/pkg")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("got %d files, want 2 (matching constraint must be kept)", len(pkg.Files))
	}
}

// TestLoadTestOnlyPackage loads a directory holding nothing but _test.go
// files: the test group becomes the analysis unit instead of an error.
func TestLoadTestOnlyPackage(t *testing.T) {
	l := tempModule(t, map[string]string{
		"pkg/pkg_test.go": "package pkg\n\nimport \"testing\"\n\n" +
			"func TestNothing(t *testing.T) { t.Log(\"ok\") }\n",
	})
	pkg, err := l.Load("fixturemod/pkg")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) != 1 || pkg.Types.Name() != "pkg" {
		t.Fatalf("files=%d name=%q, want the test-only group", len(pkg.Files), pkg.Types.Name())
	}
}

// TestLoadTypeErrorIsError: a package that does not type-check must come
// back as an error (driver exit 2), never a panic or a partial package.
func TestLoadTypeErrorIsError(t *testing.T) {
	l := tempModule(t, map[string]string{
		"pkg/bad.go": "package pkg\n\nfunc Bad() int { return undefinedSymbol }\n",
	})
	pkg, err := l.Load("fixturemod/pkg")
	if err == nil {
		t.Fatalf("Load returned %+v, want type-check error", pkg)
	}
	if !strings.Contains(err.Error(), "undefinedSymbol") {
		t.Fatalf("error does not name the failure: %v", err)
	}
}

// TestLoadParseErrorIsError: syntactically broken source is an error too.
func TestLoadParseErrorIsError(t *testing.T) {
	l := tempModule(t, map[string]string{
		"pkg/bad.go": "package pkg\n\nfunc Bad( {\n",
	})
	if _, err := l.Load("fixturemod/pkg"); err == nil {
		t.Fatal("Load accepted a parse error")
	}
}

func TestMatchFileName(t *testing.T) {
	// Pick an OS that is guaranteed foreign to the host so the negative
	// cases hold on any platform.
	foreign := "windows"
	if runtime.GOOS == "windows" {
		foreign = "linux"
	}
	cases := map[string]bool{
		"plain.go":                      true,
		"name_" + runtime.GOOS + ".go":  true,
		"name_" + foreign + ".go":       false,
		"name_" + foreign + "_s390x.go": false,
		"name_test.go":                  true,
		"deep_blue.go":                  true, // "blue" is neither an OS nor an arch
	}
	for name, want := range cases {
		if got := matchFileName(name); got != want {
			t.Errorf("matchFileName(%q) = %v, want %v", name, got, want)
		}
	}
}
