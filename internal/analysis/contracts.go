// contracts.go is the performance-contract annotation layer: the
// //emlint:zeroalloc and //emlint:hotpath directives functions opt into,
// modeled on the //emlint:allow grammar (allow.go). A contract is a
// machine-checkable promise about generated code rather than source
// shape — zeroalloc promises the function body performs no heap
// allocation, hotpath promises the function stays within the compiler's
// inlining budget — and the escapecheck analyzer verifies both against
// the compiler's own escape/inlining diagnostics (escape.go), while the
// allocguard analyzer requires every zeroalloc function to also carry a
// dynamic testing.AllocsPerRun guard somewhere in its package's tests.
package analysis

import (
	"go/ast"
	"strings"
)

// Contract directives. Like allow directives they must start the comment
// line exactly; trailing text after a space is a free-form note.
const (
	zeroallocDirective = "//emlint:zeroalloc"
	hotpathDirective   = "//emlint:hotpath"
)

// contract is one annotated function: the declaration, which promises it
// makes, and its file/line extent (the range compiler diagnostics are
// attributed against).
type contract struct {
	decl      *ast.FuncDecl
	zeroalloc bool
	hotpath   bool
	file      string
	from, to  int // inclusive line range of the whole declaration
}

// name renders the function's diagnostic name: Func for package-level
// functions, (*T).Method / T.Method for methods — matching the spelling
// the compiler's inlining diagnostics use.
func (c contract) name() string {
	fd := c.decl
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		return "(*" + baseTypeName(star.X) + ")." + fd.Name.Name
	}
	return baseTypeName(recv) + "." + fd.Name.Name
}

// baseTypeName renders the receiver base type, dropping type parameters.
func baseTypeName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr:
		return baseTypeName(v.X)
	case *ast.IndexListExpr:
		return baseTypeName(v.X)
	}
	return ""
}

// parseContractDirective matches one comment line against the contract
// directives; note text after a space (or a "-- reason") is ignored.
func parseContractDirective(text string) (zeroalloc, hotpath bool) {
	for _, d := range []struct {
		prefix string
		flag   *bool
	}{
		{zeroallocDirective, &zeroalloc},
		{hotpathDirective, &hotpath},
	} {
		rest, ok := strings.CutPrefix(text, d.prefix)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			*d.flag = true
		}
	}
	return zeroalloc, hotpath
}

// collectContracts gathers the contract-annotated function declarations of
// the given files. Only doc-comment directives count: a contract scopes a
// whole function, never a line.
func collectContracts(pkg *Package, files []*ast.File) []contract {
	out := make([]contract, 0, len(files))
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			c := contract{decl: fd}
			for _, line := range fd.Doc.List {
				za, hp := parseContractDirective(line.Text)
				c.zeroalloc = c.zeroalloc || za
				c.hotpath = c.hotpath || hp
			}
			if !c.zeroalloc && !c.hotpath {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			c.file = start.Filename
			c.from = start.Line
			c.to = pkg.Fset.Position(fd.End()).Line
			out = append(out, c)
		}
	}
	return out
}
