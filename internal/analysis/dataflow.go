// dataflow.go is the lightweight intra-procedural layer the typed
// analyzers (errdrop, maporder, hotalloc, locksafety) share. It is
// deliberately not a full CFG/SSA framework: analysis units are single
// function bodies, function literals are independent units (a closure runs
// under its own dynamic context), and facts are propagated by a single
// forward walk in source order. DESIGN.md §7 records the resulting scope
// and limits: facts never cross a call boundary except through the
// package-level call graph (callgraph.go), and flow-insensitive
// suppressions (e.g. "this slice is sorted somewhere in the function")
// favor silence over false positives.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcUnit is one intra-procedural analysis unit: a function or function
// literal body together with a display position.
type funcUnit struct {
	body *ast.BlockStmt
	pos  token.Pos
}

// funcUnits yields every function body in the file, treating each
// function literal as its own unit.
func funcUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				units = append(units, funcUnit{fn.Body, fn.Pos()})
			}
		case *ast.FuncLit:
			units = append(units, funcUnit{fn.Body, fn.Pos()})
		}
		return true
	})
	return units
}

// walkUnit inspects the statements of one unit without descending into
// nested function literals (they are their own units). The root body node
// itself is visited.
func walkUnit(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// objOf resolves the object an identifier expression denotes, unwrapping
// parentheses; nil for anything that is not a plain identifier.
func objOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// sortCalls maps the sort/slices entry points that establish a
// deterministic order to the index of the slice argument they reorder.
var sortCalls = map[string]map[string]int{
	"sort": {
		"Strings": 0, "Ints": 0, "Float64s": 0,
		"Slice": 0, "SliceStable": 0, "Sort": 0, "Stable": 0,
	},
	"slices": {
		"Sort": 0, "SortFunc": 0, "SortStableFunc": 0,
	},
}

// sortedExprs collects the textual form (types.ExprString) of every slice
// expression the unit passes to a sorting call anywhere in its body, so
// selector and index targets (res.Files, m.rows) suppress like plain
// locals. The set is flow-insensitive on purpose: a slice sorted anywhere
// in the function is treated as order-established, trading a little
// soundness (append after sort) for near-zero false positives on the
// standard collect-sort-iterate pattern.
//
// In program mode a second class of sorter counts: a program-local
// function that transitively reaches a sort.*/slices.Sort* call through
// the cross-package graph. Passing a collected slice to such a helper
// (`orderPairs(out)`) establishes order the same as sorting inline; all
// slice-typed arguments of the helper call are marked.
func sortedExprs(pass *Pass, body *ast.BlockStmt) map[string]bool {
	info := pass.Info
	sorted := make(map[string]bool)
	walkUnit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if byName, ok := sortCalls[fn.Pkg().Path()]; ok {
			if idx, ok := byName[fn.Name()]; ok && idx < len(call.Args) {
				sorted[types.ExprString(ast.Unparen(call.Args[idx]))] = true
			}
			return true
		}
		if localSortHelper(pass, fn) {
			for _, arg := range call.Args {
				if t := info.TypeOf(arg); t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice {
						sorted[types.ExprString(ast.Unparen(arg))] = true
					}
				}
			}
		}
		return true
	})
	return sorted
}

// localSortHelper reports whether fn is a program-local function whose
// body — or any program-local function it transitively calls — invokes a
// sorting entry point. The fact only ever suppresses, so reaching any
// sort call is enough; proving it sorts the specific argument would need
// interprocedural alias tracking DESIGN.md §7 rules out.
func localSortHelper(pass *Pass, fn *types.Func) bool {
	if pass.Prog == nil || fn.Pkg() == nil || pass.Prog.Local(fn.Pkg()) == nil {
		return false
	}
	return declSorts(pass.Prog.CallGraph(), fn, make(map[*types.Func]bool))
}

// declSorts is the recursive body of localSortHelper; seen guards cycles.
func declSorts(g *CallGraph, fn *types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	decl, pkg := g.Decl(fn), g.PackageOf(fn)
	if decl == nil || decl.Body == nil || pkg == nil {
		return false
	}
	found := false
	walkUnit(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeFunc(pkg.Info, call); callee != nil && callee.Pkg() != nil {
			if byName, ok := sortCalls[callee.Pkg().Path()]; ok {
				if _, ok := byName[callee.Name()]; ok {
					found = true
				}
			}
		}
		return !found
	})
	if found {
		return true
	}
	for _, callee := range g.Callees(fn) {
		if declSorts(g, callee, seen) {
			return true
		}
	}
	return false
}

// mentionsAny reports whether the expression mentions an identifier bound
// to one of the given objects.
func mentionsAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// errorResults returns the result indices of sig whose type is the
// built-in error interface.
func errorResults(sig *types.Signature) []int {
	var idx []int
	if sig == nil {
		return nil
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callSignature resolves the signature of a call expression, whether it
// invokes a declared function, a method, or a function-typed value (the
// "local wrapper" case: a variable or field holding a func() error).
// Conversions and built-ins yield nil.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if fn := calleeFunc(info, call); fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		return sig
	}
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	// Distinguish a call through a func value from a type conversion:
	// conversions have a type, not a signature, as their Fun type.
	if _, isConv := info.Types[call.Fun]; isConv && info.Types[call.Fun].IsType() {
		return nil
	}
	return sig
}

// hasChanOp reports whether the unit body contains a channel send,
// receive, or select statement (not descending into nested literals).
func hasChanOp(body *ast.BlockStmt) bool {
	found := false
	walkUnit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// nodeContainsChanOp is hasChanOp generalized to any subtree.
func nodeContainsChanOp(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}
