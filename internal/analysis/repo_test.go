package analysis

import (
	"strings"
	"testing"
)

// TestRepoInvariantsClean runs the full analyzer suite in cross-package
// program mode over every package under ./internal/... and ./cmd/... —
// the same sweep as `make lint` — and requires zero diagnostics. A
// failure here means a concurrency, determinism, or observability
// invariant regressed; fix the violation or add a justified
// //emlint:allow directive.
func TestRepoInvariantsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo type check is slow; skipped in -short mode")
	}
	l := loader(t)
	paths, err := l.Expand([]string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages expanded: %v", paths)
	}
	analyzers := All()
	var violations []string
	for _, path := range paths {
		prog, err := l.LoadProgram(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, d := range RunProgram(prog, analyzers) {
			rel := strings.TrimPrefix(d.Pos.Filename, l.Root+"/")
			violations = append(violations, rel+": ["+d.Check+"] "+d.Message)
		}
	}
	for _, v := range violations {
		t.Error(v)
	}
	if len(violations) > 0 {
		t.Logf("%d invariant violations; see docs/GUIDE.md for the emlint workflow", len(violations))
	}
}
