// Package fixture exercises the nodeprecated analyzer: calls to the
// retired struct-options wrappers must be flagged.
package fixture

import (
	"math/rand"

	"repro/internal/ml"
)

func cvOld(d *ml.Dataset) error {
	factory := func() ml.Classifier { return &ml.GaussianNB{} }
	_, err := ml.CrossValidateOpt(factory, d, 2, rand.New(rand.NewSource(1)), ml.CVOptions{Workers: 2}) // want nodeprecated
	if err != nil {
		return err
	}
	_, err = ml.SelectMatcherOpt(ml.DefaultMatcherFactories(1), d, 2, rand.New(rand.NewSource(1)), ml.CVOptions{}) // want nodeprecated
	return err
}
