// Package fixture exercises the nodeprecated analyzer: calls to the
// retired struct-options bridge must be flagged.
package fixture

import (
	"repro/internal/simjoin"
)

func joinOld(l, r []simjoin.Record) error {
	_, err := simjoin.JaccardJoin(l, r, 0.5, simjoin.WithOptions(simjoin.Options{Workers: 2})) // want nodeprecated
	if err != nil {
		return err
	}
	_, err = simjoin.OverlapJoin(l, r, 2, simjoin.WithOptions(simjoin.Options{DenseMinTokens: -1})) // want nodeprecated
	return err
}
