package fixture

import (
	"math/rand"

	"repro/internal/ml"
)

// cvNew uses the variadic functional-options API — the sanctioned form.
func cvNew(d *ml.Dataset) error {
	factory := func() ml.Classifier { return &ml.GaussianNB{} }
	_, err := ml.CrossValidate(factory, d, 2, rand.New(rand.NewSource(1)), ml.WithWorkers(2))
	return err
}

// allowed shows the escape hatch compatibility shims use.
func allowed(d *ml.Dataset) error {
	factory := func() ml.Classifier { return &ml.GaussianNB{} }
	//emlint:allow nodeprecated -- fixture equivalence check against the old API
	_, err := ml.CrossValidateOpt(factory, d, 2, rand.New(rand.NewSource(1)), ml.CVOptions{})
	return err
}
