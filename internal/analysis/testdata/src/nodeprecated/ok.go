package fixture

import (
	"repro/internal/simjoin"
)

// joinNew spells each knob as its own option — the sanctioned form.
func joinNew(l, r []simjoin.Record) error {
	_, err := simjoin.JaccardJoin(l, r, 0.5, simjoin.WithWorkers(2), simjoin.WithDenseMinTokens(-1))
	return err
}

// allowed shows the escape hatch compatibility shims use.
func allowed(l, r []simjoin.Record) error {
	//emlint:allow nodeprecated -- fixture equivalence check against the old API
	_, err := simjoin.JaccardJoin(l, r, 0.5, simjoin.WithOptions(simjoin.Options{Workers: 2}))
	return err
}
