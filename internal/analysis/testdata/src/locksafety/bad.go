// Package fixture exercises the locksafety analyzer: unmatched locks,
// returns inside a locked region, and locks held across channel
// operations (directly or one same-package call away).
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

// missingUnlock never releases anywhere in the function.
func missingUnlock(g *guarded) {
	g.mu.Lock() // want locksafety
	g.n++
}

// earlyReturn leaks the lock on the positive branch.
func earlyReturn(g *guarded) int {
	g.mu.Lock()
	if g.n > 0 {
		return g.n // want locksafety
	}
	g.mu.Unlock()
	return 0
}

// sendLocked performs a channel send while holding the lock.
func sendLocked(g *guarded) {
	g.mu.Lock()
	g.ch <- g.n // want locksafety
	g.mu.Unlock()
}

// emits performs a channel operation; holding a lock across a call to it
// is the one-hop deadlock shape the call graph resolves.
func emits(g *guarded) {
	g.ch <- 1
}

func callLocked(g *guarded) {
	g.mu.Lock()
	g.n++
	emits(g) // want locksafety
	g.mu.Unlock()
}

// deferSend: a deferred unlock keeps the lock held across everything
// after it, including this send.
func deferSend(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- g.n // want locksafety
}

// embedded exposes the promoted Lock/Unlock method set directly.
type embedded struct {
	sync.Mutex
	ch chan int
	n  int
}

// mixedForms acquires through the promoted method and releases through
// the explicit field: canonicalization pairs them, so the send in between
// is the reported defect rather than a phantom missing-unlock.
func mixedForms(e *embedded) {
	e.Lock()
	e.ch <- e.n // want locksafety
	e.Mutex.Unlock()
}

// embeddedMissing never releases the promoted lock.
func embeddedMissing(e *embedded) {
	e.Lock() // want locksafety
	e.n++
}
