package fixture

import "sync"

// linear is the clean lock/touch/unlock region.
func linear(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// deferred unlock with no channel operation afterward is fine.
func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// sendAfterUnlock releases before touching the channel.
func sendAfterUnlock(g *guarded) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	g.ch <- n
}

// branchy releases inside branching control flow: the scan ends
// conservatively without reports.
func branchy(g *guarded) {
	g.mu.Lock()
	if g.n > 0 {
		g.mu.Unlock()
	} else {
		g.mu.Unlock()
	}
	g.ch <- 1
}

// read pairs RLock with RUnlock.
func read(g *guarded) int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// handoff shows the declaration-scoped escape hatch for deliberate
// lock hand-off patterns.
//
//emlint:allow locksafety -- fixture hand-off demo: the consumer releases
func handoff(g *guarded) {
	g.mu.Lock()
}

// embeddedClean pairs the promoted acquire with the explicit release.
func embeddedClean(e *embedded) {
	e.Lock()
	e.n++
	e.Mutex.Unlock()
}

// rwembed promotes the RWMutex read methods.
type rwembed struct {
	sync.RWMutex
	n int
}

// rwPromoted mixes promoted RLock with an explicit deferred RUnlock.
func rwPromoted(r *rwembed) int {
	r.RLock()
	defer r.RWMutex.RUnlock()
	return r.n
}
