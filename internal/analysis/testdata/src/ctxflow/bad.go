// Package fixture exercises the ctxflow analyzer: severing an incoming
// context with a fresh Background/TODO root, and goroutines spawned with
// no visible stop path.
package fixture

import "context"

func use(ctx context.Context) {}

// handle already receives a ctx; fresh roots sever cancellation.
func handle(ctx context.Context) {
	c := context.Background() // want ctxflow
	_ = c
	use(context.TODO()) // want ctxflow
}

func step() {}

// leaky spawns a loop that nothing can stop.
func leaky() {
	go func() { // want ctxflow
		for {
			step()
		}
	}()
}

// worker has no stop path in its body.
func worker() {
	for {
		step()
	}
}

// spawnNamed leaks through a named callee, resolved via the call graph.
func spawnNamed() {
	go worker() // want ctxflow
}
