package fixture

import (
	"context"
	"sync"
)

// entry is a composition root: no incoming ctx, so a fresh root is the
// correct shape here.
func entry() {
	ctx := context.Background()
	use(ctx)
}

// derived builds children from the incoming ctx; cancellation propagates.
func derived(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	use(child)
}

// drain stops when the channel closes — the Pool worker shape.
func drain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// stoppable selects on a stop channel.
func stoppable(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				step()
			}
		}
	}()
}

// ctxAware's goroutine holds the context, so it can observe cancellation.
func ctxAware(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// bounded hands its lifetime to a WaitGroup the spawner waits on.
func bounded(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
}

// daemon shows the escape hatch for process-lifetime loops.
//
//emlint:allow ctxflow -- fixture demo: process-lifetime daemon, dies with the process by design
func daemon() {
	go worker()
}
