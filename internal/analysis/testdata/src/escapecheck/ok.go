package fixture

// Sum keeps the zeroalloc promise: the slice header stays on the stack
// and nothing escapes.
//
//emlint:zeroalloc
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Add keeps the hotpath promise: trivially inlinable.
//
//emlint:hotpath
func Add(a, b int) int { return a + b }

// Dot holds both contracts at once.
//
//emlint:zeroalloc
//emlint:hotpath
func Dot(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Head threads its parameter to a result — a result-directed leak
// ("leaking param: xs to result"), which allocates nothing and is not a
// zeroalloc violation.
//
//emlint:zeroalloc
func Head(xs []int) []int {
	if len(xs) > 4 {
		return xs[:4]
	}
	return xs
}
