// Package fixture exercises the escapecheck analyzer: functions whose
// //emlint:zeroalloc or //emlint:hotpath contracts the compiler refutes.
// The package is built with -gcflags=-m=2 by the analyzer itself, so it
// must compile standalone.
package fixture

// Boxed promises zero allocations but returns the address of a local,
// which the compiler moves to the heap.
//
//emlint:zeroalloc
func Boxed(n int) *int { // want escapecheck
	x := n + 1
	return &x
}

// Sliced promises zero allocations but its make escapes through the
// return value.
//
//emlint:zeroalloc
func Sliced(n int) []int { // want escapecheck
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

var keep *int

// Kept promises zero allocations but leaks its parameter into a global,
// forcing the argument to heap at every call site.
//
//emlint:zeroalloc
func Kept(p *int) { // want escapecheck
	keep = p
}

// Busy promises inlinability but its body exceeds the inlining budget.
//
//emlint:hotpath
func Busy(a, b, c, d int) int { // want escapecheck
	x := a*b + c*d
	y := a*c + b*d
	z := a*d + b*c
	x = x*y + z
	y = y*z + x
	z = z*x + y
	x = x ^ y ^ z
	y = y ^ z ^ x
	z = z ^ x ^ y
	x = x*31 + y*37 + z*41
	y = y*31 + z*37 + x*41
	z = z*31 + x*37 + y*41
	x = x<<3 | y>>2
	y = y<<3 | z>>2
	z = z<<3 | x>>2
	x = x*y + z*7
	y = y*z + x*11
	z = z*x + y*13
	return x + y + z
}
