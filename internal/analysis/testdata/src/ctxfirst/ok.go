package fixture

import "context"

// Submit takes the context first — the sanctioned form.
func Submit(ctx context.Context, name string) error {
	return ctx.Err()
}

// NoCtx has no context parameter at all.
func NoCtx(name string) string { return name }

// unexportedLegacy is out of scope: the convention binds the exported
// surface.
func unexportedLegacy(name string, ctx context.Context) error {
	return ctx.Err()
}

// LegacyOrder shows the escape hatch for a frozen public signature.
//
//emlint:allow ctxfirst -- fixture legacy signature kept for compatibility
func LegacyOrder(name string, ctx context.Context) error {
	return ctx.Err()
}
