// Package fixture exercises the ctxfirst analyzer: exported functions
// must take context.Context first.
package fixture

import "context"

type Client struct{}

func Process(name string, ctx context.Context) error { // want ctxfirst
	return ctx.Err()
}

func (c *Client) Fetch(id int, ctx context.Context) error { // want ctxfirst
	return ctx.Err()
}
