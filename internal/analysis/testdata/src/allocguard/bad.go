// Package fixture exercises the allocguard analyzer: zeroalloc contracts
// with and without a testing.AllocsPerRun guard in the package tests.
package fixture

// Unguarded carries the contract but no test pins it.
//
//emlint:zeroalloc
func Unguarded(xs []int) int { // want allocguard
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
