package fixture

// Guarded is pinned by the AllocsPerRun guard in guard_test.go.
//
//emlint:zeroalloc
func Guarded(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// NoContract needs no guard: it makes no promise.
func NoContract(n int) []int { return make([]int, n) }
