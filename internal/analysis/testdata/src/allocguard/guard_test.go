package fixture

import "testing"

func TestGuardedAllocs(t *testing.T) {
	xs := []int{1, 2, 3}
	if n := testing.AllocsPerRun(100, func() { _ = Guarded(xs) }); n != 0 {
		t.Fatalf("Guarded allocates: %v allocs/run", n)
	}
}
