package fixture

import (
	"maps"
	"slices"
)

// Box shows the sanctioned shapes: copies out, values out, documented
// zero-copy views behind an allow directive.
type Box struct {
	vals []uint32
	tags map[string]int
	n    int
	// Pub is exported: callers reach it directly, returning it adds no
	// new aliasing surface.
	Pub []uint32
}

// Vals returns a copy — the sanctioned snapshot shape.
func (b *Box) Vals() []uint32 {
	return slices.Clone(b.vals)
}

// Tags clones the map.
func (b *Box) Tags() map[string]int {
	return maps.Clone(b.tags)
}

// Appended copies into a fresh backing array.
func (b *Box) Appended() []uint32 {
	return append([]uint32(nil), b.vals...)
}

// Len returns a value; values never alias.
func (b *Box) Len() int { return b.n }

// Pubs returns an exported field — already part of the public surface.
func (b *Box) Pubs() []uint32 { return b.Pub }

// Reassigned exercises the reaching-defs kill: the taint dies when the
// local is overwritten with a copy before every use.
func (b *Box) Reassigned() []uint32 {
	out := b.vals
	out = slices.Clone(out)
	return out
}

// Conditional is copied on every path to the return.
func (b *Box) Conditional(snap bool) []uint32 {
	var out []uint32
	if snap {
		out = slices.Clone(b.vals)
	} else {
		out = append([]uint32(nil), b.vals...)
	}
	return out
}

// Element returns one element — a copy, not a reference.
func (b *Box) Element(i int) uint32 { return b.vals[i] }

// borrowOK is unexported: internal borrowing is what ownership means.
func (b *Box) borrowOK() []uint32 { return b.vals }

// View is a documented zero-copy borrow, suppressed explicitly.
//
//emlint:allow aliasleak -- documented zero-copy view; caller must not mutate or retain
func (b *Box) View() []uint32 { return b.vals }
