// Package fixture exercises the aliasleak analyzer: exported methods
// handing out live references to receiver-owned mutable state — direct
// field returns, sub-slices, pointers into backing arrays, leaks through
// locals and unexported borrow helpers, and stores into package globals.
package fixture

import "sync"

// Cache is a resident index: its slice and map state is mutated in place
// under mu, so an escaped alias reads torn state or corrupts the index.
type Cache struct {
	mu    sync.RWMutex
	items []uint32
	meta  map[string]int
}

// Items returns the live backing slice.
func (c *Cache) Items() []uint32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.items // want aliasleak
}

// Meta leaks the map through a local — the reference outlives the lock.
func (c *Cache) Meta() map[string]int {
	c.mu.RLock()
	m := c.meta
	c.mu.RUnlock()
	return m // want aliasleak
}

// Window leaks a sub-slice of the backing array.
func (c *Cache) Window(i, j int) []uint32 {
	return c.items[i:j] // want aliasleak
}

// First leaks a pointer into the backing array.
func (c *Cache) First() *uint32 {
	return &c.items[0] // want aliasleak
}

// borrow is the unexported helper the call-graph fact tracks.
func (c *Cache) borrow() []uint32 { return c.items }

// Borrowed leaks through the helper.
func (c *Cache) Borrowed() []uint32 {
	return c.borrow() // want aliasleak
}

// Grown leaks because append may return the receiver's own backing array.
func (c *Cache) Grown(x uint32) []uint32 {
	out := c.items
	out = append(out, x)
	return out // want aliasleak
}

// Named leaks through a named result and a naked return.
func (c *Cache) Named() (out []uint32) {
	out = c.items
	return // want aliasleak
}

var sink []uint32

// Stash publishes the alias past the method call via a package global.
func (c *Cache) Stash() {
	sink = c.items // want aliasleak
}
