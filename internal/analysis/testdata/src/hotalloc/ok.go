package fixture

import (
	"strconv"

	"repro/internal/parallel"
)

// crossCountOK preallocates with the outer loop's trip count.
func crossCountOK(ls, rs []string) []int {
	out := make([]int, 0, len(ls))
	for _, l := range ls {
		for j := 0; j < len(rs); j++ {
			if len(l) == len(rs[j]) {
				out = append(out, j)
			}
		}
	}
	return out
}

// flat appends one loop deep from a top-level declaration: not per-pair
// work, so it is out of scope.
func flat(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// ids builds keys with strconv instead of fmt in the inner loop.
func ids(n, m int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out = append(out, strconv.Itoa(i*m+j))
		}
	}
	return out
}

// shardScratch is the sanctioned pattern: scratch lives outside the
// closure, one slot per worker, indexed by ForEachShard's shard argument.
func shardScratch(rows [][]float64, sums []float64) error {
	nw := parallel.Resolve(4)
	scratch := make([][]float64, nw)
	return parallel.ForEachShard(nw, len(rows), func(shard, i int) error {
		if cap(scratch[shard]) < len(rows[i]) {
			scratch[shard] = make([]float64, len(rows[i]))
		}
		buf := scratch[shard][:len(rows[i])]
		copy(buf, rows[i])
		sums[i] = buf[0]
		return nil
	})
}

// chunkScratch allocates per chunk, not per task: MapChunksMin closures
// run at most once per worker under the cost gate, so this is exempt.
func chunkScratch(rows [][]int) ([]int, error) {
	return parallel.MapChunksMin(0, len(rows), 64, func(lo, hi int) (int, error) {
		seen := make(map[int]bool)
		for _, row := range rows[lo:hi] {
			for _, v := range row {
				seen[v] = true
			}
		}
		return len(seen), nil
	})
}

// allowed shows the escape hatch for unknowable growth.
func allowed(xss [][]int) []int {
	//emlint:allow hotalloc -- growth is data-dependent, fixture demo
	var out []int
	for _, xs := range xss {
		for _, x := range xs {
			out = append(out, x)
		}
	}
	return out
}
