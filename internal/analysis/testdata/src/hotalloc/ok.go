package fixture

import "strconv"

// crossCountOK preallocates with the outer loop's trip count.
func crossCountOK(ls, rs []string) []int {
	out := make([]int, 0, len(ls))
	for _, l := range ls {
		for j := 0; j < len(rs); j++ {
			if len(l) == len(rs[j]) {
				out = append(out, j)
			}
		}
	}
	return out
}

// flat appends one loop deep from a top-level declaration: not per-pair
// work, so it is out of scope.
func flat(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// ids builds keys with strconv instead of fmt in the inner loop.
func ids(n, m int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out = append(out, strconv.Itoa(i*m+j))
		}
	}
	return out
}

// allowed shows the escape hatch for unknowable growth.
func allowed(xss [][]int) []int {
	//emlint:allow hotalloc -- growth is data-dependent, fixture demo
	var out []int
	for _, xs := range xss {
		for _, x := range xs {
			out = append(out, x)
		}
	}
	return out
}
