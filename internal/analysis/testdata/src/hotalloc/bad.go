// Package fixture exercises the hotalloc analyzer: per-pair allocations
// in inner loops — un-preallocated appended slices (auto-fixable when the
// trip count is derivable), fmt.Sprintf, and string concatenation.
package fixture

import (
	"fmt"

	"repro/internal/parallel"
)

// crossCount grows a var-declared slice two loops deep.
func crossCount(ls, rs []string) []int {
	var out []int // want hotalloc
	for _, l := range ls {
		for j := 0; j < len(rs); j++ {
			if len(l) == len(rs[j]) {
				out = append(out, j)
			}
		}
	}
	return out
}

// perRow re-declares the slice on every outer iteration.
func perRow(rows [][]int) int {
	total := 0
	for _, row := range rows {
		vals := []int{} // want hotalloc
		for _, v := range row {
			vals = append(vals, v)
		}
		total += len(vals)
	}
	return total
}

// nested uses the capacity-free make form.
func nested(xss [][]int) []int {
	out := make([]int, 0) // want hotalloc
	for _, xs := range xss {
		for _, x := range xs {
			out = append(out, x)
		}
	}
	return out
}

// keys formats a map key per pair.
func keys(ls, rs []string) map[string]bool {
	seen := make(map[string]bool)
	for _, l := range ls {
		for _, r := range rs {
			seen[fmt.Sprintf("%s|%s", l, r)] = true // want hotalloc
		}
	}
	return seen
}

// perTaskScratch allocates its buffer inside a per-task closure: remade
// once per element of rows.
func perTaskScratch(rows [][]float64, sums []float64) error {
	return parallel.ForEach(4, len(rows), func(i int) error {
		buf := make([]float64, len(rows[i])) // want hotalloc
		copy(buf, rows[i])
		sums[i] = buf[0]
		return nil
	})
}

// perTaskMap does the same through the gated ForEachMin and a map.
func perTaskMap(rows [][]int, out []int) error {
	return parallel.ForEachMin(0, len(rows), 64, func(i int) error {
		seen := make(map[int]bool, len(rows[i])) // want hotalloc
		for _, v := range rows[i] {
			seen[v] = true
		}
		out[i] = len(seen)
		return nil
	})
}

// perTaskMapped allocates per task under parallel.Map, one nesting down.
func perTaskMapped(rows [][]int) ([][]int, error) {
	return parallel.Map(2, len(rows), func(i int) ([]int, error) {
		dup := func() []int {
			c := make([]int, len(rows[i])) // want hotalloc
			copy(c, rows[i])
			return c
		}
		return dup(), nil
	})
}

// concat builds a transient string per pair.
func concat(ls, rs []string) int {
	n := 0
	for _, l := range ls {
		for _, r := range rs {
			k := l + "|" + r // want hotalloc
			n += len(k)
		}
	}
	return n
}
