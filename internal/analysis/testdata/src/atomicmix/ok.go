package fixture

import (
	"sync"
	"sync/atomic"
)

// gauge keeps its disciplines separate: val is plain-only under mu, seen
// is a typed atomic accessed only through its methods.
type gauge struct {
	mu   sync.Mutex
	val  uint64
	seen atomic.Bool
}

func (g *gauge) set(v uint64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

func (g *gauge) get() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

func (g *gauge) mark() { g.seen.Store(true) }

func (g *gauge) marked() bool { return g.seen.Load() }

var clicks uint64

// clicks is atomic on every access.
func click() { atomic.AddUint64(&clicks, 1) }

func clicksNow() uint64 { return atomic.LoadUint64(&clicks) }

// reinit is a sanctioned single-owner reset behind the escape hatch.
func reinit(g *gauge) {
	//emlint:allow atomicmix -- single-owner reset before the gauge is shared
	g.seen = atomic.Bool{}
}
