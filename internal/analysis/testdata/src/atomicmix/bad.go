// Package fixture exercises the atomicmix analyzer: fields and globals
// accessed both through sync/atomic and with plain reads/writes, plus
// whole-value stores to typed atomics.
package fixture

import "sync/atomic"

type counter struct {
	hits uint64
	mode atomic.Int64
}

// inc is the atomic side of the mix.
func (c *counter) inc() { atomic.AddUint64(&c.hits, 1) }

// read races with inc: a plain load does not synchronize with AddUint64.
func (c *counter) read() uint64 {
	return c.hits // want atomicmix
}

// reset mixes a plain store with the atomic adds, and re-initializes a
// typed atomic by whole-value assignment.
func (c *counter) reset() {
	c.hits = 0              // want atomicmix
	c.mode = atomic.Int64{} // want atomicmix
}

var ops uint64

// bump is the atomic side for the package-level counter.
func bump() { atomic.AddUint64(&ops, 1) }

// total reads the same global plainly.
func total() uint64 {
	return ops // want atomicmix
}
