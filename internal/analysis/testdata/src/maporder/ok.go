package fixture

import "sort"

// collectSort is the sanctioned collect-then-sort idiom.
func collectSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// count carries no order: the range binds no variables.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// sortedField shows suppression through a selector target.
type acc struct{ rows []string }

func (a *acc) collect(m map[string]int) {
	for k := range m {
		a.rows = append(a.rows, k)
	}
	sort.Strings(a.rows)
}

// viaHelper hands the collected slice to a program-local sorter — the
// call graph proves orderKeys reaches sort.Strings, so the collect is as
// ordered as sorting inline.
func viaHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	orderKeys(keys)
	return keys
}

func orderKeys(ks []string) { sort.Strings(ks) }

// allowed shows the escape hatch for flows ordered downstream.
func allowed(m map[string]int) []string {
	var out []string
	for k := range m {
		//emlint:allow maporder -- order re-established by the caller
		out = append(out, k)
	}
	return out
}
