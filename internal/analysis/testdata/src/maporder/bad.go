// Package fixture exercises the maporder analyzer: values flowing from a
// map iteration into an ordered sink without a sort must be flagged.
package fixture

import (
	"fmt"
	"maps"
	"strings"
)

// appendUnsorted builds a slice in map order and never sorts it.
func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// writeDirect emits map entries straight into a writer.
func writeDirect(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want maporder
	}
}

// taintThroughLocal tracks the order through an intermediate local.
func taintThroughLocal(m map[string]int) []string {
	var out []string
	for k := range m {
		key := k + "!"
		out = append(out, key) // want maporder
	}
	return out
}

// iterKeys: maps.Keys is as order-randomized as ranging the map itself.
func iterKeys(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) {
		out = append(out, k) // want maporder
	}
	return out
}
