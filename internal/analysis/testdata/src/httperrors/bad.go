// Package fixture exercises the httperrors analyzer: handler error paths
// that bypass the structured envelope, and envelope calls minting
// unregistered inline codes.
package fixture

import "net/http"

// writeError stands in for the module's envelope helper; its own body
// forwards a computed status and is not an error path.
func writeError(w http.ResponseWriter, status int, code, message, detail string) {
	w.WriteHeader(status)
}

func badHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/missing" {
		http.NotFound(w, r) // want httperrors
		return
	}
	if r.Method != "POST" {
		http.Error(w, "nope", http.StatusMethodNotAllowed) // want httperrors
		return
	}
	w.WriteHeader(http.StatusInternalServerError) // want httperrors
}

func inlineCode(w http.ResponseWriter) {
	writeError(w, http.StatusBadRequest, "bad_thing", "oops", "") // want httperrors
}
