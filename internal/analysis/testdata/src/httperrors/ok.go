package fixture

import "net/http"

// codeBadInput is a registered canonical code.
const codeBadInput = "bad_input"

func okHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != "POST" {
		writeError(w, http.StatusBadRequest, codeBadInput, "use POST", "")
		return
	}
	// Success statuses are not error paths.
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("{}"))
}

// record has no ResponseWriter and is out of scope regardless of status
// arithmetic.
func record(status int) int { return status + 1 }

// probe shows the escape hatch for a deliberately raw endpoint.
//
//emlint:allow httperrors -- fixture demo: plain-text health probe, envelope not wanted
func probe(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "down", http.StatusServiceUnavailable)
}
