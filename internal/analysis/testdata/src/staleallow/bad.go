// Package fixture exercises the staleallow audit: an //emlint:allow
// directive whose check reports nothing in its range is dead weight and
// is itself diagnosed — at the directive's own line.
package fixture

import "sync"

//emlint:allow nogoroutine -- stale: nothing below spawns a goroutine // want staleallow
func quiet() int {
	return 1
}

func alsoQuiet(mu *sync.Mutex) {
	mu.Lock()
	//emlint:allow locksafety -- stale: the unlock below is unconditional // want staleallow
	mu.Unlock()
}
