package fixture

// spawns carries a directive that suppresses a real nogoroutine
// diagnostic every run — it earns its keep and is never reported stale.
//
//emlint:allow nogoroutine -- fixture demo: daemon loop outside the parallel package
//emlint:allow ctxflow -- fixture demo: process-lifetime loop by design
func spawns() {
	go quiet()
}
