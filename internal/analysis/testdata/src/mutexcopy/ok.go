package fixture

// incPtr passes the lock holder by pointer — the sanctioned form.
func incPtr(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return g.n
}

func (g *guarded) ptrValue() int { return g.n }

func buildPtr() *nested { return &nested{} }

// snapshot shows the escape hatch for a deliberate one-shot copy.
//
//emlint:allow mutexcopy -- fixture copies a quiescent value on purpose
func snapshot(g guarded) int {
	return g.n
}
