// Package fixture exercises the mutexcopy analyzer: lock-bearing types
// must not cross a signature by value.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// nested embeds a lock transitively.
type nested struct {
	inner guarded
}

func inc(g guarded) int { // want mutexcopy
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return g.n
}

func (g guarded) value() int { // want mutexcopy
	return g.n
}

func build() nested { // want mutexcopy
	return nested{}
}
