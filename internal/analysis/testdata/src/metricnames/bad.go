// Package fixture exercises the metricnames analyzer: metric-emitting
// call sites must pass canonical constants from internal/obs/names.go.
package fixture

import "repro/internal/obs"

const localName = "em_local_total"

func record(r obs.Recorder) {
	r.Count("em_raw_total", 1)                  // want metricnames
	r.Observe(localName, 0.5)                   // want metricnames
	stop := obs.StartTimer(r, "em_raw_seconds") // want metricnames
	stop()
}
