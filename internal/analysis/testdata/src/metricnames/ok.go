package fixture

import "repro/internal/obs"

// canonical passes names from obs/names.go — the sanctioned form.
func canonical(r obs.Recorder) {
	r.Count(obs.FeatureVectors, 1)
	defer obs.StartTimer(r, obs.FeatureExtractSeconds)()
}

// allowed shows the escape hatch for a deliberately local series.
func allowed(r obs.Recorder) {
	//emlint:allow metricnames -- fixture-local scratch series
	r.Count("em_scratch_total", 1)
}
