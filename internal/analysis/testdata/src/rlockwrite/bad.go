// Package fixture exercises the rlockwrite analyzer: mutations of a
// struct's state while only its RWMutex read lock is held — direct field
// writes, map writes and deletes, and calls to receiver-mutating methods.
package fixture

import "sync"

type store struct {
	mu    sync.RWMutex
	m     map[string]int
	n     int
	items []int
}

// bump mutates its receiver; calling it under RLock is a write too.
func (s *store) bump() { s.n++ }

// readButWrite increments a counter inside the read-locked region.
func (s *store) readButWrite() int {
	s.mu.RLock()
	s.n++ // want rlockwrite
	v := s.m["k"]
	s.mu.RUnlock()
	return v
}

// deferWrite: a deferred RUnlock keeps the read lock held across the
// map write.
func (s *store) deferWrite() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.m["k"] = 1 // want rlockwrite
}

// deleteUnder: delete is a map write.
func (s *store) deleteUnder() {
	s.mu.RLock()
	delete(s.m, "k") // want rlockwrite
	s.mu.RUnlock()
}

// mutatingCall reaches the write through a method on the same receiver,
// resolved via the call graph.
func (s *store) mutatingCall() {
	s.mu.RLock()
	s.bump() // want rlockwrite
	s.mu.RUnlock()
}

// sliceWrite stores through an index of a guarded slice.
func (s *store) sliceWrite() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.items[0] = 5 // want rlockwrite
}
