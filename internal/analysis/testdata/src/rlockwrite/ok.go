package fixture

// lookup is the clean shape: reads only under the read lock.
func (s *store) lookup() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m["k"] + s.n
}

// set holds the write lock, so writes are fine.
func (s *store) set(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.n++
	s.mu.Unlock()
}

// after writes only once the read lock is released.
func (s *store) after() {
	s.mu.RLock()
	v := s.m["k"]
	s.mu.RUnlock()
	s.n = v
}

// localCopy writes locals derived from guarded state, not the state.
func (s *store) localCopy() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, len(s.items))
	copy(out, s.items)
	return out
}

// size reads only; calling it under RLock is fine.
func (s *store) size() int { return len(s.m) }

func (s *store) viaCall() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size()
}

// allowed shows the escape hatch for a deliberate racy-counter design.
//
//emlint:allow rlockwrite -- fixture demo: approximate stats counter, torn updates acceptable
func (s *store) allowed() {
	s.mu.RLock()
	s.n++
	s.mu.RUnlock()
}
