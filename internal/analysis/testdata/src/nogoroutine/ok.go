package fixture

import "repro/internal/parallel"

// pooled is the sanctioned form: fan-out through the shared pool.
func pooled(n int) error {
	return parallel.ForEach(0, n, func(i int) error { return nil })
}

// allowed shows the escape hatch for long-lived infrastructure workers.
func allowed() chan func() {
	ch := make(chan func())
	//emlint:allow nogoroutine -- long-lived fixture worker, not fan-out
	go func() {
		for f := range ch {
			f()
		}
	}()
	return ch
}
