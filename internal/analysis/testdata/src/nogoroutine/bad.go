// Package fixture exercises the nogoroutine analyzer: naked go
// statements must be flagged.
package fixture

func launch() {
	done := make(chan struct{})
	go func() { // want nogoroutine
		close(done)
	}()
	<-done
}

func named() {
	go work() // want nogoroutine
}

func work() {}
