// Package fixture exercises the nondeterminism analyzer: wall-clock
// reads and global-source randomness must be flagged.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	t0 := time.Now()                 // want nondeterminism
	_ = time.Since(t0).Nanoseconds() // want nondeterminism
	return t0.UnixNano()
}

func draw() int {
	return rand.Intn(10) // want nondeterminism
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want nondeterminism
}
