package fixture

import (
	"math/rand"
	"time"
)

// seeded randomness through an explicit generator is the sanctioned form.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// allowedLine shows the line-scoped escape hatch.
func allowedLine() time.Time {
	//emlint:allow nondeterminism -- fixture timing demo
	return time.Now()
}

// allowedDecl shows the declaration-scoped escape hatch: the directive in
// this doc comment covers the whole function.
//
//emlint:allow nondeterminism -- fixture-wide stopwatch
func allowedDecl() time.Duration {
	start := time.Now()
	return time.Since(start)
}
