// Package fixture exercises the lockorder analyzer: two code paths that
// acquire the same pair of locks in opposite orders, directly and through
// a call resolved by the program graph.
package fixture

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// abOrder takes a.mu then b.mu.
func abOrder(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want lockorder
	y.mu.Unlock()
	x.mu.Unlock()
}

// baOrder takes the same pair the other way around — the deadlock half.
func baOrder(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock() // want lockorder
	x.mu.Unlock()
	y.mu.Unlock()
}

// lockB acquires b.mu; callers holding a.mu inherit the ordering.
func lockB(y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
}

// viaCall reaches b.mu through lockB while holding a.mu.
func viaCall(x *a, y *b) {
	x.mu.Lock()
	lockB(y) // want lockorder
	x.mu.Unlock()
}
