package fixture

import "sync"

type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

// first and second agree on the c-before-d order: consistent, no report.
func first(x *c, y *d) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func second(x *c, y *d) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

// sequential releases one lock before taking the other; no pair is held
// together, so the reversed textual order is fine.
func sequential(x *c, y *d) {
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}

// locals have no cross-function identity; their orders are not compared.
func locals() {
	var m1, m2 sync.Mutex
	m2.Lock()
	m1.Lock()
	m1.Unlock()
	m2.Unlock()
}

type e struct{ mu sync.Mutex }
type f struct{ mu sync.Mutex }

// both shows the escape hatch: a function that deliberately takes the
// pair in both orders under an external guarantee opts out wholesale.
//
//emlint:allow lockorder -- fixture demo: serialized by a single caller, orders cannot interleave
func both(x *e, y *f) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}
