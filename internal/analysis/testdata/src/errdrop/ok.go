package fixture

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

// handled is the baseline: the error is checked.
func handled(r resource) error {
	if err := r.Close(); err != nil {
		return err
	}
	return nil
}

// deferred cleanup on a read-side resource is the sanctioned idiom.
func deferred(r resource) {
	defer r.Close()
}

// Terminal prints and never-failing writers are exempt by design:
// fmt.Print* to stdout, fmt.Fprint* to stdout/stderr or to a
// strings.Builder/bytes.Buffer, Builder/Buffer methods, and hash writers.
func exemptWriters() {
	fmt.Println("status")
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	var buf bytes.Buffer
	buf.WriteString("y")
	fmt.Fprintln(os.Stderr, "warn")
	h := fnv.New32a()
	h.Write([]byte("tok"))
}

// allowedLine shows the line-scoped escape hatch.
func allowedLine(r resource) {
	//emlint:allow errdrop -- best-effort cleanup on an error path
	r.Close()
}
