package fixture

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

// handled is the baseline: the error is checked.
func handled(r resource) error {
	if err := r.Close(); err != nil {
		return err
	}
	return nil
}

// deferred cleanup on a read-side resource is the sanctioned idiom.
func deferred(r resource) {
	defer r.Close()
}

// Terminal prints and never-failing writers are exempt by design:
// fmt.Print* to stdout, fmt.Fprint* to stdout/stderr or to a
// strings.Builder/bytes.Buffer, Builder/Buffer methods, and hash writers.
func exemptWriters() {
	fmt.Println("status")
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	var buf bytes.Buffer
	buf.WriteString("y")
	fmt.Fprintln(os.Stderr, "warn")
	h := fnv.New32a()
	h.Write([]byte("tok"))
}

// sink is a program-local never-failing writer: every return in its
// Write-family methods carries an explicit nil error, so the call graph
// proves drops harmless the same way bytes.Buffer's docs do.
type sink struct{ n int }

func (s *sink) Write(p []byte) (int, error) {
	s.n += len(p)
	return len(p), nil
}

func (s *sink) WriteString(str string) (int, error) {
	s.n += len(str)
	return len(str), nil
}

func localWriter(s *sink) {
	s.Write([]byte("x"))
	s.WriteString("y")
	fmt.Fprintf(s, "%d", 1)
}

// allowedLine shows the line-scoped escape hatch.
func allowedLine(r resource) {
	//emlint:allow errdrop -- best-effort cleanup on an error path
	r.Close()
}
