// Package fixture exercises the errdrop analyzer: error results silently
// discarded through bare calls or blank assignment must be flagged.
package fixture

import "os"

type resource struct{}

func (resource) Close() error { return nil }

func bare(r resource) {
	r.Close() // want errdrop
}

func blankSingle(r resource) {
	_ = r.Close() // want errdrop
}

func blankMulti() {
	f, _ := os.Open("x") // want errdrop
	_ = f
}

// wrapper drops the error of a call through a function-typed value — the
// "local wrapper" shape resolved through the signature, not the callee.
func wrapper() {
	fn := func() error { return nil }
	fn() // want errdrop
}

// flaky is a local writer that can actually fail: one return path carries
// a non-nil error, so the never-failing-writer proof does not apply.
type flaky struct{}

func (flaky) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, os.ErrInvalid
	}
	return len(p), nil
}

func localFlaky(f flaky) {
	f.Write(nil) // want errdrop
}
