package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is the comment prefix that suppresses a diagnostic:
//
//	//emlint:allow check1,check2 -- justification
//
// The directive covers its own line and the line directly below it (so it
// works both trailing the flagged code and on the line above it). When it
// appears in the doc comment of a top-level declaration it covers the
// whole declaration, which is how long-lived worker loops and timing
// functions opt out wholesale.
const allowDirective = "//emlint:allow"

// allowRange permits one check on lines [from, to] of a file. pos is the
// directive comment's own position and used records whether any diagnostic
// of the run actually landed in the range — the staleallow audit reports
// ranges that stayed unused.
type allowRange struct {
	check    string
	from, to int
	pos      token.Position
	used     bool
}

// allowSet maps a filename to its permitted ranges.
type allowSet map[string][]*allowRange

// allows reports whether the diagnostic falls inside a permitted range for
// its check, marking every matching range as having earned its keep (two
// directives covering the same line both count as exercised rather than
// flapping on evaluation order).
func (s allowSet) allows(d Diagnostic) bool {
	hit := false
	for _, r := range s[d.Pos.Filename] {
		if r.check == d.Check && d.Pos.Line >= r.from && d.Pos.Line <= r.to {
			r.used = true
			hit = true
		}
	}
	return hit
}

// stale returns a staleallow diagnostic for every directive range that
// suppressed nothing, restricted to checks the run actually executed (a
// directive for a check outside the list might suppress plenty on a fuller
// run). Directives for staleallow itself are exempt: they exist to pin a
// deliberately-dormant directive and are used precisely when nothing fires.
//
//emlint:allow hotalloc -- runs once per package at the end of a lint pass; not a hot path
func (s allowSet) stale(executed map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, ranges := range s {
		for _, r := range ranges {
			if r.used || r.check == StaleAllow.Name || !executed[r.check] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:     r.pos,
				Check:   StaleAllow.Name,
				Message: "allow directive for " + r.check + " suppresses no diagnostic; remove it",
			})
		}
	}
	return out
}

// parseAllow extracts the check names from one directive comment, or nil
// if the comment is not a directive.
func parseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, allowDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	// Strip the justification ("-- why") and split the check list.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var checks []string
	for _, c := range strings.Split(rest, ",") {
		if c = strings.TrimSpace(c); c != "" {
			checks = append(checks, c)
		}
	}
	return checks
}

// collectAllows gathers every allow directive of the package.
func collectAllows(pkg *Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		// Directives inside a top-level declaration's doc comment cover
		// the declaration's full line range.
		docOf := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docOf[doc] = [2]int{
					pkg.Fset.Position(decl.Pos()).Line,
					pkg.Fset.Position(decl.End()).Line,
				}
			}
		}
		for _, group := range f.Comments {
			span, isDoc := docOf[group]
			for _, c := range group.List {
				checks := parseAllow(c.Text)
				if checks == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				from, to := pos.Line, pos.Line+1
				if isDoc {
					from, to = span[0], span[1]
				}
				for _, check := range checks {
					set[filename] = append(set[filename], &allowRange{check: check, from: from, to: to, pos: pos})
				}
			}
		}
	}
	return set
}
