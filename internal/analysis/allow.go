package analysis

import (
	"go/ast"
	"strings"
)

// allowDirective is the comment prefix that suppresses a diagnostic:
//
//	//emlint:allow check1,check2 -- justification
//
// The directive covers its own line and the line directly below it (so it
// works both trailing the flagged code and on the line above it). When it
// appears in the doc comment of a top-level declaration it covers the
// whole declaration, which is how long-lived worker loops and timing
// functions opt out wholesale.
const allowDirective = "//emlint:allow"

// allowRange permits one check on lines [from, to] of a file.
type allowRange struct {
	check    string
	from, to int
}

// allowSet maps a filename to its permitted ranges.
type allowSet map[string][]allowRange

// allows reports whether the diagnostic falls inside a permitted range
// for its check.
func (s allowSet) allows(d Diagnostic) bool {
	for _, r := range s[d.Pos.Filename] {
		if r.check == d.Check && d.Pos.Line >= r.from && d.Pos.Line <= r.to {
			return true
		}
	}
	return false
}

// parseAllow extracts the check names from one directive comment, or nil
// if the comment is not a directive.
func parseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, allowDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	// Strip the justification ("-- why") and split the check list.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var checks []string
	for _, c := range strings.Split(rest, ",") {
		if c = strings.TrimSpace(c); c != "" {
			checks = append(checks, c)
		}
	}
	return checks
}

// collectAllows gathers every allow directive of the package.
func collectAllows(pkg *Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		// Directives inside a top-level declaration's doc comment cover
		// the declaration's full line range.
		docOf := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docOf[doc] = [2]int{
					pkg.Fset.Position(decl.Pos()).Line,
					pkg.Fset.Position(decl.End()).Line,
				}
			}
		}
		for _, group := range f.Comments {
			span, isDoc := docOf[group]
			for _, c := range group.List {
				checks := parseAllow(c.Text)
				if checks == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				from, to := line, line+1
				if isDoc {
					from, to = span[0], span[1]
				}
				for _, check := range checks {
					set[filename] = append(set[filename], allowRange{check, from, to})
				}
			}
		}
	}
	return set
}
