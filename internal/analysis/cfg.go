// cfg.go upgrades the intra-procedural dataflow layer (dataflow.go) with a
// small statement-level control-flow graph and a forward may-analysis
// solver. The PR-4 analyzers propagate facts by a single source-order
// walk, which cannot tell "tainted on some path" from "sanitized before
// every use"; the aliasleak analyzer needs exactly that distinction —
// `p := c.posts; p = slices.Clone(p); return p` is a copy, not a leak — so
// it runs a reaching-defs-style fixed point over this graph instead.
//
// The graph is deliberately small: nodes are statements, nested function
// literals are independent units (never expanded in the enclosing graph),
// and goto is over-approximated by an edge to the statement after the
// label block. That keeps it a may-analysis: every real execution path is
// covered by some graph path, so a fact that never reaches a node on any
// graph path truly cannot reach it at run time.
package analysis

import (
	"go/ast"
	"go/types"
)

// cfgNode is one statement of the graph with its successor edges.
type cfgNode struct {
	stmt  ast.Stmt
	succs []*cfgNode
}

// cfgGraph is the control-flow graph of one function body.
type cfgGraph struct {
	entry *cfgNode
	nodes []*cfgNode
}

// cfgBuilder threads loop context (break/continue targets) through the
// recursive construction.
type cfgBuilder struct {
	g *cfgGraph
	// exit is the shared synthetic sink: returns and the fall-off end of
	// the body both lead here, so "reaches exit" is a single question.
	exit *cfgNode
	// breakTo / continueTo are the current loop (or switch) targets.
	breakTo, continueTo *cfgNode
}

// buildCFG constructs the graph of one body. The returned graph's entry
// node is synthetic (nil stmt) so an empty body is still well-formed.
func buildCFG(body *ast.BlockStmt) *cfgGraph {
	g := &cfgGraph{}
	b := &cfgBuilder{g: g, exit: &cfgNode{}}
	entry := b.node(nil)
	g.entry = entry
	last := b.stmts(body.List, []*cfgNode{entry})
	b.link(last, b.exit)
	g.nodes = append(g.nodes, b.exit)
	return g
}

// node allocates and registers a graph node.
func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// link adds an edge from every node of froms to to.
func (b *cfgBuilder) link(froms []*cfgNode, to *cfgNode) {
	for _, f := range froms {
		f.succs = append(f.succs, to)
	}
}

// stmts wires a statement list after the given predecessor frontier and
// returns the new frontier (the nodes control falls off of).
func (b *cfgBuilder) stmts(list []ast.Stmt, preds []*cfgNode) []*cfgNode {
	for _, s := range list {
		preds = b.stmt(s, preds)
	}
	return preds
}

// stmt wires one statement and returns its fall-through frontier (empty
// for statements that never fall through, like return).
func (b *cfgBuilder) stmt(s ast.Stmt, preds []*cfgNode) []*cfgNode {
	switch v := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(v.List, preds)

	case *ast.LabeledStmt:
		// Labels are not tracked per name; the labeled statement itself is
		// wired normally, which over-approximates labeled break/continue
		// (handled as their unlabeled forms) and goto (see BranchStmt).
		return b.stmt(v.Stmt, preds)

	case *ast.IfStmt:
		if v.Init != nil {
			preds = b.stmt(v.Init, preds)
		}
		cond := b.node(s) // the condition evaluation point
		b.link(preds, cond)
		thenOut := b.stmts(v.Body.List, []*cfgNode{cond})
		if v.Else == nil {
			return append(thenOut, cond)
		}
		elseOut := b.stmt(v.Else, []*cfgNode{cond})
		return append(thenOut, elseOut...)

	case *ast.ForStmt:
		if v.Init != nil {
			preds = b.stmt(v.Init, preds)
		}
		head := b.node(s)
		b.link(preds, head)
		after := b.node(nil) // join point control continues from
		savedB, savedC := b.breakTo, b.continueTo
		post := head
		if v.Post != nil {
			post = b.node(v.Post)
			post.succs = append(post.succs, head)
		}
		b.breakTo, b.continueTo = after, post
		bodyOut := b.stmts(v.Body.List, []*cfgNode{head})
		b.link(bodyOut, post)
		b.breakTo, b.continueTo = savedB, savedC
		if v.Cond != nil {
			head.succs = append(head.succs, after)
		}
		// A condition-less `for {}` only reaches after via break (already
		// wired). Return the join either way; unreachable joins just never
		// receive facts.
		return []*cfgNode{after}

	case *ast.RangeStmt:
		head := b.node(s)
		b.link(preds, head)
		after := b.node(nil)
		head.succs = append(head.succs, after)
		savedB, savedC := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = after, head
		bodyOut := b.stmts(v.Body.List, []*cfgNode{head})
		b.link(bodyOut, head)
		b.breakTo, b.continueTo = savedB, savedC
		return []*cfgNode{after}

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.branchingStmt(s, preds)

	case *ast.ReturnStmt:
		n := b.node(s)
		b.link(preds, n)
		n.succs = append(n.succs, b.exit)
		return nil

	case *ast.BranchStmt:
		n := b.node(s)
		b.link(preds, n)
		switch v.Tok.String() {
		case "break":
			if b.breakTo != nil {
				n.succs = append(n.succs, b.breakTo)
				return nil
			}
		case "continue":
			if b.continueTo != nil {
				n.succs = append(n.succs, b.continueTo)
				return nil
			}
		}
		// goto, or a labeled branch outside the tracked context: fall
		// through conservatively so facts keep flowing (may-analysis).
		return []*cfgNode{n}

	default:
		// Plain statements: assign, decl, expr, defer, go, send, incdec.
		n := b.node(s)
		b.link(preds, n)
		return []*cfgNode{n}
	}
}

// branchingStmt wires switch/type-switch/select: a head node for the tag,
// one arm per clause, control joining after. A switch without a default
// clause can fall through the head directly.
func (b *cfgBuilder) branchingStmt(s ast.Stmt, preds []*cfgNode) []*cfgNode {
	var init ast.Stmt
	var clauses []ast.Stmt
	hasDefault := false
	switch v := s.(type) {
	case *ast.SwitchStmt:
		init, clauses = v.Init, v.Body.List
	case *ast.TypeSwitchStmt:
		init, clauses = v.Init, v.Body.List
	case *ast.SelectStmt:
		clauses = v.Body.List
	}
	if init != nil {
		preds = b.stmt(init, preds)
	}
	head := b.node(s)
	b.link(preds, head)
	after := b.node(nil)
	savedB := b.breakTo
	b.breakTo = after
	var prevBody []ast.Stmt // for fallthrough chaining
	var prevOut []*cfgNode
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		default:
			continue
		}
		entry := []*cfgNode{head}
		if fallsThroughTo(prevBody) {
			entry = append(entry, prevOut...)
		}
		out := b.stmts(body, entry)
		b.link(out, after)
		prevBody, prevOut = body, out
	}
	b.breakTo = savedB
	if !hasDefault {
		head.succs = append(head.succs, after)
	}
	return []*cfgNode{after}
}

// fallsThroughTo reports whether the clause body ends in a fallthrough.
func fallsThroughTo(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// objSet is the dataflow fact domain: a set of tainted local objects.
type objSet map[types.Object]bool

// equalObjSet reports set equality (both directions of containment).
func equalObjSet(a, b objSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// forwardMay runs a forward may-analysis to a fixed point: transfer maps a
// node's entry fact set to its exit set (returning the input unchanged is
// fine), joins are set unions, and the returned map holds the ENTRY facts
// of every node — what reaches the node over at least one path.
func (g *cfgGraph) forwardMay(transfer func(n *cfgNode, in objSet) objSet) map[*cfgNode]objSet {
	in := make(map[*cfgNode]objSet, len(g.nodes))
	for _, n := range g.nodes {
		in[n] = objSet{}
	}
	processed := make(map[*cfgNode]bool, len(g.nodes))
	work := []*cfgNode{g.entry}
	queued := map[*cfgNode]bool{g.entry: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		processed[n] = true
		out := transfer(n, in[n])
		for _, s := range n.succs {
			grew := false
			for k := range out {
				if !in[s][k] {
					in[s][k] = true
					grew = true
				}
			}
			// Re-process a successor when its entry set grew, or schedule
			// it for the first time so every reachable node runs at least
			// once. Facts only accumulate (union join, monotone transfer),
			// so this terminates.
			if (grew || !processed[s]) && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in
}
