// program.go lifts the analysis unit from one package to a Program: a
// root package loaded together with every module-local package it
// (transitively) imports, each retained with syntax and type info. The
// cross-package call graph built over a Program is what lets the serving
// analyzers follow a fact — "this function performs a channel op",
// "this callee acquires that lock" — across package boundaries, e.g. from
// a cloud HTTP handler into serve.Corpus. DESIGN.md §11 records the scope
// and limits.
package analysis

import (
	"go/types"
	"sort"
)

// Program is a multi-package analysis unit: the root package under
// analysis plus its module-local dependency closure. Analyzers report only
// into the root's files (each package gets its turn as root during a
// sweep); the dependency packages supply callee bodies and type facts.
type Program struct {
	// Root is the package diagnostics anchor in.
	Root *Package
	// Packages holds the root plus every module-local dependency, sorted
	// by import path so iteration is deterministic.
	Packages []*Package

	byPath  map[string]*Package
	byTypes map[*types.Package]*Package
	graph   *CallGraph
}

// newProgram assembles a Program from its member packages. root must be
// one of pkgs.
func newProgram(root *Package, pkgs []*Package) *Program {
	p := &Program{
		Root:    root,
		byPath:  make(map[string]*Package, len(pkgs)),
		byTypes: make(map[*types.Package]*Package, len(pkgs)),
	}
	for _, pkg := range pkgs {
		if _, dup := p.byPath[pkg.Path]; dup {
			continue
		}
		p.byPath[pkg.Path] = pkg
		p.byTypes[pkg.Types] = pkg
		p.Packages = append(p.Packages, pkg)
	}
	sort.Slice(p.Packages, func(i, j int) bool { return p.Packages[i].Path < p.Packages[j].Path })
	return p
}

// singleProgram wraps one package as a trivial Program — the shape fixture
// tests and the package-local Run entry point use. Cross-package edges are
// simply absent.
func singleProgram(pkg *Package) *Program {
	return newProgram(pkg, []*Package{pkg})
}

// Package returns the member with the given import path, or nil.
func (p *Program) Package(path string) *Package {
	return p.byPath[path]
}

// Local maps a type-checker package back to the Program member it belongs
// to, or nil for packages outside the program (the standard library).
func (p *Program) Local(t *types.Package) *Package {
	return p.byTypes[t]
}

// CallGraph returns the program-wide call graph, building it on first use
// and reusing it across the analyzers of one run.
func (p *Program) CallGraph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p)
	}
	return p.graph
}

// LoadProgram loads the module-local package at path as a Program: the
// root is type-checked with its test files (invariants hold in tests too),
// and every module-local dependency its compile pulled in is retained as a
// full syntax+types package. A dependency that fails to parse or
// type-check surfaces as the root's load error, never a panic.
func (l *Loader) LoadProgram(path string) (*Program, error) {
	root, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	pkgs := []*Package{root}
	seen := map[string]bool{path: true}
	// Walk the typed import graph; every module-local dependency was
	// compiled from source by Import during the root's type check and
	// retained in l.pkgs with its syntax and info.
	var walk func(t *types.Package)
	walk = func(t *types.Package) {
		for _, imp := range t.Imports() {
			if seen[imp.Path()] {
				continue
			}
			seen[imp.Path()] = true
			dep, ok := l.pkgs[imp.Path()]
			if !ok {
				continue // standard library: no syntax retained, not a member
			}
			pkgs = append(pkgs, dep)
			walk(imp)
		}
	}
	walk(root.Types)
	return newProgram(root, pkgs), nil
}
