package analysis

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that build
// explicitly-seeded generators rather than touching the global source;
// they are the sanctioned way to get randomness (deterministic given the
// caller's seed).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// NonDeterminism flags wall-clock reads (time.Now, time.Since) and
// global-source math/rand calls in result-producing code. The determinism
// contract (DESIGN.md §5) requires a pipeline run to be bit-identical for
// the same seeds regardless of Workers; clock reads and the process-global
// RNG break that. Methods on a *rand.Rand the caller seeded are fine, as
// are the seeded-generator constructors. Sanctioned timing code — the obs
// timer itself, benchmark harnesses, stage-duration reporting — opts out
// with //emlint:allow nondeterminism and a justification.
var NonDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "time.Now/time.Since and global math/rand calls in result-producing paths; seed explicitly or allow-list timing code",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" {
						pass.Reportf(call.Pos(), "time.%s reads the wall clock; results must be deterministic (allow-list sanctioned timing code)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					sig, ok := fn.Type().(*types.Signature)
					if !ok || sig.Recv() != nil {
						return true // methods on a seeded *rand.Rand are fine
					}
					if !randConstructors[fn.Name()] {
						pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; use an explicitly seeded *rand.Rand", fn.Name())
					}
				}
				return true
			})
		}
	},
}
