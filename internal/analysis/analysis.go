// Package analysis is the repo's own static-analysis driver: a
// dependency-free (go/parser + go/types, no golang.org/x/tools) framework
// plus the project-invariant analyzers behind cmd/emlint. The analyzers
// enforce the conventions DESIGN.md §5–§7 establish — fan-out only through
// internal/parallel, no wall-clock or global randomness in result-producing
// paths, canonical metric names, no deprecated API calls, context.Context
// first, and no copying of lock-bearing types — so the conventions survive
// codebase growth instead of living only in documentation.
//
// Every diagnostic can be suppressed at a sanctioned call site with a
// directive comment on the flagged line, the line directly above it, or in
// the doc comment of the enclosing top-level declaration:
//
//	//emlint:allow nondeterminism -- wall-clock timing is the product here
//
// The text after "--" is a required-by-convention human justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// TextEdit is one byte-range replacement inside a file. Start and End are
// 0-based byte offsets into the file named by Filename; the half-open
// range [Start, End) is replaced by NewText. An insertion has Start == End.
type TextEdit struct {
	Filename string `json:"file"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// SuggestedFix is a machine-applicable repair attached to a diagnostic:
// a set of non-overlapping edits that, applied together, resolve the
// finding. emlint -fix applies fixes whose edits do not collide with
// edits already accepted from earlier diagnostics.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Diagnostic is one analyzer finding at a source position, optionally
// carrying machine-applicable fixes.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	Fixes   []SuggestedFix
}

// String renders the diagnostic in the file:line:col form emlint prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass is the per-(package, analyzer) run state handed to an analyzer.
type Pass struct {
	*Package
	// Files is the subset of the package's files the analyzer should
	// inspect (test files are filtered out unless the analyzer opts in).
	Files []*ast.File
	// Prog is the analysis unit the package was loaded as. Under Run it is
	// a single-package program (no cross-package edges); under RunProgram
	// it carries the module-local dependency closure, and Prog.CallGraph()
	// resolves calls across package boundaries. Diagnostics still anchor
	// only in Pass.Package (the program root).
	Prog *Program

	check string
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportFix records a diagnostic at pos carrying a machine-applicable fix.
// A fix with no edits is dropped (the diagnostic is still reported), so
// analyzers can build edits optimistically and bail without branching.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	d := Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	}
	if len(fix.Edits) > 0 {
		d.Fixes = []SuggestedFix{fix}
	}
	p.diags = append(p.diags, d)
}

// Edit builds a TextEdit replacing the source range [from, to) with text,
// converting token positions to the byte offsets the fix engine applies.
func (p *Pass) Edit(from, to token.Pos, text string) TextEdit {
	start := p.Fset.Position(from)
	end := p.Fset.Position(to)
	return TextEdit{
		Filename: start.Filename,
		Start:    start.Offset,
		End:      end.Offset,
		NewText:  text,
	}
}

// Analyzer is one invariant check.
type Analyzer struct {
	// Name is the check name diagnostics carry and allow comments cite.
	Name string
	// Doc is the one-line description emlint -list prints.
	Doc string
	// Tests opts the analyzer into _test.go files. Checks about
	// production fan-out, clocks, and metric series skip tests (tests
	// legitimately orchestrate goroutines and scratch series); API checks
	// run everywhere.
	Tests bool
	// Run inspects pass.Files and reports through pass.Reportf.
	Run func(pass *Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AliasLeak,
		AllocGuard,
		AtomicMix,
		CtxFirst,
		CtxFlow,
		ErrDrop,
		EscapeCheck,
		HotAlloc,
		HTTPErrors,
		LockOrder,
		LockSafety,
		MapOrder,
		MetricNames,
		MutexCopy,
		NoDeprecated,
		NoGoroutine,
		NonDeterminism,
		RLockWrite,
		StaleAllow,
	}
}

// ByName resolves a comma-separated check list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty check list")
	}
	return out, nil
}

// isTestFile reports whether the file at pos is a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Run executes the analyzers over one package as a single-package program
// and returns the surviving (not allow-suppressed) diagnostics sorted by
// position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(singleProgram(pkg), analyzers)
}

// RunProgram executes the analyzers over a program, anchoring diagnostics
// in the root package. Allow directives are tracked: when the staleallow
// analyzer is in the list, directives that suppressed nothing across the
// whole run are themselves reported (a directive citing a check outside
// the executed list is left alone — this run cannot tell if it earns its
// keep).
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	pkg := prog.Root
	allows := collectAllows(pkg)
	executed := make(map[string]bool, len(analyzers))
	auditAllows := false
	out := make([]Diagnostic, 0, len(analyzers))
	for _, a := range analyzers {
		executed[a.Name] = true
		if a.Name == StaleAllow.Name {
			// Emitted after every other analyzer has had its chance to hit
			// the directives.
			auditAllows = true
			continue
		}
		pass := &Pass{Package: pkg, Prog: prog, check: a.Name}
		for _, f := range pkg.Files {
			if a.Tests || !isTestFile(pkg.Fset, f) {
				pass.Files = append(pass.Files, f)
			}
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if !allows.allows(d) {
				out = append(out, d)
			}
		}
	}
	if auditAllows {
		for _, d := range allows.stale(executed) {
			if !allows.allows(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
