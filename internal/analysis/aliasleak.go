package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AliasLeak flags exported methods that hand out references to
// receiver-owned mutable state: returning (or storing into a package-level
// variable) the live backing store of an unexported slice/map field, a
// sub-slice of it, or a pointer into it. This is the ownership hazard of
// the resident serving indexes — serve.Corpus postings, bitvec.Set
// containers, intern.Dict tables are mutated in place under their owner's
// lock, so an escaped alias lets a caller read torn state without the lock
// or corrupt the index from outside it. The sanctioned shapes are a copy
// (slices.Clone, maps.Clone, append to a fresh backing array) or a
// documented zero-copy view suppressed with //emlint:allow aliasleak.
//
// Taint runs over the cfg.go control-flow graph (reaching-defs style), so
// a local that aliases receiver state is cleared when every path to the
// use reassigns it with a copy — `out := c.items; out = slices.Clone(out);
// return out` is clean, while `out = append(out, x)` keeps the taint
// (append may return the receiver's own backing array). Helper methods are
// followed through the program call graph: returning `c.borrow()` where
// the unexported borrow returns c.items leaks the same alias.
var AliasLeak = &Analyzer{
	Name: "aliasleak",
	Doc:  "Exported method returns or stores a reference to receiver-owned mutable state without a copy",
	Run: func(pass *Pass) {
		facts := &aliasReturns{graph: pass.Prog.CallGraph(), memo: make(map[*types.Func]int)}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				recv := exportedMethodRecv(pass.Info, fd)
				if recv == nil {
					continue
				}
				checkAliasLeaks(pass, fd, recv, facts)
			}
		}
	},
}

// exportedMethodRecv returns the receiver object of an exported method on
// an exported named type, or nil when fd is not that.
func exportedMethodRecv(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || !fd.Name.IsExported() {
		return nil
	}
	if len(fd.Recv.List[0].Names) == 0 {
		return nil // unnamed receiver: nothing to alias
	}
	if name := baseTypeName(unstarExpr(fd.Recv.List[0].Type)); name == "" || !ast.IsExported(name) {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// unstarExpr unwraps a pointer receiver type expression.
func unstarExpr(e ast.Expr) ast.Expr {
	if star, ok := e.(*ast.StarExpr); ok {
		return star.X
	}
	return e
}

// checkAliasLeaks runs the taint fixed point over one exported method and
// reports returns/stores of receiver aliases.
func checkAliasLeaks(pass *Pass, fd *ast.FuncDecl, recv types.Object, facts *aliasReturns) {
	info := pass.Info
	g := buildCFG(fd.Body)
	tainted := func(e ast.Expr, in objSet) bool {
		return aliasTaintedExpr(info, e, recv, in, facts)
	}
	entry := g.forwardMay(func(n *cfgNode, in objSet) objSet {
		return aliasTransfer(info, n.stmt, in, tainted)
	})

	// Named results participate in naked returns.
	var namedResults []types.Object
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					namedResults = append(namedResults, obj)
				}
			}
		}
	}

	for _, n := range g.nodes {
		in := entry[n]
		switch v := n.stmt.(type) {
		case *ast.ReturnStmt:
			if len(v.Results) == 0 {
				for _, obj := range namedResults {
					if in[obj] {
						pass.Reportf(v.Pos(), "exported method %s returns %s, which aliases receiver-owned mutable state; return a copy (slices.Clone / maps.Clone / append to a fresh slice)", fd.Name.Name, obj.Name())
					}
				}
				continue
			}
			for _, res := range v.Results {
				if tainted(res, in) {
					pass.Reportf(res.Pos(), "exported method %s returns %s, which aliases receiver-owned mutable state; return a copy (slices.Clone / maps.Clone / append to a fresh slice)", fd.Name.Name, types.ExprString(res))
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				continue
			}
			for i, lhs := range v.Lhs {
				if pkgLevelTarget(info, lhs) && tainted(v.Rhs[i], in) {
					pass.Reportf(v.Rhs[i].Pos(), "exported method %s stores %s, which aliases receiver-owned mutable state, into package-level state; store a copy", fd.Name.Name, types.ExprString(v.Rhs[i]))
				}
			}
		}
	}
}

// aliasTransfer is the dataflow transfer function: statement-shallow (the
// CFG gives compound statements their own nodes for init/post/range
// bindings), updating local taint on assignment and definition.
func aliasTransfer(info *types.Info, s ast.Stmt, in objSet, tainted func(ast.Expr, objSet) bool) objSet {
	out := make(objSet, len(in))
	for k := range in {
		out[k] = true
	}
	setLocal := func(lhs ast.Expr, taint bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := objOf(info, id)
		if obj == nil {
			return
		}
		if taint {
			out[obj] = true
		} else {
			delete(out, obj)
		}
	}
	switch v := s.(type) {
	case *ast.AssignStmt:
		if v.Tok != token.ASSIGN && v.Tok != token.DEFINE {
			return out // op-assign (+=) never rebinds
		}
		if len(v.Lhs) == len(v.Rhs) {
			for i, lhs := range v.Lhs {
				setLocal(lhs, tainted(v.Rhs[i], out))
			}
			return out
		}
		// Tuple assignment from a call/map/type-assert: results are fresh
		// values (element and result copies), clear every bound local.
		for _, lhs := range v.Lhs {
			setLocal(lhs, false)
		}
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok {
			return out
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				taint := false
				if i < len(vs.Values) {
					taint = tainted(vs.Values[i], out)
				}
				setLocal(name, taint)
			}
		}
	case *ast.RangeStmt:
		// Key/value bindings copy elements out of the range target; the
		// copies are fresh even when the target is tainted.
		if v.Key != nil {
			setLocal(v.Key, false)
		}
		if v.Value != nil {
			setLocal(v.Value, false)
		}
	}
	return out
}

// aliasTaintedExpr reports whether e evaluates to a reference into
// receiver-owned mutable state: a direct alias of an unexported slice/map
// field of recv, a pointer into one, a tainted local, or an expression
// that preserves such a reference (slicing, append's first argument,
// slice/map conversions, a receiver helper that returns an alias).
func aliasTaintedExpr(info *types.Info, e ast.Expr, recv types.Object, in objSet, facts *aliasReturns) bool {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		obj := objOf(info, v)
		return obj != nil && in[obj]
	case *ast.SelectorExpr, *ast.StarExpr:
		return receiverRefField(info, e, recv) != nil
	case *ast.SliceExpr:
		return aliasTaintedExpr(info, v.X, recv, in, facts)
	case *ast.UnaryExpr:
		if v.Op != token.AND {
			return false
		}
		return addrAliasesReceiver(info, v.X, recv, in, facts)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin && len(v.Args) > 0 {
				// append may return its first argument's backing array.
				return aliasTaintedExpr(info, v.Args[0], recv, in, facts)
			}
		}
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			// A slice/map conversion preserves the backing store.
			return aliasTaintedExpr(info, v.Args[0], recv, in, facts)
		}
		// A method call on the receiver whose callee (transitively)
		// returns a receiver alias leaks the same store.
		fn := calleeFunc(info, v)
		if fn == nil {
			return false
		}
		if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
			if root, _, exact := selectorChain(info, sel.X); exact && root != nil && root == recv {
				return facts.returns(fn)
			}
		}
	}
	return false
}

// receiverRefField resolves e as a selector chain rooted at recv ending in
// an unexported field whose value is itself a reference (slice or map
// underlying type) and returns that field; nil otherwise. Exported fields
// are reachable by the caller anyway and do not count.
func receiverRefField(info *types.Info, e ast.Expr, recv types.Object) *types.Var {
	root, fields, exact := selectorChain(info, e)
	if !exact || root != recv || len(fields) == 0 {
		return nil
	}
	f := fields[len(fields)-1]
	if f.Exported() {
		return nil
	}
	switch f.Type().Underlying().(type) {
	case *types.Slice, *types.Map:
		return f
	}
	return nil
}

// addrAliasesReceiver reports whether &x points into receiver-owned state:
// the address of an unexported receiver field (any type), or of an element
// of a receiver-owned (or tainted) slice.
func addrAliasesReceiver(info *types.Info, x ast.Expr, recv types.Object, in objSet, facts *aliasReturns) bool {
	x = ast.Unparen(x)
	if idx, ok := x.(*ast.IndexExpr); ok {
		return aliasTaintedExpr(info, idx.X, recv, in, facts)
	}
	root, fields, exact := selectorChain(info, x)
	return exact && root == recv && len(fields) > 0 && !fields[len(fields)-1].Exported()
}

// pkgLevelTarget reports whether the assignment target is (or hangs off)
// a package-level variable — the "stores" half of the leak: parking a
// receiver alias in a global publishes it past the method call.
func pkgLevelTarget(info *types.Info, lhs ast.Expr) bool {
	for {
		switch v := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := objOf(info, v)
			return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
		case *ast.SelectorExpr:
			lhs = v.X
		case *ast.IndexExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		default:
			return false
		}
	}
}

// aliasReturns memoizes the "this method returns an alias of its
// receiver's state" fact across the program call graph, so exported
// wrappers around unexported borrow helpers are caught. The per-callee
// check is flow-insensitive (a helper that clones before returning is
// assumed clean only if it never returns a direct field reference) —
// borrow helpers that return fields verbatim are the common shape.
type aliasReturns struct {
	graph *CallGraph
	memo  map[*types.Func]int // 0 in progress (cycle: assume clean), 1 returns alias, -1 clean
}

func (a *aliasReturns) returns(fn *types.Func) bool {
	if v, ok := a.memo[fn]; ok {
		return v == 1
	}
	fd := a.graph.Decl(fn)
	pkg := a.graph.PackageOf(fn)
	if fd == nil || pkg == nil || fd.Body == nil || fd.Recv == nil ||
		len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		a.memo[fn] = -1
		return false
	}
	recv := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if recv == nil {
		a.memo[fn] = -1
		return false
	}
	a.memo[fn] = 0
	result := -1
	walkUnit(fd.Body, func(n ast.Node) bool {
		if result == 1 {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if aliasTaintedExpr(pkg.Info, res, recv, objSet{}, a) {
				result = 1
			}
		}
		return result != 1
	})
	a.memo[fn] = result
	return result == 1
}
