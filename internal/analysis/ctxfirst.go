package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the standard Go convention that context.Context is the
// first parameter of every exported function and method (after the
// receiver). Submit(ctx, job)-style signatures keep cancellation wiring
// uniform across the cloud layer and any future service surface.
var CtxFirst = &Analyzer{
	Name:  "ctxfirst",
	Doc:   "exported functions taking context.Context must take it as the first parameter",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
					continue
				}
				idx := 0
				for _, field := range fd.Type.Params.List {
					width := len(field.Names)
					if width == 0 {
						width = 1 // unnamed parameter
					}
					if isContextType(pass.Info.TypeOf(field.Type)) && idx > 0 {
						pass.Reportf(field.Pos(), "%s takes context.Context at position %d; it must be the first parameter", fd.Name.Name, idx+1)
					}
					idx += width
				}
			}
		}
	},
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
