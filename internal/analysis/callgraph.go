package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the static call graph of an analysis unit. Built over a
// single package it matches the historical behavior: for every function or
// method declared in the package, the set of same-package functions its
// body (including nested function literals) calls directly. Built over a
// Program it additionally carries cross-package edges into module-local
// dependencies, and resolves calls through interface methods to every
// program-local concrete method whose receiver type satisfies the
// interface (method-set aware: value and pointer receivers both count).
// Calls through stored function values are still not resolved — the graph
// remains a cheap under-approximation; analyzers use it to extend an
// intra-procedural fact ("this body performs a channel operation",
// "this callee acquires that lock") across call hops rather than to prove
// absence of behavior.
type CallGraph struct {
	// callees maps a declared function to the declared functions it calls.
	callees map[*types.Func]map[*types.Func]bool
	// decls maps a declared function to its syntax, so analyzers can
	// inspect callee bodies.
	decls map[*types.Func]*ast.FuncDecl
	// pkgOf maps a declared function to the program package holding it,
	// so analyzers can resolve positions and info on the callee's side.
	pkgOf map[*types.Func]*Package
}

// NewCallGraph builds the single-package call graph — the historical
// same-package-only unit fixture tests exercise directly.
func NewCallGraph(pkg *Package) *CallGraph {
	return buildCallGraph(singleProgram(pkg))
}

// buildCallGraph constructs the graph over every package of the program.
func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		callees: make(map[*types.Func]map[*types.Func]bool),
		decls:   make(map[*types.Func]*ast.FuncDecl),
		pkgOf:   make(map[*types.Func]*Package),
	}
	// Pass 1: register every declared function so interface dispatch can
	// check "is this concrete method declared in the program".
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.decls[fn] = fd
				g.pkgOf[fn] = pkg
			}
		}
	}
	impls := programImplementers(prog)
	impls.decls = g.decls
	// Pass 2: edges.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				edges := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(pkg.Info, call)
					if callee == nil {
						return true
					}
					if prog.Local(callee.Pkg()) != nil && g.decls[callee] != nil {
						edges[callee] = true
						return true
					}
					// Interface dispatch: fan the call out to every
					// program-declared concrete method that can stand behind
					// the interface value.
					for _, impl := range impls.resolve(callee) {
						edges[impl] = true
					}
					return true
				})
				g.callees[fn] = edges
			}
		}
	}
	return g
}

// implementerSet resolves interface-method callees to the program-local
// concrete methods that may be dispatched to.
type implementerSet struct {
	// named lists every program-local defined type, in deterministic
	// (package path, type name) order.
	named []*types.Named
	// decls mirrors CallGraph.decls: only methods with bodies resolve.
	decls map[*types.Func]*ast.FuncDecl
	// memo caches resolution per abstract method.
	memo map[*types.Func][]*types.Func
}

// programImplementers collects the program's defined types once per graph
// build.
func programImplementers(prog *Program) *implementerSet {
	s := &implementerSet{memo: make(map[*types.Func][]*types.Func)}
	for _, pkg := range prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			s.named = append(s.named, named)
		}
	}
	return s
}

// resolve returns the program-declared concrete methods an abstract
// (interface) method callee may dispatch to; nil for concrete callees.
func (s *implementerSet) resolve(callee *types.Func) []*types.Func {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !types.IsInterface(sig.Recv().Type()) {
		return nil
	}
	if impls, ok := s.memo[callee]; ok {
		return impls
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		s.memo[callee] = nil
		return nil
	}
	var impls []*types.Func
	for _, named := range s.named {
		// Pointer method sets are supersets of value method sets, so
		// checking *T covers values stored as pointers too; a separate
		// value check keeps types whose methods all have value receivers.
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, callee.Pkg(), callee.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if s.declared(m) {
			impls = append(impls, m)
		}
	}
	s.memo[callee] = impls
	return impls
}

// declared reports whether the method has a body in the program. The
// implementer set is built before edges, so the graph wires decls in.
func (s *implementerSet) declared(m *types.Func) bool {
	_, ok := s.decls[m]
	return ok
}

// Decl returns the declaration syntax of a program function, or nil.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl {
	return g.decls[fn]
}

// PackageOf returns the program package declaring fn, or nil.
func (g *CallGraph) PackageOf(fn *types.Func) *Package {
	return g.pkgOf[fn]
}

// Functions returns every declared function in the graph in deterministic
// (package path, source position) order — the iteration order program-wide
// analyzers (lockorder) use to collect facts.
func (g *CallGraph) Functions() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := g.pkgOf[out[i]], g.pkgOf[out[j]]
		if pi.Path != pj.Path {
			return pi.Path < pj.Path
		}
		return g.decls[out[i]].Pos() < g.decls[out[j]].Pos()
	})
	return out
}

// Callees returns the program functions fn calls directly, sorted by
// full name so callers iterate deterministically.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	out := make([]*types.Func, 0, len(g.callees[fn]))
	for c := range g.callees[fn] {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Reaches reports whether to is reachable from from over program call
// edges (including from == to).
func (g *CallGraph) Reaches(from, to *types.Func) bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func) bool
	walk = func(fn *types.Func) bool {
		if fn == to {
			return true
		}
		if seen[fn] {
			return false
		}
		seen[fn] = true
		for c := range g.callees[fn] {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// AnyReachable reports whether any function reachable from fn (including
// fn itself) satisfies pred, which is evaluated on the callee's
// declaration syntax. Functions without program syntax (imported from the
// standard library, methods of instantiated generics) are skipped.
func (g *CallGraph) AnyReachable(fn *types.Func, pred func(*ast.FuncDecl) bool) bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func) bool
	walk = func(fn *types.Func) bool {
		if seen[fn] {
			return false
		}
		seen[fn] = true
		if fd := g.decls[fn]; fd != nil && pred(fd) {
			return true
		}
		for c := range g.callees[fn] {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(fn)
}
