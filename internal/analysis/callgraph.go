package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the static package-level call graph of one analysis unit:
// for every function or method declared in the package, the set of
// same-package functions its body (including nested function literals)
// calls directly. Calls through interface values or stored function
// values are not resolved — the graph is intentionally a cheap
// under-approximation; analyzers use it to extend an intra-procedural
// fact ("this body performs a channel operation") one call hop at a time
// rather than to prove absence of behavior.
type CallGraph struct {
	// callees maps a declared function to the declared functions it calls.
	callees map[*types.Func]map[*types.Func]bool
	// decls maps a declared function to its syntax, so analyzers can
	// inspect callee bodies.
	decls map[*types.Func]*ast.FuncDecl
}

// NewCallGraph builds the call graph of the package from its syntax.
func NewCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		callees: make(map[*types.Func]map[*types.Func]bool),
		decls:   make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			g.decls[fn] = fd
			edges := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg.Info, call)
				if callee != nil && callee.Pkg() == pkg.Types {
					edges[callee] = true
				}
				return true
			})
			g.callees[fn] = edges
		}
	}
	return g
}

// Decl returns the declaration syntax of a package function, or nil.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl {
	return g.decls[fn]
}

// Callees returns the same-package functions fn calls directly, sorted by
// full name so callers iterate deterministically.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	out := make([]*types.Func, 0, len(g.callees[fn]))
	for c := range g.callees[fn] {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Reaches reports whether to is reachable from from over package-local
// call edges (including from == to).
func (g *CallGraph) Reaches(from, to *types.Func) bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func) bool
	walk = func(fn *types.Func) bool {
		if fn == to {
			return true
		}
		if seen[fn] {
			return false
		}
		seen[fn] = true
		for c := range g.callees[fn] {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// AnyReachable reports whether any function reachable from fn (including
// fn itself) satisfies pred, which is evaluated on the callee's
// declaration syntax. Functions without local syntax (imported, methods
// of instantiated generics) are skipped.
func (g *CallGraph) AnyReachable(fn *types.Func, pred func(*ast.FuncDecl) bool) bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func) bool
	walk = func(fn *types.Func) bool {
		if seen[fn] {
			return false
		}
		seen[fn] = true
		if fd := g.decls[fn]; fd != nil && pred(fd) {
			return true
		}
		for c := range g.callees[fn] {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(fn)
}
