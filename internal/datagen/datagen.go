// Package datagen generates the synthetic EM workloads this reproduction
// evaluates on. The paper's Tables 1 and 2 report on proprietary customer
// datasets (Walmart products, American Family Insurance vehicles and
// addresses, Brazilian cattle ranches, vendor masters, ...) that cannot be
// redistributed; per the substitution rule in DESIGN.md we instead generate
// per-domain synthetic tables whose *pathologies* reproduce the paper's
// observed behaviour:
//
//   - clean domains (products, books, restaurants, ...) where CloudMatcher
//     reaches 90%+ precision and recall,
//   - Vehicles with heavy missing values (the AmFam expert "was uncertain
//     in many cases" because "the data was so incomplete"),
//   - Vendors where a Brazilian segment carries generic copy-pasted
//     addresses ("the vendors entered some generic addresses instead of
//     their real addresses"), tanking accuracy until that segment is
//     removed,
//   - Addresses with similar dirty-data problems (recall 76–81%).
//
// Each generated Task carries two tables, the gold match set, and the
// knobs it was built with.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/label"
	"repro/internal/table"
)

// Task is one generated EM workload.
type Task struct {
	// Name identifies the task (e.g. "vehicles").
	Name string
	// A and B are the two tables to match; both have key "id".
	A, B *table.Table
	// Gold holds the true (A.id, B.id) matches.
	Gold *label.Gold
	// Spec records the generation parameters.
	Spec Spec
}

// Spec parameterizes generation.
type Spec struct {
	// Name names the task.
	Name string
	// Domain selects the schema and value generators.
	Domain Domain
	// SizeA and SizeB are the table sizes.
	SizeA, SizeB int
	// MatchFraction is the fraction of B rows that have a true match in
	// A; 0 means 0.5.
	MatchFraction float64
	// Typo is the per-field corruption intensity in [0, 1]; 0.2 is mild.
	Typo float64
	// Missing is the per-field null probability applied to B (and the
	// matched fields of A for the dirtiest tasks).
	Missing float64
	// GarbageFraction marks this share of both tables' rows as a
	// "garbage segment": their address-like fields are replaced by one
	// of a handful of generic strings, making them indistinguishable
	// (the Brazilian-vendors pathology). Gold matches inside the segment
	// are retained — they are real matches the data can no longer
	// support, which is what destroys accuracy.
	GarbageFraction float64
	// Seed drives generation.
	Seed int64
}

func (s Spec) matchFraction() float64 {
	if s.MatchFraction <= 0 {
		return 0.5
	}
	return s.MatchFraction
}

// Domain is a named schema plus per-field value generators.
type Domain struct {
	// Name identifies the domain ("product", "vehicle", ...).
	Name string
	// Fields defines the non-key columns in order.
	Fields []Field
}

// FieldClass tells the corrupter how to treat a field.
type FieldClass int

// The field classes.
const (
	ClassName     FieldClass = iota // person/company/product names: typos, abbreviation
	ClassText                       // free text: typos, token drops
	ClassCode                       // identifiers (ISBN, VIN): rarely corrupted, often missing
	ClassAddress                    // address-like: typos + garbage-segment target
	ClassNumeric                    // numbers: small perturbation
	ClassCategory                   // low-cardinality: replaced wholesale or kept
)

// Field defines one generated column.
type Field struct {
	Name  string
	Class FieldClass
	// Gen produces the clean value for entity e. It must be a pure
	// function of e: matched rows in both tables regenerate the same
	// clean value before corruption.
	Gen func(e int) string
}

// Generate builds a Task from a Spec.
func Generate(spec Spec) (*Task, error) {
	if spec.SizeA <= 0 || spec.SizeB <= 0 {
		return nil, fmt.Errorf("datagen: sizes must be positive (got %d, %d)", spec.SizeA, spec.SizeB)
	}
	if len(spec.Domain.Fields) == 0 {
		return nil, fmt.Errorf("datagen: domain %q has no fields", spec.Domain.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	cols := make([]table.Column, 0, len(spec.Domain.Fields)+1)
	cols = append(cols, table.Column{Name: "id", Kind: table.KindString})
	for _, f := range spec.Domain.Fields {
		cols = append(cols, table.Column{Name: f.Name, Kind: table.KindString})
	}
	sch := table.MustSchema(cols...)

	// Entity universe: ids 0..SizeA-1 live in A; matched B rows reuse
	// them, unmatched B rows draw fresh entities.
	nMatches := int(spec.matchFraction() * float64(spec.SizeB))
	if nMatches > spec.SizeA {
		nMatches = spec.SizeA
	}

	a := table.New(spec.Name+"_A", sch)
	for e := 0; e < spec.SizeA; e++ {
		a.MustAppend(cleanRow(spec, e, fmt.Sprintf("a%d", e))...)
	}

	b := table.New(spec.Name+"_B", sch)
	gold := label.NewGold(nil)
	matchedEntities := rng.Perm(spec.SizeA)[:nMatches]
	for j, e := range matchedEntities {
		bid := fmt.Sprintf("b%d", j)
		row := corruptRow(spec, rng, cleanRow(spec, e, bid))
		b.MustAppend(row...)
		gold.Add(fmt.Sprintf("a%d", e), bid)
	}
	for j := nMatches; j < spec.SizeB; j++ {
		e := spec.SizeA + j // fresh entity, guaranteed not in A
		bid := fmt.Sprintf("b%d", j)
		b.MustAppend(corruptRow(spec, rng, cleanRow(spec, e, bid))...)
	}

	// Garbage segment: overwrite address-class fields of a slice of both
	// tables with generic values.
	if spec.GarbageFraction > 0 {
		applyGarbage(a, spec, rng)
		applyGarbage(b, spec, rng)
	}

	if err := a.SetKey("id"); err != nil {
		return nil, err
	}
	if err := b.SetKey("id"); err != nil {
		return nil, err
	}
	return &Task{Name: spec.Name, A: a, B: b, Gold: gold, Spec: spec}, nil
}

// cleanRow renders entity e's uncorrupted values.
func cleanRow(spec Spec, e int, id string) []table.Value {
	vals := make([]table.Value, 0, len(spec.Domain.Fields)+1)
	vals = append(vals, table.String(id))
	for _, f := range spec.Domain.Fields {
		vals = append(vals, table.String(f.Gen(e)))
	}
	return vals
}

// corruptRow perturbs a clean row per the spec's Typo and Missing knobs.
// The id (index 0) is never touched.
func corruptRow(spec Spec, rng *rand.Rand, row []table.Value) []table.Value {
	for i, f := range spec.Domain.Fields {
		v := &row[i+1]
		if spec.Missing > 0 && rng.Float64() < spec.Missing {
			*v = table.Null(table.KindString)
			continue
		}
		if spec.Typo <= 0 || rng.Float64() >= spec.Typo {
			continue
		}
		s := v.AsString()
		switch f.Class {
		case ClassName:
			s = corruptName(rng, s)
		case ClassText, ClassAddress:
			s = corruptText(rng, s)
		case ClassCode:
			// Codes are rarely mistyped; when they are, one digit flips.
			if rng.Float64() < 0.3 {
				s = typo(rng, s)
			}
		case ClassNumeric:
			s = perturbNumber(rng, s)
		case ClassCategory:
			// Keep or blank; categories rarely mutate into other values.
			if rng.Float64() < 0.3 {
				s = ""
			}
		}
		*v = table.String(s)
	}
	return row
}

// applyGarbage overwrites the address-class fields of a random
// GarbageFraction slice of rows with generic strings.
func applyGarbage(t *table.Table, spec Spec, rng *rand.Rand) {
	generic := []string{
		"av paulista 1000 centro",
		"rua principal s/n centro",
		"main street 1",
	}
	n := int(spec.GarbageFraction * float64(t.Len()))
	for _, i := range rng.Perm(t.Len())[:n] {
		for _, f := range spec.Domain.Fields {
			if f.Class == ClassAddress {
				t.Set(i, f.Name, table.String(generic[rng.Intn(len(generic))]))
			}
		}
	}
}

// --- corruption primitives ---

// typo applies one random character edit (swap, substitute, delete,
// insert).
func typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 2 {
		return s
	}
	i := rng.Intn(len(r) - 1)
	switch rng.Intn(4) {
	case 0: // swap
		r[i], r[i+1] = r[i+1], r[i]
	case 1: // substitute
		r[i] = rune('a' + rng.Intn(26))
	case 2: // delete
		r = append(r[:i], r[i+1:]...)
	default: // insert
		r = append(r[:i], append([]rune{rune('a' + rng.Intn(26))}, r[i:]...)...)
	}
	return string(r)
}

// corruptName abbreviates a token, drops a middle token, or typos.
func corruptName(rng *rand.Rand, s string) string {
	toks := strings.Fields(s)
	if len(toks) == 0 {
		return s
	}
	switch rng.Intn(3) {
	case 0: // abbreviate the first token: "David" -> "D."
		if len(toks[0]) > 1 {
			toks[0] = toks[0][:1] + "."
		}
	case 1: // drop a middle token
		if len(toks) > 2 {
			i := 1 + rng.Intn(len(toks)-2)
			toks = append(toks[:i], toks[i+1:]...)
		} else {
			return typo(rng, s)
		}
	default:
		return typo(rng, s)
	}
	return strings.Join(toks, " ")
}

// corruptText typos once or twice and sometimes drops a token.
func corruptText(rng *rand.Rand, s string) string {
	s = typo(rng, s)
	if rng.Float64() < 0.3 {
		s = typo(rng, s)
	}
	if rng.Float64() < 0.2 {
		toks := strings.Fields(s)
		if len(toks) > 2 {
			i := rng.Intn(len(toks))
			toks = append(toks[:i], toks[i+1:]...)
			s = strings.Join(toks, " ")
		}
	}
	return s
}

// perturbNumber shifts an integer-looking value by ±1..2, else typos.
func perturbNumber(rng *rand.Rand, s string) string {
	v, ok := table.String(s).AsInt()
	if !ok {
		return typo(rng, s)
	}
	return fmt.Sprintf("%d", v+int64(rng.Intn(5)-2))
}
