package datagen

// TaskSpec describes one row of the paper's evaluation tables: a workload
// plus how it was labeled in the deployment (single user vs crowd) and the
// question cap CloudMatcher enforced.
type TaskSpec struct {
	Spec Spec
	// Crowd is true when Table 2 shows a Mechanical Turk cost for the
	// task; false means a single user labeled.
	Crowd bool
	// QuestionCap is CloudMatcher's labeling budget (the paper's upper
	// limit is 1200).
	QuestionCap int
	// Org describes the deploying organization, for report rendering.
	Org string
}

// Table2Tasks returns the 13 CloudMatcher deployment workloads of Table 2.
// The paper's table sizes span 300–4.9M tuples; ours are scaled down
// (300–2500) so the whole suite regenerates on a laptop, preserving each
// task's dirtiness profile:
//
//   - vehicles: the discriminative VIN is mostly missing and the expert's
//     labels are noisy — precision and recall collapse;
//   - addresses: dirty free-text addresses — recall lands well below the
//     clean tasks;
//   - vendors: a 25% Brazilian garbage-address segment — low accuracy;
//   - vendors_no_brazil: the same workload with the segment removed —
//     accuracy recovers, reproducing the paper's before/after pair.
func Table2Tasks(seed int64) []TaskSpec {
	return []TaskSpec{
		{Org: "retail company", Crowd: true, QuestionCap: 1200,
			Spec: Spec{Name: "products", Domain: ProductDomain(), SizeA: 2500, SizeB: 2500, MatchFraction: 0.4, Typo: 0.25, Seed: seed + 1}},
		{Org: "retail company", Crowd: false, QuestionCap: 700,
			Spec: Spec{Name: "electronics", Domain: ProductDomain(), SizeA: 2000, SizeB: 1500, MatchFraction: 0.5, Typo: 0.3, Seed: seed + 2}},
		{Org: "publisher", Crowd: false, QuestionCap: 400,
			Spec: Spec{Name: "books", Domain: BookDomain(), SizeA: 1500, SizeB: 1500, MatchFraction: 0.45, Typo: 0.25, Seed: seed + 3}},
		{Org: "hospitality company", Crowd: true, QuestionCap: 800,
			Spec: Spec{Name: "restaurants", Domain: RestaurantDomain(), SizeA: 1200, SizeB: 1000, MatchFraction: 0.5, Typo: 0.3, Seed: seed + 4}},
		{Org: "streaming company", Crowd: false, QuestionCap: 600,
			Spec: Spec{Name: "movies", Domain: MovieDomain(), SizeA: 2500, SizeB: 2000, MatchFraction: 0.4, Typo: 0.25, Seed: seed + 5}},
		{Org: "domain science group", Crowd: false, QuestionCap: 500,
			Spec: Spec{Name: "citations", Domain: CitationDomain(), SizeA: 2000, SizeB: 2000, MatchFraction: 0.4, Typo: 0.2, Seed: seed + 6}},
		{Org: "non-profit", Crowd: true, QuestionCap: 1000,
			Spec: Spec{Name: "donors", Domain: PersonDomain(), SizeA: 2500, SizeB: 2000, MatchFraction: 0.35, Typo: 0.25, Seed: seed + 7}},
		{Org: "non-profit", Crowd: false, QuestionCap: 160,
			Spec: Spec{Name: "members", Domain: PersonDomain(), SizeA: 300, SizeB: 300, MatchFraction: 0.5, Typo: 0.2, Seed: seed + 8}},
		{Org: "insurance company", Crowd: false, QuestionCap: 800,
			Spec: Spec{Name: "suppliers", Domain: VendorDomain(), SizeA: 2000, SizeB: 1800, MatchFraction: 0.45, Typo: 0.25, Seed: seed + 9}},
		{Org: "insurance company", Crowd: false, QuestionCap: 1200,
			Spec: Spec{Name: "vehicles", Domain: VehicleDomain(), SizeA: 2000, SizeB: 1800, MatchFraction: 0.4, Typo: 0.3, Missing: 0.45, Seed: seed + 10}},
		{Org: "insurance company", Crowd: false, QuestionCap: 1000,
			Spec: Spec{Name: "addresses", Domain: PersonDomain(), SizeA: 2000, SizeB: 1800, MatchFraction: 0.4, Typo: 0.55, Missing: 0.15, Seed: seed + 11}},
		{Org: "insurance company", Crowd: false, QuestionCap: 1000,
			Spec: Spec{Name: "vendors", Domain: VendorDomain(), SizeA: 2000, SizeB: 1600, MatchFraction: 0.4, Typo: 0.3, GarbageFraction: 0.25, Seed: seed + 12}},
		{Org: "insurance company", Crowd: false, QuestionCap: 1000,
			Spec: Spec{Name: "vendors_no_brazil", Domain: VendorDomain(), SizeA: 2000, SizeB: 1600, MatchFraction: 0.4, Typo: 0.3, Seed: seed + 12}},
	}
}

// NoisyLabelTasks names the Table 2 tasks whose single-user labels were
// unreliable (the vehicles expert mislabeled a batch with no undo).
// Harnesses give these tasks a NoisyUser labeler instead of an Oracle.
func NoisyLabelTasks() map[string]float64 {
	return map[string]float64{
		"vehicles": 0.15,
	}
}

// Deployment describes one row of Table 1: a PyMatcher application with an
// incumbent solution to beat.
type Deployment struct {
	Spec Spec
	// Org and Purpose render the table's first two columns.
	Org, Purpose string
	// InProduction mirrors the paper's 4th column.
	InProduction bool
}

// Table1Deployments returns the 8 PyMatcher application workloads of
// Table 1. Each is matched by both the PyMatcher guide workflow and a
// rule-only baseline (the incumbent "company solution"); the reproduction
// target is the paper's headline — PyMatcher beats the incumbent's recall
// at comparable precision on Walmart, Economics, and Land Use.
func Table1Deployments(seed int64) []Deployment {
	return []Deployment{
		{Org: "Walmart", Purpose: "debug an EM pipeline in production", InProduction: true,
			Spec: Spec{Name: "walmart_products", Domain: ProductDomain(), SizeA: 1500, SizeB: 1500, MatchFraction: 0.4, Typo: 0.3, Seed: seed + 21}},
		{Org: "Economics (UW)", Purpose: "build a better EM pipeline", InProduction: true,
			Spec: Spec{Name: "economics_firms", Domain: VendorDomain(), SizeA: 1500, SizeB: 1500, MatchFraction: 0.4, Typo: 0.35, Missing: 0.1, Seed: seed + 22}},
		{Org: "Land Use (UW)", Purpose: "build a better EM pipeline", InProduction: true,
			Spec: Spec{Name: "landuse_ranches", Domain: RanchDomain(), SizeA: 1500, SizeB: 1500, MatchFraction: 0.4, Typo: 0.35, Missing: 0.1, Seed: seed + 23}},
		{Org: "Recruit", Purpose: "integrate disparate datasets", InProduction: true,
			Spec: Spec{Name: "recruit_companies", Domain: VendorDomain(), SizeA: 1200, SizeB: 1200, MatchFraction: 0.45, Typo: 0.25, Seed: seed + 24}},
		{Org: "Marshfield Clinic", Purpose: "integrate disparate datasets", InProduction: true,
			Spec: Spec{Name: "marshfield_patients", Domain: PersonDomain(), SizeA: 1500, SizeB: 1200, MatchFraction: 0.4, Typo: 0.25, Missing: 0.1, Seed: seed + 25}},
		{Org: "Limnology (UW)", Purpose: "integrate disparate datasets", InProduction: true,
			Spec: Spec{Name: "limnology_sites", Domain: CitationDomain(), SizeA: 1000, SizeB: 1000, MatchFraction: 0.5, Typo: 0.2, Seed: seed + 26}},
		{Org: "Johnson Controls", Purpose: "integrate disparate datasets", InProduction: false,
			Spec: Spec{Name: "jci_assets", Domain: ProductDomain(), SizeA: 1200, SizeB: 1000, MatchFraction: 0.4, Typo: 0.3, Seed: seed + 27}},
		{Org: "American Family", Purpose: "integrate disparate datasets", InProduction: false,
			Spec: Spec{Name: "amfam_claims", Domain: PersonDomain(), SizeA: 1500, SizeB: 1200, MatchFraction: 0.4, Typo: 0.3, Seed: seed + 28}},
	}
}

// FindTask generates the named Table 2 task, or nil when unknown.
func FindTask(name string, seed int64) (*Task, error) {
	for _, ts := range Table2Tasks(seed) {
		if ts.Spec.Name == name {
			return Generate(ts.Spec)
		}
	}
	return nil, errUnknownTask(name)
}

type errUnknownTask string

func (e errUnknownTask) Error() string { return "datagen: unknown task " + string(e) }
