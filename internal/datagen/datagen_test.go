package datagen

import (
	"strings"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	task, err := Generate(Spec{Name: "t", Domain: ProductDomain(), SizeA: 200, SizeB: 150, MatchFraction: 0.4, Typo: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if task.A.Len() != 200 || task.B.Len() != 150 {
		t.Fatalf("sizes = %d/%d", task.A.Len(), task.B.Len())
	}
	if task.A.Key() != "id" || task.B.Key() != "id" {
		t.Fatal("keys not declared")
	}
	if got := task.Gold.Len(); got != 60 {
		t.Errorf("gold matches = %d, want 60 (0.4 × 150)", got)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Domain: ProductDomain()}); err == nil {
		t.Error("want size error")
	}
	if _, err := Generate(Spec{SizeA: 1, SizeB: 1}); err == nil {
		t.Error("want empty-domain error")
	}
}

func TestGoldPairsReferToRealRows(t *testing.T) {
	task, err := Generate(Spec{Name: "t", Domain: PersonDomain(), SizeA: 100, SizeB: 100, Typo: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	aIdx, err := task.A.KeyIndex()
	if err != nil {
		t.Fatal(err)
	}
	bIdx, err := task.B.KeyIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range task.Gold.Pairs() {
		if _, ok := aIdx[p[0]]; !ok {
			t.Fatalf("gold left id %q not in A", p[0])
		}
		if _, ok := bIdx[p[1]]; !ok {
			t.Fatalf("gold right id %q not in B", p[1])
		}
	}
}

func TestMatchedPairsAreSimilar(t *testing.T) {
	task, err := Generate(Spec{Name: "t", Domain: BookDomain(), SizeA: 100, SizeB: 100, MatchFraction: 0.5, Typo: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	aIdx, err := task.A.KeyIndex()
	if err != nil {
		t.Fatal(err)
	}
	bIdx, err := task.B.KeyIndex()
	if err != nil {
		t.Fatal(err)
	}
	// Gold pairs must share the ISBN most of the time (codes rarely
	// corrupted), while random pairs almost never do.
	shared := 0
	for _, p := range task.Gold.Pairs() {
		ai, bi := aIdx[p[0]], bIdx[p[1]]
		av := task.A.Get(ai, "isbn")
		bv := task.B.Get(bi, "isbn")
		if !av.IsNull() && av.AsString() == bv.AsString() {
			shared++
		}
	}
	if frac := float64(shared) / float64(task.Gold.Len()); frac < 0.7 {
		t.Errorf("only %.2f of gold pairs share an ISBN", frac)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	spec := Spec{Name: "t", Domain: VendorDomain(), SizeA: 50, SizeB: 50, Typo: 0.3, Seed: 7}
	t1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < t1.B.Len(); i++ {
		for _, c := range t1.B.Schema().Names() {
			if t1.B.Get(i, c).AsString() != t2.B.Get(i, c).AsString() {
				t.Fatal("same seed generated different data")
			}
		}
	}
}

func TestMissingKnob(t *testing.T) {
	task, err := Generate(Spec{Name: "t", Domain: VehicleDomain(), SizeA: 300, SizeB: 300, Missing: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	total := 0
	for i := 0; i < task.B.Len(); i++ {
		for _, c := range task.B.Schema().Names() {
			if c == "id" {
				continue
			}
			total++
			if task.B.Get(i, c).IsNull() {
				nulls++
			}
		}
	}
	frac := float64(nulls) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("null fraction %.2f, want ~0.5", frac)
	}
	// A is never corrupted: no nulls.
	for i := 0; i < task.A.Len(); i++ {
		for _, c := range task.A.Schema().Names() {
			if task.A.Get(i, c).IsNull() {
				t.Fatal("table A should be clean")
			}
		}
	}
}

func TestGarbageSegment(t *testing.T) {
	task, err := Generate(Spec{Name: "t", Domain: VendorDomain(), SizeA: 400, SizeB: 400, GarbageFraction: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	garbage := 0
	for i := 0; i < task.B.Len(); i++ {
		addr := task.B.Get(i, "address").AsString()
		if strings.Contains(addr, "centro") || addr == "main street 1" {
			garbage++
		}
	}
	frac := float64(garbage) / float64(task.B.Len())
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("garbage fraction %.2f, want ~0.25", frac)
	}
}

func TestEntityGeneratorsArePure(t *testing.T) {
	for _, d := range []Domain{PersonDomain(), ProductDomain(), VehicleDomain(), VendorDomain(),
		BookDomain(), RestaurantDomain(), RanchDomain(), CitationDomain(), MovieDomain()} {
		for _, f := range d.Fields {
			if f.Gen(42) != f.Gen(42) {
				t.Errorf("domain %s field %s generator is not pure", d.Name, f.Name)
			}
			if f.Gen(1) == "" {
				t.Errorf("domain %s field %s generates empty values", d.Name, f.Name)
			}
		}
	}
}

func TestTable2Registry(t *testing.T) {
	tasks := Table2Tasks(1)
	if len(tasks) != 13 {
		t.Fatalf("table 2 tasks = %d, want 13", len(tasks))
	}
	names := map[string]bool{}
	for _, ts := range tasks {
		if names[ts.Spec.Name] {
			t.Errorf("duplicate task %q", ts.Spec.Name)
		}
		names[ts.Spec.Name] = true
		if ts.QuestionCap < 160 || ts.QuestionCap > 1200 {
			t.Errorf("%s: question cap %d outside the paper's 160–1200", ts.Spec.Name, ts.QuestionCap)
		}
	}
	for _, want := range []string{"vehicles", "addresses", "vendors", "vendors_no_brazil"} {
		if !names[want] {
			t.Errorf("missing paper task %q", want)
		}
	}
	// vendors and vendors_no_brazil differ only in the garbage segment.
	var v, vnb *TaskSpec
	for i := range tasks {
		if tasks[i].Spec.Name == "vendors" {
			v = &tasks[i]
		}
		if tasks[i].Spec.Name == "vendors_no_brazil" {
			vnb = &tasks[i]
		}
	}
	if v.Spec.GarbageFraction == 0 || vnb.Spec.GarbageFraction != 0 {
		t.Error("vendors/no-brazil garbage knobs wrong")
	}
	if v.Spec.Seed != vnb.Spec.Seed {
		t.Error("vendors variants must share a seed for comparability")
	}
}

func TestTable1Registry(t *testing.T) {
	deps := Table1Deployments(1)
	if len(deps) != 8 {
		t.Fatalf("table 1 deployments = %d, want 8", len(deps))
	}
	inProd := 0
	for _, d := range deps {
		if d.InProduction {
			inProd++
		}
	}
	if inProd != 6 {
		t.Errorf("in production = %d, want 6 of 8 (paper)", inProd)
	}
}

func TestFindTask(t *testing.T) {
	task, err := FindTask("members", 1)
	if err != nil {
		t.Fatal(err)
	}
	if task.A.Len() != 300 {
		t.Errorf("members size = %d", task.A.Len())
	}
	if _, err := FindTask("nope", 1); err == nil {
		t.Error("want unknown-task error")
	}
}

func TestAllTable2TasksGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generation of all tasks is slow in -short mode")
	}
	for _, ts := range Table2Tasks(1) {
		task, err := Generate(ts.Spec)
		if err != nil {
			t.Fatalf("%s: %v", ts.Spec.Name, err)
		}
		if task.Gold.Len() == 0 {
			t.Errorf("%s: no gold matches", ts.Spec.Name)
		}
	}
}
