package datagen

import (
	"fmt"
	"strings"
)

// pick deterministically selects vocab[h(e, salt)] — the pseudo-random but
// reproducible choice entity generators are built from.
func pick(vocab []string, e int, salt uint64) string {
	return vocab[int(mix(uint64(e), salt)%uint64(len(vocab)))]
}

// num deterministically derives a number in [lo, hi) from (e, salt).
func num(e int, salt uint64, lo, hi int) int {
	return lo + int(mix(uint64(e), salt)%uint64(hi-lo))
}

// mix is a splitmix64-style hash of (e, salt).
func mix(e, salt uint64) uint64 {
	z := e*0x9E3779B97F4A7C15 + salt*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

var (
	firstNames = []string{"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
		"linda", "william", "elizabeth", "david", "barbara", "richard", "susan", "joseph",
		"jessica", "thomas", "sarah", "carlos", "ana", "pedro", "lucia", "marcos", "julia"}
	lastNames = []string{"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
		"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez", "wilson",
		"anderson", "thomas", "silva", "santos", "oliveira", "souza", "pereira", "costa"}
	companyWords = []string{"acme", "globex", "initech", "umbrella", "stark", "wayne", "cyberdyne",
		"tyrell", "aperture", "hooli", "vandelay", "wonka", "duff", "oscorp", "monarch",
		"nakatomi", "gringotts", "pied", "piper", "sterling", "cooper", "dunder", "mifflin"}
	companySuffixes = []string{"inc", "llc", "corp", "co", "ltd", "group", "holdings", "industries"}
	streets         = []string{"main st", "oak ave", "park blvd", "maple dr", "cedar ln", "washington st",
		"lake rd", "hill ct", "river way", "sunset blvd", "2nd ave", "3rd st", "market st",
		"church rd", "mill ln", "forest dr", "spring st", "highland ave"}
	cities = []string{"madison", "milwaukee", "chicago", "springfield", "austin", "portland",
		"columbus", "franklin", "clinton", "georgetown", "salem", "fairview", "bristol",
		"dover", "hudson", "kingston", "riverside", "ashland"}
	states      = []string{"WI", "IL", "CA", "TX", "NY", "OH", "OR", "MN", "IA", "MI"}
	productNoun = []string{"laptop", "monitor", "keyboard", "mouse", "headphones", "speaker",
		"camera", "printer", "router", "tablet", "charger", "cable", "drive", "dock",
		"microphone", "webcam", "projector", "scanner"}
	brands = []string{"sonax", "pixelon", "nordtek", "veltron", "quanta", "lumina", "zephyr",
		"orbitek", "halcyon", "vertex", "polaris", "meridian"}
	vehicleMakes  = []string{"toyota", "honda", "ford", "chevrolet", "nissan", "bmw", "audi", "subaru", "kia", "hyundai"}
	vehicleModels = []string{"sedan lx", "coupe sport", "suv xl", "hatch se", "wagon touring",
		"pickup xlt", "crossover ltd", "minivan ex", "roadster s", "hybrid eco"}
	bookWords = []string{"shadow", "river", "night", "garden", "stone", "wind", "ember", "echo",
		"crown", "forest", "winter", "harbor", "letters", "songs", "atlas", "history"}
	publishers  = []string{"northfield press", "harbor books", "blue door", "lanternhouse", "gilded page", "meridian press"}
	cuisines    = []string{"italian", "mexican", "thai", "indian", "diner", "bbq", "sushi", "vegan", "pizza", "cafe"}
	countries   = []string{"usa", "brazil", "mexico", "canada", "germany", "india", "china", "japan"}
	ranchPrefix = []string{"fazenda", "rancho", "sitio", "estancia", "hacienda"}
	ranchNames  = []string{"boa vista", "santa maria", "sao jose", "esperanca", "primavera",
		"bela vista", "santa fe", "dois irmaos", "agua limpa", "nova era", "paraiso", "horizonte"}
	municipalities = []string{"maraba", "altamira", "santarem", "itaituba", "tucuma", "xinguara",
		"redencao", "parauapebas", "novo progresso", "sao felix"}
)

// personName renders a deterministic full name for entity e.
func personName(e int) string {
	return pick(firstNames, e, 1) + " " + pick(lastNames, e, 2)
}

// companyName renders a deterministic company name for entity e. A third
// word for most entities keeps the name space large enough that exact
// collisions stay rare even at tens of thousands of entities, while still
// occurring (real company names do collide).
func companyName(e int) string {
	name := pick(companyWords, e, 3) + " " + pick(companyWords, e, 4)
	if mix(uint64(e), 46)%4 != 0 {
		name += " " + pick(companyWords, e, 45)
	}
	return name + " " + pick(companySuffixes, e, 5)
}

// streetAddress renders a deterministic street address for entity e.
func streetAddress(e int) string {
	return fmt.Sprintf("%d %s", num(e, 6, 1, 9999), pick(streets, e, 7))
}

// PersonDomain: people with addresses (the Figure 1 scenario and the
// "Addresses" task).
func PersonDomain() Domain {
	return Domain{Name: "person", Fields: []Field{
		{Name: "name", Class: ClassName, Gen: personName},
		{Name: "address", Class: ClassAddress, Gen: streetAddress},
		{Name: "city", Class: ClassText, Gen: func(e int) string { return pick(cities, e, 8) }},
		{Name: "state", Class: ClassCategory, Gen: func(e int) string { return pick(states, e, 9) }},
		{Name: "zip", Class: ClassCode, Gen: func(e int) string { return fmt.Sprintf("%05d", num(e, 10, 10000, 99999)) }},
	}}
}

// ProductDomain: e-commerce products (the Walmart and Recruit scenarios).
func ProductDomain() Domain {
	return Domain{Name: "product", Fields: []Field{
		{Name: "title", Class: ClassName, Gen: func(e int) string {
			return fmt.Sprintf("%s %s %s %d", pick(brands, e, 11), pick(productNoun, e, 12),
				strings.ToUpper(pick([]string{"x", "pro", "air", "max", "lite", "plus"}, e, 13)), num(e, 14, 100, 999))
		}},
		{Name: "brand", Class: ClassCategory, Gen: func(e int) string { return pick(brands, e, 11) }},
		{Name: "category", Class: ClassCategory, Gen: func(e int) string { return pick(productNoun, e, 12) }},
		{Name: "price", Class: ClassNumeric, Gen: func(e int) string { return fmt.Sprintf("%d", num(e, 15, 10, 2000)) }},
	}}
}

// VehicleDomain: insured vehicles (the AmFam "Vehicles" task). The VIN is
// the only discriminative field and the task spec makes it mostly missing.
func VehicleDomain() Domain {
	return Domain{Name: "vehicle", Fields: []Field{
		{Name: "make", Class: ClassCategory, Gen: func(e int) string { return pick(vehicleMakes, e, 16) }},
		{Name: "model", Class: ClassText, Gen: func(e int) string { return pick(vehicleModels, e, 17) }},
		{Name: "year", Class: ClassNumeric, Gen: func(e int) string { return fmt.Sprintf("%d", num(e, 18, 1998, 2019)) }},
		{Name: "vin", Class: ClassCode, Gen: func(e int) string { return fmt.Sprintf("VIN%014d", mix(uint64(e), 19)%100000000000000) }},
		{Name: "owner", Class: ClassName, Gen: personName},
	}}
}

// VendorDomain: vendor-master records (the AmFam "Vendors" task). The
// address field is the garbage-segment target.
func VendorDomain() Domain {
	return Domain{Name: "vendor", Fields: []Field{
		{Name: "name", Class: ClassName, Gen: companyName},
		{Name: "address", Class: ClassAddress, Gen: streetAddress},
		{Name: "city", Class: ClassText, Gen: func(e int) string { return pick(cities, e, 20) }},
		{Name: "country", Class: ClassCategory, Gen: func(e int) string { return pick(countries, e, 21) }},
	}}
}

// BookDomain: books with ISBNs (the Figure 4 scenario).
func BookDomain() Domain {
	return Domain{Name: "book", Fields: []Field{
		{Name: "title", Class: ClassName, Gen: func(e int) string {
			return "the " + pick(bookWords, e, 22) + " of " + pick(bookWords, e, 23)
		}},
		{Name: "author", Class: ClassName, Gen: personName},
		{Name: "isbn", Class: ClassCode, Gen: func(e int) string { return fmt.Sprintf("978%010d", mix(uint64(e), 24)%10000000000) }},
		{Name: "pages", Class: ClassNumeric, Gen: func(e int) string { return fmt.Sprintf("%d", num(e, 25, 80, 900)) }},
		{Name: "publisher", Class: ClassCategory, Gen: func(e int) string { return pick(publishers, e, 26) }},
	}}
}

// RestaurantDomain: the classic EM benchmark shape.
func RestaurantDomain() Domain {
	return Domain{Name: "restaurant", Fields: []Field{
		{Name: "name", Class: ClassName, Gen: func(e int) string {
			return pick(lastNames, e, 27) + "s " + pick(cuisines, e, 28)
		}},
		{Name: "address", Class: ClassAddress, Gen: streetAddress},
		{Name: "city", Class: ClassText, Gen: func(e int) string { return pick(cities, e, 29) }},
		{Name: "cuisine", Class: ClassCategory, Gen: func(e int) string { return pick(cuisines, e, 28) }},
	}}
}

// RanchDomain: Brazilian cattle ranches (the "Land Use" / saving-the-Amazon
// application of Appendix B).
func RanchDomain() Domain {
	return Domain{Name: "ranch", Fields: []Field{
		{Name: "name", Class: ClassName, Gen: func(e int) string {
			return fmt.Sprintf("%s %s lote %d", pick(ranchPrefix, e, 30), pick(ranchNames, e, 31), num(e, 44, 1, 9999))
		}},
		{Name: "owner", Class: ClassName, Gen: personName},
		{Name: "municipality", Class: ClassText, Gen: func(e int) string { return pick(municipalities, e, 32) }},
		{Name: "state", Class: ClassCategory, Gen: func(e int) string { return pick([]string{"PA", "MT", "RO", "TO"}, e, 33) }},
		{Name: "area_ha", Class: ClassNumeric, Gen: func(e int) string { return fmt.Sprintf("%d", num(e, 34, 50, 90000)) }},
	}}
}

// CitationDomain: bibliographic records (the domain-science scenarios).
func CitationDomain() Domain {
	return Domain{Name: "citation", Fields: []Field{
		{Name: "title", Class: ClassText, Gen: func(e int) string {
			return "on the " + pick(bookWords, e, 35) + " " + pick(bookWords, e, 48) + " of " + pick(bookWords, e, 36) + " " + pick(bookWords, e, 37)
		}},
		{Name: "authors", Class: ClassName, Gen: func(e int) string { return personName(e) + ", " + personName(e+1<<20) }},
		{Name: "venue", Class: ClassCategory, Gen: func(e int) string { return pick([]string{"sigmod", "vldb", "icde", "kdd", "www", "cidr"}, e, 38) }},
		{Name: "year", Class: ClassNumeric, Gen: func(e int) string { return fmt.Sprintf("%d", num(e, 39, 1995, 2019)) }},
	}}
}

// MovieDomain: streaming-catalog records.
func MovieDomain() Domain {
	return Domain{Name: "movie", Fields: []Field{
		{Name: "title", Class: ClassName, Gen: func(e int) string {
			return pick(bookWords, e, 40) + " " + pick(bookWords, e, 41)
		}},
		{Name: "director", Class: ClassName, Gen: personName},
		{Name: "year", Class: ClassNumeric, Gen: func(e int) string { return fmt.Sprintf("%d", num(e, 42, 1960, 2019)) }},
		{Name: "runtime", Class: ClassNumeric, Gen: func(e int) string { return fmt.Sprintf("%d", num(e, 43, 70, 210)) }},
	}}
}
