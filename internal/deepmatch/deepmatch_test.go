package deepmatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ml"
)

func xorDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	d, err := ml.NewDataset(x, y, nil)
	if err != nil {
		panic(err)
	}
	return d
}

func TestMLPLearnsXOR(t *testing.T) {
	train := xorDataset(800, 1)
	test := xorDataset(400, 2)
	net := &MLP{Seed: 1, Epochs: 150}
	if err := net.Fit(train); err != nil {
		t.Fatal(err)
	}
	conf, err := ml.Evaluate(net, test)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() < 0.9 {
		t.Errorf("mlp xor accuracy = %.3f, want >= 0.9", conf.Accuracy())
	}
}

func TestMLPBeatsLinearOnXOR(t *testing.T) {
	train := xorDataset(800, 3)
	test := xorDataset(400, 4)
	net := &MLP{Seed: 1, Epochs: 150}
	lin := &ml.LogisticRegression{Seed: 1, Epochs: 150}
	if err := net.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := lin.Fit(train); err != nil {
		t.Fatal(err)
	}
	nc, err := ml.Evaluate(net, test)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := ml.Evaluate(lin, test)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Accuracy() <= lc.Accuracy() {
		t.Errorf("mlp %.3f should beat logistic regression %.3f on XOR", nc.Accuracy(), lc.Accuracy())
	}
}

func TestMLPEmptyFitAndUnfitted(t *testing.T) {
	net := &MLP{}
	if err := net.Fit(&ml.Dataset{}); err == nil {
		t.Error("want empty-fit error")
	}
	if p := (&MLP{}).PredictProba([]float64{1, 2}); p != 0 {
		t.Errorf("unfitted proba = %v", p)
	}
}

func TestMLPProbaRange(t *testing.T) {
	train := xorDataset(300, 5)
	net := &MLP{Seed: 2, Epochs: 50}
	if err := net.Fit(train); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		p := net.PredictProba([]float64{rng.Float64() * 3, rng.Float64() * 3})
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("proba out of range: %v", p)
		}
	}
}

func TestMLPDeterministic(t *testing.T) {
	train := xorDataset(200, 7)
	a := &MLP{Seed: 9, Epochs: 30}
	b := &MLP{Seed: 9, Epochs: 30}
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := range train.X {
		if a.PredictProba(train.X[i]) != b.PredictProba(train.X[i]) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMLPCustomArchitecture(t *testing.T) {
	train := xorDataset(400, 8)
	net := &MLP{Hidden: []int{32}, Seed: 1, Epochs: 120}
	if err := net.Fit(train); err != nil {
		t.Fatal(err)
	}
	conf, err := ml.Evaluate(net, train)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() < 0.85 {
		t.Errorf("single-hidden-layer accuracy = %.3f", conf.Accuracy())
	}
}

func TestEncoderProperties(t *testing.T) {
	e := Encoder{}
	v := e.Encode("acme corporation")
	if len(v) != 64 {
		t.Fatalf("dim = %d", len(v))
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("embedding norm = %v, want 1", math.Sqrt(norm))
	}
	// Deterministic.
	w := e.Encode("acme corporation")
	for i := range v {
		if v[i] != w[i] {
			t.Fatal("encoding not deterministic")
		}
	}
	// Similar strings embed closer than dissimilar ones (cosine).
	cos := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	base := e.Encode("acme corporation")
	near := e.Encode("acme corp")
	far := e.Encode("zzz unrelated entity")
	if cos(base, near) <= cos(base, far) {
		t.Error("embedding similarity does not reflect string similarity")
	}
	// Empty string embeds to the zero vector without NaNs.
	for _, x := range e.Encode("") {
		if math.IsNaN(x) {
			t.Fatal("NaN in empty embedding")
		}
	}
}

func TestPairVectorShape(t *testing.T) {
	e := Encoder{Dim: 32}
	v := e.PairVector("a", "b")
	if len(v) != 2*32+1 {
		t.Fatalf("pair vector len = %d", len(v))
	}
	// Identical strings: abs-diff half is zero, cosine is 1.
	v = e.PairVector("same", "same")
	for i := 0; i < 32; i++ {
		if v[i] != 0 {
			t.Fatal("abs diff of identical strings nonzero")
		}
	}
	if math.Abs(v[len(v)-1]-1) > 1e-9 {
		t.Errorf("cosine of identical strings = %v", v[len(v)-1])
	}
}

func TestTextMatcherLearnsNames(t *testing.T) {
	// Train on company-name pairs from the datagen corruption model and
	// check held-out accuracy.
	task, err := datagen.Generate(datagen.Spec{
		Name: "deeptext", Domain: datagen.VendorDomain(),
		SizeA: 400, SizeB: 400, MatchFraction: 0.5, Typo: 0.3, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	aIdx, err := task.A.KeyIndex()
	if err != nil {
		t.Fatal(err)
	}
	bIdx, err := task.B.KeyIndex()
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]string
	var y []int
	// Positives: gold matches. Negatives: shifted pairings.
	gold := task.Gold.Pairs()
	for _, g := range gold {
		ai, bi := aIdx[g[0]], bIdx[g[1]]
		pairs = append(pairs, [2]string{task.A.Get(ai, "name").AsString(), task.B.Get(bi, "name").AsString()})
		y = append(y, 1)
	}
	for k := 0; k < len(gold); k++ {
		g1, g2 := gold[k], gold[(k+1)%len(gold)]
		ai, bi := aIdx[g1[0]], bIdx[g2[1]]
		pairs = append(pairs, [2]string{task.A.Get(ai, "name").AsString(), task.B.Get(bi, "name").AsString()})
		y = append(y, 0)
	}
	// Split train/test.
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(len(pairs))
	cut := len(perm) * 7 / 10
	var trP, teP [][2]string
	var trY, teY []int
	for i, idx := range perm {
		if i < cut {
			trP = append(trP, pairs[idx])
			trY = append(trY, y[idx])
		} else {
			teP = append(teP, pairs[idx])
			teY = append(teY, y[idx])
		}
	}
	tm := &TextMatcher{Seed: 1}
	if err := tm.Fit(trP, trY); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range teP {
		if tm.Predict(p[0], p[1]) == (teY[i] == 1) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(teP))
	if acc < 0.85 {
		t.Errorf("text matcher accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestTextMatcherUnfitted(t *testing.T) {
	tm := &TextMatcher{}
	if tm.PredictProba("a", "b") != 0 {
		t.Error("unfitted text matcher should return 0")
	}
}
