// Package deepmatch is the reproduction's stand-in for DeepMatcher, the
// deep-learning matcher the paper describes adding to the PyMatcher
// ecosystem ("we used PyTorch ... released it as a new Python package in
// the PyMatcher ecosystem, then extended our guide"). PyTorch is not
// available to a stdlib-only Go module, so this package provides the
// closest equivalent that exercises the same extension point: a
// multi-layer perceptron trained by backpropagation, plus a hashed
// character-n-gram text encoder so the matcher can consume raw textual
// attribute pairs. It plugs into everything else through the ml.Classifier
// interface, demonstrating the ecosystem-extensibility claim.
package deepmatch

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ml"
)

// MLP is a feed-forward network with ReLU hidden layers and a sigmoid
// output, trained with mini-batch SGD on cross-entropy loss. It implements
// ml.Classifier.
type MLP struct {
	// Hidden lists the hidden-layer widths; nil means [16, 8].
	Hidden []int
	// Epochs is the number of training passes; 0 means 200.
	Epochs int
	// LearningRate is the SGD step; 0 means 0.05.
	LearningRate float64
	// L2 is the weight decay; 0 means 1e-4.
	L2 float64
	// Seed drives initialization and shuffling.
	Seed int64

	weights [][][]float64 // [layer][out][in]
	biases  [][]float64   // [layer][out]
	mean    []float64
	std     []float64
}

// Name implements ml.Classifier.
func (m *MLP) Name() string { return "mlp" }

func (m *MLP) hidden() []int {
	if len(m.Hidden) == 0 {
		return []int{16, 8}
	}
	return m.Hidden
}

func (m *MLP) epochs() int {
	if m.Epochs <= 0 {
		return 200
	}
	return m.Epochs
}

func (m *MLP) lr() float64 {
	if m.LearningRate <= 0 {
		return 0.05
	}
	return m.LearningRate
}

func (m *MLP) l2() float64 {
	if m.L2 <= 0 {
		return 1e-4
	}
	return m.L2
}

// Fit implements ml.Classifier.
func (m *MLP) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("deepmatch: mlp: empty training set")
	}
	nf := d.NumFeatures()
	m.standardizeFit(d)

	// Layer sizes: input -> hidden... -> 1.
	sizes := append([]int{nf}, m.hidden()...)
	sizes = append(sizes, 1)
	rng := rand.New(rand.NewSource(m.Seed))
	m.weights = make([][][]float64, len(sizes)-1)
	m.biases = make([][]float64, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2 / float64(in)) // He initialization
		m.weights[l] = make([][]float64, out)
		m.biases[l] = make([]float64, out)
		for o := 0; o < out; o++ {
			m.weights[l][o] = make([]float64, in)
			for i := range m.weights[l][o] {
				m.weights[l][o][i] = rng.NormFloat64() * scale
			}
		}
	}

	order := rng.Perm(d.Len())
	lr := m.lr()
	l2 := m.l2()
	for e := 0; e < m.epochs(); e++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, idx := range order {
			x := m.standardize(d.X[idx])
			acts, pre := m.forward(x)
			p := acts[len(acts)-1][0]
			// Output delta for sigmoid + cross-entropy.
			delta := []float64{p - float64(d.Y[idx])}
			for l := len(m.weights) - 1; l >= 0; l-- {
				input := acts[l]
				nextDelta := make([]float64, len(input))
				for o, w := range m.weights[l] {
					g := delta[o]
					for i := range w {
						nextDelta[i] += w[i] * g
						w[i] -= lr * (g*input[i] + l2*w[i])
					}
					m.biases[l][o] -= lr * g
				}
				if l > 0 {
					// Backprop through the ReLU of layer l-1.
					for i := range nextDelta {
						if pre[l-1][i] <= 0 {
							nextDelta[i] = 0
						}
					}
				}
				delta = nextDelta
			}
		}
	}
	return nil
}

// forward runs the network; acts[0] is the standardized input, acts[last]
// the sigmoid output, pre[l] the pre-activation of hidden layer l.
func (m *MLP) forward(x []float64) (acts [][]float64, pre [][]float64) {
	acts = append(acts, x)
	cur := x
	for l := range m.weights {
		out := make([]float64, len(m.weights[l]))
		for o, w := range m.weights[l] {
			z := m.biases[l][o]
			for i := range w {
				z += w[i] * cur[i]
			}
			out[o] = z
		}
		if l < len(m.weights)-1 {
			pre = append(pre, append([]float64(nil), out...))
			for i := range out {
				if out[i] < 0 {
					out[i] = 0
				}
			}
		} else {
			out[0] = sigmoid(out[0])
		}
		acts = append(acts, out)
		cur = out
	}
	return acts, pre
}

// PredictProba implements ml.Classifier.
func (m *MLP) PredictProba(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	acts, _ := m.forward(m.standardize(x))
	return acts[len(acts)-1][0]
}

func (m *MLP) standardizeFit(d *ml.Dataset) {
	nf := d.NumFeatures()
	m.mean = make([]float64, nf)
	m.std = make([]float64, nf)
	for j := 0; j < nf; j++ {
		var s float64
		for i := range d.X {
			s += d.X[i][j]
		}
		mu := s / float64(d.Len())
		var s2 float64
		for i := range d.X {
			dx := d.X[i][j] - mu
			s2 += dx * dx
		}
		sd := math.Sqrt(s2 / float64(d.Len()))
		if sd < 1e-12 {
			sd = 1
		}
		m.mean[j], m.std[j] = mu, sd
	}
}

func (m *MLP) standardize(x []float64) []float64 {
	z := make([]float64, len(x))
	for j := range x {
		z[j] = (x[j] - m.mean[j]) / m.std[j]
	}
	return z
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
