package deepmatch

import (
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/ml"
	"repro/internal/tokenize"
)

// Encoder embeds a string as an L2-normalized hashed bag of character
// q-grams: the stdlib stand-in for the learned embeddings DeepMatcher
// feeds its networks.
type Encoder struct {
	// Dim is the embedding dimensionality; 0 means 64.
	Dim int
	// Q is the gram size; 0 means 3.
	Q int
}

func (e Encoder) dim() int {
	if e.Dim <= 0 {
		return 64
	}
	return e.Dim
}

// Encode embeds s.
func (e Encoder) Encode(s string) []float64 {
	v := make([]float64, e.dim())
	tok := tokenize.QGram{Q: e.Q, Pad: true}
	for _, g := range tok.Tokenize(strings.ToLower(s)) {
		h := fnv.New32a()
		h.Write([]byte(g))
		hv := h.Sum32()
		idx := int(hv) % len(v)
		if idx < 0 {
			idx += len(v)
		}
		// Signed hashing halves collision bias.
		if hv&0x80000000 != 0 {
			v[idx]--
		} else {
			v[idx]++
		}
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// PairVector builds the network input for a string pair: the elementwise
// absolute difference and elementwise product of the two embeddings plus
// their cosine — the standard "comparison" composition DeepMatcher-style
// architectures use.
func (e Encoder) PairVector(a, b string) []float64 {
	va, vb := e.Encode(a), e.Encode(b)
	out := make([]float64, 0, 2*len(va)+1)
	var cos float64
	for i := range va {
		out = append(out, math.Abs(va[i]-vb[i]))
		cos += va[i] * vb[i]
	}
	for i := range va {
		out = append(out, va[i]*vb[i])
	}
	out = append(out, cos)
	return out
}

// TextMatcher matches raw string pairs with an MLP over encoder pair
// vectors.
type TextMatcher struct {
	// Encoder embeds strings; the zero value is usable.
	Encoder Encoder
	// Net is the underlying network; nil gets a default at Fit time.
	Net *MLP
	// Seed drives training when Net is nil.
	Seed int64
}

// Fit trains on string pairs with binary labels.
func (t *TextMatcher) Fit(pairs [][2]string, y []int) error {
	x := make([][]float64, len(pairs))
	for i, p := range pairs {
		x[i] = t.Encoder.PairVector(p[0], p[1])
	}
	ds, err := ml.NewDataset(x, y, nil)
	if err != nil {
		return err
	}
	if t.Net == nil {
		t.Net = &MLP{Seed: t.Seed, Epochs: 120}
	}
	return t.Net.Fit(ds)
}

// PredictProba scores a string pair.
func (t *TextMatcher) PredictProba(a, b string) float64 {
	if t.Net == nil {
		return 0
	}
	return t.Net.PredictProba(t.Encoder.PairVector(a, b))
}

// Predict thresholds PredictProba at 0.5.
func (t *TextMatcher) Predict(a, b string) bool { return t.PredictProba(a, b) >= 0.5 }
