package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/feature"
	"repro/internal/intern"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/sim"
)

// slot is one corpus record's resident state. Slots are append-only
// between compactions: Update tombstones the old slot and appends a fresh
// one, so every posting list stays sorted by construction. Once a slot is
// visible in a published snapshot it is immutable — liveness lives in the
// snapshot's tombSet, not here.
type slot struct {
	rec  Record
	toks []uint32 // sorted duplicate-free blocking token IDs
	// fsets caches the record's per-feature interned sets
	// (feature.Set.RecordSets, corpus side); nil until a matcher is set.
	fsets [][]uint32
}

// Corpus is a long-lived, incrementally maintained match target. All
// methods are safe for concurrent use. Reads (MatchOne, CandidateIDs,
// Stats, Len) are coordination-free: they load the current snapshot with
// one atomic pointer load and never take a lock, so queries proceed at
// full speed while — and regardless of how long — a writer is working.
// Mutations (Add, Update, Delete, Compact, SetMatcher) serialize on a
// writer-only mutex, apply copy-on-write deltas against the current state,
// and publish the successor snapshot atomically.
type Corpus struct {
	cfg  corpusConfig
	snap atomic.Pointer[snapshot]

	// Writer-side state; mu is never taken by the read path.
	mu    sync.Mutex
	dict  *intern.SnapDict
	slots []slot
	byID  map[string]uint32 // live records only
	posts []atomic.Pointer[postings]
	tombs *tombSet
	dead  int    // tombstoned slots awaiting compaction
	epoch uint64 // bumps on every mutation
	comps uint64 // compaction passes run

	fs   *feature.Set
	clf  ml.Classifier
	flat *ml.FlatForest
}

// NewCorpus returns an empty corpus.
func NewCorpus(opts ...CorpusOption) *Corpus {
	c := &Corpus{
		cfg:  applyCorpusOptions(opts),
		dict: intern.NewSnapDict(),
		byID: make(map[string]uint32),
	}
	c.publishLocked()
	return c
}

// publishLocked builds the successor snapshot from the writer state and
// publishes it. Caller holds mu (or exclusively owns c, as in NewCorpus).
// Everything the snapshot references was written before this store, and
// readers start from the atomic load of c.snap, so the store orders the
// snapshot's contents before any reader that observes it.
func (c *Corpus) publishLocked() {
	c.ensurePosts(c.dict.Len())
	c.snap.Store(&snapshot{
		view:    c.dict.View(),
		slots:   c.slots,
		tombs:   c.tombs,
		posts:   c.posts,
		records: len(c.byID),
		dead:    c.dead,
		epoch:   c.epoch,
		comps:   c.comps,
		fs:      c.fs,
		clf:     c.clf,
		flat:    c.flat,
	})
}

// ensurePosts grows the postings entries array to cover n token IDs. The
// old backing stays valid for already-published snapshots: entries there
// stop receiving updates, which at worst hides slots appended after those
// snapshots — slots their readers filter out anyway.
func (c *Corpus) ensurePosts(n int) {
	if n <= len(c.posts) {
		return
	}
	if n <= cap(c.posts) {
		c.posts = c.posts[:n]
		return
	}
	ncap := 2 * cap(c.posts)
	if ncap < n {
		ncap = n
	}
	if ncap < 64 {
		ncap = 64
	}
	np := make([]atomic.Pointer[postings], ncap)
	for i := range c.posts {
		np[i].Store(c.posts[i].Load())
	}
	c.posts = np[:n]
}

// Stats is a point-in-time snapshot of corpus state.
type Stats struct {
	Records     int    `json:"records"`
	Tombstones  int    `json:"tombstones"`
	Epoch       uint64 `json:"epoch"`
	Compactions uint64 `json:"compactions"`
}

// Stats returns the current counters. Lock-free.
func (c *Corpus) Stats() Stats {
	sn := c.snap.Load()
	return Stats{
		Records:     sn.records,
		Tombstones:  sn.dead,
		Epoch:       sn.epoch,
		Compactions: sn.comps,
	}
}

// Len returns the number of live records. Lock-free.
func (c *Corpus) Len() int { return c.snap.Load().records }

// Add inserts a new record; it is an error if the ID is already live.
func (c *Corpus) Add(rec Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byID[rec.ID]; ok {
		return fmt.Errorf("serve: record %q already in corpus", rec.ID)
	}
	// The chan-op reachability below is the test-only gate tokenizer
	// (pool_test.go) showing up on the Tokenize dispatch edge; every
	// production tokenizer is pure computation.
	c.ingest(rec, "add") //emlint:allow locksafety -- only the test gate tokenizer does channel ops under Tokenize; writers already serialize on mu
	c.publishLocked()
	return nil
}

// Update replaces the record with rec.ID: the old slot is tombstoned and
// a fresh slot appended (so postings stay sorted by construction). It is
// an error if the ID is not live.
func (c *Corpus) Update(rec Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	si, ok := c.byID[rec.ID]
	if !ok {
		return fmt.Errorf("serve: record %q not in corpus", rec.ID)
	}
	c.epoch++
	c.tombs = c.tombs.withDead(si)
	c.dead++
	c.ingest(rec, "update") //emlint:allow locksafety -- only the test gate tokenizer does channel ops under Tokenize; writers already serialize on mu
	c.maybeCompact()
	c.publishLocked()
	return nil
}

// Delete tombstones the record with the given ID; it is an error if the
// ID is not live. The slot is excised from the postings lazily, at the
// next compaction pass.
func (c *Corpus) Delete(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	si, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("serve: record %q not in corpus", id)
	}
	c.epoch++
	c.tombs = c.tombs.withDead(si)
	c.dead++
	delete(c.byID, id)
	rec := obs.Or(c.cfg.metrics)
	rec.Count(obs.ServeIngestTotal, 1, obs.L("op", "delete"))
	c.gauges(rec)
	c.maybeCompact()
	c.publishLocked()
	return nil
}

// ingest appends rec as a fresh slot and swaps updated postings in. Caller
// holds mu, has adjusted byID/tombstones as needed, and publishes after.
func (c *Corpus) ingest(rec Record, op string) {
	c.epoch++
	si := uint32(len(c.slots))
	s := slot{
		rec:  rec,
		toks: c.dict.SortedSet(blockTokens(c.cfg.tok, rec.Attrs)),
	}
	if c.fs != nil {
		s.fsets = c.fs.RecordSets(rec.Attrs, true, c.dict.SortedSet)
	}
	c.slots = append(c.slots, s)
	c.byID[rec.ID] = si
	c.ensurePosts(c.dict.Len())
	for _, t := range s.toks {
		// Copy-on-write: the entry gets a fresh *postings; the old value
		// stays frozen for any snapshot still holding it. si exceeds every
		// slot already present (slots are append-only), so the tail stays
		// sorted without a search.
		c.posts[t].Store(c.posts[t].Load().with(si, c.cfg.bitmapMin))
	}
	mrec := obs.Or(c.cfg.metrics)
	mrec.Count(obs.ServeIngestTotal, 1, obs.L("op", op))
	c.gauges(mrec)
}

// gauges refreshes the corpus-size gauges. Caller holds mu.
func (c *Corpus) gauges(rec obs.Recorder) {
	rec.SetGauge(obs.ServeCorpusRecords, float64(len(c.byID)))
	rec.SetGauge(obs.ServeCorpusTombstones, float64(c.dead))
}

// maybeCompact runs a compaction pass when tombstones have crossed the
// configured bar. Caller holds mu.
func (c *Corpus) maybeCompact() {
	if c.cfg.compactAfter > 0 && c.dead >= c.cfg.compactAfter {
		c.compactLocked()
	}
}

// Compact rewrites the slot space without the tombstoned slots and
// rebuilds the postings over the renumbered live slots (in ascending old
// slot order, so relative record order — and every candidate set — is
// unchanged). Safe to call at any time; also invoked automatically once
// WithCompactAfter tombstones accumulate.
func (c *Corpus) Compact() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compactLocked()
	c.publishLocked()
}

// compactLocked is the compaction body: it builds a fresh slot array,
// byID, and postings generation over the live slots and leaves the old
// generation untouched for snapshots still reading it. Caller holds mu
// and publishes after.
func (c *Corpus) compactLocked() {
	if c.dead == 0 {
		return
	}
	live := make([]slot, 0, len(c.byID))
	for i := range c.slots {
		if !c.tombs.dead(uint32(i)) {
			live = append(live, c.slots[i])
		}
	}
	c.slots = live
	c.byID = make(map[string]uint32, len(live))
	lists := make([][]uint32, c.dict.Len())
	for i := range c.slots {
		si := uint32(i)
		c.byID[c.slots[i].rec.ID] = si
		for _, t := range c.slots[i].toks {
			lists[t] = append(lists[t], si)
		}
	}
	c.posts = make([]atomic.Pointer[postings], len(lists))
	for t, list := range lists {
		if list == nil {
			continue
		}
		p := &postings{slots: list}
		if c.cfg.bitmapMin > 0 && len(list) >= c.cfg.bitmapMin {
			p = &postings{bits: bitvec.FromSorted(list)}
		}
		c.posts[t].Store(p)
	}
	c.tombs = nil
	c.dead = 0
	c.comps++
	rec := obs.Or(c.cfg.metrics)
	rec.Count(obs.ServeCompactionsTotal, 1)
	c.gauges(rec)
}

// SetMatcher installs the resident scorer: MatchOne extracts fs's feature
// vector for each candidate pair and scores it with clf. When clf is a
// fitted *ml.RandomForest it is additionally compiled into an
// ml.FlatForest and candidates are scored through the flat batch kernel —
// bit-identical to clf.PredictProba, just without the pointer chasing.
// Every resident record's per-feature sets are (re)computed and cached so
// queries only featurize their own side. Pass (nil, nil) to revert to the
// blocking-token Jaccard fallback.
func (c *Corpus) SetMatcher(fs *feature.Set, clf ml.Classifier) error {
	if (fs == nil) != (clf == nil) {
		return fmt.Errorf("serve: feature set and classifier must be set together")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fs, c.clf = fs, clf
	c.flat = nil
	if rf, ok := clf.(*ml.RandomForest); ok {
		if ff, err := ml.NewFlatForest(rf); err == nil {
			c.flat = ff
		}
	}
	// Published slots are immutable, so the fsets recompute clones the
	// array instead of patching elements in place.
	fresh := make([]slot, len(c.slots))
	copy(fresh, c.slots)
	for i := range fresh {
		if fs == nil {
			fresh[i].fsets = nil
			continue
		}
		fresh[i].fsets = fs.RecordSets(fresh[i].rec.Attrs, true, c.dict.SortedSet) //emlint:allow locksafety -- only the test gate tokenizer does channel ops under Tokenize; writers already serialize on mu
	}
	c.slots = fresh
	c.publishLocked()
	return nil
}

// CandidateIDs returns the record IDs blocking surfaces for the query, in
// ascending ID order — the unit the batch-rebuild equivalence oracle
// compares. Lock-free.
func (c *Corpus) CandidateIDs(q Record) []string {
	sn := c.snap.Load()
	sc := matchPool.Get().(*matchScratch)
	defer matchPool.Put(sc)
	qtoks := sn.queryTokens(blockTokens(c.cfg.tok, q.Attrs), sc)
	slots := sn.candidateSlots(qtoks, c.cfg.minOverlap, sc)
	out := make([]string, len(slots))
	for i, si := range slots {
		out[i] = sn.slots[si].rec.ID
	}
	sort.Strings(out)
	return out
}

// MatchOne runs the serving query path for one record: candidate
// generation over the resident postings, cached feature extraction, and
// scoring through the resident matcher (or, with no matcher installed,
// Jaccard over the blocking token sets). Results are sorted by descending
// score, ties broken by ascending record ID, truncated to WithLimit.
//
// The whole path is lock-free: it loads the published snapshot once and
// never coordinates with writers, so a stalled or busy writer cannot delay
// a query (and vice versa). Per-query working memory comes from a
// sync.Pool; with a matcher installed, candidates are featurized into one
// flat matrix and scored through the FlatForest batch kernel.
func (c *Corpus) MatchOne(ctx context.Context, q Record) ([]ScoredPair, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	rec := obs.Or(c.cfg.metrics)
	defer obs.StartTimer(rec, obs.ServeMatchSeconds)()
	sn := c.snap.Load()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := matchPool.Get().(*matchScratch)
	defer matchPool.Put(sc)

	stopCand := obs.StartTimer(rec, obs.ServeStageSeconds, obs.L("stage", "candidates"))
	qtoks := sn.queryTokens(blockTokens(c.cfg.tok, q.Attrs), sc)
	cands := sn.candidateSlots(qtoks, c.cfg.minOverlap, sc)
	stopCand()
	if len(cands) == 0 {
		return []ScoredPair{}, nil
	}

	// Featurize the query side once; candidates reuse their cached sets.
	stopFeat := obs.StartTimer(rec, obs.ServeStageSeconds, obs.L("stage", "features"))
	var qsets [][]uint32
	var qset []uint32
	if sn.fs != nil {
		qsets = sn.fs.RecordSets(q.Attrs, false, sn.view.SortedSetEphemeral)
	} else {
		qset = sn.view.SortedSetEphemeral(blockTokens(c.cfg.tok, q.Attrs))
	}
	stopFeat()

	stopScore := obs.StartTimer(rec, obs.ServeStageSeconds, obs.L("stage", "score"))
	defer stopScore()
	scores, err := sn.scoreCandidates(ctx, q, cands, qsets, qset, sc)
	if err != nil {
		return nil, err
	}
	out := make([]ScoredPair, 0, len(cands))
	for i, si := range cands {
		out = append(out, ScoredPair{QueryID: q.ID, ID: sn.slots[si].rec.ID, Score: scores[i]})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	if c.cfg.limit > 0 && len(out) > c.cfg.limit {
		out = out[:c.cfg.limit]
	}
	return out, nil
}

// scoreCandidates fills sc.scores for cands: matcher-equipped snapshots
// build the candidate feature matrix in pooled scratch and run the flat
// batch kernel (falling back to per-candidate Classifier.PredictProba when
// no flat compilation exists); matcher-less snapshots score Jaccard over
// the blocking token sets. The returned slice lives in sc.
func (sn *snapshot) scoreCandidates(ctx context.Context, q Record, cands []uint32, qsets [][]uint32, qset []uint32, sc *matchScratch) ([]float64, error) {
	if cap(sc.scores) < len(cands) {
		sc.scores = make([]float64, len(cands))
	}
	scores := sc.scores[:len(cands)]
	if sn.fs == nil {
		for i, si := range cands {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			scores[i] = sim.JaccardU32(qset, sn.slots[si].toks)
		}
		return scores, nil
	}
	nf := len(sn.fs.Features)
	if cap(sc.xbuf) < len(cands)*nf {
		sc.xbuf = make([]float64, len(cands)*nf)
	}
	xbuf := sc.xbuf[:len(cands)*nf]
	if cap(sc.xrows) < len(cands) {
		sc.xrows = make([][]float64, 0, len(cands))
	}
	xrows := sc.xrows[:0]
	for i, si := range cands {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := xbuf[i*nf : (i+1)*nf : (i+1)*nf]
		sn.fs.VectorWithInto(q.Attrs, sn.slots[si].rec.Attrs, qsets, sn.slots[si].fsets, row)
		xrows = append(xrows, row)
	}
	sc.xrows = xrows
	if sn.flat != nil {
		sn.flat.PredictProbaBatch(xrows, scores)
		return scores, nil
	}
	for i := range xrows {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		scores[i] = sn.clf.PredictProba(xrows[i])
	}
	return scores, nil
}

// Rebuilt returns a from-scratch batch build of the live records (in
// resident slot order) under the same configuration — the equivalence
// oracle: its candidates must be bit-identical to the incrementally
// maintained corpus's for every query.
func (c *Corpus) Rebuilt() *Corpus {
	sn := c.snap.Load()
	fresh := &Corpus{
		cfg:  c.cfg,
		dict: intern.NewSnapDict(),
		byID: make(map[string]uint32),
	}
	fresh.cfg.metrics = nil // the oracle build is not traffic
	for i := range sn.slots {
		if sn.tombs.dead(uint32(i)) {
			continue
		}
		fresh.ingest(sn.slots[i].rec, "add")
	}
	fresh.publishLocked()
	return fresh
}
