package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/feature"
	"repro/internal/intern"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/sim"
)

// slot is one corpus record's resident state. Slots are append-only
// between compactions: Update tombstones the old slot and appends a fresh
// one, so every posting list stays sorted by construction.
type slot struct {
	rec  Record
	toks []uint32 // sorted duplicate-free blocking token IDs
	// fsets caches the record's per-feature interned sets
	// (feature.Set.RecordSets, corpus side); nil until a matcher is set.
	fsets [][]uint32
	// deadEpoch is the mutation epoch that tombstoned this slot; 0 = live.
	deadEpoch uint64
}

// postings is one token's slot list: exactly one of slots and bits is
// non-nil. Array postings flip to bitmaps once they reach the configured
// threshold; both enumerate slots in ascending order.
type postings struct {
	slots []uint32
	bits  *bitvec.Set
}

// Corpus is a long-lived, incrementally maintained match target. All
// methods are safe for concurrent use: mutations take the write lock,
// MatchOne and the other readers run under the read lock (queries proceed
// concurrently with each other, serialized against ingest).
type Corpus struct {
	mu  sync.RWMutex
	cfg corpusConfig

	dict  *intern.Dict
	slots []slot
	byID  map[string]uint32 // live records only
	posts map[uint32]*postings
	dead  int    // tombstoned slots awaiting compaction
	epoch uint64 // bumps on every mutation
	comps uint64 // compaction passes run

	fs  *feature.Set
	clf ml.Classifier
}

// NewCorpus returns an empty corpus.
func NewCorpus(opts ...CorpusOption) *Corpus {
	return &Corpus{
		cfg:   applyCorpusOptions(opts),
		dict:  intern.NewDict(),
		byID:  make(map[string]uint32),
		posts: make(map[uint32]*postings),
	}
}

// Stats is a point-in-time snapshot of corpus state.
type Stats struct {
	Records     int    `json:"records"`
	Tombstones  int    `json:"tombstones"`
	Epoch       uint64 `json:"epoch"`
	Compactions uint64 `json:"compactions"`
}

// Stats returns the current counters.
func (c *Corpus) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Records:     len(c.byID),
		Tombstones:  c.dead,
		Epoch:       c.epoch,
		Compactions: c.comps,
	}
}

// Len returns the number of live records.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}

// Add inserts a new record; it is an error if the ID is already live.
func (c *Corpus) Add(rec Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byID[rec.ID]; ok {
		return fmt.Errorf("serve: record %q already in corpus", rec.ID)
	}
	c.ingest(rec, "add")
	return nil
}

// Update replaces the record with rec.ID: the old slot is tombstoned and
// a fresh slot appended (so postings stay sorted by construction). It is
// an error if the ID is not live.
func (c *Corpus) Update(rec Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	si, ok := c.byID[rec.ID]
	if !ok {
		return fmt.Errorf("serve: record %q not in corpus", rec.ID)
	}
	c.epoch++
	c.slots[si].deadEpoch = c.epoch
	c.dead++
	c.ingest(rec, "update")
	c.maybeCompact()
	return nil
}

// Delete tombstones the record with the given ID; it is an error if the
// ID is not live. The slot is excised from the postings lazily, at the
// next compaction pass.
func (c *Corpus) Delete(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	si, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("serve: record %q not in corpus", id)
	}
	c.epoch++
	c.slots[si].deadEpoch = c.epoch
	c.dead++
	delete(c.byID, id)
	rec := obs.Or(c.cfg.metrics)
	rec.Count(obs.ServeIngestTotal, 1, obs.L("op", "delete"))
	c.gauges(rec)
	c.maybeCompact()
	return nil
}

// ingest appends rec as a fresh slot and patches the postings in place.
// Caller holds the write lock and has bumped byID/tombstones as needed.
func (c *Corpus) ingest(rec Record, op string) {
	c.epoch++
	si := uint32(len(c.slots))
	s := slot{
		rec:  rec,
		toks: c.dict.SortedSet(blockTokens(c.cfg.tok, rec.Attrs)),
	}
	if c.fs != nil {
		s.fsets = c.fs.RecordSets(rec.Attrs, true, c.dict.SortedSet)
	}
	c.slots = append(c.slots, s)
	c.byID[rec.ID] = si
	for _, t := range s.toks {
		p := c.posts[t]
		if p == nil {
			p = &postings{}
			c.posts[t] = p
		}
		if p.bits != nil {
			p.bits.Add(si)
			continue
		}
		// si exceeds every slot already present (slots are append-only),
		// so the array stays sorted without a search.
		p.slots = append(p.slots, si)
		if c.cfg.bitmapMin > 0 && len(p.slots) >= c.cfg.bitmapMin {
			p.bits = bitvec.FromSorted(p.slots)
			p.slots = nil
		}
	}
	mrec := obs.Or(c.cfg.metrics)
	mrec.Count(obs.ServeIngestTotal, 1, obs.L("op", op))
	c.gauges(mrec)
}

// gauges refreshes the corpus-size gauges. Caller holds a lock.
func (c *Corpus) gauges(rec obs.Recorder) {
	rec.SetGauge(obs.ServeCorpusRecords, float64(len(c.byID)))
	rec.SetGauge(obs.ServeCorpusTombstones, float64(c.dead))
}

// maybeCompact runs a compaction pass when tombstones have crossed the
// configured bar. Caller holds the write lock.
func (c *Corpus) maybeCompact() {
	if c.cfg.compactAfter > 0 && c.dead >= c.cfg.compactAfter {
		c.compactLocked()
	}
}

// Compact rewrites the slot space without the tombstoned slots and
// rebuilds the postings over the renumbered live slots (in ascending old
// slot order, so relative record order — and every candidate set — is
// unchanged). Safe to call at any time; also invoked automatically once
// WithCompactAfter tombstones accumulate.
func (c *Corpus) Compact() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compactLocked()
}

// compactLocked is the compaction body. Caller holds the write lock.
func (c *Corpus) compactLocked() {
	if c.dead == 0 {
		return
	}
	live := make([]slot, 0, len(c.byID))
	for _, s := range c.slots {
		if s.deadEpoch == 0 {
			live = append(live, s)
		}
	}
	c.slots = live
	c.byID = make(map[string]uint32, len(live))
	c.posts = make(map[uint32]*postings)
	for i := range c.slots {
		si := uint32(i)
		c.byID[c.slots[i].rec.ID] = si
		for _, t := range c.slots[i].toks {
			p := c.posts[t]
			if p == nil {
				p = &postings{}
				c.posts[t] = p
			}
			p.slots = append(p.slots, si)
		}
	}
	if c.cfg.bitmapMin > 0 {
		for _, p := range c.posts {
			if len(p.slots) >= c.cfg.bitmapMin {
				p.bits = bitvec.FromSorted(p.slots)
				p.slots = nil
			}
		}
	}
	c.dead = 0
	c.comps++
	rec := obs.Or(c.cfg.metrics)
	rec.Count(obs.ServeCompactionsTotal, 1)
	c.gauges(rec)
}

// SetMatcher installs the resident scorer: MatchOne extracts fs's feature
// vector for each candidate pair and scores it with clf.PredictProba.
// Every resident record's per-feature sets are (re)computed and cached so
// queries only featurize their own side. Pass (nil, nil) to revert to the
// blocking-token Jaccard fallback.
func (c *Corpus) SetMatcher(fs *feature.Set, clf ml.Classifier) error {
	if (fs == nil) != (clf == nil) {
		return fmt.Errorf("serve: feature set and classifier must be set together")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fs, c.clf = fs, clf
	for i := range c.slots {
		if fs == nil {
			c.slots[i].fsets = nil
			continue
		}
		c.slots[i].fsets = fs.RecordSets(c.slots[i].rec.Attrs, true, c.dict.SortedSet)
	}
	return nil
}

// candidateSlots returns the live slots sharing at least minOverlap
// distinct blocking tokens with the query token set, in ascending slot
// order. Caller holds at least the read lock.
func (c *Corpus) candidateSlots(qtoks []uint32) []uint32 {
	counts := make(map[uint32]int)
	hi := uint32(len(c.slots))
	for _, t := range qtoks {
		p := c.posts[t]
		if p == nil {
			continue
		}
		if p.bits != nil {
			p.bits.ForEachIn(0, hi, func(si uint32) bool {
				counts[si]++
				return true
			})
			continue
		}
		for _, si := range p.slots {
			counts[si]++
		}
	}
	var out []uint32
	for si, n := range counts {
		if n >= c.cfg.minOverlap && c.slots[si].deadEpoch == 0 {
			out = append(out, si)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// queryTokens maps the query's blocking tokens to corpus IDs without
// mutating the dictionary (unknown tokens have no postings and are
// dropped). Caller holds at least the read lock.
func (c *Corpus) queryTokens(attrs map[string]string) []uint32 {
	toks := blockTokens(c.cfg.tok, attrs)
	ids := make([]uint32, 0, len(toks))
	for _, t := range toks {
		if id, ok := c.dict.Lookup(t); ok {
			ids = append(ids, id)
		}
	}
	return intern.SortedDedup(ids)
}

// CandidateIDs returns the record IDs blocking surfaces for the query, in
// ascending ID order — the unit the batch-rebuild equivalence oracle
// compares.
func (c *Corpus) CandidateIDs(q Record) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slots := c.candidateSlots(c.queryTokens(q.Attrs))
	out := make([]string, len(slots))
	for i, si := range slots {
		out[i] = c.slots[si].rec.ID
	}
	sort.Strings(out)
	return out
}

// MatchOne runs the serving query path for one record: candidate
// generation over the resident postings, cached feature extraction, and
// scoring through the resident matcher (or, with no matcher installed,
// Jaccard over the blocking token sets). Results are sorted by descending
// score, ties broken by ascending record ID, truncated to WithLimit.
func (c *Corpus) MatchOne(ctx context.Context, q Record) ([]ScoredPair, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	rec := obs.Or(c.cfg.metrics)
	defer obs.StartTimer(rec, obs.ServeMatchSeconds)()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	stopCand := obs.StartTimer(rec, obs.ServeStageSeconds, obs.L("stage", "candidates"))
	cands := c.candidateSlots(c.queryTokens(q.Attrs))
	stopCand()
	if len(cands) == 0 {
		return []ScoredPair{}, nil
	}

	// Featurize the query side once; candidates reuse their cached sets.
	stopFeat := obs.StartTimer(rec, obs.ServeStageSeconds, obs.L("stage", "features"))
	var qsets [][]uint32
	var qset []uint32
	if c.fs != nil {
		qsets = c.fs.RecordSets(q.Attrs, false, c.dict.SortedSetEphemeral)
	} else {
		qset = c.dict.SortedSetEphemeral(blockTokens(c.cfg.tok, q.Attrs))
	}
	stopFeat()

	stopScore := obs.StartTimer(rec, obs.ServeStageSeconds, obs.L("stage", "score"))
	defer stopScore()
	out := make([]ScoredPair, 0, len(cands))
	for i, si := range cands {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		s := &c.slots[si]
		var score float64
		if c.fs != nil {
			x := c.fs.VectorWith(q.Attrs, s.rec.Attrs, qsets, s.fsets)
			score = c.clf.PredictProba(x)
		} else {
			score = sim.JaccardU32(qset, s.toks)
		}
		out = append(out, ScoredPair{QueryID: q.ID, ID: s.rec.ID, Score: score})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	if c.cfg.limit > 0 && len(out) > c.cfg.limit {
		out = out[:c.cfg.limit]
	}
	return out, nil
}

// Rebuilt returns a from-scratch batch build of the live records (in
// resident slot order) under the same configuration — the equivalence
// oracle: its candidates must be bit-identical to the incrementally
// maintained corpus's for every query.
func (c *Corpus) Rebuilt() *Corpus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fresh := &Corpus{
		cfg:   c.cfg,
		dict:  intern.NewDict(),
		byID:  make(map[string]uint32),
		posts: make(map[uint32]*postings),
	}
	fresh.cfg.metrics = nil // the oracle build is not traffic
	for _, s := range c.slots {
		if s.deadEpoch != 0 {
			continue
		}
		fresh.ingest(s.rec, "add")
	}
	return fresh
}
