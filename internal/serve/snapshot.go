package serve

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/feature"
	"repro/internal/intern"
	"repro/internal/ml"
)

// snapshot is the immutable read-side world of a Corpus, published through
// Corpus.snap (an atomic.Pointer). A reader loads it once and then runs the
// whole query — candidate generation, featurization, scoring — with zero
// locks; the writer builds the next snapshot with copy-on-write deltas and
// publishes it in one atomic store (DESIGN.md §13).
//
// What immutability means here, field by field:
//
//   - slots: append-only shared backing. The writer appends at indices >=
//     every published length, so elements [0, len(snapshot.slots)) never
//     change after publication. SetMatcher and Compact, which would mutate
//     elements in place, clone the whole array instead.
//   - tombs: a persistent bitmap — every mutation produces a new *tombSet
//     sharing unchanged blocks.
//   - posts: the entries array is shared with the writer, which keeps
//     updating token postings after this snapshot is published. That is
//     safe because postings only ever gain slots >= len(snapshot.slots):
//     readers bound every enumeration by hi = len(snapshot.slots), so any
//     post-publication growth is invisible. Each entry is loaded atomically
//     and each loaded *postings value is internally immutable.
//   - view: resolves exactly the tokens interned before publication
//     (intern.View contract), so every resolvable token ID indexes within
//     posts and every posting it reaches predates the snapshot.
type snapshot struct {
	view  intern.View
	slots []slot
	tombs *tombSet
	posts []atomic.Pointer[postings]

	records int
	dead    int
	epoch   uint64
	comps   uint64

	fs   *feature.Set
	clf  ml.Classifier
	flat *ml.FlatForest
}

// tombSet is a persistent (copy-on-write) tombstone bitmap over slot IDs.
// A set bit marks a dead slot; absent blocks mean all-live, so the common
// append-only workload pays nothing. withDead clones only the spine and the
// touched 4096-slot block, keeping per-tombstone cost O(1)-ish instead of
// the O(slots) a flat clone would cost. A nil *tombSet is the empty set.
type tombSet struct {
	blocks [][]uint64
}

const (
	tombBlockBits  = 12 // 4096 slots per block
	tombBlockWords = 1 << (tombBlockBits - 6)
)

// dead reports whether slot si is tombstoned.
//
//emlint:zeroalloc
//emlint:hotpath
func (t *tombSet) dead(si uint32) bool {
	if t == nil {
		return false
	}
	b := int(si >> tombBlockBits)
	if b >= len(t.blocks) || t.blocks[b] == nil {
		return false
	}
	return t.blocks[b][(si>>6)&(tombBlockWords-1)]&(1<<(si&63)) != 0
}

// withDead returns a new set with si marked dead, sharing every untouched
// block with the receiver.
func (t *tombSet) withDead(si uint32) *tombSet {
	b := int(si >> tombBlockBits)
	nt := &tombSet{}
	if t != nil {
		nt.blocks = slices.Clone(t.blocks)
	}
	for len(nt.blocks) <= b {
		nt.blocks = append(nt.blocks, nil)
	}
	var blk []uint64
	if nt.blocks[b] == nil {
		blk = make([]uint64, tombBlockWords)
	} else {
		blk = slices.Clone(nt.blocks[b])
	}
	blk[(si>>6)&(tombBlockWords-1)] |= 1 << (si & 63)
	nt.blocks[b] = blk
	return nt
}

// postings is one token's slot list: an optional frozen bitmap holding the
// cold prefix plus a sorted array tail for recent appends. Both parts
// enumerate slots ascending and the bitmap's members all precede the
// tail's. The struct is immutable once stored into a posts entry: the
// writer publishes changes by building a new *postings (the tail may share
// backing with the predecessor — appends only write indices beyond every
// published length) and atomically swapping the entry pointer.
type postings struct {
	bits  *bitvec.Set
	slots []uint32
}

// with returns the postings extended by slot si (which must exceed every
// member — slots are append-only). When the tail has grown past bitmapMin
// and past a fixed fraction of the frozen bitmap, the whole set is merged
// into a fresh bitmap: the old bitmap is never mutated (readers hold it),
// and the geometric trigger keeps the amortized merge cost per append
// constant.
func (p *postings) with(si uint32, bitmapMin int) *postings {
	np := &postings{}
	if p != nil {
		np.bits = p.bits
		np.slots = p.slots
	}
	np.slots = append(np.slots, si)
	if bitmapMin > 0 && len(np.slots) >= bitmapMin {
		if np.bits == nil || len(np.slots)*8 >= np.bits.Len() {
			return np.merged()
		}
	}
	return np
}

// merged folds bitmap and tail into one fresh bitmap.
func (p *postings) merged() *postings {
	n := len(p.slots)
	if p.bits != nil {
		n += p.bits.Len()
	}
	all := make([]uint32, 0, n)
	if p.bits != nil {
		all = p.bits.AppendTo(all)
	}
	all = append(all, p.slots...)
	return &postings{bits: bitvec.FromSorted(all)}
}

// matchScratch is the per-query working state of the read path, recycled
// through matchPool so steady-state queries allocate only their result
// slice. counts is a dense per-slot overlap counter; touched remembers
// which entries to zero afterwards, so the pool hands back clean counters
// without an O(slots) wipe per query.
type matchScratch struct {
	counts  []int32
	touched []uint32
	cands   []uint32
	qids    []uint32
	xbuf    []float64
	xrows   [][]float64
	scores  []float64
}

var matchPool = sync.Pool{New: func() any { return &matchScratch{} }}

// prepare sizes the overlap counters for n slots and resets the per-query
// append targets. Growth lives here, outside the annotated kernel.
func (sc *matchScratch) prepare(n int) {
	if cap(sc.counts) < n {
		sc.counts = make([]int32, n)
	}
	sc.counts = sc.counts[:n]
	sc.touched = sc.touched[:0]
	sc.cands = sc.cands[:0]
}

// bump counts one posting hit, remembering first touches for cleanup.
//
//emlint:zeroalloc
//emlint:hotpath
func (sc *matchScratch) bump(si uint32) {
	if sc.counts[si] == 0 {
		sc.touched = append(sc.touched, si)
	}
	sc.counts[si]++
}

// candidateSlots returns the live slots sharing at least minOverlap
// distinct blocking tokens with the query token set, ascending — the
// lock-free rewrite of the old map-and-sort kernel. qtoks must come from
// sn.view (every ID resolvable and < len(sn.posts)); enumeration is
// bounded by the snapshot's slot horizon so concurrent writer appends are
// invisible. Steady state allocates nothing: counts are dense per-slot
// counters recycled through the pool, wiped via the touched list instead
// of an O(slots) clear.
//
//emlint:zeroalloc
func (sn *snapshot) candidateSlots(qtoks []uint32, minOverlap int, sc *matchScratch) []uint32 {
	hi := uint32(len(sn.slots))
	sc.prepare(len(sn.slots))
	for _, t := range qtoks {
		if int(t) >= len(sn.posts) {
			continue // interned for features only; no postings entry
		}
		p := sn.posts[t].Load()
		if p == nil {
			continue
		}
		if p.bits != nil {
			p.bits.ForEachIn(0, hi, func(si uint32) bool {
				sc.bump(si)
				return true
			})
		}
		for _, si := range p.slots {
			if si >= hi {
				break // appended after this snapshot was published
			}
			sc.bump(si)
		}
	}
	cands := sc.cands
	for _, si := range sc.touched {
		if sc.counts[si] >= int32(minOverlap) && !sn.tombs.dead(si) {
			cands = append(cands, si)
		}
		sc.counts[si] = 0
	}
	slices.Sort(cands)
	sc.cands = cands
	return cands
}

// queryTokens maps the query's blocking tokens to corpus IDs through the
// snapshot's dictionary view (unknown tokens have no postings and are
// dropped). The returned slice lives in sc.
func (sn *snapshot) queryTokens(toks []string, sc *matchScratch) []uint32 {
	ids := sc.qids[:0]
	for _, t := range toks {
		if id, ok := sn.view.Lookup(t); ok {
			ids = append(ids, id)
		}
	}
	ids = intern.SortedDedup(ids)
	sc.qids = ids
	return ids
}
