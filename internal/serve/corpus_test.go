package serve

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/obs"
)

var words = []string{
	"acme", "widget", "store", "global", "supply", "north", "west",
	"madison", "dane", "county", "labs", "corp", "trading", "south",
	"east", "market", "street", "avenue", "dept", "intl",
}

func randomRecord(id string, rng *rand.Rand) Record {
	phrase := func(n int) string {
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return s
	}
	return Record{ID: id, Attrs: map[string]string{
		"name": phrase(2 + rng.Intn(3)),
		"desc": phrase(5 + rng.Intn(8)),
	}}
}

// mutate applies one random add/update/delete to c, tracking the live ID
// set in ids.
func mutate(t *testing.T, c *Corpus, ids map[string]bool, next *int, rng *rand.Rand) {
	t.Helper()
	liveIDs := make([]string, 0, len(ids))
	for id := range ids {
		liveIDs = append(liveIDs, id)
	}
	// Map order doesn't matter here: the victim is drawn by rng either
	// way, and corpus state depends only on which ID is picked.
	switch op := rng.Intn(3); {
	case op == 0 || len(liveIDs) == 0: // add
		id := fmt.Sprintf("r%d", *next)
		*next++
		if err := c.Add(randomRecord(id, rng)); err != nil {
			t.Fatal(err)
		}
		ids[id] = true
	case op == 1: // update
		id := liveIDs[rng.Intn(len(liveIDs))]
		if err := c.Update(randomRecord(id, rng)); err != nil {
			t.Fatal(err)
		}
	default: // delete
		id := liveIDs[rng.Intn(len(liveIDs))]
		if err := c.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(ids, id)
	}
}

// TestInterleavingsMatchRebuild is the tentpole equivalence oracle:
// after an arbitrary interleaving of adds, updates, and deletes — with
// compaction both forced tiny (firing constantly) and disabled — the
// incrementally maintained indexes must surface candidates bit-identical
// to a from-scratch batch rebuild of the live records, for every probe.
func TestInterleavingsMatchRebuild(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts []CorpusOption
	}{
		{"defaults", nil},
		{"tiny_knobs", []CorpusOption{WithBitmapPostingMin(2), WithCompactAfter(3), WithMinOverlap(2)}},
		{"no_compact", []CorpusOption{WithCompactAfter(-1), WithBitmapPostingMin(-1)}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			prop := func(seed int64, steps uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				c := NewCorpus(cfg.opts...)
				ids := make(map[string]bool)
				next := 0
				for i := 0; i < 20+int(steps); i++ {
					mutate(t, c, ids, &next, rng)
				}
				oracle := c.Rebuilt()
				if oracle.Len() != c.Len() {
					t.Logf("live count: incremental %d, rebuilt %d", c.Len(), oracle.Len())
					return false
				}
				for probe := 0; probe < 12; probe++ {
					q := randomRecord("q", rng)
					got := c.CandidateIDs(q)
					want := oracle.CandidateIDs(q)
					if !reflect.DeepEqual(got, want) {
						t.Logf("probe %d: incremental candidates %v != rebuilt %v", probe, got, want)
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTombstoneCompaction pins the compaction mechanics: tombstones
// accumulate until the configured bar, a pass renumbers the slots, and
// candidates are unchanged across the pass.
func TestTombstoneCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCorpus(WithCompactAfter(4))
	for i := 0; i < 12; i++ {
		if err := c.Add(randomRecord(fmt.Sprintf("r%d", i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	q := randomRecord("q", rng)
	before := c.CandidateIDs(q)
	for i := 0; i < 3; i++ {
		if err := c.Delete(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Tombstones != 3 || st.Compactions != 0 {
		t.Fatalf("below the bar: stats %+v, want 3 tombstones and no compactions", st)
	}
	if err := c.Delete("r3"); err != nil { // 4th tombstone crosses the bar
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Tombstones != 0 || st.Compactions != 1 {
		t.Fatalf("after the bar: stats %+v, want 0 tombstones and 1 compaction", st)
	}
	if got := len(c.slots); got != 8 {
		t.Fatalf("slot space after compaction = %d, want the 8 live slots", got)
	}
	want := make([]string, 0, len(before))
	for _, id := range before {
		if id != "r0" && id != "r1" && id != "r2" && id != "r3" {
			want = append(want, id)
		}
	}
	if got := c.CandidateIDs(q); !reflect.DeepEqual(got, want) {
		t.Fatalf("candidates after compaction %v, want %v", got, want)
	}
	// Explicit Compact with no tombstones is a no-op.
	c.Compact()
	if st := c.Stats(); st.Compactions != 1 {
		t.Fatalf("empty Compact ran a pass: %+v", st)
	}
}

// TestAddUpdateDeleteErrors pins the mutation contract.
func TestAddUpdateDeleteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewCorpus()
	rec := randomRecord("a", rng)
	if err := c.Add(rec); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(rec); err == nil {
		t.Error("duplicate Add succeeded")
	}
	if err := c.Update(randomRecord("missing", rng)); err == nil {
		t.Error("Update of absent ID succeeded")
	}
	if err := c.Delete("missing"); err == nil {
		t.Error("Delete of absent ID succeeded")
	}
	if err := c.Add(Record{}); err == nil {
		t.Error("empty-ID Add succeeded")
	}
	if _, err := c.MatchOne(context.Background(), Record{}); err == nil {
		t.Error("empty-ID MatchOne succeeded")
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	// A deleted ID can be re-added.
	if err := c.Add(rec); err != nil {
		t.Fatalf("re-Add after Delete: %v", err)
	}
}

// TestMatchOneJaccardFallback: with no matcher installed MatchOne scores
// candidates by blocking-token Jaccard, descending, ties by ID.
func TestMatchOneJaccardFallback(t *testing.T) {
	c := NewCorpus()
	add := func(id, name string) {
		t.Helper()
		if err := c.Add(Record{ID: id, Attrs: map[string]string{"name": name}}); err != nil {
			t.Fatal(err)
		}
	}
	add("exact", "acme widget store")
	add("half", "acme widget labs trading")
	add("none", "unrelated tokens entirely")
	got, err := c.MatchOne(context.Background(), Record{ID: "q", Attrs: map[string]string{"name": "acme widget store"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d pairs %v, want 2 (no shared token with %q)", len(got), got, "none")
	}
	if got[0].ID != "exact" || got[0].Score != 1 {
		t.Fatalf("top pair %+v, want exact at score 1", got[0])
	}
	if got[1].ID != "half" || got[1].Score <= 0 || got[1].Score >= 1 {
		t.Fatalf("second pair %+v, want half at partial score", got[1])
	}
	if got[0].QueryID != "q" {
		t.Fatalf("QueryID = %q, want q", got[0].QueryID)
	}
}

// TestMatchOneEphemeralQueryTokens: a query full of never-seen tokens
// must not mutate the dictionary and still score exactly (the ephemeral
// IDs keep the Jaccard denominator honest).
func TestMatchOneEphemeralQueryTokens(t *testing.T) {
	c := NewCorpus()
	if err := c.Add(Record{ID: "a", Attrs: map[string]string{"name": "acme widget"}}); err != nil {
		t.Fatal(err)
	}
	before := c.dict.Len()
	got, err := c.MatchOne(context.Background(), Record{ID: "q", Attrs: map[string]string{"name": "acme zeppelin quark"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.dict.Len() != before {
		t.Fatalf("dictionary grew from %d to %d during a query", before, c.dict.Len())
	}
	// |q ∩ a| = 1 (acme), |q ∪ a| = 4 (acme widget zeppelin quark).
	if len(got) != 1 || got[0].Score != 0.25 {
		t.Fatalf("got %v, want one pair at Jaccard 1/4", got)
	}
}

// TestMatchOneLimitAndCancel covers WithLimit truncation and context
// cancellation.
func TestMatchOneLimitAndCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewCorpus(WithLimit(3))
	for i := 0; i < 30; i++ {
		if err := c.Add(randomRecord(fmt.Sprintf("r%d", i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	q := randomRecord("q", rng)
	got, err := c.MatchOne(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 3 {
		t.Fatalf("limit 3 returned %d pairs", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("pairs out of score order: %v", got)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.MatchOne(ctx, q); err == nil {
		t.Fatal("cancelled context matched anyway")
	}
}

// TestServeMetrics: the em_serve_* series move under traffic.
func TestServeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(13))
	c := NewCorpus(WithMetrics(reg), WithCompactAfter(2))
	for i := 0; i < 6; i++ {
		if err := c.Add(randomRecord(fmt.Sprintf("r%d", i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete("r0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(randomRecord("r1", rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MatchOne(context.Background(), randomRecord("q", rng)); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue(obs.ServeIngestTotal, obs.L("op", "add")); got != 6 {
		t.Errorf("adds counted = %v, want 6", got)
	}
	if got := reg.CounterValue(obs.ServeIngestTotal, obs.L("op", "delete")); got != 1 {
		t.Errorf("deletes counted = %v, want 1", got)
	}
	if got := reg.CounterValue(obs.ServeIngestTotal, obs.L("op", "update")); got != 1 {
		t.Errorf("updates counted = %v, want 1", got)
	}
	if got := reg.CounterValue(obs.ServeCompactionsTotal); got != 1 {
		t.Errorf("compactions counted = %v, want 1 (delete + update tombstones crossed the bar)", got)
	}
	if got := reg.GaugeValue(obs.ServeCorpusRecords); got != 5 {
		t.Errorf("records gauge = %v, want 5 (6 adds - 1 delete)", got)
	}
	if got := reg.GaugeValue(obs.ServeCorpusTombstones); got != 0 {
		t.Errorf("tombstones gauge = %v, want 0 after compaction", got)
	}
	if got := reg.TimerCount(obs.ServeMatchSeconds); got != 1 {
		t.Errorf("match timer observations = %v, want 1", got)
	}
	if got := reg.TimerCount(obs.ServeStageSeconds, obs.L("stage", "candidates")); got != 1 {
		t.Errorf("candidates stage observations = %v, want 1", got)
	}
}

// TestCorpusSnapshotsAreCopies is the dynamic pin of what the aliasleak
// check enforces statically: everything the read API hands out (Stats
// values, CandidateIDs slices) is a copy, so a reader snapshotting while
// a writer mutates never shares memory with corpus internals. Under the
// race detector (make race) any aliased state fails the run.
func TestCorpusSnapshotsAreCopies(t *testing.T) {
	c := NewCorpus()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 64; i++ {
		if err := c.Add(randomRecord(fmt.Sprintf("seed%d", i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	q := randomRecord("query", rng)

	done := make(chan struct{})
	go func() {
		defer close(done)
		wrng := rand.New(rand.NewSource(43))
		for i := 0; i < 200; i++ {
			id := fmt.Sprintf("w%d", i)
			if err := c.Add(randomRecord(id, wrng)); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				if err := c.Delete(id); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		_ = c.Stats()
		ids := c.CandidateIDs(q)
		// Scribbling over the returned slice must not corrupt the corpus:
		// it is ours, not a borrowed view of index state.
		for j := range ids {
			ids[j] = "scribbled"
		}
	}
	<-done
	if c.Len() == 0 {
		t.Fatal("writer left no records")
	}
	if got := c.CandidateIDs(q); len(got) > 0 && got[0] == "scribbled" {
		t.Fatal("CandidateIDs returned a view of mutated internal state")
	}
}
