package serve

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestReadsProceedWhileWriterStalled is the acceptance check that the read
// path takes zero locks: with the writer mutex held (a stalled Add, a slow
// compaction — any writer), MatchOne, CandidateIDs, Stats, and Len must
// all complete. Under the old RWMutex design every one of these parked
// behind the writer.
func TestReadsProceedWhileWriterStalled(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	c := NewCorpus()
	for i := 0; i < 32; i++ {
		if err := c.Add(randomRecord(fmt.Sprintf("r%d", i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	q := randomRecord("q", rng)
	c.mu.Lock() // the stalled writer
	defer c.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := c.MatchOne(context.Background(), q); err != nil {
				done <- err
				return
			}
			if got := c.CandidateIDs(q); got == nil {
				done <- fmt.Errorf("CandidateIDs returned nil")
				return
			}
			if st := c.Stats(); st.Records != 32 || c.Len() != 32 {
				done <- fmt.Errorf("Stats/Len diverged under stalled writer: %+v", st)
				return
			}
		}
		done <- nil
	}()
	//emlint:allow locksafety -- deliberately waiting on readers while holding mu: the test proves reads never need the writer lock
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queries blocked behind a stalled writer — the read path is taking a lock")
	}
}

// TestSnapshotKernelsZeroAlloc pins the //emlint:zeroalloc contracts on the
// lock-free candidate kernels: with warmed scratch, candidate generation
// over array and bitmap postings allocates nothing.
func TestSnapshotKernelsZeroAlloc(t *testing.T) {
	c := NewCorpus(WithBitmapPostingMin(4))
	for i := 0; i < 64; i++ {
		rec := Record{ID: fmt.Sprintf("r%02d", i), Attrs: map[string]string{
			"name": fmt.Sprintf("common shared alpha beta item%d", i%8),
		}}
		if err := c.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete("r07"); err != nil {
		t.Fatal(err)
	}
	sn := c.snap.Load()
	if sn.tombs == nil {
		t.Fatal("expected a tombstone set after Delete")
	}
	sc := &matchScratch{}
	qtoks := sn.queryTokens(blockTokens(c.cfg.tok, map[string]string{"name": "common alpha item3"}), sc)
	if len(qtoks) == 0 {
		t.Fatal("query tokens did not resolve")
	}
	// Warm the scratch so growth is paid before measuring.
	if got := sn.candidateSlots(qtoks, 1, sc); len(got) == 0 {
		t.Fatal("no candidates")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		cands := sn.candidateSlots(qtoks, 1, sc)
		if len(cands) == 0 {
			t.Error("no candidates")
		}
		if sn.tombs.dead(cands[0]) {
			t.Error("candidate is tombstoned")
		}
		sc.prepare(len(sn.slots))
		sc.bump(cands[0])
		sc.counts[cands[0]] = 0
	}); allocs != 0 {
		t.Fatalf("candidate kernel allocs = %v, want 0", allocs)
	}
	// The tombstoned slot must never surface as a candidate.
	for _, si := range sn.candidateSlots(qtoks, 1, sc) {
		if sn.slots[si].rec.ID == "r07" {
			t.Fatal("tombstoned record surfaced as candidate")
		}
	}
}
