package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// ErrOverloaded is the typed backpressure signal: the pool's bounded
// queue is full and the submission was refused instead of buffered.
// Callers (the /v1/match handler, batch clients) retry with backoff or
// shed load.
var ErrOverloaded = errors.New("serve: match queue full")

// ErrClosed reports a submission to a closed pool.
var ErrClosed = errors.New("serve: pool closed")

// task is one queued match request.
type task struct {
	ctx      context.Context
	rec      Record
	tk       *Ticket
	stopWait func() // queue-wait timer, started at Submit
}

// Ticket is the handle to one async match submission.
type Ticket struct {
	done  chan struct{}
	pairs []ScoredPair
	err   error
}

// Wait blocks until the match completes or ctx is done, returning the
// result. Wait may be called more than once; the result is stable after
// the first successful return.
func (t *Ticket) Wait(ctx context.Context) ([]ScoredPair, error) {
	select {
	case <-t.done:
		//emlint:allow aliasleak -- ownership handoff: the worker wrote pairs before closing done and never touches them again; cloning per Wait would tax every match
		return t.pairs, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Pool runs MatchOne on a fixed set of workers fed by a bounded queue —
// the admission-control layer between the HTTP surface and the corpus.
// Submit never blocks: a full queue returns ErrOverloaded immediately,
// so overload surfaces as typed backpressure rather than unbounded
// buffering (the acceptance bar the benchem serve overload run checks).
type Pool struct {
	corpus  *Corpus
	tasks   chan task
	workers int
	wg      sync.WaitGroup
	metrics obs.Recorder
	// ewmaNs is the exponentially-weighted moving average of per-match
	// service time in nanoseconds (α = 1/8), updated by the workers and
	// read by RetryAfterSeconds to turn queue depth into a drain estimate.
	ewmaNs atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines serving MatchOne against c with a
// queue holding at most queueCap waiting requests. workers <= 0 resolves
// like the rest of the repo (parallel.Resolve: GOMAXPROCS); queueCap <= 0
// defaults to 4x the worker count. The em_serve_* queue metrics are
// recorded into c's configured recorder.
func NewPool(c *Corpus, workers, queueCap int) *Pool {
	workers = parallel.Resolve(workers)
	if queueCap <= 0 {
		queueCap = 4 * workers
	}
	p := &Pool{
		corpus:  c,
		tasks:   make(chan task, queueCap),
		workers: workers,
		metrics: obs.Or(c.cfg.metrics),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		//emlint:allow nogoroutine -- long-lived serve pool worker, not fan-out
		go p.worker()
	}
	return p
}

// worker drains the queue until Close.
//
//emlint:allow nondeterminism -- service-time sampling feeds the Retry-After EWMA, never the match results
func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.metrics.Gauge(obs.ServeQueueDepth, -1)
		t.stopWait()
		start := time.Now()
		t.tk.pairs, t.tk.err = p.corpus.MatchOne(t.ctx, t.rec)
		p.observe(time.Since(start))
		status := "ok"
		if t.tk.err != nil {
			status = "error"
		}
		p.metrics.Count(obs.ServeRequestsTotal, 1, obs.L("status", status))
		close(t.tk.done)
	}
}

// observe folds one match's service time into the EWMA. Workers race on
// the update, so it goes through a CAS loop; a lost round just means one
// sample lands with slightly different weight.
func (p *Pool) observe(dur time.Duration) {
	for {
		old := p.ewmaNs.Load()
		next := int64(dur)
		if old != 0 {
			next = old + (int64(dur)-old)/8
		}
		if p.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfterSeconds estimates how long an overloaded caller should back
// off before the queue has likely drained: current queue depth times the
// EWMA per-match service time, divided across the workers, rounded up to
// whole seconds and clamped to [1, 30]. This replaces the old hardcoded
// Retry-After: 1 on 429 responses.
func (p *Pool) RetryAfterSeconds() int {
	return retryAfterSeconds(len(p.tasks), time.Duration(p.ewmaNs.Load()), p.workers)
}

// retryAfterSeconds is the pure drain-time estimate behind
// Pool.RetryAfterSeconds, split out so the clamping and rounding are unit
// testable without a live pool.
func retryAfterSeconds(depth int, perReq time.Duration, workers int) int {
	if depth <= 0 || perReq <= 0 || workers <= 0 {
		return 1
	}
	drain := time.Duration(depth) * perReq / time.Duration(workers)
	secs := int((drain + time.Second - 1) / time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return secs
}

// Submit enqueues one match request without blocking. It returns
// ErrOverloaded when the queue is full and ErrClosed after Close; on
// success the Ticket resolves once a worker finishes the match.
func (p *Pool) Submit(ctx context.Context, rec Record) (*Ticket, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	tk := &Ticket{done: make(chan struct{})}
	t := task{
		ctx:      ctx,
		rec:      rec,
		tk:       tk,
		stopWait: obs.StartTimer(p.metrics, obs.ServeQueueWaitSeconds),
	}
	//emlint:allow locksafety -- non-blocking select send, cannot park; the lock only fences the send against close(p.tasks)
	select {
	case p.tasks <- t:
		p.metrics.Gauge(obs.ServeQueueDepth, 1)
		return tk, nil
	default:
		p.metrics.Count(obs.ServeRequestsTotal, 1, obs.L("status", "overloaded"))
		return nil, ErrOverloaded
	}
}

// Match is the synchronous convenience wrapper: Submit then Wait.
func (p *Pool) Match(ctx context.Context, rec Record) ([]ScoredPair, error) {
	tk, err := p.Submit(ctx, rec)
	if err != nil {
		return nil, err
	}
	return tk.Wait(ctx)
}

// Close drains the queue, stops the workers, and waits for them. Submit
// after Close returns ErrClosed. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

// Registry names the corpora a server exposes: each entry pairs a Corpus
// with the Pool that serves it.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// Entry is one registered corpus.
type Entry struct {
	Corpus *Corpus
	Pool   *Pool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Register adds a named corpus; duplicate names are an error.
func (r *Registry) Register(name string, c *Corpus, p *Pool) error {
	if name == "" {
		return fmt.Errorf("serve: empty corpus name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("serve: corpus %q already registered", name)
	}
	r.entries[name] = &Entry{Corpus: c, Pool: p}
	return nil
}

// Get returns the named entry.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns the registered corpus names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close closes every registered pool.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.Pool != nil {
			e.Pool.Close()
		}
	}
}
