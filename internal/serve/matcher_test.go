package serve

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/tokenize"
)

// testFeatureSet builds a small hand-rolled battery over the name/desc
// attributes: one token-set fast path and one pure string feature, so the
// cached and fallback extraction paths both run.
func testFeatureSet() *feature.Set {
	ws := tokenize.Whitespace{ReturnSet: true}
	jacc := func(l, r string) float64 {
		return sim.Jaccard(ws.Tokenize(strings.ToLower(l)), ws.Tokenize(strings.ToLower(r)))
	}
	return &feature.Set{Features: []feature.Feature{
		{Name: "jaccard_ws_name", LAttr: "name", RAttr: "name", Fn: jacc, Tok: ws, SetFn: sim.JaccardU32},
		{Name: "jaccard_ws_desc", LAttr: "desc", RAttr: "desc", Fn: jacc, Tok: ws, SetFn: sim.JaccardU32},
		{Name: "lev_name", LAttr: "name", RAttr: "name", Fn: sim.Levenshtein},
	}}
}

// testMatcher fits a tiny forest labeling pairs with high name overlap as
// matches.
func testMatcher(t *testing.T) ml.Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	for i := 0; i < 120; i++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		label := 0
		if v[0] > 0.5 {
			label = 1
		}
		x = append(x, v)
		y = append(y, label)
	}
	ds, err := ml.NewDataset(x, y, []string{"jaccard_ws_name", "jaccard_ws_desc", "lev_name"})
	if err != nil {
		t.Fatal(err)
	}
	clf := &ml.RandomForest{NumTrees: 8, Seed: 4, Workers: 1}
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return clf
}

// TestMatchOneWithMatcher: scores come from the resident classifier over
// cached feature sets, and agree exactly with scoring the same pairs by
// hand through the public feature path.
func TestMatchOneWithMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewCorpus()
	recs := make(map[string]Record)
	for i := 0; i < 25; i++ {
		r := randomRecord(fmt.Sprintf("r%d", i), rng)
		recs[r.ID] = r
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, clf := testFeatureSet(), testMatcher(t)
	if err := c.SetMatcher(fs, clf); err != nil {
		t.Fatal(err)
	}
	q := randomRecord("q", rng)
	got, err := c.MatchOne(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("matcher run surfaced no candidates — workload too sparse")
	}
	for _, p := range got {
		// Ground truth: the pure string path, no caches at all.
		want := clf.PredictProba(fs.VectorWith(q.Attrs, recs[p.ID].Attrs, nil, nil))
		if p.Score != want {
			t.Fatalf("pair %s: cached-path score %v != string-path score %v", p.ID, p.Score, want)
		}
	}
}

// TestMatchOneMatcherRebuildEquivalence: after an interleaving of
// mutations, the full scored MatchOne output of the incremental corpus —
// scores included, bit for bit — matches a from-scratch rebuild with the
// same matcher installed.
func TestMatchOneMatcherRebuildEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := NewCorpus(WithCompactAfter(5))
	fs, clf := testFeatureSet(), testMatcher(t)
	if err := c.SetMatcher(fs, clf); err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	next := 0
	for i := 0; i < 80; i++ {
		mutate(t, c, ids, &next, rng)
	}
	oracle := c.Rebuilt()
	if err := oracle.SetMatcher(fs, clf); err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 10; probe++ {
		q := randomRecord("q", rng)
		got, err := c.MatchOne(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.MatchOne(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %d: incremental MatchOne %v != rebuilt %v", probe, got, want)
		}
	}
}

// TestSetMatcherValidation: feature set and classifier come as a pair.
func TestSetMatcherValidation(t *testing.T) {
	c := NewCorpus()
	if err := c.SetMatcher(testFeatureSet(), nil); err == nil {
		t.Error("feature set without classifier accepted")
	}
	if err := c.SetMatcher(nil, nil); err != nil {
		t.Errorf("clearing the matcher: %v", err)
	}
}

// TestConcurrentMatchDuringIngest hammers MatchOne from reader goroutines
// while a writer interleaves add/update/delete plus explicit Compact and
// SetMatcher swaps — the -race target for the snapshot-published serving
// core: every class of writer (postings deltas, slot-space rewrites, full
// matcher recompiles) runs against lock-free readers. Results are not
// asserted against an oracle here (the corpus is moving); the invariant is
// freedom from races and torn reads, plus every returned candidate being
// internally consistent.
func TestConcurrentMatchDuringIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := NewCorpus(WithCompactAfter(8))
	fs, clf := testFeatureSet(), testMatcher(t)
	if err := c.SetMatcher(fs, clf); err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	next := 0
	for i := 0; i < 30; i++ {
		mutate(t, c, ids, &next, rng)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randomRecord("q", qrng)
				if _, err := c.MatchOne(context.Background(), q); err != nil {
					errs <- err
					return
				}
			}
		}(int64(100 + w))
	}
	for i := 0; i < 300; i++ {
		mutate(t, c, ids, &next, rng)
		switch {
		case i%60 == 30:
			c.Compact()
		case i%100 == 50:
			// Tear the matcher down and reinstall it mid-traffic: queries
			// in flight keep the snapshot they loaded, so each one scores
			// every candidate through one consistent (fs, clf, fsets) world.
			if err := c.SetMatcher(nil, nil); err != nil {
				t.Fatal(err)
			}
			if err := c.SetMatcher(fs, clf); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles the incremental state still matches a
	// rebuild.
	q := randomRecord("final", rng)
	if got, want := c.CandidateIDs(q), c.Rebuilt().CandidateIDs(q); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-ingest candidates %v != rebuilt %v", got, want)
	}
}
