// Package serve is the incremental serving core: a long-lived Corpus that
// keeps the interned dictionary, sorted integer postings (array lists that
// flip to bitvec bitmaps past a threshold, the simjoin/PR-6 layout), and
// cached per-record feature sets resident and incrementally maintained
// under Add/Update/Delete — instead of re-interning, re-blocking, and
// re-featurizing the whole corpus per request the way the batch pipeline
// does. All read-path state lives in an immutable snapshot published
// through an atomic pointer (DESIGN.md §13): MatchOne, CandidateIDs,
// Stats, and Len load the snapshot once and take no locks, while writers
// serialize on a writer-only mutex, apply copy-on-write deltas, and
// publish a fresh snapshot as their last act. Deletions tombstone their
// slot in a copy-on-write bitmap; a periodic compaction pass rewrites the
// slot space — as a fresh generation, invisible to in-flight readers —
// once enough tombstones accumulate. Rebuilt() is the equivalence oracle:
// a from-scratch batch build of the live records, which must yield
// bit-identical candidates for every query (pinned by the testing/quick
// interleaving tests and the benchem serve experiment).
//
// MatchOne is the low-latency query path (candidate generation → cached
// feature extraction → resident matcher, batch-scored through the flat
// forest when one compiled), and Pool wraps it with batched async
// submission under admission control: a bounded queue that returns typed
// ErrOverloaded backpressure instead of buffering without bound. This is
// the "services + metamanager" serving gap of PAPER.md §1/Table 4, shaped
// after the resident incrementally-maintained indexes Large-Scale
// Collective Entity Matching uses to reach web scale.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/tokenize"
)

// Record is one corpus or query record: an external ID plus rendered
// attribute values. A missing key is a null.
type Record struct {
	ID    string            `json:"id"`
	Attrs map[string]string `json:"attrs"`
}

// ScoredPair is one MatchOne result row.
type ScoredPair struct {
	QueryID string  `json:"query_id"`
	ID      string  `json:"id"`
	Score   float64 `json:"score"`
}

// CorpusOption tunes a Corpus; options apply in order, later wins.
type CorpusOption func(*corpusConfig)

// corpusConfig is the resolved option set.
type corpusConfig struct {
	minOverlap   int
	limit        int
	bitmapMin    int
	compactAfter int
	tok          tokenize.Tokenizer
	metrics      obs.Recorder
}

const (
	// defaultBitmapPostingMin is the posting length at which an array
	// posting flips to a bitvec bitmap — the simjoin default.
	defaultBitmapPostingMin = 512
	// defaultCompactAfter is the tombstone count that triggers a
	// compaction pass.
	defaultCompactAfter = 1024
)

// WithMinOverlap sets the blocking bar: a corpus record is a candidate
// when it shares at least k distinct tokens with the query. Default 1.
func WithMinOverlap(k int) CorpusOption {
	return func(c *corpusConfig) { c.minOverlap = k }
}

// WithLimit caps MatchOne's result to the n best-scoring pairs; 0 (the
// default) returns every candidate.
func WithLimit(n int) CorpusOption {
	return func(c *corpusConfig) { c.limit = n }
}

// WithBitmapPostingMin sets the posting length at which an array posting
// flips to a bitmap (0 = default 512, -1 = never flip).
func WithBitmapPostingMin(n int) CorpusOption {
	return func(c *corpusConfig) { c.bitmapMin = n }
}

// WithCompactAfter sets how many tombstones accumulate before a
// compaction pass rewrites the slot space (0 = default 1024, -1 = never
// compact automatically).
func WithCompactAfter(n int) CorpusOption {
	return func(c *corpusConfig) { c.compactAfter = n }
}

// WithTokenizer sets the blocking tokenizer (default whitespace).
func WithTokenizer(tok tokenize.Tokenizer) CorpusOption {
	return func(c *corpusConfig) { c.tok = tok }
}

// WithMetrics records the em_serve_* series into r; nil means off.
func WithMetrics(r obs.Recorder) CorpusOption {
	return func(c *corpusConfig) { c.metrics = r }
}

func applyCorpusOptions(opts []CorpusOption) corpusConfig {
	c := corpusConfig{
		minOverlap:   1,
		bitmapMin:    defaultBitmapPostingMin,
		compactAfter: defaultCompactAfter,
		tok:          tokenize.Whitespace{ReturnSet: true},
	}
	for _, o := range opts {
		o(&c)
	}
	if c.minOverlap < 1 {
		c.minOverlap = 1
	}
	if c.bitmapMin == 0 {
		c.bitmapMin = defaultBitmapPostingMin
	}
	if c.compactAfter == 0 {
		c.compactAfter = defaultCompactAfter
	}
	return c
}

// blockTokens renders a record's blocking token stream: every attribute
// value lower-cased and tokenized, in sorted attribute order so the
// stream — and therefore first-intern ID assignment — is deterministic.
func blockTokens(tok tokenize.Tokenizer, attrs map[string]string) []string {
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		out = append(out, tok.Tokenize(strings.ToLower(attrs[name]))...)
	}
	return out
}

// validate rejects records the corpus cannot hold.
func (r Record) validate() error {
	if r.ID == "" {
		return fmt.Errorf("serve: record with empty ID")
	}
	return nil
}
