package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

func poolCorpus(t *testing.T, n int, opts ...CorpusOption) *Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(29))
	c := NewCorpus(opts...)
	for i := 0; i < n; i++ {
		if err := c.Add(randomRecord(fmt.Sprintf("r%d", i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestPoolMatchesSync: a pooled match returns exactly what a direct
// MatchOne returns.
func TestPoolMatchesSync(t *testing.T) {
	c := poolCorpus(t, 20)
	p := NewPool(c, 2, 8)
	defer p.Close()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		q := randomRecord("q", rng)
		want, err := c.MatchOne(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Match(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pooled match %d pairs, direct %d", len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("pair %d: pooled %+v != direct %+v", k, got[k], want[k])
			}
		}
	}
}

// TestPoolOverload: once the queue is full Submit returns ErrOverloaded
// immediately instead of buffering — the typed backpressure contract.
// A gate blocks the single worker inside a query's read section so the
// queue genuinely fills.
func TestPoolOverload(t *testing.T) {
	reg := obs.NewRegistry()
	c := poolCorpus(t, 10, WithMetrics(reg))
	// Jam ingest: hold the write lock so the worker parks inside
	// MatchOne's RLock and queued tasks stay queued.
	c.mu.Lock()
	const queueCap = 3
	p := NewPool(c, 1, queueCap)
	rng := rand.New(rand.NewSource(37))
	var tickets []*Ticket
	overloaded := 0
	// One task occupies the worker; queueCap more fill the queue. Submit
	// until refusal, with slack for the scheduler's pickup race.
	for i := 0; i < queueCap+4; i++ {
		tk, err := p.Submit(context.Background(), randomRecord("q", rng))
		switch {
		case err == nil:
			tickets = append(tickets, tk)
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			c.mu.Unlock()
			t.Fatalf("Submit: %v", err)
		}
	}
	if overloaded == 0 {
		c.mu.Unlock()
		t.Fatalf("queue of %d absorbed %d submissions without refusing", queueCap, queueCap+4)
	}
	c.mu.Unlock() // release the worker; queued tickets drain
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := reg.CounterValue(obs.ServeRequestsTotal, obs.L("status", "overloaded")); got != float64(overloaded) {
		t.Errorf("overloaded counter = %v, want %d", got, overloaded)
	}
	if got := reg.CounterValue(obs.ServeRequestsTotal, obs.L("status", "ok")); got != float64(len(tickets)) {
		t.Errorf("ok counter = %v, want %d", got, len(tickets))
	}
	if got := reg.GaugeValue(obs.ServeQueueDepth); got != 0 {
		t.Errorf("queue depth after drain = %v, want 0", got)
	}
}

// TestPoolClose: Close is idempotent, drains queued work, and later
// Submits return ErrClosed.
func TestPoolClose(t *testing.T) {
	c := poolCorpus(t, 10)
	p := NewPool(c, 2, 4)
	rng := rand.New(rand.NewSource(41))
	tk, err := p.Submit(context.Background(), randomRecord("q", rng))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("queued ticket abandoned at Close: %v", err)
	}
	if _, err := p.Submit(context.Background(), randomRecord("q", rng)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestTicketWaitCancel: Wait respects its own context independently of
// the match's.
func TestTicketWaitCancel(t *testing.T) {
	c := poolCorpus(t, 5)
	c.mu.Lock() // park the worker
	p := NewPool(c, 1, 2)
	//emlint:allow locksafety -- Submit's send is non-blocking by construction; the held lock parks the worker, not the submitter
	tk, err := p.Submit(context.Background(), Record{ID: "q", Attrs: map[string]string{"name": "acme"}})
	if err != nil {
		c.mu.Unlock()
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		c.mu.Unlock()
		t.Fatalf("Wait under cancelled context: %v", err)
	}
	c.mu.Unlock()
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("second Wait after completion: %v", err)
	}
	p.Close()
}

// TestPoolConcurrentSubmitters: many goroutines submitting against a
// small queue settle every request as either a result or ErrOverloaded —
// nothing hangs, nothing is dropped silently. Runs under -race in CI.
func TestPoolConcurrentSubmitters(t *testing.T) {
	c := poolCorpus(t, 30)
	p := NewPool(c, 2, 4)
	defer p.Close()
	var wg sync.WaitGroup
	var mu sync.Mutex
	done, refused := 0, 0
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				tk, err := p.Submit(context.Background(), randomRecord("q", rng))
				if errors.Is(err, ErrOverloaded) {
					mu.Lock()
					refused++
					mu.Unlock()
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tk.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				done++
				mu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	if done+refused != 6*40 {
		t.Fatalf("settled %d+%d requests, want %d", done, refused, 6*40)
	}
	if done == 0 {
		t.Fatal("every request refused — queue never drained")
	}
}

// TestRegistry covers the name→(corpus, pool) mapping.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := poolCorpus(t, 5)
	p := NewPool(c, 1, 2)
	if err := r.Register("products", c, p); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("products", c, p); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register("", c, p); err == nil {
		t.Error("empty name accepted")
	}
	e, ok := r.Get("products")
	if !ok || e.Corpus != c || e.Pool != p {
		t.Fatal("Get returned the wrong entry")
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get of unregistered name succeeded")
	}
	c2 := poolCorpus(t, 3)
	if err := r.Register("vendors", c2, NewPool(c2, 1, 2)); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "products" || names[1] != "vendors" {
		t.Fatalf("Names = %v, want sorted [products vendors]", names)
	}
	r.Close()
	if _, err := p.Submit(context.Background(), Record{ID: "q"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after registry Close: %v, want ErrClosed", err)
	}
}
