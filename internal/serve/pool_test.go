package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tokenize"
)

func poolCorpus(t *testing.T, n int, opts ...CorpusOption) *Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(29))
	c := NewCorpus(opts...)
	for i := 0; i < n; i++ {
		if err := c.Add(randomRecord(fmt.Sprintf("r%d", i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// gateTok parks any Tokenize call whose input contains the trigger token
// until release is closed, signalling entered first. Installed as a
// corpus's blocking tokenizer it lets tests park a pool worker inside
// MatchOne deterministically — the read path takes no locks, so the old
// trick of holding the writer mutex no longer stalls queries.
type gateTok struct {
	inner   tokenize.Tokenizer
	entered chan struct{}
	release chan struct{}
}

const gateTrigger = "gatepark"

func newGateTok() *gateTok {
	return &gateTok{
		inner:   tokenize.Whitespace{ReturnSet: true},
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
}

func (g *gateTok) Tokenize(s string) []string {
	if strings.Contains(s, gateTrigger) {
		g.entered <- struct{}{}
		<-g.release
	}
	return g.inner.Tokenize(s)
}

func (g *gateTok) Name() string { return "gate:" + g.inner.Name() }

// TestPoolMatchesSync: a pooled match returns exactly what a direct
// MatchOne returns.
func TestPoolMatchesSync(t *testing.T) {
	c := poolCorpus(t, 20)
	p := NewPool(c, 2, 8)
	defer p.Close()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		q := randomRecord("q", rng)
		want, err := c.MatchOne(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Match(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pooled match %d pairs, direct %d", len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("pair %d: pooled %+v != direct %+v", k, got[k], want[k])
			}
		}
	}
}

// TestPoolOverload: once the queue is full Submit returns ErrOverloaded
// immediately instead of buffering — the typed backpressure contract.
// A gate tokenizer parks the single worker inside a query so the queue
// genuinely — and deterministically — fills.
func TestPoolOverload(t *testing.T) {
	reg := obs.NewRegistry()
	gate := newGateTok()
	c := poolCorpus(t, 10, WithMetrics(reg), WithTokenizer(gate))
	const queueCap = 3
	p := NewPool(c, 1, queueCap)
	rng := rand.New(rand.NewSource(37))
	// Park the worker inside a query; entered confirms it is provably busy
	// before the queue-filling submissions below.
	blocker, err := p.Submit(context.Background(), Record{ID: "qb", Attrs: map[string]string{"name": gateTrigger}})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered
	var tickets []*Ticket
	overloaded := 0
	for i := 0; i < queueCap+4; i++ {
		tk, err := p.Submit(context.Background(), randomRecord("q", rng))
		switch {
		case err == nil:
			tickets = append(tickets, tk)
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("Submit: %v", err)
		}
	}
	// With the worker parked the queue holds exactly queueCap tasks, so
	// exactly the excess submissions are refused.
	if overloaded != 4 || len(tickets) != queueCap {
		t.Fatalf("queue of %d: %d accepted, %d refused; want %d accepted, 4 refused",
			queueCap, len(tickets), overloaded, queueCap)
	}
	if got := p.RetryAfterSeconds(); got < 1 || got > 30 {
		t.Errorf("RetryAfterSeconds under full queue = %d, want within [1, 30]", got)
	}
	close(gate.release) // release the worker; queued tickets drain
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := reg.CounterValue(obs.ServeRequestsTotal, obs.L("status", "overloaded")); got != float64(overloaded) {
		t.Errorf("overloaded counter = %v, want %d", got, overloaded)
	}
	if got := reg.CounterValue(obs.ServeRequestsTotal, obs.L("status", "ok")); got != float64(len(tickets)+1) {
		t.Errorf("ok counter = %v, want %d", got, len(tickets)+1)
	}
	if got := reg.GaugeValue(obs.ServeQueueDepth); got != 0 {
		t.Errorf("queue depth after drain = %v, want 0", got)
	}
}

// TestRetryAfterSeconds pins the drain-time estimate: depth times service
// time over workers, rounded up, clamped to [1, 30].
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth   int
		perReq  time.Duration
		workers int
		want    int
	}{
		{0, time.Second, 1, 1},             // empty queue: minimal backoff
		{5, 0, 1, 1},                       // no samples yet: minimal backoff
		{5, time.Second, 0, 1},             // defensive: no workers
		{3, 100 * time.Millisecond, 1, 1},  // sub-second drain rounds up to 1
		{10, time.Second, 1, 10},           // 10 × 1s / 1 worker
		{10, time.Second, 4, 3},            // 2.5s rounds up to 3
		{500, time.Second, 1, 30},          // clamped at 30
		{4, 1500 * time.Millisecond, 2, 3}, // 3s exactly
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.depth, tc.perReq, tc.workers); got != tc.want {
			t.Errorf("retryAfterSeconds(%d, %v, %d) = %d, want %d", tc.depth, tc.perReq, tc.workers, got, tc.want)
		}
	}
}

// TestPoolClose: Close is idempotent, drains queued work, and later
// Submits return ErrClosed.
func TestPoolClose(t *testing.T) {
	c := poolCorpus(t, 10)
	p := NewPool(c, 2, 4)
	rng := rand.New(rand.NewSource(41))
	tk, err := p.Submit(context.Background(), randomRecord("q", rng))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("queued ticket abandoned at Close: %v", err)
	}
	if _, err := p.Submit(context.Background(), randomRecord("q", rng)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestTicketWaitCancel: Wait respects its own context independently of
// the match's.
func TestTicketWaitCancel(t *testing.T) {
	gate := newGateTok()
	c := poolCorpus(t, 5, WithTokenizer(gate))
	p := NewPool(c, 1, 2)
	tk, err := p.Submit(context.Background(), Record{ID: "q", Attrs: map[string]string{"name": "acme " + gateTrigger}})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // the match is provably in flight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait under cancelled context: %v", err)
	}
	close(gate.release)
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("second Wait after completion: %v", err)
	}
	p.Close()
}

// TestPoolConcurrentSubmitters: many goroutines submitting against a
// small queue settle every request as either a result or ErrOverloaded —
// nothing hangs, nothing is dropped silently. Runs under -race in CI.
func TestPoolConcurrentSubmitters(t *testing.T) {
	c := poolCorpus(t, 30)
	p := NewPool(c, 2, 4)
	defer p.Close()
	var wg sync.WaitGroup
	var mu sync.Mutex
	done, refused := 0, 0
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				tk, err := p.Submit(context.Background(), randomRecord("q", rng))
				if errors.Is(err, ErrOverloaded) {
					mu.Lock()
					refused++
					mu.Unlock()
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tk.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				done++
				mu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	if done+refused != 6*40 {
		t.Fatalf("settled %d+%d requests, want %d", done, refused, 6*40)
	}
	if done == 0 {
		t.Fatal("every request refused — queue never drained")
	}
}

// TestRegistry covers the name→(corpus, pool) mapping.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := poolCorpus(t, 5)
	p := NewPool(c, 1, 2)
	if err := r.Register("products", c, p); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("products", c, p); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register("", c, p); err == nil {
		t.Error("empty name accepted")
	}
	e, ok := r.Get("products")
	if !ok || e.Corpus != c || e.Pool != p {
		t.Fatal("Get returned the wrong entry")
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get of unregistered name succeeded")
	}
	c2 := poolCorpus(t, 3)
	if err := r.Register("vendors", c2, NewPool(c2, 1, 2)); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "products" || names[1] != "vendors" {
		t.Fatalf("Names = %v, want sorted [products vendors]", names)
	}
	r.Close()
	if _, err := p.Submit(context.Background(), Record{ID: "q"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after registry Close: %v, want ErrClosed", err)
	}
}
