// Package parallel is the shared concurrency substrate of the
// reproduction: a bounded worker pool with deterministic result ordering
// and first-error propagation. Every hot path that fans out across cores —
// random-forest training, cross-validation folds, blocker probe loops,
// feature extraction — goes through these helpers so the "Workers" knob
// behaves identically everywhere (0 means GOMAXPROCS, matching
// simjoin.Options and OverlapBlocker).
//
// The helpers guarantee that concurrency never changes observable output:
// results land in caller-visible slots keyed by input index, so a pipeline
// run at Workers=8 is bit-identical to the same run at Workers=1.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Resolve returns the effective worker count for a Workers knob: the knob
// itself when positive, otherwise GOMAXPROCS. This is the single place the
// "0 means GOMAXPROCS" convention is defined.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// serialFallbacks counts fan-outs the cost gate sent down the serial path
// because the input was below MinWork. Exposed via SerialFallbacks and
// mirrored to the recorder installed with SetRecorder, so the gate's
// behavior is observable (benchem reports it; tests assert on it).
var serialFallbacks atomic.Int64

// gateRecorder optionally mirrors fallback counts into an obs.Recorder.
var gateRecorder atomic.Pointer[obs.Recorder]

// SetRecorder installs a process-wide recorder that receives one
// obs.ParallelSerialFallbacks count per gated fallback. The parallel
// helpers are free functions, so unlike the per-type Metrics fields this
// hook is global; nil uninstalls it.
func SetRecorder(r obs.Recorder) {
	if r == nil {
		gateRecorder.Store(nil)
		return
	}
	gateRecorder.Store(&r)
}

// SerialFallbacks returns the number of fan-outs the cost gate kept
// serial since process start.
func SerialFallbacks() int64 { return serialFallbacks.Load() }

// countFallback records one gated serial fallback.
func countFallback() {
	serialFallbacks.Add(1)
	if r := gateRecorder.Load(); r != nil {
		(*r).Count(obs.ParallelSerialFallbacks, 1)
	}
}

// Gate applies the fan-out cost model: it returns the effective worker
// count for n items of which minWork is the smallest batch worth spinning
// up goroutines for. Inputs below minWork run serially — the spawn,
// scheduling, and merge overhead of a fan-out is on the order of tens of
// microseconds, so tiny batches lose outright — and each such decision is
// counted (SerialFallbacks / obs.ParallelSerialFallbacks). A workers knob
// of 1 is an explicit caller choice, not a gate decision, and is not
// counted.
func Gate(workers, n, minWork int) int {
	w := Resolve(workers)
	if w <= 1 || n <= 1 {
		return 1
	}
	if n < minWork {
		countFallback()
		return 1
	}
	return w
}

// ForEachMin is ForEach behind the cost gate: fn fans out only when n
// clears minWork items.
func ForEachMin(workers, n, minWork int, fn func(i int) error) error {
	return ForEach(Gate(workers, n, minWork), n, fn)
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (0 means GOMAXPROCS). Items are claimed dynamically, so
// uneven per-item cost balances across workers. If any call fails, ForEach
// stops claiming new items and returns the error of the lowest index among
// the failures it observed; items after a failure may be skipped, so
// callers must treat a non-nil error as "output undefined".
//
// workers == 1 and n == 1 short-circuit to a plain loop: no goroutine,
// channel, or WaitGroup is set up, so wrapping tiny inputs in ForEach
// costs nothing over writing the loop by hand.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachShard(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachShard is ForEach with a worker identity: fn(shard, i) receives
// the stable index of the worker goroutine running it (0 <= shard <
// effective workers, always 0 on the serial path). Call sites use it to
// reuse per-worker scratch — allocate one scratch per shard up front,
// index it with shard inside fn — instead of allocating per task or
// falling back to a sync.Pool.
func ForEachShard(workers, n int, fn func(shard, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(shard, i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results in index order, so output is independent of
// scheduling. On error the partial results are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into at most parts contiguous [lo, hi) ranges of
// near-equal size, in order. Empty ranges are omitted, so every returned
// chunk is non-empty and their concatenation is exactly [0, n).
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for w := 0; w < parts; w++ {
		lo, hi := w*n/parts, (w+1)*n/parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// MapChunks shards [0, n) into contiguous ranges (one per worker after
// resolving the knob), runs fn(lo, hi) on each concurrently, and returns
// the per-chunk results in chunk order. It is the sharding primitive the
// blockers use: each worker fills a local buffer for its range and the
// caller concatenates the buffers in order, reproducing the serial output
// exactly. Because there is exactly one chunk per worker, chunk-local
// state inside fn (scratch buffers, epoch stamps) is per-worker state.
func MapChunks[T any](workers, n int, fn func(lo, hi int) (T, error)) ([]T, error) {
	chunks := Chunks(n, Resolve(workers))
	return Map(len(chunks), len(chunks), func(ci int) (T, error) {
		return fn(chunks[ci][0], chunks[ci][1])
	})
}

// MapChunksMin is MapChunks with per-call-site chunk sizing: no chunk is
// smaller than minWork items, so tiny inputs produce fewer chunks — down
// to one, which runs serially with no goroutine setup (counted as a cost-
// gate fallback). Call sites pick minWork to cover their per-chunk fixed
// cost: a simjoin shard allocates an epoch-stamp array over the whole
// right side, so probing 50 records across 8 chunks would pay that setup
// 8 times for no win.
func MapChunksMin[T any](workers, n, minWork int, fn func(lo, hi int) (T, error)) ([]T, error) {
	w := Resolve(workers)
	if minWork > 0 && w > 1 && n > 0 {
		if maxParts := n / minWork; maxParts < w {
			if maxParts < 1 {
				maxParts = 1
			}
			w = maxParts
			if w == 1 {
				countFallback()
			}
		}
	}
	chunks := Chunks(n, w)
	return Map(len(chunks), len(chunks), func(ci int) (T, error) {
		return fn(chunks[ci][0], chunks[ci][1])
	})
}

// concatMinWork is the element count below which Concat's parallel copy
// cannot beat a single memmove loop.
const concatMinWork = 1 << 14

// Concat merges per-chunk result slices into one slice preallocated from
// the summed lengths. Small totals run the plain sequential append;
// large ones copy every part concurrently into its precomputed offset —
// each destination range is disjoint, so the merge is race-free and the
// result is the exact in-order concatenation either way. This replaces
// the serial append loop that made MapChunks merges a sequential tail on
// multi-megabyte blocker outputs.
func Concat[T any](workers int, parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, total)
	if total < concatMinWork || len(parts) < 2 || Resolve(workers) <= 1 {
		off := 0
		for _, p := range parts {
			off += copy(out[off:], p)
		}
		return out
	}
	offs := make([]int, len(parts))
	off := 0
	for i, p := range parts {
		offs[i] = off
		off += len(p)
	}
	// Copies cannot fail; ignore the always-nil error.
	//emlint:allow errdrop -- the copy closure returns a constant nil, so ForEach cannot fail
	_ = ForEach(workers, len(parts), func(i int) error {
		copy(out[offs[i]:], parts[i])
		return nil
	})
	return out
}
