// Package parallel is the shared concurrency substrate of the
// reproduction: a bounded worker pool with deterministic result ordering
// and first-error propagation. Every hot path that fans out across cores —
// random-forest training, cross-validation folds, blocker probe loops,
// feature extraction — goes through these helpers so the "Workers" knob
// behaves identically everywhere (0 means GOMAXPROCS, matching
// simjoin.Options and OverlapBlocker).
//
// The helpers guarantee that concurrency never changes observable output:
// results land in caller-visible slots keyed by input index, so a pipeline
// run at Workers=8 is bit-identical to the same run at Workers=1.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve returns the effective worker count for a Workers knob: the knob
// itself when positive, otherwise GOMAXPROCS. This is the single place the
// "0 means GOMAXPROCS" convention is defined.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (0 means GOMAXPROCS). Items are claimed dynamically, so
// uneven per-item cost balances across workers. If any call fails, ForEach
// stops claiming new items and returns the error of the lowest index among
// the failures it observed; items after a failure may be skipped, so
// callers must treat a non-nil error as "output undefined".
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results in index order, so output is independent of
// scheduling. On error the partial results are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into at most parts contiguous [lo, hi) ranges of
// near-equal size, in order. Empty ranges are omitted, so every returned
// chunk is non-empty and their concatenation is exactly [0, n).
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for w := 0; w < parts; w++ {
		lo, hi := w*n/parts, (w+1)*n/parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// MapChunks shards [0, n) into contiguous ranges (one per worker after
// resolving the knob), runs fn(lo, hi) on each concurrently, and returns
// the per-chunk results in chunk order. It is the sharding primitive the
// blockers use: each worker fills a local buffer for its range and the
// caller concatenates the buffers in order, reproducing the serial output
// exactly.
func MapChunks[T any](workers, n int, fn func(lo, hi int) (T, error)) ([]T, error) {
	chunks := Chunks(n, Resolve(workers))
	return Map(len(chunks), len(chunks), func(ci int) (T, error) {
		return fn(chunks[ci][0], chunks[ci][1])
	})
}
