package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(4); got != 4 {
		t.Fatalf("Resolve(4) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		counts := make([]atomic.Int64, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -5, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachErrorPropagation(t *testing.T) {
	want := errors.New("boom")
	err := ForEach(4, 100, func(i int) error {
		if i == 13 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
	// Serial path returns the same error.
	if err := ForEach(1, 100, func(i int) error {
		if i == 13 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Fatalf("serial: got %v", err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Every call fails; the reported error must be from the lowest index
	// among those executed, and index 0 always executes before any worker
	// can observe a failure flag set by a later index... not guaranteed —
	// what is guaranteed is that the returned error is one of the injected
	// ones and carries the smallest failing index the pool observed.
	err := ForEach(8, 64, func(i int) error { return fmt.Errorf("fail-%d", i) })
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out, err := Map(workers, 1000, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1000 {
			t.Fatalf("len = %d", len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatal("partial results must be discarded on error")
	}
}

func TestChunks(t *testing.T) {
	cases := []struct{ n, parts int }{
		{10, 3}, {1, 8}, {0, 4}, {100, 1}, {7, 7}, {5, 100}, {9, -1},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.parts)
		covered := 0
		prev := 0
		for _, ch := range chunks {
			if ch[0] != prev {
				t.Fatalf("Chunks(%d,%d): gap at %v", c.n, c.parts, ch)
			}
			if ch[1] <= ch[0] {
				t.Fatalf("Chunks(%d,%d): empty chunk %v", c.n, c.parts, ch)
			}
			covered += ch[1] - ch[0]
			prev = ch[1]
		}
		want := c.n
		if want < 0 {
			want = 0
		}
		if covered != want {
			t.Fatalf("Chunks(%d,%d) covers %d", c.n, c.parts, covered)
		}
	}
}

func TestMapChunksConcatenationMatchesSerial(t *testing.T) {
	n := 237
	for _, workers := range []int{1, 2, 5, 32} {
		parts, err := MapChunks(workers, n, func(lo, hi int) ([]int, error) {
			var out []int
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var all []int
		for _, p := range parts {
			all = append(all, p...)
		}
		if len(all) != n {
			t.Fatalf("workers=%d: got %d items", workers, len(all))
		}
		for i, v := range all {
			if v != i {
				t.Fatalf("workers=%d: position %d holds %d", workers, i, v)
			}
		}
	}
}
