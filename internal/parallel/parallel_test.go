package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestResolve(t *testing.T) {
	if got := Resolve(4); got != 4 {
		t.Fatalf("Resolve(4) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		counts := make([]atomic.Int64, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -5, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachErrorPropagation(t *testing.T) {
	want := errors.New("boom")
	err := ForEach(4, 100, func(i int) error {
		if i == 13 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
	// Serial path returns the same error.
	if err := ForEach(1, 100, func(i int) error {
		if i == 13 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Fatalf("serial: got %v", err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Every call fails; the reported error must be from the lowest index
	// among those executed, and index 0 always executes before any worker
	// can observe a failure flag set by a later index... not guaranteed —
	// what is guaranteed is that the returned error is one of the injected
	// ones and carries the smallest failing index the pool observed.
	err := ForEach(8, 64, func(i int) error { return fmt.Errorf("fail-%d", i) })
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out, err := Map(workers, 1000, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1000 {
			t.Fatalf("len = %d", len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatal("partial results must be discarded on error")
	}
}

func TestChunks(t *testing.T) {
	cases := []struct{ n, parts int }{
		{10, 3}, {1, 8}, {0, 4}, {100, 1}, {7, 7}, {5, 100}, {9, -1},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.parts)
		covered := 0
		prev := 0
		for _, ch := range chunks {
			if ch[0] != prev {
				t.Fatalf("Chunks(%d,%d): gap at %v", c.n, c.parts, ch)
			}
			if ch[1] <= ch[0] {
				t.Fatalf("Chunks(%d,%d): empty chunk %v", c.n, c.parts, ch)
			}
			covered += ch[1] - ch[0]
			prev = ch[1]
		}
		want := c.n
		if want < 0 {
			want = 0
		}
		if covered != want {
			t.Fatalf("Chunks(%d,%d) covers %d", c.n, c.parts, covered)
		}
	}
}

func TestMapChunksConcatenationMatchesSerial(t *testing.T) {
	n := 237
	for _, workers := range []int{1, 2, 5, 32} {
		parts, err := MapChunks(workers, n, func(lo, hi int) ([]int, error) {
			var out []int
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var all []int
		for _, p := range parts {
			all = append(all, p...)
		}
		if len(all) != n {
			t.Fatalf("workers=%d: got %d items", workers, len(all))
		}
		for i, v := range all {
			if v != i {
				t.Fatalf("workers=%d: position %d holds %d", workers, i, v)
			}
		}
	}
}

func TestGateKeepsTinyInputsSerial(t *testing.T) {
	before := SerialFallbacks()
	if got := Gate(8, 10, 100); got != 1 {
		t.Fatalf("Gate(8, 10, 100) = %d, want 1 (below MinWork)", got)
	}
	if SerialFallbacks() != before+1 {
		t.Fatalf("gated fallback not counted: %d -> %d", before, SerialFallbacks())
	}
	if got := Gate(8, 1000, 100); got != 8 {
		t.Fatalf("Gate(8, 1000, 100) = %d, want 8", got)
	}
	// An explicit workers=1 knob is a caller choice, not a gate decision.
	before = SerialFallbacks()
	if got := Gate(1, 10, 100); got != 1 {
		t.Fatalf("Gate(1, ...) = %d, want 1", got)
	}
	if SerialFallbacks() != before {
		t.Fatal("explicit workers=1 must not count as a gated fallback")
	}
}

func TestForEachMinMatchesForEach(t *testing.T) {
	for _, n := range []int{0, 1, 7, 300} {
		var hits atomic.Int64
		if err := ForEachMin(4, n, 64, func(i int) error {
			hits.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if int(hits.Load()) != n {
			t.Fatalf("n=%d: fn ran %d times", n, hits.Load())
		}
	}
}

func TestForEachShardIdentity(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		n := 500
		seen := make([]atomic.Int32, n)
		var badShard atomic.Bool
		if err := ForEachShard(workers, n, func(shard, i int) error {
			if shard < 0 || shard >= workers {
				badShard.Store(true)
			}
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if badShard.Load() {
			t.Fatalf("workers=%d: shard index out of [0,%d)", workers, workers)
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, seen[i].Load())
			}
		}
	}
}

// TestForEachShardScratchIsolation exercises the per-worker scratch
// pattern: one buffer per shard, never shared across concurrently running
// tasks.
func TestForEachShardScratchIsolation(t *testing.T) {
	workers := 4
	scratch := make([][]int, workers)
	for w := range scratch {
		scratch[w] = make([]int, 1)
	}
	var total atomic.Int64
	if err := ForEachShard(workers, 1000, func(shard, i int) error {
		scratch[shard][0] = i // would race if shards shared scratch
		total.Add(int64(scratch[shard][0]))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 1000*999/2 {
		t.Fatalf("scratch-mediated sum = %d, want %d", total.Load(), 1000*999/2)
	}
}

func TestMapChunksMinBoundsChunkCount(t *testing.T) {
	countChunks := func(workers, n, minWork int) int {
		parts, err := MapChunksMin(workers, n, minWork, func(lo, hi int) (int, error) {
			if hi-lo <= 0 {
				t.Fatalf("empty chunk [%d,%d)", lo, hi)
			}
			return hi - lo, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, c := range parts {
			covered += c
		}
		if covered != n {
			t.Fatalf("chunks cover %d of %d", covered, n)
		}
		return len(parts)
	}
	if got := countChunks(8, 1000, 100); got > 8 {
		t.Fatalf("big input made %d chunks, want <= 8", got)
	}
	if got := countChunks(8, 250, 100); got > 2 {
		t.Fatalf("n=250 minWork=100 made %d chunks, want <= 2", got)
	}
	before := SerialFallbacks()
	if got := countChunks(8, 50, 100); got != 1 {
		t.Fatalf("tiny input made %d chunks, want 1", got)
	}
	if SerialFallbacks() != before+1 {
		t.Fatal("single-chunk collapse not counted as gated fallback")
	}
}

func TestConcatMatchesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ parts, maxLen int }{
		{0, 0}, {1, 5}, {3, 7}, {17, 4000}, {64, 1200},
	} {
		parts := make([][]int, tc.parts)
		var want []int
		for p := range parts {
			m := rng.Intn(tc.maxLen + 1)
			parts[p] = make([]int, m)
			for k := range parts[p] {
				parts[p][k] = rng.Int()
			}
			want = append(want, parts[p]...)
		}
		for _, workers := range []int{1, 4} {
			got := Concat(workers, parts)
			if len(got) != len(want) {
				t.Fatalf("parts=%d workers=%d: len %d want %d", tc.parts, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("parts=%d workers=%d: position %d differs", tc.parts, workers, i)
				}
			}
		}
	}
}

// TestSetRecorderMirrorsFallbacks checks the obs hook: gated fallbacks
// reach an installed recorder and stop when uninstalled.
func TestSetRecorderMirrorsFallbacks(t *testing.T) {
	reg := obs.NewRegistry()
	SetRecorder(reg)
	defer SetRecorder(nil)
	Gate(4, 2, 1000)
	SetRecorder(nil)
	Gate(4, 2, 1000) // must not reach the uninstalled recorder
	snap := reg.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == obs.ParallelSerialFallbacks {
			found = true
			if c.Value != 1 {
				t.Fatalf("recorded %v fallbacks, want 1", c.Value)
			}
		}
	}
	if !found {
		t.Fatal("fallback counter never reached the recorder")
	}
}
