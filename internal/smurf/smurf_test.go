package smurf

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/active"
	"repro/internal/datagen"
	"repro/internal/falcon"
	"repro/internal/label"
	"repro/internal/table"
)

// stringTask builds two string sets with known matches by reusing the
// datagen company-name generator with typos.
func stringTask(n int, seed int64) (l, r []Item, gold *label.Gold) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "strings", Domain: datagen.VendorDomain(),
		SizeA: n, SizeB: n, MatchFraction: 0.5, Typo: 0.25, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	extract := func(t *table.Table) []Item {
		items := make([]Item, t.Len())
		for i := 0; i < t.Len(); i++ {
			items[i] = Item{
				ID:  t.Get(i, "id").AsString(),
				Str: t.Get(i, "name").AsString() + " " + t.Get(i, "city").AsString(),
			}
		}
		return items
	}
	return extract(task.A), extract(task.B), task.Gold
}

func score(matches [][2]string, gold *label.Gold) (p, r float64) {
	tp := 0
	for _, m := range matches {
		if gold.IsMatch(m[0], m[1]) {
			tp++
		}
	}
	if len(matches) > 0 {
		p = float64(tp) / float64(len(matches))
	} else {
		p = 1
	}
	if gold.Len() > 0 {
		r = float64(tp) / float64(gold.Len())
	} else {
		r = 1
	}
	return
}

func TestMatchStringsAccuracy(t *testing.T) {
	l, r, gold := stringTask(300, 21)
	oracle := label.NewOracle(gold)
	res, err := MatchStrings(l, r, oracle, Config{SampleSize: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, rec := score(res.Matches, gold)
	if p < 0.85 || rec < 0.85 {
		t.Errorf("precision %.3f recall %.3f, want both >= 0.85", p, rec)
	}
	if res.Questions == 0 || res.Candidates == 0 {
		t.Error("stats not recorded")
	}
}

func TestSmurfNeedsFewerLabelsThanFalcon(t *testing.T) {
	// The headline Smurf claim: same accuracy, 43–76% fewer labels. Run
	// both systems on the same workload and compare question counts.
	task, err := datagen.Generate(datagen.Spec{
		Name: "companies", Domain: datagen.VendorDomain(),
		SizeA: 300, SizeB: 300, MatchFraction: 0.5, Typo: 0.25, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Falcon on the full tuples.
	falconOracle := label.NewOracle(task.Gold)
	cat := table.NewCatalog()
	_, err = falcon.Run(task.A, task.B, falconOracle, cat, falcon.Config{
		SampleSize: 800, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	falconQ := falconOracle.Stats().Questions

	// Smurf on the concatenated strings, with a learning budget matched
	// to Falcon's single-forest stage.
	var l, rr []Item
	for i := 0; i < task.A.Len(); i++ {
		l = append(l, Item{ID: task.A.Get(i, "id").AsString(),
			Str: task.A.Get(i, "name").AsString() + " " + task.A.Get(i, "city").AsString()})
	}
	for i := 0; i < task.B.Len(); i++ {
		rr = append(rr, Item{ID: task.B.Get(i, "id").AsString(),
			Str: task.B.Get(i, "name").AsString() + " " + task.B.Get(i, "city").AsString()})
	}
	smurfOracle := label.NewOracle(task.Gold)
	sres, err := MatchStrings(l, rr, smurfOracle, Config{SampleSize: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	smurfQ := smurfOracle.Stats().Questions

	if smurfQ >= falconQ {
		t.Errorf("smurf asked %d questions, falcon %d; smurf must need fewer", smurfQ, falconQ)
	}
	reduction := 1 - float64(smurfQ)/float64(falconQ)
	t.Logf("labeling reduction = %.0f%% (falcon %d, smurf %d)", 100*reduction, falconQ, smurfQ)
	if reduction < 0.2 {
		t.Errorf("labeling reduction %.2f below any useful margin", reduction)
	}

	// And accuracy must not collapse.
	sp, sr := score(sres.Matches, task.Gold)
	if sp < 0.8 || sr < 0.8 {
		t.Errorf("smurf accuracy P=%.3f R=%.3f too low", sp, sr)
	}
}

func TestMatchStringsEmptyInput(t *testing.T) {
	if _, err := MatchStrings(nil, []Item{{"a", "x"}}, label.NewOracle(label.NewGold(nil)), Config{}); err == nil {
		t.Fatal("want empty-input error")
	}
}

func TestMatchStringsBudget(t *testing.T) {
	l, r, gold := stringTask(200, 23)
	budget := label.NewBudgeted(label.NewOracle(gold), 80)
	_, err := MatchStrings(l, r, budget, Config{SampleSize: 500, Seed: 3,
		Learning: active.Config{SeedSize: 20, BatchSize: 10, MaxRounds: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if q := budget.Stats().Questions; q > 80 {
		t.Errorf("asked %d questions, budget 80", q)
	}
}

func TestMatchStringsDeterministic(t *testing.T) {
	l, r, gold := stringTask(150, 24)
	r1, err := MatchStrings(l, r, label.NewOracle(gold), Config{SampleSize: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MatchStrings(l, r, label.NewOracle(gold), Config{SampleSize: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Matches) != len(r2.Matches) || r1.Questions != r2.Questions {
		t.Error("same seed produced different runs")
	}
}

func TestFeatureVectorShape(t *testing.T) {
	x := featureVector("acme corp", "acme corporation")
	if len(x) != len(FeatureNames()) {
		t.Fatalf("vector width %d != %d names", len(x), len(FeatureNames()))
	}
	for i, v := range x {
		if v < 0 || v > 1 {
			t.Errorf("feature %s = %v out of range", FeatureNames()[i], v)
		}
	}
	// Identical strings score 1 everywhere.
	for i, v := range featureVector("same", "same") {
		if v != 1 {
			t.Errorf("identical strings: feature %s = %v", FeatureNames()[i], v)
		}
	}
}

func TestBuildPoolRespectsSize(t *testing.T) {
	l, r, _ := stringTask(100, 25)
	lstr := map[string]string{}
	for _, it := range l {
		lstr[it.ID] = it.Str
	}
	rstr := map[string]string{}
	for _, it := range r {
		rstr[it.ID] = it.Str
	}
	rng := rand.New(rand.NewSource(1))
	pool := buildPool(l, r, nil, lstr, rstr, 50, rng)
	if pool.Len() != 50 {
		t.Errorf("pool size = %d, want 50", pool.Len())
	}
	if err := pool.Validate(); err != nil {
		t.Error(err)
	}
	// No duplicate pairs.
	seen := map[string]bool{}
	for i := range pool.LIDs {
		k := fmt.Sprintf("%s/%s", pool.LIDs[i], pool.RIDs[i])
		if seen[k] {
			t.Fatalf("duplicate pool pair %s", k)
		}
		seen[k] = true
	}
}
