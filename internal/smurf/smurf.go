// Package smurf implements Smurf (Suganthan G.C. et al., PVLDB 2019), the
// self-service string-matching system §5.3 of the progress report folds
// into CloudMatcher. Falcon spends user labels three times: learning a
// blocking forest, validating the extracted blocking rules, and learning a
// separate matcher forest. Smurf observes that for string matching the
// learned random forest can be executed directly as the blocker — its tree
// predicates are similarity-join-able — so the rule-validation and
// second-matcher labeling rounds disappear. The paper reports this cuts
// labeling effort by 43–76% at the same accuracy; the
// BenchmarkSmurfLabelingReduction harness regenerates that comparison.
package smurf

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/active"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/simjoin"
	"repro/internal/tokenize"
)

// Item is one string to match, with a stable id.
type Item struct {
	ID  string
	Str string
}

// Config tunes a Smurf run.
type Config struct {
	// SampleSize is the learning-sample size; 0 means 1000.
	SampleSize int
	// Learning configures the single active-learning session.
	Learning active.Config
	// Seed drives all randomness.
	Seed int64
}

func (c Config) sampleSize() int {
	if c.SampleSize <= 0 {
		return 1000
	}
	return c.SampleSize
}

// Result is the outcome of a Smurf run.
type Result struct {
	// Matches holds the predicted matching (left id, right id) pairs.
	Matches [][2]string
	// Questions is the total labels spent — Smurf's entire budget goes to
	// one active-learning session.
	Questions int
	// Forest is the learned forest, used as both blocker and matcher.
	Forest *ml.RandomForest
	// Candidates is the number of pairs the forest was executed on.
	Candidates int
}

// FeatureNames lists the string-pair features Smurf scores, in vector
// order.
func FeatureNames() []string {
	return []string{"lev", "jaro", "jaro_winkler", "jaccard_ws", "jaccard_3gram", "cosine_ws", "monge_elkan_jw"}
}

// featureVector scores one string pair on the Smurf battery.
func featureVector(l, r string) []float64 {
	l, r = strings.ToLower(l), strings.ToLower(r)
	ws := tokenize.Whitespace{ReturnSet: true}
	g3 := tokenize.QGram{Q: 3, ReturnSet: true}
	lw, rw := ws.Tokenize(l), ws.Tokenize(r)
	return []float64{
		sim.Levenshtein(l, r),
		sim.Jaro(l, r),
		sim.JaroWinkler(l, r),
		sim.Jaccard(lw, rw),
		sim.Jaccard(g3.Tokenize(l), g3.Tokenize(r)),
		sim.CosineSet(lw, rw),
		sim.MongeElkanSym(lw, rw, sim.JaroWinkler),
	}
}

// MatchStrings runs Smurf end to end: sample pairs, active-learn one
// forest, execute it over all token-overlapping cross pairs.
func MatchStrings(l, r []Item, lab label.Labeler, cfg Config) (*Result, error) {
	if len(l) == 0 || len(r) == 0 {
		return nil, fmt.Errorf("smurf: empty input (%d, %d items)", len(l), len(r))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Candidate universe: pairs sharing at least one token. As in Falcon,
	// zero-overlap pairs score ~0 on every feature and cannot be matches
	// the forest would accept.
	tok := tokenize.Alphanumeric{ReturnSet: true}
	lrecs := make([]simjoin.Record, len(l))
	for i, it := range l {
		lrecs[i] = simjoin.Record{ID: it.ID, Tokens: tok.Tokenize(it.Str)}
	}
	rrecs := make([]simjoin.Record, len(r))
	for i, it := range r {
		rrecs[i] = simjoin.Record{ID: it.ID, Tokens: tok.Tokenize(it.Str)}
	}
	cands, err := simjoin.OverlapJoin(lrecs, rrecs, 1)
	if err != nil {
		return nil, err
	}

	lstr := make(map[string]string, len(l))
	for _, it := range l {
		lstr[it.ID] = it.Str
	}
	rstr := make(map[string]string, len(r))
	for _, it := range r {
		rstr[it.ID] = it.Str
	}

	// Learning sample: top-overlap quarter (likely matches), random
	// overlap quarter, random cross pairs for the rest.
	pool := buildPool(l, r, cands, lstr, rstr, cfg.sampleSize(), rng)

	lcfg := cfg.Learning
	if lcfg.Seed == 0 {
		lcfg.Seed = cfg.Seed + 1
	}
	res, err := active.Learn(pool, lab, lcfg)
	if err != nil {
		return nil, fmt.Errorf("smurf: %w", err)
	}

	// Execute the forest directly as blocker+matcher over the candidates.
	out := &Result{Forest: res.Forest, Questions: lab.Stats().Questions, Candidates: len(cands)}
	for _, c := range cands {
		x := featureVector(lstr[c.LID], rstr[c.RID])
		if ml.Predict(res.Forest, x) == 1 {
			out.Matches = append(out.Matches, [2]string{c.LID, c.RID})
		}
	}
	return out, nil
}

// buildPool assembles the active-learning pool.
func buildPool(l, r []Item, cands []simjoin.Pair, lstr, rstr map[string]string, n int, rng *rand.Rand) *active.Pool {
	pool := &active.Pool{Names: FeatureNames()}
	seen := make(map[[2]string]bool)
	add := func(lid, rid string) {
		k := [2]string{lid, rid}
		if seen[k] {
			return
		}
		seen[k] = true
		pool.X = append(pool.X, featureVector(lstr[lid], rstr[rid]))
		pool.LIDs = append(pool.LIDs, lid)
		pool.RIDs = append(pool.RIDs, rid)
	}

	byOverlap := append([]simjoin.Pair(nil), cands...)
	sort.Slice(byOverlap, func(x, y int) bool {
		if byOverlap[x].Sim != byOverlap[y].Sim {
			return byOverlap[x].Sim > byOverlap[y].Sim
		}
		if byOverlap[x].LID != byOverlap[y].LID {
			return byOverlap[x].LID < byOverlap[y].LID
		}
		return byOverlap[x].RID < byOverlap[y].RID
	})
	top := n / 4
	if top > len(byOverlap) {
		top = len(byOverlap)
	}
	for _, p := range byOverlap[:top] {
		add(p.LID, p.RID)
	}
	rest := byOverlap[top:]
	rng.Shuffle(len(rest), func(x, y int) { rest[x], rest[y] = rest[y], rest[x] })
	want := n / 4
	if want > len(rest) {
		want = len(rest)
	}
	for _, p := range rest[:want] {
		add(p.LID, p.RID)
	}
	for attempt := 0; pool.Len() < n && attempt < 20*n; attempt++ {
		add(l[rng.Intn(len(l))].ID, r[rng.Intn(len(r))].ID)
	}
	return pool
}
