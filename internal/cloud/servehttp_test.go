package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/serve"
)

// newServeTestServer wires a Server with a one-corpus serve.Registry.
func newServeTestServer(t *testing.T, opts ...serve.CorpusOption) (*httptest.Server, *serve.Corpus, *serve.Pool) {
	t.Helper()
	c := serve.NewCorpus(opts...)
	for i, name := range []string{"acme corp", "acme inc", "globex llc"} {
		err := c.Add(serve.Record{
			ID:    fmt.Sprintf("r%d", i),
			Attrs: map[string]string{"name": name},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg := serve.NewRegistry()
	p := serve.NewPool(c, 1, 2)
	if err := reg.Register("products", c, p); err != nil {
		t.Fatal(err)
	}
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	srv := httptest.NewServer(NewServer(mm, WithCorpora(reg)).Handler())
	t.Cleanup(func() {
		srv.Close()
		reg.Close()
		mm.Close()
	})
	return srv, c, p
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(mustJSON(t, v)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPLegacyRedirects: the unversioned routes answer 308 with the /v1
// twin in Location, and a redirect-following client still reaches the
// handler through them.
func TestHTTPLegacyRedirects(t *testing.T) {
	srv, _ := newTestServer(t)
	// Observe the redirect itself rather than following it.
	noFollow := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	for _, tc := range []struct{ method, path, target string }{
		{http.MethodGet, "/services", "/v1/services"},
		{http.MethodPost, "/jobs", "/v1/jobs"},
		{http.MethodGet, "/healthz", "/v1/healthz"},
		{http.MethodGet, "/metrics", "/v1/metrics"},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s %s = %d, want 308", tc.method, tc.path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != tc.target {
			t.Errorf("%s %s Location = %q, want %q", tc.method, tc.path, loc, tc.target)
		}
	}
	// A default client follows the 308 transparently, method and body
	// preserved — the legacy-compatibility contract.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("followed /healthz = %d, want 200", resp.StatusCode)
	}
}

// TestHTTPCorpusLifecycle drives add, list, match, and delete through the
// /v1 surface and checks the JSON shapes round-trip.
func TestHTTPCorpusLifecycle(t *testing.T) {
	srv, _, _ := newServeTestServer(t)

	resp := postJSON(t, srv.URL+"/v1/corpus/add", corpusAddRequest{
		Corpus: "products",
		Records: []serve.Record{
			{ID: "n1", Attrs: map[string]string{"name": "initech corp"}},
			{ID: "n2", Attrs: map[string]string{"name": "hooli inc"}},
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus/add = %d", resp.StatusCode)
	}
	var mut corpusMutationResponse
	if err := json.NewDecoder(resp.Body).Decode(&mut); err != nil {
		t.Fatal(err)
	}
	if mut.Applied != 2 || mut.Stats.Records != 5 {
		t.Fatalf("add applied %d / %d records, want 2 / 5", mut.Applied, mut.Stats.Records)
	}

	lresp, err := http.Get(srv.URL + "/v1/corpus")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []corpusInfo
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "products" || list[0].Records != 5 {
		t.Fatalf("corpus list = %+v, want one products entry with 5 records", list)
	}

	mresp := postJSON(t, srv.URL+"/v1/match", matchRequest{
		Corpus: "products",
		Record: serve.Record{ID: "q", Attrs: map[string]string{"name": "acme corp"}},
	})
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("match = %d", mresp.StatusCode)
	}
	var match matchResponse
	if err := json.NewDecoder(mresp.Body).Decode(&match); err != nil {
		t.Fatal(err)
	}
	if len(match.Pairs) == 0 || match.Pairs[0].ID != "r0" || match.Pairs[0].Score != 1 {
		t.Fatalf("match pairs = %+v, want r0 scored 1.0 first", match.Pairs)
	}

	dresp := postJSON(t, srv.URL+"/v1/corpus/delete", corpusDeleteRequest{
		Corpus: "products", IDs: []string{"n1", "n2"},
	})
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("corpus/delete = %d", dresp.StatusCode)
	}
	if err := json.NewDecoder(dresp.Body).Decode(&mut); err != nil {
		t.Fatal(err)
	}
	if mut.Applied != 2 || mut.Stats.Records != 3 {
		t.Fatalf("delete applied %d / %d records, want 2 / 3", mut.Applied, mut.Stats.Records)
	}
}

// TestHTTPCorpusUpsert: a duplicate add fails with 409 conflict and a
// progress detail, and succeeds as an update when upsert is set.
func TestHTTPCorpusUpsert(t *testing.T) {
	srv, c, _ := newServeTestServer(t)

	resp := postJSON(t, srv.URL+"/v1/corpus/add", corpusAddRequest{
		Corpus:  "products",
		Records: []serve.Record{{ID: "r0", Attrs: map[string]string{"name": "acme corp intl"}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add = %d, want 409", resp.StatusCode)
	}
	eb := decodeError(t, resp.Body)
	if eb.Code != "conflict" || !strings.Contains(eb.Detail, "0 of 1") {
		t.Fatalf("conflict envelope = %+v", eb)
	}

	uresp := postJSON(t, srv.URL+"/v1/corpus/add", corpusAddRequest{
		Corpus:  "products",
		Records: []serve.Record{{ID: "r0", Attrs: map[string]string{"name": "acme corp intl"}}},
		Upsert:  true,
	})
	defer uresp.Body.Close()
	if uresp.StatusCode != http.StatusOK {
		t.Fatalf("upsert add = %d, want 200", uresp.StatusCode)
	}
	if got := c.Stats().Records; got != 3 {
		t.Fatalf("records after upsert = %d, want 3", got)
	}
}

// TestHTTPServeErrors covers the structured envelope on the serving
// routes: unknown corpus, unconfigured registry, and bad JSON.
func TestHTTPServeErrors(t *testing.T) {
	srv, _, _ := newServeTestServer(t)

	resp := postJSON(t, srv.URL+"/v1/match", matchRequest{
		Corpus: "ghosts",
		Record: serve.Record{ID: "q", Attrs: map[string]string{"name": "x"}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown corpus = %d, want 404", resp.StatusCode)
	}
	eb := decodeError(t, resp.Body)
	if eb.Code != "unknown_corpus" || !strings.Contains(eb.Detail, "products") {
		t.Fatalf("unknown_corpus envelope = %+v", eb)
	}

	// A server without WithCorpora 404s every serving route.
	bare, _ := newTestServer(t)
	bresp := postJSON(t, bare.URL+"/v1/match", matchRequest{Corpus: "products"})
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unconfigured match = %d, want 404", bresp.StatusCode)
	}
	if eb := decodeError(t, bresp.Body); eb.Code != "unknown_corpus" || !strings.Contains(eb.Detail, "WithCorpora") {
		t.Fatalf("unconfigured envelope = %+v", eb)
	}

	jresp, err := http.Post(srv.URL+"/v1/corpus/add", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d, want 400", jresp.StatusCode)
	}
	if eb := decodeError(t, jresp.Body); eb.Code != "bad_json" {
		t.Fatalf("bad_json envelope = %+v", eb)
	}
}

// TestHTTPMatchOverloaded: when the pool refuses, the route answers 429
// with Retry-After and the overloaded code — HTTP backpressure end to end.
// The queue is filled out-of-band with expensive queries (Pool.Submit is
// non-blocking), so the HTTP request arrives at a provably full queue.
func TestHTTPMatchOverloaded(t *testing.T) {
	srv, _, p := newServeTestServer(t)
	// A query with many distinct tokens keeps the single worker busy long
	// enough that the tasks queued behind it cannot be dequeued before the
	// HTTP round trip below completes.
	// Known tokens first so the query has candidates and cannot take the
	// zero-candidate early exit; the distinct tail makes ephemeral
	// interning the dominant cost.
	var sb strings.Builder
	sb.WriteString("acme corp inc globex llc ")
	for i := 0; i < 250000; i++ {
		fmt.Fprintf(&sb, "t%d ", i)
	}
	heavy := serve.Record{ID: "heavy", Attrs: map[string]string{"name": sb.String()}}
	got429 := false
	for attempt := 0; attempt < 20 && !got429; attempt++ {
		// Fill the queue: the worker slot plus every queue slot.
		for {
			if _, err := p.Submit(context.Background(), heavy); err != nil {
				if !errors.Is(err, serve.ErrOverloaded) {
					t.Fatal(err)
				}
				break
			}
		}
		resp := postJSON(t, srv.URL+"/v1/match", matchRequest{
			Corpus: "products",
			Record: serve.Record{ID: "q", Attrs: map[string]string{"name": "acme"}},
		})
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			// The hint is derived from queue depth and measured service
			// time, so the exact value varies; it must be a whole number
			// of seconds in the clamp range.
			if got, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || got < 1 || got > 30 {
				t.Errorf("Retry-After = %q, want an integer in [1, 30]", resp.Header.Get("Retry-After"))
			}
			if eb := decodeError(t, resp.Body); eb.Code != "overloaded" {
				t.Errorf("overloaded envelope = %+v", eb)
			}
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !got429 {
		t.Fatal("full queue never surfaced a 429")
	}
}
