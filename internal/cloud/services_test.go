package cloud

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/table"
)

// svc runs one service directly against a context.
func svc(t *testing.T, reg *Registry, ctx *JobContext, name string, args Args) any {
	t.Helper()
	s, err := reg.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(ctx, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

// svcErr runs a service expecting an error.
func svcErr(t *testing.T, reg *Registry, ctx *JobContext, name string, args Args) {
	t.Helper()
	s, err := reg.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, args); err == nil {
		t.Fatalf("%s: want error with args %v", name, args)
	}
}

// loadedCtx returns a context with two keyed tables "a" and "b" loaded.
func loadedCtx(t *testing.T, reg *Registry) (*JobContext, *datagen.Task) {
	t.Helper()
	task, err := datagen.Generate(datagen.Spec{
		Name: "svc", Domain: datagen.PersonDomain(),
		SizeA: 150, SizeB: 150, MatchFraction: 0.5, Typo: 0.2, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewJobContext(label.NewOracle(task.Gold), 9)
	var csvA, csvB strings.Builder
	if err := task.A.WriteCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	if err := task.B.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	svc(t, reg, ctx, "upload_dataset", Args{"csv": csvA.String(), "out": "a"})
	svc(t, reg, ctx, "upload_dataset", Args{"csv": csvB.String(), "out": "b"})
	svc(t, reg, ctx, "set_key", Args{"table": "a", "key": "id"})
	svc(t, reg, ctx, "set_key", Args{"table": "b", "key": "id"})
	return ctx, task
}

func TestProfileService(t *testing.T) {
	reg := NewRegistry()
	ctx, _ := loadedCtx(t, reg)
	out := svc(t, reg, ctx, "profile_dataset", Args{"table": "a"})
	prof, ok := out.(table.TableProfile)
	if !ok {
		t.Fatalf("profile output = %T", out)
	}
	if prof.Rows != 150 {
		t.Errorf("profile rows = %d", prof.Rows)
	}
	svcErr(t, reg, ctx, "profile_dataset", Args{"table": "ghost"})
}

func TestEditMetadataService(t *testing.T) {
	reg := NewRegistry()
	ctx, _ := loadedCtx(t, reg)
	svc(t, reg, ctx, "edit_metadata", Args{"table": "a", "name": "renamed"})
	tab, err := ctx.Table("a")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "renamed" {
		t.Errorf("name = %q", tab.Name())
	}
	svcErr(t, reg, ctx, "edit_metadata", Args{"table": "a"})
}

func TestDownSampleService(t *testing.T) {
	reg := NewRegistry()
	ctx, _ := loadedCtx(t, reg)
	svc(t, reg, ctx, "down_sample", Args{"a": "a", "b": "b", "size_a": 50, "size_b": 40})
	as, err := ctx.Table("a_sample")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := ctx.Table("b_sample")
	if err != nil {
		t.Fatal(err)
	}
	if as.Len() != 50 || bs.Len() != 40 {
		t.Errorf("downsample = %d/%d", as.Len(), bs.Len())
	}
}

func TestBlockingRulePipelineServices(t *testing.T) {
	reg := NewRegistry()
	ctx, task := loadedCtx(t, reg)

	svc(t, reg, ctx, "overlap_block", Args{"a": "a", "b": "b", "k": 1, "out": "cand"})
	svc(t, reg, ctx, "generate_features", Args{"a": "a", "b": "b", "out": "features"})
	svc(t, reg, ctx, "extract_feature_vectors", Args{"features": "features", "pairs": "cand", "out": "vectors"})
	svc(t, reg, ctx, "active_learning", Args{"vectors": "vectors", "out": "forest", "max_rounds": 5})
	out := svc(t, reg, ctx, "extract_blocking_rules", Args{"forest": "forest", "features": "features", "out": "rules"})
	if !strings.Contains(out.(string), "rules") {
		t.Errorf("extract output = %v", out)
	}
	rsv, _ := ctx.Get("rules")
	if rs := rsv.(rules.RuleSet); rs.Len() == 0 {
		t.Fatal("no rules extracted")
	}
	svc(t, reg, ctx, "evaluate_blocking_rules", Args{"rules": "rules", "vectors": "vectors", "out": "precise"})
	svc(t, reg, ctx, "execute_blocking_rules", Args{"a": "a", "b": "b", "rules": "precise", "features": "features", "out": "blocked"})
	blocked, err := ctx.Table("blocked")
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Len() == 0 {
		t.Fatal("rule blocking produced no candidates")
	}
	// Debug the blocked set.
	missed := svc(t, reg, ctx, "debug_blocker", Args{"pairs": "blocked", "top_k": 5})
	if _, ok := missed.([]struct {
		LID, RID string
		Sim      float64
	}); ok {
		t.Log("unexpected concrete type but fine")
	}
	_ = task
}

func TestCrowdLabelService(t *testing.T) {
	reg := NewRegistry()
	task, err := datagen.Generate(datagen.Spec{
		Name: "crowdsvc", Domain: datagen.BookDomain(),
		SizeA: 80, SizeB: 80, MatchFraction: 0.5, Typo: 0.1, Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	crowd := label.NewCrowd(task.Gold, 1)
	ctx := NewJobContext(crowd, 3)
	var csvA, csvB strings.Builder
	if err := task.A.WriteCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	if err := task.B.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	svc(t, reg, ctx, "upload_dataset", Args{"csv": csvA.String(), "out": "a"})
	svc(t, reg, ctx, "upload_dataset", Args{"csv": csvB.String(), "out": "b"})
	svc(t, reg, ctx, "set_key", Args{"table": "a", "key": "id"})
	svc(t, reg, ctx, "set_key", Args{"table": "b", "key": "id"})
	svc(t, reg, ctx, "overlap_block", Args{"a": "a", "b": "b", "out": "cand"})
	svc(t, reg, ctx, "sample_pairs", Args{"pairs": "cand", "n": 30, "out": "s"})
	svc(t, reg, ctx, "crowd_label_pairs", Args{"pairs": "s", "out": "labels"})
	st := crowd.Stats()
	if st.Questions != 30 {
		t.Errorf("crowd questions = %d", st.Questions)
	}
	if st.CostUSD <= 0 {
		t.Error("crowd labeling should cost money")
	}
}

func TestTrainPredictEvaluateServices(t *testing.T) {
	reg := NewRegistry()
	ctx, task := loadedCtx(t, reg)
	svc(t, reg, ctx, "overlap_block", Args{"a": "a", "b": "b", "k": 2, "out": "cand"})
	svc(t, reg, ctx, "generate_features", Args{"a": "a", "b": "b", "out": "features"})
	svc(t, reg, ctx, "sample_pairs", Args{"pairs": "cand", "n": 120, "out": "s"})
	svc(t, reg, ctx, "extract_feature_vectors", Args{"features": "features", "pairs": "s", "out": "sv"})
	svc(t, reg, ctx, "label_pairs", Args{"pairs": "s", "out": "labels"})
	// Unknown model errors.
	svcErr(t, reg, ctx, "train_classifier", Args{"vectors": "sv", "labels": "labels", "model": "ghost"})
	svc(t, reg, ctx, "train_classifier", Args{"vectors": "sv", "labels": "labels", "model": "decision_tree", "out": "clf"})
	cv, _ := ctx.Get("clf")
	if _, ok := cv.(ml.Classifier); !ok {
		t.Fatalf("stored classifier = %T", cv)
	}
	svc(t, reg, ctx, "extract_feature_vectors", Args{"features": "features", "pairs": "cand", "out": "cv"})
	svc(t, reg, ctx, "predict_matches", Args{"vectors": "cv", "classifier": "clf", "out": "matches"})
	matches, err := ctx.Table("matches")
	if err != nil {
		t.Fatal(err)
	}
	if matches.Len() == 0 {
		t.Fatal("no matches predicted")
	}
	acc := svc(t, reg, ctx, "evaluate_matches", Args{"matches": "matches", "n": 30}).(float64)
	if acc < 0.5 {
		t.Errorf("spot-check accuracy = %.2f", acc)
	}
	_ = task
}

func TestTrainClassifierMismatchedStores(t *testing.T) {
	reg := NewRegistry()
	ctx, _ := loadedCtx(t, reg)
	svc(t, reg, ctx, "overlap_block", Args{"a": "a", "b": "b", "out": "cand"})
	svc(t, reg, ctx, "generate_features", Args{"a": "a", "b": "b", "out": "features"})
	svc(t, reg, ctx, "sample_pairs", Args{"pairs": "cand", "n": 20, "out": "s1"})
	svc(t, reg, ctx, "sample_pairs", Args{"pairs": "cand", "n": 20, "out": "s2"})
	svc(t, reg, ctx, "extract_feature_vectors", Args{"features": "features", "pairs": "s1", "out": "v1"})
	svc(t, reg, ctx, "label_pairs", Args{"pairs": "s2", "out": "l2"})
	// Vectors from s1 with labels from s2 must be rejected.
	svcErr(t, reg, ctx, "train_classifier", Args{"vectors": "v1", "labels": "l2"})
}

func TestNewClassifierFactory(t *testing.T) {
	for _, name := range []string{"decision_tree", "random_forest", "logistic_regression", "naive_bayes", "linear_svm", "knn"} {
		c, err := newClassifier(name, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if c.Name() != name {
			t.Errorf("factory name mismatch: %q vs %q", c.Name(), name)
		}
	}
	if _, err := newClassifier("ghost", 1); err == nil {
		t.Error("want unknown-classifier error")
	}
}

// TestRegistryListSnapshotIsCopy is the dynamic pin of what the aliasleak
// check enforces statically: List hands out a fresh slice, so readers
// iterating a listing while another goroutine registers services never
// share slice memory with the registry. Under the race detector
// (make race) aliased state fails the run.
func TestRegistryListSnapshotIsCopy(t *testing.T) {
	reg := NewRegistry()
	before := len(reg.List())

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			err := reg.Register(&Service{
				Name: "scratch_" + strings.Repeat("x", 1+i%5) + string(rune('a'+i%26)),
				Doc:  "snapshot-copy test service",
				Run:  func(ctx *JobContext, args Args) (any, error) { return nil, nil },
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		listing := reg.List()
		// Scribbling over the snapshot must not corrupt the registry.
		for j := range listing {
			listing[j] = nil
		}
	}
	<-done
	for _, s := range reg.List() {
		if s == nil {
			t.Fatal("List returned a view of mutated internal state")
		}
	}
	if got := len(reg.List()); got <= before {
		t.Fatalf("writer registered nothing: %d services", got)
	}
}
