package cloud

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/label"
)

// Server is the HTTP façade over a Metamanager: the shape the envisioned
// cloud-native Magellan ecosystem (Figure 6) exposes its microservices in.
// It serves:
//
//	GET  /services   — the service catalog (Table 4)
//	POST /jobs       — submit a workflow DAG and block for its result
//	GET  /healthz    — liveness
//
// Interactive labeling cannot ride a synchronous HTTP call, so job
// payloads carry the gold matches ("gold": [["a1","b1"], ...]) from which
// a simulated labeler is built — the same substitution the rest of the
// reproduction uses for humans.
type Server struct {
	mm *Metamanager
}

// NewServer wraps a metamanager.
func NewServer(mm *Metamanager) *Server { return &Server{mm: mm} }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /services", s.handleServices)
	mux.HandleFunc("POST /jobs", s.handleJobs)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// serviceInfo is the JSON form of one catalog entry.
type serviceInfo struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Composite bool   `json:"composite"`
	Doc       string `json:"doc"`
}

func (s *Server) handleServices(w http.ResponseWriter, r *http.Request) {
	var out []serviceInfo
	for _, svc := range s.mm.Registry().List() {
		out = append(out, serviceInfo{
			Name: svc.Name, Kind: svc.Kind.String(), Composite: svc.Composite, Doc: svc.Doc,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// jobRequest is the POST /jobs payload.
type jobRequest struct {
	Name  string      `json:"name"`
	Seed  int64       `json:"seed"`
	Gold  [][2]string `json:"gold"`
	Noise float64     `json:"labeler_error"`
	Steps []struct {
		ID      string         `json:"id"`
		Service string         `json:"service"`
		Args    map[string]any `json:"args"`
		After   []string       `json:"after"`
	} `json:"steps"`
}

// jobResponse is the POST /jobs reply.
type jobResponse struct {
	Name  string `json:"name"`
	Error string `json:"error,omitempty"`
	Steps []struct {
		Step    string `json:"step"`
		Service string `json:"service"`
		Output  string `json:"output,omitempty"`
		Error   string `json:"error,omitempty"`
		Skipped bool   `json:"skipped,omitempty"`
	} `json:"steps"`
	Questions int     `json:"questions"`
	CostUSD   float64 `json:"cost_usd"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad json: " + err.Error()})
		return
	}
	gold := label.NewGold(req.Gold)
	var lab label.Labeler
	if req.Noise > 0 {
		lab = label.NewNoisyUser(gold, req.Noise, req.Seed)
	} else {
		lab = label.NewOracle(gold)
	}
	ctx := NewJobContext(lab, req.Seed)
	job := &Job{Name: req.Name, Ctx: ctx}
	for _, st := range req.Steps {
		job.Steps = append(job.Steps, Step{ID: st.ID, Service: st.Service, Args: st.Args, After: st.After})
	}
	res := s.mm.Submit(job)

	resp := jobResponse{Name: res.Name}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	for _, sr := range res.Steps {
		entry := struct {
			Step    string `json:"step"`
			Service string `json:"service"`
			Output  string `json:"output,omitempty"`
			Error   string `json:"error,omitempty"`
			Skipped bool   `json:"skipped,omitempty"`
		}{Step: sr.Step, Service: sr.Service, Skipped: sr.Skipped}
		if sr.Output != nil {
			entry.Output = fmt.Sprint(sr.Output)
		}
		if sr.Err != nil {
			entry.Error = sr.Err.Error()
		}
		resp.Steps = append(resp.Steps, entry)
	}
	st := lab.Stats()
	resp.Questions = st.Questions
	resp.CostUSD = st.CostUSD
	status := http.StatusOK
	if res.Err != nil {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
