package cloud

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/label"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Server is the HTTP façade over a Metamanager: the shape the envisioned
// cloud-native Magellan ecosystem (Figure 6) exposes its microservices in.
// The API is versioned under /v1:
//
//	GET  /v1/services      — the service catalog (Table 4)
//	POST /v1/jobs          — submit a workflow DAG and block for its result
//	GET  /v1/healthz       — liveness plus per-engine queue/worker state
//	GET  /v1/metrics       — Prometheus text exposition of the obs registry
//	GET  /v1/corpus        — serving corpora and their stats (WithCorpora)
//	POST /v1/corpus/add    — add/update records in a serving corpus
//	POST /v1/corpus/delete — delete records from a serving corpus
//	POST /v1/match         — match one record against a serving corpus
//	GET  /debug/pprof/*    — the standard Go profiler endpoints (unversioned)
//
// The legacy unversioned routes (/services, /jobs, /healthz, /metrics)
// answer with 308 Permanent Redirect to their /v1 twins — 308 preserves
// the method and body, so redirect-following clients keep POSTing.
//
// Interactive labeling cannot ride a synchronous HTTP call, so job
// payloads carry the gold matches ("gold": [["a1","b1"], ...]) from which
// a simulated labeler is built — the same substitution the rest of the
// reproduction uses for humans.
//
// Request-level failures return a structured JSON error envelope:
//
//	{"error": {"code": "bad_json", "message": "...", "detail": "..."}}
//
// with codes bad_json (400), invalid_dag (400), payload_too_large (413),
// unknown_corpus (404), conflict (409), overloaded (429), and
// encode_failed (500); detail is optional operator-facing context. A job
// that executed but failed returns 422 with the per-step results.
type Server struct {
	mm       *Metamanager
	registry *obs.Registry
	corpora  *serve.Registry
	timeout  time.Duration
	maxBody  int64
}

// ServerOption configures a Server; see WithRequestTimeout,
// WithMaxBodySize, and WithMetrics.
type ServerOption func(*Server)

// WithRequestTimeout bounds each job submission: the request context is
// cancelled after d, which stops the remaining DAG steps. 0 (the default)
// means no server-imposed deadline — jobs still stop if the client
// disconnects.
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.timeout = d }
}

// WithMaxBodySize caps the POST /jobs payload in bytes; larger requests
// get a 413. The default is 8 MiB.
func WithMaxBodySize(n int64) ServerOption {
	return func(s *Server) { s.maxBody = n }
}

// WithCorpora attaches a serving-corpus registry, enabling the /v1/corpus
// and /v1/match routes. Without it those routes answer 404 unknown_corpus.
func WithCorpora(reg *serve.Registry) ServerOption {
	return func(s *Server) { s.corpora = reg }
}

// WithMetrics replaces the server's own registry, so the process can share
// one registry between the server, the metamanager, and anything else that
// records. /metrics renders whatever registry the server holds.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.registry = reg }
}

// NewServer wraps a metamanager. By default the server owns a fresh
// metrics registry with the standard metric families pre-declared; pass
// WithMetrics to share one with the metamanager (NewMetamanager takes its
// recorder via EngineConfig.Metrics).
func NewServer(mm *Metamanager, opts ...ServerOption) *Server {
	s := &Server{mm: mm, maxBody: 8 << 20}
	for _, o := range opts {
		o(s)
	}
	if s.registry == nil {
		s.registry = obs.NewRegistry()
	}
	obs.DescribeStandard(s.registry)
	return s
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/services", s.handleServices)
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/corpus", s.handleCorpusList)
	mux.HandleFunc("POST /v1/corpus/add", s.handleCorpusAdd)
	mux.HandleFunc("POST /v1/corpus/delete", s.handleCorpusDelete)
	mux.HandleFunc("POST /v1/match", s.handleMatch)
	// Legacy unversioned routes: 308 keeps method and body intact, so
	// old clients that follow redirects continue to work.
	for _, route := range []struct{ pattern, target string }{
		{"GET /services", "/v1/services"},
		{"POST /jobs", "/v1/jobs"},
		{"GET /healthz", "/v1/healthz"},
		{"GET /metrics", "/v1/metrics"},
	} {
		target := route.target
		mux.HandleFunc(route.pattern, func(w http.ResponseWriter, r *http.Request) {
			http.Redirect(w, r, target, http.StatusPermanentRedirect)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// healthResponse is the GET /healthz reply.
type healthResponse struct {
	Status       string        `json:"status"`
	Engines      []EngineState `json:"engines"`
	JobsInFlight int           `json:"jobs_in_flight"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:       "ok",
		Engines:      s.mm.EngineStates(),
		JobsInFlight: s.mm.JobsInFlight(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//emlint:allow errdrop -- a mid-response write failure means the scraper hung up; there is no channel left to report on
	_ = s.registry.WritePrometheus(w)
}

// serviceInfo is the JSON form of one catalog entry.
type serviceInfo struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Composite bool   `json:"composite"`
	Doc       string `json:"doc"`
}

func (s *Server) handleServices(w http.ResponseWriter, r *http.Request) {
	var out []serviceInfo
	for _, svc := range s.mm.Registry().List() {
		out = append(out, serviceInfo{
			Name: svc.Name, Kind: svc.Kind.String(), Composite: svc.Composite, Doc: svc.Doc,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// jobRequest is the POST /jobs payload.
type jobRequest struct {
	Name  string      `json:"name"`
	Seed  int64       `json:"seed"`
	Gold  [][2]string `json:"gold"`
	Noise float64     `json:"labeler_error"`
	Steps []struct {
		ID      string         `json:"id"`
		Service string         `json:"service"`
		Args    map[string]any `json:"args"`
		After   []string       `json:"after"`
	} `json:"steps"`
}

// jobResponse is the POST /jobs reply.
type jobResponse struct {
	Name  string `json:"name"`
	Error string `json:"error,omitempty"`
	Steps []struct {
		Step    string `json:"step"`
		Service string `json:"service"`
		Output  string `json:"output,omitempty"`
		Error   string `json:"error,omitempty"`
		Skipped bool   `json:"skipped,omitempty"`
	} `json:"steps"`
	Questions int     `json:"questions"`
	CostUSD   float64 `json:"cost_usd"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), "raise the server's -maxbody or shrink the payload")
			return
		}
		writeError(w, http.StatusBadRequest, codeBadJSON, err.Error(), "")
		return
	}
	gold := label.NewGold(req.Gold)
	var lab label.Labeler
	if req.Noise > 0 {
		lab = label.NewNoisyUser(gold, req.Noise, req.Seed)
	} else {
		lab = label.NewOracle(gold)
	}
	jctx := NewJobContext(lab, req.Seed)
	jctx.Metrics = s.registry
	job := &Job{Name: req.Name, Ctx: jctx}
	for _, st := range req.Steps {
		job.Steps = append(job.Steps, Step{ID: st.ID, Service: st.Service, Args: st.Args, After: st.After})
	}
	// Validate up front so a malformed DAG is a client error, not a job
	// failure.
	if err := validateDAG(job); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidDAG, err.Error(), "")
		return
	}
	res := s.mm.Submit(ctx, job)

	resp := jobResponse{Name: res.Name}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	for _, sr := range res.Steps {
		entry := struct {
			Step    string `json:"step"`
			Service string `json:"service"`
			Output  string `json:"output,omitempty"`
			Error   string `json:"error,omitempty"`
			Skipped bool   `json:"skipped,omitempty"`
		}{Step: sr.Step, Service: sr.Service, Skipped: sr.Skipped}
		if sr.Output != nil {
			entry.Output = fmt.Sprint(sr.Output)
		}
		if sr.Err != nil {
			entry.Error = sr.Err.Error()
		}
		resp.Steps = append(resp.Steps, entry)
	}
	st := lab.Stats()
	resp.Questions = st.Questions
	resp.CostUSD = st.CostUSD
	status := http.StatusOK
	if res.Err != nil {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// errorBody is the structured request-level error envelope: a stable
// machine-readable code, a human-readable message, and optional
// operator-facing detail.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

func writeError(w http.ResponseWriter, status int, code, message, detail string) {
	writeJSON(w, status, map[string]errorBody{"error": {Code: code, Message: message, Detail: detail}})
}

// writeJSON encodes v before touching the response so an encoding failure
// can still become a clean 500 instead of a broken 200 body, and sets
// Content-Type ahead of WriteHeader (headers are frozen after it).
//
//emlint:allow errdrop -- body writes after WriteHeader can only fail when the client hung up; nothing can be reported to it anymore
//emlint:allow httperrors -- this is the envelope's own terminal 500: marshal failed, so the error body is hand-rolled
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`, codeEncodeFailed, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
	w.Write([]byte("\n"))
}
