package cloud

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, *Metamanager) {
	t.Helper()
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	srv := httptest.NewServer(NewServer(mm).Handler())
	t.Cleanup(func() {
		srv.Close()
		mm.Close()
	})
	return srv, mm
}

func TestHTTPHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestHTTPServices(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/services")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []serviceInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 20 {
		t.Errorf("services = %d, want 20", len(list))
	}
	kinds := map[string]bool{}
	for _, s := range list {
		kinds[s.Kind] = true
		if s.Doc == "" {
			t.Errorf("service %s has no doc", s.Name)
		}
	}
	for _, k := range []string{"batch", "user", "crowd"} {
		if !kinds[k] {
			t.Errorf("no %s-engine service in catalog", k)
		}
	}
}

func TestHTTPSubmitJob(t *testing.T) {
	srv, _ := newTestServer(t)
	payload := map[string]any{
		"name": "tiny",
		"seed": 1,
		"gold": [][2]string{{"1", "1"}},
		"steps": []map[string]any{
			{"id": "up", "service": "upload_dataset",
				"args": map[string]any{"csv": "id,name\n1,acme corp\n2,globex inc\n", "out": "t"}},
			{"id": "key", "service": "set_key",
				"args": map[string]any{"table": "t", "key": "id"}, "after": []string{"up"}},
			{"id": "prof", "service": "profile_dataset",
				"args": map[string]any{"table": "t"}, "after": []string{"key"}},
		},
	}
	body := mustJSON(t, payload)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Error != "" {
		t.Fatalf("job error: %s", jr.Error)
	}
	if len(jr.Steps) != 3 {
		t.Fatalf("steps = %d", len(jr.Steps))
	}
	for _, s := range jr.Steps {
		if s.Error != "" {
			t.Errorf("step %s failed: %s", s.Step, s.Error)
		}
	}
}

func TestHTTPSubmitBadJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPSubmitFailingJob(t *testing.T) {
	srv, _ := newTestServer(t)
	payload := map[string]any{
		"name": "broken",
		"steps": []map[string]any{
			{"id": "x", "service": "no_such_service", "args": map[string]any{}},
		},
	}
	body := mustJSON(t, payload)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", resp.StatusCode)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Error == "" {
		t.Error("error missing from response")
	}
}

func TestHTTPNoisyLabeler(t *testing.T) {
	srv, _ := newTestServer(t)
	payload := map[string]any{
		"name":          "noisy",
		"seed":          2,
		"labeler_error": 0.5,
		"gold":          [][2]string{},
		"steps": []map[string]any{
			{"id": "up", "service": "upload_dataset",
				"args": map[string]any{"csv": "id\n1\n", "out": "t"}},
		},
	}
	body := mustJSON(t, payload)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	closeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
