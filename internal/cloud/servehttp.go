package cloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/serve"
)

// The /v1/corpus and /v1/match handlers expose a serve.Registry through
// the versioned API. Every route takes the corpus name in the JSON body
// (one registry serves many corpora, the CloudMatcher
// millions-of-users shape).

// decodeBody decodes a JSON request body under the server's size cap,
// writing the structured error itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), "raise the server's -maxbody or shrink the payload")
			return false
		}
		writeError(w, http.StatusBadRequest, codeBadJSON, err.Error(), "")
		return false
	}
	return true
}

// corpusEntry resolves the named corpus, writing the structured error
// itself when serving is not configured or the name is unknown.
func (s *Server) corpusEntry(w http.ResponseWriter, name string) (*serve.Entry, bool) {
	if s.corpora == nil {
		writeError(w, http.StatusNotFound, codeUnknownCorpus, "no serving corpora configured",
			"start the server with corpus serving enabled (cloud.WithCorpora)")
		return nil, false
	}
	e, ok := s.corpora.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownCorpus, fmt.Sprintf("no corpus %q", name),
			fmt.Sprintf("registered corpora: %v", s.corpora.Names()))
		return nil, false
	}
	return e, true
}

// corpusInfo is one GET /v1/corpus entry.
type corpusInfo struct {
	Name string `json:"name"`
	serve.Stats
}

func (s *Server) handleCorpusList(w http.ResponseWriter, r *http.Request) {
	out := []corpusInfo{}
	if s.corpora != nil {
		for _, name := range s.corpora.Names() {
			if e, ok := s.corpora.Get(name); ok {
				out = append(out, corpusInfo{Name: name, Stats: e.Corpus.Stats()})
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// corpusAddRequest is the POST /v1/corpus/add payload.
type corpusAddRequest struct {
	Corpus  string         `json:"corpus"`
	Records []serve.Record `json:"records"`
	// Upsert turns "already exists" into an Update instead of an error.
	Upsert bool `json:"upsert"`
}

// corpusMutationResponse reports one ingest batch.
type corpusMutationResponse struct {
	Corpus  string      `json:"corpus"`
	Applied int         `json:"applied"`
	Stats   serve.Stats `json:"stats"`
}

func (s *Server) handleCorpusAdd(w http.ResponseWriter, r *http.Request) {
	var req corpusAddRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	e, ok := s.corpusEntry(w, req.Corpus)
	if !ok {
		return
	}
	applied := 0
	for _, rec := range req.Records {
		err := e.Corpus.Add(rec)
		if err != nil && req.Upsert {
			err = e.Corpus.Update(rec)
		}
		if err != nil {
			writeError(w, http.StatusConflict, codeConflict, err.Error(),
				fmt.Sprintf("%d of %d records were applied before the failure", applied, len(req.Records)))
			return
		}
		applied++
	}
	writeJSON(w, http.StatusOK, corpusMutationResponse{Corpus: req.Corpus, Applied: applied, Stats: e.Corpus.Stats()})
}

// corpusDeleteRequest is the POST /v1/corpus/delete payload.
type corpusDeleteRequest struct {
	Corpus string   `json:"corpus"`
	IDs    []string `json:"ids"`
}

func (s *Server) handleCorpusDelete(w http.ResponseWriter, r *http.Request) {
	var req corpusDeleteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	e, ok := s.corpusEntry(w, req.Corpus)
	if !ok {
		return
	}
	applied := 0
	for _, id := range req.IDs {
		if err := e.Corpus.Delete(id); err != nil {
			writeError(w, http.StatusConflict, codeConflict, err.Error(),
				fmt.Sprintf("%d of %d ids were deleted before the failure", applied, len(req.IDs)))
			return
		}
		applied++
	}
	writeJSON(w, http.StatusOK, corpusMutationResponse{Corpus: req.Corpus, Applied: applied, Stats: e.Corpus.Stats()})
}

// matchRequest is the POST /v1/match payload.
type matchRequest struct {
	Corpus string       `json:"corpus"`
	Record serve.Record `json:"record"`
}

// matchResponse is the POST /v1/match reply.
type matchResponse struct {
	Corpus string             `json:"corpus"`
	Pairs  []serve.ScoredPair `json:"pairs"`
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req matchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	e, ok := s.corpusEntry(w, req.Corpus)
	if !ok {
		return
	}
	pairs, err := e.Pool.Match(r.Context(), req.Record)
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		retry := e.Pool.RetryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, codeOverloaded, err.Error(),
			fmt.Sprintf("the match queue is full; back off %ds and retry", retry))
		return
	case errors.Is(err, serve.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, codeOverloaded, err.Error(), "the serving pool is shut down")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, codeBadRecord, err.Error(), "")
		return
	}
	writeJSON(w, http.StatusOK, matchResponse{Corpus: req.Corpus, Pairs: pairs})
}
