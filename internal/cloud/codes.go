package cloud

// Canonical request-level error codes of the HTTP API. Every error
// response writes exactly one of these into the envelope's "code" field;
// clients branch on the code, never on message text. The emlint
// httperrors check enforces that handlers pass one of these named
// constants to writeError — an inline string would mint an unregistered
// code that drifts out of the docs (GUIDE.md "HTTP API") and out of
// client switch statements.
const (
	// codeBadJSON: the request body is not valid JSON for the route's
	// schema (400).
	codeBadJSON = "bad_json"
	// codeInvalidDAG: the submitted workflow graph fails validation —
	// unknown node kind, cycle, missing input (400).
	codeInvalidDAG = "invalid_dag"
	// codePayloadTooLarge: the request body exceeds the route's byte
	// budget (413).
	codePayloadTooLarge = "payload_too_large"
	// codeUnknownCorpus: the named serving corpus does not exist, or no
	// corpora are configured at all (404).
	codeUnknownCorpus = "unknown_corpus"
	// codeConflict: a version precondition failed on a corpus mutation
	// (409).
	codeConflict = "conflict"
	// codeOverloaded: the serving pool rejected the request — queue full
	// (429) or shut down (503).
	codeOverloaded = "overloaded"
	// codeEncodeFailed: the response payload could not be marshaled; the
	// 500 of last resort written by writeJSON itself.
	codeEncodeFailed = "encode_failed"
	// codeBadRecord: a corpus mutation carries a record that fails
	// validation (400).
	codeBadRecord = "bad_record"
)
