package cloud

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/active"
	"repro/internal/block"
	"repro/internal/falcon"
	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/table"
)

// vectors is the stored form of extracted feature matrices.
type vectors struct {
	X     [][]float64
	Names []string
	Pairs *table.Table
}

// labels is the stored form of a labeling round, aligned with a pair
// table's rows.
type labels struct {
	Y     []int
	Pairs *table.Table
}

// registerBasic installs the 18 basic services of Table 4.
func registerBasic(r *Registry) {
	mustRegister := func(s *Service) {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}

	mustRegister(&Service{
		Name: "upload_dataset", Kind: KindBatch,
		Doc: "parse a CSV payload into a named table",
		Run: func(ctx *JobContext, a Args) (any, error) {
			csv, err := a.Str("csv")
			if err != nil {
				return nil, err
			}
			out, err := a.Str("out")
			if err != nil {
				return nil, err
			}
			t, err := table.ReadCSV(strings.NewReader(csv), out)
			if err != nil {
				return nil, err
			}
			ctx.Put(out, t)
			return fmt.Sprintf("%d rows", t.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "set_key", Kind: KindUser,
		Doc: "declare (and validate) a table's key column",
		Run: func(ctx *JobContext, a Args) (any, error) {
			t, err := argTable(ctx, a, "table")
			if err != nil {
				return nil, err
			}
			key, err := a.Str("key")
			if err != nil {
				return nil, err
			}
			return nil, t.SetKey(key)
		},
	})

	mustRegister(&Service{
		Name: "profile_dataset", Kind: KindBatch,
		Doc: "per-column statistics of a table",
		Run: func(ctx *JobContext, a Args) (any, error) {
			t, err := argTable(ctx, a, "table")
			if err != nil {
				return nil, err
			}
			return t.Profile(a.IntOr("top_k", 5)), nil
		},
	})

	mustRegister(&Service{
		Name: "edit_metadata", Kind: KindUser,
		Doc: "rename a table (catalog metadata edit)",
		Run: func(ctx *JobContext, a Args) (any, error) {
			t, err := argTable(ctx, a, "table")
			if err != nil {
				return nil, err
			}
			name, err := a.Str("name")
			if err != nil {
				return nil, err
			}
			t.SetName(name)
			return nil, nil
		},
	})

	mustRegister(&Service{
		Name: "down_sample", Kind: KindBatch,
		Doc: "intelligently down-sample two tables preserving matches",
		Run: func(ctx *JobContext, a Args) (any, error) {
			at, err := argTable(ctx, a, "a")
			if err != nil {
				return nil, err
			}
			bt, err := argTable(ctx, a, "b")
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(ctx.Seed))
			as, bs, err := table.DownSample(at, bt, a.IntOr("size_a", 1000), a.IntOr("size_b", 1000), rng)
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out_a", "a_sample"), as)
			ctx.Put(a.StrOr("out_b", "b_sample"), bs)
			return fmt.Sprintf("%d/%d rows", as.Len(), bs.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "overlap_block", Kind: KindBatch,
		Doc: "token-overlap blocking into a candidate set",
		Run: func(ctx *JobContext, a Args) (any, error) {
			at, err := argTable(ctx, a, "a")
			if err != nil {
				return nil, err
			}
			bt, err := argTable(ctx, a, "b")
			if err != nil {
				return nil, err
			}
			var blk block.Blocker
			if attr := a.StrOr("attr", ""); attr != "" {
				blk = block.OverlapBlocker{Attr: attr, MinOverlap: a.IntOr("k", 1), Metrics: ctx.Metrics}
			} else {
				blk = block.WholeTupleOverlapBlocker{MinOverlap: a.IntOr("k", 1), Metrics: ctx.Metrics}
			}
			cand, err := blk.Block(at, bt, ctx.Catalog)
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "candidates"), cand)
			return fmt.Sprintf("%d pairs", cand.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "sample_pairs", Kind: KindBatch,
		Doc: "random sample of a pair table",
		Run: func(ctx *JobContext, a Args) (any, error) {
			p, err := argTable(ctx, a, "pairs")
			if err != nil {
				return nil, err
			}
			meta, ok := ctx.Catalog.PairMeta(p)
			if !ok {
				return nil, fmt.Errorf("cloud: %q is not a registered pair table", p.Name())
			}
			rng := rand.New(rand.NewSource(ctx.Seed + 1))
			s := p.Sample(a.IntOr("n", 100), rng)
			if err := ctx.Catalog.RegisterPair(s, meta); err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "pair_sample"), s)
			return fmt.Sprintf("%d pairs", s.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "generate_features", Kind: KindBatch,
		Doc: "auto-generate a similarity feature set for two tables",
		Run: func(ctx *JobContext, a Args) (any, error) {
			at, err := argTable(ctx, a, "a")
			if err != nil {
				return nil, err
			}
			bt, err := argTable(ctx, a, "b")
			if err != nil {
				return nil, err
			}
			fs, err := feature.AutoGenerate(at, bt)
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "features"), fs)
			return fmt.Sprintf("%d features", fs.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "extract_feature_vectors", Kind: KindBatch,
		Doc: "compute feature vectors for a candidate set",
		Run: func(ctx *JobContext, a Args) (any, error) {
			fs, err := argFeatures(ctx, a, "features")
			if err != nil {
				return nil, err
			}
			p, err := argTable(ctx, a, "pairs")
			if err != nil {
				return nil, err
			}
			x, err := feature.Vectors(fs, p, ctx.Catalog, feature.ExtractOptions{Metrics: ctx.Metrics})
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "vectors"), &vectors{X: x, Names: fs.Names(), Pairs: p})
			return fmt.Sprintf("%d vectors", len(x)), nil
		},
	})

	labelRun := func(ctx *JobContext, a Args) (any, error) {
		p, err := argTable(ctx, a, "pairs")
		if err != nil {
			return nil, err
		}
		meta, ok := ctx.Catalog.PairMeta(p)
		if !ok {
			return nil, fmt.Errorf("cloud: %q is not a registered pair table", p.Name())
		}
		y := make([]int, p.Len())
		for i := 0; i < p.Len(); i++ {
			if ctx.Labeler.Label(p.Get(i, meta.LID).AsString(), p.Get(i, meta.RID).AsString()) {
				y[i] = 1
			}
		}
		ctx.Put(a.StrOr("out", "labels"), &labels{Y: y, Pairs: p})
		return fmt.Sprintf("%d labels", len(y)), nil
	}
	mustRegister(&Service{
		Name: "label_pairs", Kind: KindUser,
		Doc: "the submitting user labels a pair sample", Run: labelRun,
	})
	mustRegister(&Service{
		Name: "crowd_label_pairs", Kind: KindCrowd,
		Doc: "crowd workers label a pair sample", Run: labelRun,
	})

	mustRegister(&Service{
		Name: "train_classifier", Kind: KindBatch,
		Doc: "train a matcher on labeled feature vectors",
		Run: func(ctx *JobContext, a Args) (any, error) {
			v, err := argVectors(ctx, a, "vectors")
			if err != nil {
				return nil, err
			}
			l, err := argLabels(ctx, a, "labels")
			if err != nil {
				return nil, err
			}
			if l.Pairs != v.Pairs {
				return nil, fmt.Errorf("cloud: labels and vectors come from different pair tables")
			}
			ds, err := ml.NewDataset(v.X, l.Y, v.Names)
			if err != nil {
				return nil, err
			}
			model, err := newClassifier(a.StrOr("model", "random_forest"), ctx.Seed)
			if err != nil {
				return nil, err
			}
			if err := model.Fit(ds); err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "classifier"), model)
			return model.Name(), nil
		},
	})

	mustRegister(&Service{
		Name: "predict_matches", Kind: KindBatch,
		Doc: "apply a trained matcher to a candidate set",
		Run: func(ctx *JobContext, a Args) (any, error) {
			v, err := argVectors(ctx, a, "vectors")
			if err != nil {
				return nil, err
			}
			cv, ok := ctx.Get(a.StrOr("classifier", "classifier"))
			if !ok {
				return nil, fmt.Errorf("cloud: no classifier in job store")
			}
			model, ok := cv.(ml.Classifier)
			if !ok {
				return nil, fmt.Errorf("cloud: stored classifier is %T", cv)
			}
			meta, ok := ctx.Catalog.PairMeta(v.Pairs)
			if !ok {
				return nil, fmt.Errorf("cloud: vector pair table unregistered")
			}
			matches, err := table.NewPairTable("matches", meta.LTable, meta.RTable, ctx.Catalog)
			if err != nil {
				return nil, err
			}
			for i := 0; i < v.Pairs.Len(); i++ {
				if ml.Predict(model, v.X[i]) == 1 {
					table.AppendPair(matches,
						v.Pairs.Get(i, meta.LID).AsString(),
						v.Pairs.Get(i, meta.RID).AsString())
				}
			}
			ctx.Put(a.StrOr("out", "matches"), matches)
			return fmt.Sprintf("%d matches", matches.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "evaluate_matches", Kind: KindUser,
		Doc: "the user spot-checks predicted matches (sampled accuracy)",
		Run: func(ctx *JobContext, a Args) (any, error) {
			m, err := argTable(ctx, a, "matches")
			if err != nil {
				return nil, err
			}
			meta, ok := ctx.Catalog.PairMeta(m)
			if !ok {
				return nil, fmt.Errorf("cloud: %q is not a registered pair table", m.Name())
			}
			rng := rand.New(rand.NewSource(ctx.Seed + 2))
			s := m.Sample(a.IntOr("n", 50), rng)
			correct := 0
			for i := 0; i < s.Len(); i++ {
				if ctx.Labeler.Label(s.Get(i, meta.LID).AsString(), s.Get(i, meta.RID).AsString()) {
					correct++
				}
			}
			if s.Len() == 0 {
				return 1.0, nil
			}
			return float64(correct) / float64(s.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "extract_blocking_rules", Kind: KindBatch,
		Doc: "mine candidate blocking rules from a random forest",
		Run: func(ctx *JobContext, a Args) (any, error) {
			fv, ok := ctx.Get(a.StrOr("forest", "forest"))
			if !ok {
				return nil, fmt.Errorf("cloud: no forest in job store")
			}
			forest, ok := fv.(*ml.RandomForest)
			if !ok {
				return nil, fmt.Errorf("cloud: stored forest is %T", fv)
			}
			fs, err := argFeatures(ctx, a, "features")
			if err != nil {
				return nil, err
			}
			rs, err := falcon.ExtractBlockingRules(forest, fs.Names())
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "rules"), rs)
			return fmt.Sprintf("%d rules", rs.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "evaluate_blocking_rules", Kind: KindUser,
		Doc: "the user reviews rules against labeled pairs; precise rules kept",
		Run: func(ctx *JobContext, a Args) (any, error) {
			rsv, ok := ctx.Get(a.StrOr("rules", "rules"))
			if !ok {
				return nil, fmt.Errorf("cloud: no rules in job store")
			}
			rs, ok := rsv.(rules.RuleSet)
			if !ok {
				return nil, fmt.Errorf("cloud: stored rules are %T", rsv)
			}
			v, err := argVectors(ctx, a, "vectors")
			if err != nil {
				return nil, err
			}
			meta, ok := ctx.Catalog.PairMeta(v.Pairs)
			if !ok {
				return nil, fmt.Errorf("cloud: vector pair table unregistered")
			}
			threshold := a.FloatOr("precision", 0.95)
			samples := a.IntOr("samples", 10)
			rng := rand.New(rand.NewSource(ctx.Seed + 3))
			var kept rules.RuleSet
			for _, r := range rs.Rules {
				c, err := rules.Compile(r, v.Names)
				if err != nil {
					continue
				}
				fired := make([]int, 0, len(v.X))
				for i := range v.X {
					if c.Fires(v.X[i]) {
						fired = append(fired, i)
					}
				}
				if len(fired) == 0 {
					continue
				}
				rng.Shuffle(len(fired), func(x, y int) { fired[x], fired[y] = fired[y], fired[x] })
				n := samples
				if n > len(fired) {
					n = len(fired)
				}
				nonMatch := 0
				for _, i := range fired[:n] {
					if !ctx.Labeler.Label(v.Pairs.Get(i, meta.LID).AsString(), v.Pairs.Get(i, meta.RID).AsString()) {
						nonMatch++
					}
				}
				if float64(nonMatch)/float64(n) >= threshold {
					kept.Add(r)
				}
			}
			ctx.Put(a.StrOr("out", "precise_rules"), kept)
			return fmt.Sprintf("%d/%d rules kept", kept.Len(), rs.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "execute_blocking_rules", Kind: KindBatch,
		Doc: "block two tables with a rule set over a token-overlap seed",
		Run: func(ctx *JobContext, a Args) (any, error) {
			at, err := argTable(ctx, a, "a")
			if err != nil {
				return nil, err
			}
			bt, err := argTable(ctx, a, "b")
			if err != nil {
				return nil, err
			}
			rsv, ok := ctx.Get(a.StrOr("rules", "precise_rules"))
			if !ok {
				return nil, fmt.Errorf("cloud: no rules in job store")
			}
			rs, ok := rsv.(rules.RuleSet)
			if !ok {
				return nil, fmt.Errorf("cloud: stored rules are %T", rsv)
			}
			fs, err := argFeatures(ctx, a, "features")
			if err != nil {
				return nil, err
			}
			seed := block.WholeTupleOverlapBlocker{MinOverlap: a.IntOr("k", 1), Metrics: ctx.Metrics}
			var cand *table.Table
			if rs.Len() > 0 {
				cand, err = block.RuleBlocker{Seed: seed, Rules: rs, Features: fs, Metrics: ctx.Metrics}.Block(at, bt, ctx.Catalog)
			} else {
				cand, err = seed.Block(at, bt, ctx.Catalog)
			}
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "candidates"), cand)
			return fmt.Sprintf("%d pairs", cand.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "debug_blocker", Kind: KindBatch,
		Doc: "surface likely matches a candidate set dropped",
		Run: func(ctx *JobContext, a Args) (any, error) {
			p, err := argTable(ctx, a, "pairs")
			if err != nil {
				return nil, err
			}
			return block.DebugBlocker(p, ctx.Catalog, a.IntOr("top_k", 20))
		},
	})

}

// registerComposite installs the 2 composite services.
func registerComposite(r *Registry) {
	mustRegister := func(s *Service) {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}

	mustRegister(&Service{
		Name: "active_learning", Kind: KindUser, Composite: true,
		Doc: "active-learn a random forest over a candidate set",
		Run: func(ctx *JobContext, a Args) (any, error) {
			v, err := argVectors(ctx, a, "vectors")
			if err != nil {
				return nil, err
			}
			meta, ok := ctx.Catalog.PairMeta(v.Pairs)
			if !ok {
				return nil, fmt.Errorf("cloud: vector pair table unregistered")
			}
			pool := &active.Pool{X: v.X, Names: v.Names}
			for i := 0; i < v.Pairs.Len(); i++ {
				pool.LIDs = append(pool.LIDs, v.Pairs.Get(i, meta.LID).AsString())
				pool.RIDs = append(pool.RIDs, v.Pairs.Get(i, meta.RID).AsString())
			}
			res, err := active.Learn(pool, ctx.Labeler, active.Config{
				Seed:      ctx.Seed + 5,
				SeedSize:  a.IntOr("seed_size", 20),
				BatchSize: a.IntOr("batch_size", 10),
				MaxRounds: a.IntOr("max_rounds", 20),
			})
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "forest"), res.Forest)
			return fmt.Sprintf("%d labels", res.Labeled.Len()), nil
		},
	})

	mustRegister(&Service{
		Name: "falcon", Kind: KindUser, Composite: true,
		Doc: "the end-to-end Falcon self-service EM workflow",
		Run: func(ctx *JobContext, a Args) (any, error) {
			at, err := argTable(ctx, a, "a")
			if err != nil {
				return nil, err
			}
			bt, err := argTable(ctx, a, "b")
			if err != nil {
				return nil, err
			}
			res, err := falcon.Run(at, bt, ctx.Labeler, ctx.Catalog, falcon.Config{
				SampleSize: a.IntOr("sample_size", 2000),
				Seed:       ctx.Seed + 6,
			})
			if err != nil {
				return nil, err
			}
			ctx.Put(a.StrOr("out", "matches"), res.Matches)
			ctx.Put(a.StrOr("out", "matches")+"_result", res)
			return fmt.Sprintf("%d matches, %d questions", res.Matches.Len(), res.TotalQuestions()), nil
		},
	})
}

func argTable(ctx *JobContext, a Args, key string) (*table.Table, error) {
	name, err := a.Str(key)
	if err != nil {
		return nil, err
	}
	return ctx.Table(name)
}

func argFeatures(ctx *JobContext, a Args, key string) (*feature.Set, error) {
	name := a.StrOr(key, key)
	v, ok := ctx.Get(name)
	if !ok {
		return nil, fmt.Errorf("cloud: no feature set %q in job store", name)
	}
	fs, ok := v.(*feature.Set)
	if !ok {
		return nil, fmt.Errorf("cloud: object %q is %T, not a feature set", name, v)
	}
	return fs, nil
}

func argVectors(ctx *JobContext, a Args, key string) (*vectors, error) {
	name := a.StrOr(key, key)
	v, ok := ctx.Get(name)
	if !ok {
		return nil, fmt.Errorf("cloud: no vectors %q in job store", name)
	}
	vv, ok := v.(*vectors)
	if !ok {
		return nil, fmt.Errorf("cloud: object %q is %T, not vectors", name, v)
	}
	return vv, nil
}

func argLabels(ctx *JobContext, a Args, key string) (*labels, error) {
	name := a.StrOr(key, key)
	v, ok := ctx.Get(name)
	if !ok {
		return nil, fmt.Errorf("cloud: no labels %q in job store", name)
	}
	lv, ok := v.(*labels)
	if !ok {
		return nil, fmt.Errorf("cloud: object %q is %T, not labels", name, v)
	}
	return lv, nil
}

// newClassifier instantiates a matcher by family name.
func newClassifier(name string, seed int64) (ml.Classifier, error) {
	switch name {
	case "decision_tree":
		return &ml.DecisionTree{Seed: seed}, nil
	case "random_forest":
		return &ml.RandomForest{Seed: seed}, nil
	case "logistic_regression":
		return &ml.LogisticRegression{Seed: seed}, nil
	case "naive_bayes":
		return &ml.GaussianNB{}, nil
	case "linear_svm":
		return &ml.LinearSVM{Seed: seed}, nil
	case "knn":
		return &ml.KNN{}, nil
	default:
		return nil, fmt.Errorf("cloud: unknown classifier %q", name)
	}
}
