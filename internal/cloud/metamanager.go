package cloud

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Step is one node of a submitted EM workflow DAG: a service invocation
// with dependencies on earlier steps.
type Step struct {
	// ID names the step within its job.
	ID string
	// Service is the registry name to invoke.
	Service string
	// Args parameterizes the invocation.
	Args Args
	// After lists step IDs that must complete first.
	After []string
}

// Job is one submitted EM workflow: a DAG of steps sharing a JobContext.
type Job struct {
	// Name labels the job in results.
	Name string
	// Steps is the DAG; slice order does not matter, After edges do.
	Steps []Step
	// Ctx is the job's store/labeler/catalog.
	Ctx *JobContext
}

// StepResult reports one executed (or skipped) step.
type StepResult struct {
	Job     string
	Step    string
	Service string
	Output  any
	Err     error
	// Skipped marks steps never run because a dependency failed.
	Skipped bool
}

// JobResult collects a finished job's step results in completion order.
type JobResult struct {
	Name  string
	Steps []StepResult
	Err   error // first step error, if any
}

// Find returns the result of the named step, or nil.
func (r *JobResult) Find(stepID string) *StepResult {
	for i := range r.Steps {
		if r.Steps[i].Step == stepID {
			return &r.Steps[i]
		}
	}
	return nil
}

// EngineConfig sizes the three engines' worker pools.
type EngineConfig struct {
	// BatchWorkers bounds concurrent batch fragments; 0 means 4.
	BatchWorkers int
	// UserWorkers bounds concurrent user-interaction fragments (each job
	// brings its own user, so this is how many users are served at
	// once); 0 means 16.
	UserWorkers int
	// CrowdWorkers bounds concurrent crowd fragments; 0 means 16.
	CrowdWorkers int
	// Metrics receives per-engine queue-depth and in-flight gauges plus
	// per-step latency histograms (obs.Cloud* names); nil means off.
	Metrics obs.Recorder
}

func (c EngineConfig) workers(k Kind) int {
	switch k {
	case KindBatch:
		if c.BatchWorkers > 0 {
			return c.BatchWorkers
		}
		return 4
	case KindUser:
		if c.UserWorkers > 0 {
			return c.UserWorkers
		}
		return 16
	default:
		if c.CrowdWorkers > 0 {
			return c.CrowdWorkers
		}
		return 16
	}
}

// Metamanager decomposes submitted jobs into per-step fragments, routes
// each fragment to the engine matching its service's kind, and interleaves
// fragments of concurrent jobs on the shared engines — the CloudMatcher
// 1.0 architecture of Section 5.1. It is safe for concurrent Submit calls.
type Metamanager struct {
	registry *Registry
	engines  map[Kind]chan func()
	workers  map[Kind]int
	metrics  obs.Recorder
	// queued counts fragments handed to an engine but not yet picked up by
	// a worker; running counts fragments a worker is executing. Indexed by
	// Kind (the three engine kinds are 0..2).
	queued  [3]atomic.Int64
	running [3]atomic.Int64
	jobs    atomic.Int64
	wg      sync.WaitGroup
	once    sync.Once
}

// NewMetamanager starts the three engines' worker pools.
func NewMetamanager(reg *Registry, cfg EngineConfig) *Metamanager {
	m := &Metamanager{
		registry: reg,
		engines:  make(map[Kind]chan func()),
		workers:  make(map[Kind]int),
		metrics:  obs.Or(cfg.Metrics),
	}
	for _, k := range []Kind{KindBatch, KindUser, KindCrowd} {
		ch := make(chan func())
		m.engines[k] = ch
		m.workers[k] = cfg.workers(k)
		for w := 0; w < cfg.workers(k); w++ {
			m.wg.Add(1)
			// Engine workers are the long-lived execution substrate itself
			// (the CloudMatcher engines), not per-call fan-out; they outlive
			// any one Submit, so the bounded pool cannot host them.
			//emlint:allow nogoroutine -- long-lived engine worker, not fan-out
			go func(ch chan func()) {
				defer m.wg.Done()
				for f := range ch {
					f()
				}
			}(ch)
		}
	}
	return m
}

// Registry returns the service registry the metamanager dispatches to.
func (m *Metamanager) Registry() *Registry { return m.registry }

// EngineState is a point-in-time snapshot of one engine, as reported by
// the enriched /healthz endpoint.
type EngineState struct {
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
}

// EngineStates snapshots all three engines in kind order.
func (m *Metamanager) EngineStates() []EngineState {
	out := make([]EngineState, 0, 3)
	for _, k := range []Kind{KindBatch, KindUser, KindCrowd} {
		out = append(out, EngineState{
			Engine:  k.String(),
			Workers: m.workers[k],
			Queued:  int(m.queued[k].Load()),
			Running: int(m.running[k].Load()),
		})
	}
	return out
}

// JobsInFlight reports how many Submit calls are currently executing.
func (m *Metamanager) JobsInFlight() int { return int(m.jobs.Load()) }

// Close shuts the engines down after in-flight fragments finish. Submit
// must not be called after (or concurrently with) Close.
func (m *Metamanager) Close() {
	m.once.Do(func() {
		for _, ch := range m.engines {
			close(ch)
		}
		m.wg.Wait()
	})
}

// Submit runs a job to completion, blocking until every step has executed
// or been skipped (steps downstream of a failure are skipped, recording a
// propagated error). Multiple goroutines may Submit concurrently; their
// fragments interleave on the shared engines.
//
// Cancelling ctx stops the job early: fragments already queued on an
// engine report a cancellation error instead of running their service, no
// further steps launch, and the remaining DAG settles as skipped. The
// returned result carries the cancellation as its Err.
func (m *Metamanager) Submit(ctx context.Context, job *Job) *JobResult {
	res := &JobResult{Name: job.Name}
	if err := validateDAG(job); err != nil {
		res.Err = err
		return res
	}
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("cloud: job %q cancelled: %w", job.Name, err)
		return res
	}
	m.jobs.Add(1)
	m.metrics.Gauge(obs.CloudJobsInFlight, 1)
	defer func() {
		m.jobs.Add(-1)
		m.metrics.Gauge(obs.CloudJobsInFlight, -1)
		status := "ok"
		if res.Err != nil {
			status = "error"
		}
		m.metrics.Count(obs.CloudJobsTotal, 1, obs.L("status", status))
	}()

	pending := make(map[string]int, len(job.Steps))
	waiters := make(map[string][]string, len(job.Steps))
	steps := make(map[string]Step, len(job.Steps))
	for _, s := range job.Steps {
		steps[s.ID] = s
		pending[s.ID] = len(s.After)
	}
	for _, s := range job.Steps {
		for _, dep := range s.After {
			waiters[dep] = append(waiters[dep], s.ID)
		}
	}

	// Buffered to the step count so a worker can always report
	// completion even while this goroutine blocks launching the next
	// fragment — otherwise a full engine plus a pending report deadlocks.
	done := make(chan StepResult, len(job.Steps))
	inFlight := 0
	failed := make(map[string]bool)

	launch := func(id string) {
		st := steps[id]
		svc, lookupErr := m.registry.Lookup(st.Service)
		kind := KindBatch
		if lookupErr == nil {
			kind = svc.Kind
		}
		inFlight++
		engine := obs.L("engine", kind.String())
		m.queued[kind].Add(1)
		m.metrics.Gauge(obs.CloudQueueDepth, 1, engine)
		m.engines[kind] <- func() {
			m.queued[kind].Add(-1)
			m.metrics.Gauge(obs.CloudQueueDepth, -1, engine)
			m.running[kind].Add(1)
			m.metrics.Gauge(obs.CloudStepsInFlight, 1, engine)
			service := obs.L("service", st.Service)
			stop := obs.StartTimer(m.metrics, obs.CloudStepSeconds, service)
			sr := StepResult{Job: job.Name, Step: id, Service: st.Service}
			status := "ok"
			switch {
			case ctx.Err() != nil:
				// The job was cancelled while this fragment sat in the
				// engine queue: do not run the service.
				sr.Err = fmt.Errorf("cloud: cancelled before run: %w", ctx.Err())
				status = "cancelled"
			case lookupErr != nil:
				sr.Err = lookupErr
				status = "error"
			default:
				sr.Output, sr.Err = svc.Run(job.Ctx, st.Args)
				if sr.Err != nil {
					status = "error"
				}
			}
			stop()
			m.metrics.Count(obs.CloudStepsTotal, 1, service, obs.L("status", status))
			m.running[kind].Add(-1)
			m.metrics.Gauge(obs.CloudStepsInFlight, -1, engine)
			done <- sr
		}
	}

	// settle processes a completed/skipped step, returning the newly
	// ready steps and recording skips for descendants of failures.
	var ready []string
	var settle func(sr StepResult)
	settle = func(sr StepResult) {
		res.Steps = append(res.Steps, sr)
		if sr.Skipped {
			m.metrics.Count(obs.CloudStepsTotal, 1,
				obs.L("service", sr.Service), obs.L("status", "skipped"))
		}
		if sr.Err != nil {
			failed[sr.Step] = true
			if res.Err == nil && !sr.Skipped {
				res.Err = fmt.Errorf("cloud: job %q step %q: %w", job.Name, sr.Step, sr.Err)
			}
		}
		for _, w := range waiters[sr.Step] {
			pending[w]--
			if pending[w] != 0 {
				continue
			}
			blocked := ""
			for _, dep := range steps[w].After {
				if failed[dep] {
					blocked = dep
					break
				}
			}
			if blocked != "" {
				settle(StepResult{
					Job: job.Name, Step: w, Service: steps[w].Service,
					Err:     fmt.Errorf("cloud: skipped: dependency %q failed", blocked),
					Skipped: true,
				})
			} else {
				ready = append(ready, w)
			}
		}
	}

	for _, s := range job.Steps {
		if len(s.After) == 0 {
			launch(s.ID)
		}
	}
	for inFlight > 0 {
		sr := <-done
		inFlight--
		ready = ready[:0]
		settle(sr)
		// Once the context is cancelled, ready steps settle as skipped
		// instead of launching; their failure marks cascade the skip to the
		// rest of the DAG (settling can make further steps ready, hence the
		// drain loop).
		for len(ready) > 0 {
			batch := append([]string(nil), ready...)
			ready = ready[:0]
			for _, id := range batch {
				if err := ctx.Err(); err != nil {
					settle(StepResult{
						Job: job.Name, Step: id, Service: steps[id].Service,
						Err:     fmt.Errorf("cloud: skipped: job cancelled: %w", err),
						Skipped: true,
					})
				} else {
					launch(id)
				}
			}
		}
	}
	if err := ctx.Err(); err != nil && res.Err == nil {
		res.Err = fmt.Errorf("cloud: job %q cancelled: %w", job.Name, err)
	}
	return res
}

// validateDAG checks ids are unique, dependencies exist, and the graph is
// acyclic.
func validateDAG(job *Job) error {
	if job.Ctx == nil {
		return fmt.Errorf("cloud: job %q has no context", job.Name)
	}
	if len(job.Steps) == 0 {
		return fmt.Errorf("cloud: job %q has no steps", job.Name)
	}
	ids := make(map[string]bool, len(job.Steps))
	for _, s := range job.Steps {
		if s.ID == "" {
			return fmt.Errorf("cloud: job %q has a step with no id", job.Name)
		}
		if ids[s.ID] {
			return fmt.Errorf("cloud: job %q: duplicate step id %q", job.Name, s.ID)
		}
		ids[s.ID] = true
	}
	adj := make(map[string][]string)
	for _, s := range job.Steps {
		for _, dep := range s.After {
			if !ids[dep] {
				return fmt.Errorf("cloud: job %q step %q depends on unknown step %q", job.Name, s.ID, dep)
			}
			adj[dep] = append(adj[dep], s.ID)
		}
	}
	// Kahn's algorithm to detect cycles.
	indeg := make(map[string]int, len(job.Steps))
	for _, s := range job.Steps {
		indeg[s.ID] = len(s.After)
	}
	queue := make([]string, 0, len(indeg))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	// Only the visited count matters for cycle detection, but a sorted
	// seed keeps the traversal (and any future use of its order)
	// deterministic.
	sort.Strings(queue)
	visited := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		visited++
		for _, next := range adj[id] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if visited != len(job.Steps) {
		return fmt.Errorf("cloud: job %q has a dependency cycle", job.Name)
	}
	return nil
}

// FalconJob builds the standard self-service job: upload two tables, set
// keys, run the composite falcon service (the CloudMatcher 0.1 workflow of
// Figure 5 expressed as a DAG).
func FalconJob(name, csvA, csvB, keyA, keyB string, ctx *JobContext, sampleSize int) *Job {
	return &Job{
		Name: name,
		Ctx:  ctx,
		Steps: []Step{
			{ID: "upload_a", Service: "upload_dataset", Args: Args{"csv": csvA, "out": "a"}},
			{ID: "upload_b", Service: "upload_dataset", Args: Args{"csv": csvB, "out": "b"}},
			{ID: "key_a", Service: "set_key", Args: Args{"table": "a", "key": keyA}, After: []string{"upload_a"}},
			{ID: "key_b", Service: "set_key", Args: Args{"table": "b", "key": keyB}, After: []string{"upload_b"}},
			{ID: "falcon", Service: "falcon", Args: Args{"a": "a", "b": "b", "sample_size": sampleSize, "out": "matches"},
				After: []string{"key_a", "key_b"}},
		},
	}
}
