// Package cloud implements CloudMatcher, the self-service EM system of the
// Magellan project, as an in-process microservice architecture:
//
//   - a Registry of 18 basic + 2 composite services (Table 4 of the
//     paper), each self-contained and doing one task;
//   - three execution engines — user-interaction, batch, and crowd — each
//     a bounded worker pool (Section 5.1);
//   - a Metamanager that decomposes submitted EM jobs into DAG fragments,
//     routes each fragment to the engine matching its kind, and
//     interleaves fragments from concurrent jobs (CloudMatcher 1.0);
//   - an HTTP façade (cmd/cloudmatcher) exposing the services the way the
//     envisioned cloud-native ecosystem of Figure 6 would.
//
// The paper deploys these pieces on AWS with Docker/Kubernetes; here the
// same architecture runs in one process, which preserves the scheduling
// and interleaving behaviour Figure 5's experiment measures.
package cloud

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/label"
	"repro/internal/obs"
	"repro/internal/table"
)

// Kind routes a service to its execution engine.
type Kind int

// The engine kinds of CloudMatcher 1.0.
const (
	// KindBatch is compute-bound work (blocking, feature extraction,
	// training) handled by the batch engine.
	KindBatch Kind = iota
	// KindUser is work requiring the submitting user (labeling, rule
	// review) handled by the user-interaction engine.
	KindUser
	// KindCrowd is work farmed to crowd workers, handled by the crowd
	// engine.
	KindCrowd
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBatch:
		return "batch"
	case KindUser:
		return "user"
	case KindCrowd:
		return "crowd"
	default:
		return "unknown"
	}
}

// Args is the parameter bag of one service invocation. Values reference
// objects in the job's store by name, or carry literals.
type Args map[string]any

// Str fetches a string argument.
func (a Args) Str(key string) (string, error) {
	v, ok := a[key]
	if !ok {
		return "", fmt.Errorf("cloud: missing argument %q", key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("cloud: argument %q is %T, want string", key, v)
	}
	return s, nil
}

// StrOr fetches a string argument with a default.
func (a Args) StrOr(key, def string) string {
	if s, err := a.Str(key); err == nil {
		return s
	}
	return def
}

// Int fetches an integer argument (accepting float64 for JSON payloads).
func (a Args) Int(key string) (int, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("cloud: missing argument %q", key)
	}
	switch n := v.(type) {
	case int:
		return n, nil
	case int64:
		return int(n), nil
	case float64:
		return int(n), nil
	default:
		return 0, fmt.Errorf("cloud: argument %q is %T, want int", key, v)
	}
}

// IntOr fetches an integer argument with a default.
func (a Args) IntOr(key string, def int) int {
	if n, err := a.Int(key); err == nil {
		return n
	}
	return def
}

// FloatOr fetches a float argument with a default.
func (a Args) FloatOr(key string, def float64) float64 {
	v, ok := a[key]
	if !ok {
		return def
	}
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	default:
		return def
	}
}

// JobContext is the per-job state services operate on: a named object
// store, the job's labeler, and a private catalog.
type JobContext struct {
	mu      sync.Mutex
	store   map[string]any
	Labeler label.Labeler
	Catalog *table.Catalog
	// Seed drives randomized services deterministically per job.
	Seed int64
	// Metrics is forwarded into the blocking and feature-extraction calls
	// the services make; nil means off.
	Metrics obs.Recorder
}

// NewJobContext builds an empty context.
func NewJobContext(lab label.Labeler, seed int64) *JobContext {
	return &JobContext{
		store:   make(map[string]any),
		Labeler: lab,
		Catalog: table.NewCatalog(),
		Seed:    seed,
	}
}

// Put stores a named object.
func (c *JobContext) Put(name string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store[name] = v
}

// Get fetches a named object.
func (c *JobContext) Get(name string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.store[name]
	return v, ok
}

// Table fetches a named object expecting a *table.Table.
func (c *JobContext) Table(name string) (*table.Table, error) {
	v, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("cloud: no object %q in job store", name)
	}
	t, ok := v.(*table.Table)
	if !ok {
		return nil, fmt.Errorf("cloud: object %q is %T, not a table", name, v)
	}
	return t, nil
}

// Service is one microservice: self-contained, doing one task.
type Service struct {
	// Name identifies the service, e.g. "profile_dataset".
	Name string
	// Kind selects the execution engine.
	Kind Kind
	// Composite marks the two services assembled from basic ones.
	Composite bool
	// Doc is the one-line description shown in the service list.
	Doc string
	// Run executes the service against a job context.
	Run func(ctx *JobContext, args Args) (any, error)
}

// Registry is the service catalog of CloudMatcher 2.0.
type Registry struct {
	mu       sync.RWMutex
	services map[string]*Service
}

// NewRegistry returns a registry pre-populated with the standard 18 basic
// and 2 composite services.
func NewRegistry() *Registry {
	r := &Registry{services: make(map[string]*Service)}
	registerBasic(r)
	registerComposite(r)
	return r
}

// Register adds a service, rejecting duplicates.
func (r *Registry) Register(s *Service) error {
	if s.Name == "" || s.Run == nil {
		return fmt.Errorf("cloud: service needs a name and a Run function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[s.Name]; dup {
		return fmt.Errorf("cloud: service %q already registered", s.Name)
	}
	r.services[s.Name] = s
	return nil
}

// Lookup finds a service by name.
func (r *Registry) Lookup(name string) (*Service, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.services[name]
	if !ok {
		return nil, fmt.Errorf("cloud: unknown service %q", name)
	}
	return s, nil
}

// List returns all services sorted by name.
func (r *Registry) List() []*Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Service, 0, len(r.services))
	for _, s := range r.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counts returns (basic, composite) service counts — Table 4's totals.
func (r *Registry) Counts() (basic, composite int) {
	for _, s := range r.List() {
		if s.Composite {
			composite++
		} else {
			basic++
		}
	}
	return
}
