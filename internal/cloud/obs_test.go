package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/label"
	"repro/internal/obs"
)

func oracleJobCtx(seed int64) *JobContext {
	return NewJobContext(label.NewOracle(label.NewGold(nil)), seed)
}

// TestSubmitCancelledStopsRemainingSteps cancels a job while its first step
// is executing and checks the downstream step is settled as skipped without
// its service ever running.
func TestSubmitCancelledStopsRemainingSteps(t *testing.T) {
	reg := NewRegistry()
	started := make(chan struct{})
	release := make(chan struct{})
	var downstreamRan atomic.Int64
	if err := reg.Register(&Service{
		Name: "slow_step", Kind: KindBatch, Doc: "blocks until released",
		Run: func(ctx *JobContext, args Args) (any, error) {
			close(started)
			<-release
			return "done", nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&Service{
		Name: "must_not_run", Kind: KindBatch, Doc: "records execution",
		Run: func(ctx *JobContext, args Args) (any, error) {
			downstreamRan.Add(1)
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	mm := NewMetamanager(reg, EngineConfig{})
	defer mm.Close()

	job := &Job{
		Name: "cancel-me",
		Ctx:  oracleJobCtx(1),
		Steps: []Step{
			{ID: "s1", Service: "slow_step"},
			{ID: "s2", Service: "must_not_run", After: []string{"s1"}},
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
		close(release)
	}()
	res := mm.Submit(ctx, job)

	if res.Err == nil || !strings.Contains(res.Err.Error(), "cancel") {
		t.Fatalf("res.Err = %v, want cancellation", res.Err)
	}
	if n := downstreamRan.Load(); n != 0 {
		t.Fatalf("downstream service ran %d times after cancellation", n)
	}
	s2 := res.Find("s2")
	if s2 == nil {
		t.Fatal("no result settled for step s2")
	}
	if !s2.Skipped {
		t.Errorf("step s2 Skipped = false, want true")
	}
	if s2.Err == nil || !strings.Contains(s2.Err.Error(), "cancel") {
		t.Errorf("step s2 err = %v, want cancellation", s2.Err)
	}
}

// TestSubmitPreCancelledContext checks a job submitted with an already
// cancelled context never launches anything.
func TestSubmitPreCancelledContext(t *testing.T) {
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	defer mm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &Job{Name: "dead", Ctx: oracleJobCtx(1), Steps: []Step{
		{ID: "up", Service: "upload_dataset", Args: Args{"csv": "id\n1\n", "out": "t"}},
	}}
	res := mm.Submit(ctx, job)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "cancel") {
		t.Fatalf("res.Err = %v, want cancellation", res.Err)
	}
	if len(res.Steps) != 0 {
		t.Errorf("steps executed = %d, want 0", len(res.Steps))
	}
}

// TestMetamanagerMetrics submits a small job against a live registry and
// checks the cloud step/job series.
func TestMetamanagerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	mm := NewMetamanager(NewRegistry(), EngineConfig{Metrics: reg})
	defer mm.Close()
	job := &Job{Name: "metered", Ctx: oracleJobCtx(1), Steps: []Step{
		{ID: "up", Service: "upload_dataset", Args: Args{"csv": "id\n1\n2\n", "out": "t"}},
		{ID: "key", Service: "set_key", Args: Args{"table": "t", "key": "id"}, After: []string{"up"}},
	}}
	res := mm.Submit(context.Background(), job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, svc := range []string{"upload_dataset", "set_key"} {
		if n := reg.TimerCount(obs.CloudStepSeconds, obs.L("service", svc)); n != 1 {
			t.Errorf("step timer for %s = %d, want 1", svc, n)
		}
		if n := reg.CounterValue(obs.CloudStepsTotal, obs.L("service", svc), obs.L("status", "ok")); n != 1 {
			t.Errorf("steps_total{%s,ok} = %v, want 1", svc, n)
		}
	}
	if n := reg.CounterValue(obs.CloudJobsTotal, obs.L("status", "ok")); n != 1 {
		t.Errorf("jobs_total{ok} = %v, want 1", n)
	}
	if v := reg.GaugeValue(obs.CloudJobsInFlight); v != 0 {
		t.Errorf("jobs_in_flight after Submit = %v, want 0", v)
	}
	for _, eng := range []string{"batch", "user", "crowd"} {
		if v := reg.GaugeValue(obs.CloudQueueDepth, obs.L("engine", eng)); v != 0 {
			t.Errorf("queue_depth{%s} at rest = %v, want 0", eng, v)
		}
	}
}

// TestEngineStates checks the /healthz snapshot reflects worker-pool
// configuration at rest.
func TestEngineStates(t *testing.T) {
	mm := NewMetamanager(NewRegistry(), EngineConfig{BatchWorkers: 2, UserWorkers: 3, CrowdWorkers: 5})
	defer mm.Close()
	states := mm.EngineStates()
	if len(states) != 3 {
		t.Fatalf("engines = %d, want 3", len(states))
	}
	want := map[string]int{"batch": 2, "user": 3, "crowd": 5}
	for _, st := range states {
		if st.Workers != want[st.Engine] {
			t.Errorf("%s workers = %d, want %d", st.Engine, st.Workers, want[st.Engine])
		}
		if st.Queued != 0 || st.Running != 0 {
			t.Errorf("%s not at rest: queued=%d running=%d", st.Engine, st.Queued, st.Running)
		}
	}
	if mm.JobsInFlight() != 0 {
		t.Errorf("jobs in flight at rest = %d", mm.JobsInFlight())
	}
}

func decodeError(t *testing.T, r io.Reader) errorBody {
	t.Helper()
	var body struct {
		Error errorBody `json:"error"`
	}
	if err := json.NewDecoder(r).Decode(&body); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return body.Error
}

// TestHTTPInvalidDAG checks a structurally broken DAG is a 400 with a
// structured invalid_dag error, not an executed-and-failed 422.
func TestHTTPInvalidDAG(t *testing.T) {
	srv, _ := newTestServer(t)
	for name, steps := range map[string][]map[string]any{
		"unknown dependency": {
			{"id": "a", "service": "profile_dataset", "args": map[string]any{"table": "t"}, "after": []string{"ghost"}},
		},
		"cycle": {
			{"id": "a", "service": "profile_dataset", "args": map[string]any{}, "after": []string{"b"}},
			{"id": "b", "service": "profile_dataset", "args": map[string]any{}, "after": []string{"a"}},
		},
		"duplicate id": {
			{"id": "a", "service": "profile_dataset", "args": map[string]any{}},
			{"id": "a", "service": "profile_dataset", "args": map[string]any{}},
		},
		"no steps": {},
	} {
		body := mustJSON(t, map[string]any{"name": "bad", "steps": steps})
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if e := decodeError(t, resp.Body); e.Code != "invalid_dag" {
			t.Errorf("%s: code = %q, want invalid_dag", name, e.Code)
		}
		closeBody(t, resp)
	}
}

// TestHTTPBadJSONStructuredError checks the 400 carries the bad_json code.
func TestHTTPBadJSONStructuredError(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, resp.Body); e.Code != "bad_json" || e.Message == "" {
		t.Errorf("error = %+v, want code bad_json with a message", e)
	}
}

// TestHTTPPayloadTooLarge checks the body cap configured via
// WithMaxBodySize yields a 413 with a payload_too_large error.
func TestHTTPPayloadTooLarge(t *testing.T) {
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	srv := httptest.NewServer(NewServer(mm, WithMaxBodySize(128)).Handler())
	defer srv.Close()
	defer mm.Close()

	big := mustJSON(t, map[string]any{
		"name": "huge",
		"steps": []map[string]any{
			{"id": "up", "service": "upload_dataset",
				"args": map[string]any{"csv": strings.Repeat("x,", 500), "out": "t"}},
		},
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if e := decodeError(t, resp.Body); e.Code != "payload_too_large" {
		t.Errorf("code = %q, want payload_too_large", e.Code)
	}
}

// TestHTTPUnknownService checks an unknown service is an executed-but-failed
// job (422) whose step result names the missing service.
func TestHTTPUnknownService(t *testing.T) {
	srv, _ := newTestServer(t)
	body := mustJSON(t, map[string]any{
		"name": "missing",
		"steps": []map[string]any{
			{"id": "x", "service": "no_such_service", "args": map[string]any{}},
			{"id": "y", "service": "profile_dataset", "args": map[string]any{"table": "t"}, "after": []string{"x"}},
		},
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jr.Error, "no_such_service") {
		t.Errorf("job error = %q, want mention of no_such_service", jr.Error)
	}
	var skipped bool
	for _, s := range jr.Steps {
		if s.Step == "y" && s.Skipped {
			skipped = true
		}
	}
	if !skipped {
		t.Error("step y downstream of the unknown service was not skipped")
	}
}

// TestHTTPCancelledRequestStopsDAG is the end-to-end acceptance check:
// a client that abandons POST /jobs mid-flight stops the remaining DAG
// steps on the server.
func TestHTTPCancelledRequestStopsDAG(t *testing.T) {
	reg := NewRegistry()
	started := make(chan struct{})
	release := make(chan struct{})
	var downstreamRan atomic.Int64
	if err := reg.Register(&Service{
		Name: "slow_step", Kind: KindBatch, Doc: "blocks until released",
		Run: func(ctx *JobContext, args Args) (any, error) {
			close(started)
			<-release
			return "done", nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&Service{
		Name: "must_not_run", Kind: KindBatch, Doc: "records execution",
		Run: func(ctx *JobContext, args Args) (any, error) {
			downstreamRan.Add(1)
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	mm := NewMetamanager(reg, EngineConfig{})
	// Capture the request context so the test can wait for the server to
	// notice the disconnect before releasing the in-flight step (client-side
	// cancel and server-side propagation are asynchronous).
	reqCtx := make(chan context.Context, 1)
	inner := NewServer(mm).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs" {
			reqCtx <- r.Context()
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer mm.Close()

	body := mustJSON(t, map[string]any{
		"name": "abandoned",
		"steps": []map[string]any{
			{"id": "s1", "service": "slow_step", "args": map[string]any{}},
			{"id": "s2", "service": "must_not_run", "args": map[string]any{}, "after": []string{"s1"}},
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			closeBody(t, resp)
		}
		errc <- err
	}()
	<-started
	cancel() // client walks away mid-step-1
	// Wait for the server to observe the disconnect, then let the in-flight
	// fragment finish.
	<-(<-reqCtx).Done()
	close(release)
	if err := <-errc; err == nil {
		t.Fatal("request succeeded despite client cancellation")
	}
	// The server finishes the job asynchronously after the client is gone;
	// wait for it to drain before checking the downstream step never ran.
	deadline := time.Now().Add(5 * time.Second)
	for mm.JobsInFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never drained after cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := downstreamRan.Load(); n != 0 {
		t.Fatalf("downstream service ran %d times after client cancellation", n)
	}
}

// TestHTTPRequestTimeout checks WithRequestTimeout bounds job execution.
func TestHTTPRequestTimeout(t *testing.T) {
	reg := NewRegistry()
	var downstreamRan atomic.Int64
	if err := reg.Register(&Service{
		Name: "sleepy", Kind: KindBatch, Doc: "outlives the request deadline",
		Run: func(ctx *JobContext, args Args) (any, error) {
			time.Sleep(100 * time.Millisecond)
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&Service{
		Name: "must_not_run", Kind: KindBatch, Doc: "records execution",
		Run: func(ctx *JobContext, args Args) (any, error) {
			downstreamRan.Add(1)
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	mm := NewMetamanager(reg, EngineConfig{})
	srv := httptest.NewServer(NewServer(mm, WithRequestTimeout(20*time.Millisecond)).Handler())
	defer srv.Close()
	defer mm.Close()

	body := mustJSON(t, map[string]any{
		"name": "overdue",
		"steps": []map[string]any{
			{"id": "s1", "service": "sleepy", "args": map[string]any{}},
			{"id": "s2", "service": "must_not_run", "args": map[string]any{}, "after": []string{"s1"}},
		},
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jr.Error, "cancel") && !strings.Contains(jr.Error, "deadline") {
		t.Errorf("job error = %q, want deadline/cancellation", jr.Error)
	}
	if n := downstreamRan.Load(); n != 0 {
		t.Fatalf("downstream service ran %d times past the deadline", n)
	}
}

// TestHTTPHealthzJSON checks the enriched liveness payload.
func TestHTTPHealthzJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if len(h.Engines) != 3 {
		t.Fatalf("engines = %d, want 3", len(h.Engines))
	}
	for _, e := range h.Engines {
		if e.Workers <= 0 {
			t.Errorf("engine %s workers = %d", e.Engine, e.Workers)
		}
	}
}

// TestHTTPMetricsExposition runs a job and checks the Prometheus text
// rendering carries the cloud series and the pre-declared schema.
func TestHTTPMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	mm := NewMetamanager(NewRegistry(), EngineConfig{Metrics: reg})
	srv := httptest.NewServer(NewServer(mm, WithMetrics(reg)).Handler())
	defer srv.Close()
	defer mm.Close()

	body := mustJSON(t, map[string]any{
		"name": "metered",
		"steps": []map[string]any{
			{"id": "up", "service": "upload_dataset",
				"args": map[string]any{"csv": "id\n1\n", "out": "t"}},
		},
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	closeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(text)
	for _, want := range []string{
		"# HELP " + obs.CloudStepSeconds,
		obs.CloudStepSeconds + `_count{service="upload_dataset"} 1`,
		fmt.Sprintf("%s{service=%q,status=%q} 1", obs.CloudStepsTotal, "upload_dataset", "ok"),
		obs.CloudQueueDepth + `{engine="batch"} 0`,
		obs.CloudJobsInFlight + " 0",
		"# HELP " + obs.CloudQueueDepth,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestWriteJSONEncodeFailure checks writeJSON degrades to a structured 500
// when the value cannot be encoded.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rr := httptest.NewRecorder()
	writeJSON(rr, http.StatusOK, map[string]any{"bad": func() {}})
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	if e := decodeError(t, rr.Body); e.Code != "encode_failed" {
		t.Errorf("code = %q, want encode_failed", e.Code)
	}
}
