package cloud

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/table"
)

func csvOf(t *testing.T, tab *table.Table) string {
	t.Helper()
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func smallTask(t *testing.T, seed int64) *datagen.Task {
	t.Helper()
	task, err := datagen.Generate(datagen.Spec{
		Name: "cloudtest", Domain: datagen.PersonDomain(),
		SizeA: 150, SizeB: 150, MatchFraction: 0.5, Typo: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestRegistryCounts(t *testing.T) {
	r := NewRegistry()
	basic, composite := r.Counts()
	if basic != 18 {
		t.Errorf("basic services = %d, want 18 (Table 4)", basic)
	}
	if composite != 2 {
		t.Errorf("composite services = %d, want 2 (Table 4)", composite)
	}
	if _, err := r.Lookup("falcon"); err != nil {
		t.Error("falcon composite missing")
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Error("want unknown-service error")
	}
	if err := r.Register(&Service{Name: "falcon", Run: func(*JobContext, Args) (any, error) { return nil, nil }}); err == nil {
		t.Error("want duplicate-registration error")
	}
	if err := r.Register(&Service{}); err == nil {
		t.Error("want invalid-service error")
	}
}

func TestArgsHelpers(t *testing.T) {
	a := Args{"s": "x", "n": 3, "f": 1.5, "jn": float64(7)}
	if v, err := a.Str("s"); err != nil || v != "x" {
		t.Error("Str broken")
	}
	if _, err := a.Str("missing"); err == nil {
		t.Error("want missing-arg error")
	}
	if _, err := a.Str("n"); err == nil {
		t.Error("want type error")
	}
	if v, err := a.Int("n"); err != nil || v != 3 {
		t.Error("Int broken")
	}
	if v, err := a.Int("jn"); err != nil || v != 7 {
		t.Error("Int via float64 broken")
	}
	if a.IntOr("missing", 9) != 9 || a.StrOr("missing", "d") != "d" {
		t.Error("defaults broken")
	}
	if a.FloatOr("f", 0) != 1.5 || a.FloatOr("n", 0) != 3 || a.FloatOr("missing", 2.5) != 2.5 {
		t.Error("FloatOr broken")
	}
}

func TestJobContextStore(t *testing.T) {
	ctx := NewJobContext(label.NewOracle(label.NewGold(nil)), 1)
	ctx.Put("x", 42)
	if v, ok := ctx.Get("x"); !ok || v != 42 {
		t.Error("store broken")
	}
	if _, err := ctx.Table("x"); err == nil {
		t.Error("want not-a-table error")
	}
	if _, err := ctx.Table("missing"); err == nil {
		t.Error("want missing-object error")
	}
}

func TestValidateDAG(t *testing.T) {
	ctx := NewJobContext(label.NewOracle(label.NewGold(nil)), 1)
	cases := []struct {
		name string
		job  *Job
	}{
		{"no context", &Job{Name: "j", Steps: []Step{{ID: "a", Service: "x"}}}},
		{"no steps", &Job{Name: "j", Ctx: ctx}},
		{"empty id", &Job{Name: "j", Ctx: ctx, Steps: []Step{{Service: "x"}}}},
		{"dup id", &Job{Name: "j", Ctx: ctx, Steps: []Step{{ID: "a", Service: "x"}, {ID: "a", Service: "x"}}}},
		{"unknown dep", &Job{Name: "j", Ctx: ctx, Steps: []Step{{ID: "a", Service: "x", After: []string{"ghost"}}}}},
		{"cycle", &Job{Name: "j", Ctx: ctx, Steps: []Step{
			{ID: "a", Service: "x", After: []string{"b"}},
			{ID: "b", Service: "x", After: []string{"a"}},
		}}},
	}
	for _, c := range cases {
		if err := validateDAG(c.job); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

func TestSubmitFalconJob(t *testing.T) {
	task := smallTask(t, 41)
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	defer mm.Close()
	ctx := NewJobContext(label.NewOracle(task.Gold), 7)
	job := FalconJob("members", csvOf(t, task.A), csvOf(t, task.B), "id", "id", ctx, 500)
	res := mm.Submit(context.Background(), job)
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	matches, err := ctx.Table("matches")
	if err != nil {
		t.Fatal(err)
	}
	tp := 0
	for i := 0; i < matches.Len(); i++ {
		if task.Gold.IsMatch(matches.Get(i, "ltable_id").AsString(), matches.Get(i, "rtable_id").AsString()) {
			tp++
		}
	}
	if matches.Len() == 0 || float64(tp)/float64(matches.Len()) < 0.8 {
		t.Errorf("falcon job precision %d/%d too low", tp, matches.Len())
	}
}

func TestSubmitStepFailureSkipsDescendants(t *testing.T) {
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	defer mm.Close()
	ctx := NewJobContext(label.NewOracle(label.NewGold(nil)), 1)
	job := &Job{
		Name: "failing",
		Ctx:  ctx,
		Steps: []Step{
			{ID: "bad", Service: "upload_dataset", Args: Args{"csv": "", "out": "t"}}, // empty CSV fails
			{ID: "after", Service: "profile_dataset", Args: Args{"table": "t"}, After: []string{"bad"}},
			{ID: "after2", Service: "profile_dataset", Args: Args{"table": "t"}, After: []string{"after"}},
			{ID: "independent", Service: "upload_dataset", Args: Args{"csv": "id\n1\n", "out": "u"}},
		},
	}
	res := mm.Submit(context.Background(), job)
	if res.Err == nil {
		t.Fatal("want job error")
	}
	if len(res.Steps) != 4 {
		t.Fatalf("steps reported = %d, want 4", len(res.Steps))
	}
	if sr := res.Find("after"); sr == nil || !sr.Skipped {
		t.Error("step after a failure must be skipped")
	}
	if sr := res.Find("after2"); sr == nil || !sr.Skipped {
		t.Error("skipping must cascade")
	}
	if sr := res.Find("independent"); sr == nil || sr.Err != nil {
		t.Error("independent step must still run")
	}
}

func TestSubmitUnknownService(t *testing.T) {
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	defer mm.Close()
	ctx := NewJobContext(label.NewOracle(label.NewGold(nil)), 1)
	res := mm.Submit(context.Background(), &Job{Name: "j", Ctx: ctx, Steps: []Step{{ID: "a", Service: "ghost"}}})
	if res.Err == nil {
		t.Fatal("want unknown-service error")
	}
}

func TestConcurrentJobsInterleave(t *testing.T) {
	// Figure 5's premise: CloudMatcher 1.0 serves several users at once.
	// Submit several jobs concurrently and check they all complete.
	mm := NewMetamanager(NewRegistry(), EngineConfig{BatchWorkers: 4})
	defer mm.Close()
	const jobs = 4
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			task := smallTask(t, int64(50+j))
			ctx := NewJobContext(label.NewOracle(task.Gold), int64(j))
			job := FalconJob("concurrent", csvOf(t, task.A), csvOf(t, task.B), "id", "id", ctx, 400)
			res := mm.Submit(context.Background(), job)
			errs[j] = res.Err
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Errorf("job %d failed: %v", j, err)
		}
	}
}

func TestStepByStepGuideJob(t *testing.T) {
	// Compose basic services manually (the CloudMatcher 2.0 flexibility
	// story): upload, key, block, extract, label, train, predict.
	task := smallTask(t, 42)
	mm := NewMetamanager(NewRegistry(), EngineConfig{})
	defer mm.Close()
	ctx := NewJobContext(label.NewOracle(task.Gold), 3)
	job := &Job{
		Name: "manual",
		Ctx:  ctx,
		Steps: []Step{
			{ID: "ua", Service: "upload_dataset", Args: Args{"csv": csvOf(t, task.A), "out": "a"}},
			{ID: "ub", Service: "upload_dataset", Args: Args{"csv": csvOf(t, task.B), "out": "b"}},
			{ID: "ka", Service: "set_key", Args: Args{"table": "a", "key": "id"}, After: []string{"ua"}},
			{ID: "kb", Service: "set_key", Args: Args{"table": "b", "key": "id"}, After: []string{"ub"}},
			{ID: "profile", Service: "profile_dataset", Args: Args{"table": "a"}, After: []string{"ka"}},
			{ID: "blockit", Service: "overlap_block", Args: Args{"a": "a", "b": "b", "k": 2, "out": "cand"}, After: []string{"ka", "kb"}},
			{ID: "feat", Service: "generate_features", Args: Args{"a": "a", "b": "b", "out": "features"}, After: []string{"ka", "kb"}},
			{ID: "vec", Service: "extract_feature_vectors", Args: Args{"features": "features", "pairs": "cand", "out": "vectors"}, After: []string{"blockit", "feat"}},
			{ID: "samp", Service: "sample_pairs", Args: Args{"pairs": "cand", "n": 200, "out": "sample"}, After: []string{"blockit"}},
			{ID: "svec", Service: "extract_feature_vectors", Args: Args{"features": "features", "pairs": "sample", "out": "svectors"}, After: []string{"samp", "feat"}},
			{ID: "lab", Service: "label_pairs", Args: Args{"pairs": "sample", "out": "labels"}, After: []string{"samp"}},
			{ID: "train", Service: "train_classifier", Args: Args{"vectors": "svectors", "labels": "labels", "out": "classifier"}, After: []string{"svec", "lab"}},
			{ID: "pred", Service: "predict_matches", Args: Args{"vectors": "vectors", "classifier": "classifier", "out": "matches"}, After: []string{"train", "vec"}},
			{ID: "eval", Service: "evaluate_matches", Args: Args{"matches": "matches", "n": 40}, After: []string{"pred"}},
		},
	}
	res := mm.Submit(context.Background(), job)
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	eval := res.Find("eval")
	if eval == nil {
		t.Fatal("no eval result")
	}
	acc, ok := eval.Output.(float64)
	if !ok {
		t.Fatalf("eval output = %T", eval.Output)
	}
	if acc < 0.8 {
		t.Errorf("spot-check accuracy %.3f too low", acc)
	}
}

func TestServiceKindsAssigned(t *testing.T) {
	r := NewRegistry()
	wantUser := map[string]bool{"set_key": true, "edit_metadata": true, "label_pairs": true,
		"evaluate_matches": true, "evaluate_blocking_rules": true, "active_learning": true, "falcon": true}
	for _, s := range r.List() {
		if s.Name == "crowd_label_pairs" && s.Kind != KindCrowd {
			t.Error("crowd_label_pairs must run on the crowd engine")
		}
		if wantUser[s.Name] && s.Kind != KindUser {
			t.Errorf("%s must run on the user engine", s.Name)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindBatch.String() != "batch" || KindUser.String() != "user" || KindCrowd.String() != "crowd" {
		t.Error("kind names broken")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind")
	}
}
