package cloud

import (
	"encoding/json"
	"net/http"
	"testing"
)

// mustJSON marshals a request payload that is statically known to encode.
func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// closeBody closes a response body, reporting (not aborting on) the error;
// it is safe to call from helper goroutines.
func closeBody(t testing.TB, resp *http.Response) {
	t.Helper()
	if err := resp.Body.Close(); err != nil {
		t.Errorf("close response body: %v", err)
	}
}
