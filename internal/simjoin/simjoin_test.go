package simjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/sim"
	"repro/internal/tokenize"
)

func recs(ss ...string) []Record {
	out := make([]Record, len(ss))
	for i, s := range ss {
		out[i] = Record{ID: fmt.Sprintf("r%d", i), Tokens: strings.Fields(s)}
	}
	return out
}

// naiveSetJoin is the brute-force oracle the filtered joins are checked
// against.
func naiveSetJoin(l, r []Record, threshold float64, f func(a, b []string) float64) []Pair {
	var out []Pair
	for _, a := range l {
		for _, b := range r {
			if len(a.Tokens) == 0 || len(b.Tokens) == 0 {
				continue
			}
			if s := f(a.Tokens, b.Tokens); s >= threshold-1e-12 {
				out = append(out, Pair{LID: a.ID, RID: b.ID, Sim: s})
			}
		}
	}
	sortPairs(out)
	return out
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LID != b[i].LID || a[i].RID != b[i].RID {
			return false
		}
	}
	return true
}

// randomRecords builds records with tokens drawn from a zipf-ish vocabulary
// so the prefix filter sees realistic skew.
func randomRecords(n int, rng *rand.Rand) []Record {
	vocab := []string{"acme", "corp", "inc", "llc", "st", "main", "madison", "wi", "the", "of",
		"x1", "x2", "x3", "x4", "x5", "q7", "q8", "q9", "zz1", "zz2"}
	out := make([]Record, n)
	for i := range out {
		k := 1 + rng.Intn(6)
		toks := make([]string, k)
		for j := range toks {
			// Skew toward the front of the vocabulary.
			idx := rng.Intn(len(vocab))
			if rng.Intn(2) == 0 {
				idx = rng.Intn(len(vocab)/2 + 1)
			}
			toks[j] = vocab[idx%len(vocab)]
		}
		out[i] = Record{ID: fmt.Sprintf("r%d", i), Tokens: toks}
	}
	return out
}

func TestJaccardJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		l := randomRecords(60, rng)
		r := randomRecords(60, rng)
		for _, th := range []float64{0.3, 0.5, 0.8, 1.0} {
			got, err := JaccardJoin(l, r, th)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveSetJoin(l, r, th, sim.Jaccard)
			if !pairsEqual(got, want) {
				t.Fatalf("trial %d threshold %v: filtered %d pairs, naive %d", trial, th, len(got), len(want))
			}
		}
	}
}

func TestCosineJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		l := randomRecords(50, rng)
		r := randomRecords(50, rng)
		for _, th := range []float64{0.4, 0.7, 0.95} {
			got, err := CosineJoin(l, r, th)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveSetJoin(l, r, th, sim.CosineSet)
			if !pairsEqual(got, want) {
				t.Fatalf("trial %d threshold %v: filtered %d, naive %d", trial, th, len(got), len(want))
			}
		}
	}
}

func TestDiceJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		l := randomRecords(50, rng)
		r := randomRecords(50, rng)
		for _, th := range []float64{0.4, 0.6, 0.9} {
			got, err := DiceJoin(l, r, th)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveSetJoin(l, r, th, sim.Dice)
			if !pairsEqual(got, want) {
				t.Fatalf("trial %d threshold %v: filtered %d, naive %d", trial, th, len(got), len(want))
			}
		}
	}
}

func TestOverlapJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		l := randomRecords(50, rng)
		r := randomRecords(50, rng)
		for _, k := range []int{1, 2, 3} {
			got, err := OverlapJoin(l, r, k)
			if err != nil {
				t.Fatal(err)
			}
			var want []Pair
			for _, a := range l {
				for _, b := range r {
					if ov := sim.OverlapSize(a.Tokens, b.Tokens); ov >= k {
						want = append(want, Pair{LID: a.ID, RID: b.ID, Sim: float64(ov)})
					}
				}
			}
			sortPairs(want)
			if !pairsEqual(got, want) {
				t.Fatalf("trial %d k=%d: filtered %d, naive %d", trial, k, len(got), len(want))
			}
		}
	}
}

func TestJoinThresholdValidation(t *testing.T) {
	l := recs("a b")
	if _, err := JaccardJoin(l, l, 0); err == nil {
		t.Error("want threshold error for 0")
	}
	if _, err := JaccardJoin(l, l, 1.5); err == nil {
		t.Error("want threshold error for > 1")
	}
	if _, err := OverlapJoin(l, l, 0); err == nil {
		t.Error("want overlap threshold error")
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	got, err := JaccardJoin(nil, recs("a"), 0.5)
	if err != nil || len(got) != 0 {
		t.Errorf("empty left: %v %v", got, err)
	}
	// Records with empty token sets never match.
	got, err = JaccardJoin([]Record{{ID: "x"}}, recs("a"), 0.5)
	if err != nil || len(got) != 0 {
		t.Errorf("empty-token record: %v %v", got, err)
	}
}

func TestJoinDuplicateTokensCollapse(t *testing.T) {
	l := []Record{{ID: "l", Tokens: []string{"a", "a", "b"}}}
	r := []Record{{ID: "r", Tokens: []string{"a", "b", "b"}}}
	got, err := JaccardJoin(l, r, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Sim != 1 {
		t.Errorf("duplicate collapse: %v", got)
	}
}

func TestJoinExactThreshold(t *testing.T) {
	// Jaccard exactly at the threshold must be kept.
	l := recs("a b c d")       // {a b c d}
	r := recs("a b c d e f g") // overlap 4, union 7 -> 4/7
	got, err := JaccardJoin(l, r, 4.0/7.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("boundary pair dropped: %v", got)
	}
}

func TestJoinWorkersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randomRecords(80, rng)
	r := randomRecords(80, rng)
	a, err := JaccardJoin(l, r, 0.5, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := JaccardJoin(l, r, 0.5, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(a, b) {
		t.Fatal("worker count changed the result set")
	}
}

func TestEditDistanceJoin(t *testing.T) {
	l := []StringRecord{
		{"l1", "madison"}, {"l2", "middleton"}, {"l3", "chicago"}, {"l4", "x"},
	}
	r := []StringRecord{
		{"r1", "madisson"}, {"r2", "midleton"}, {"r3", "boston"}, {"r4", "xy"},
	}
	got, err := EditDistanceJoin(l, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"l1/r1": 1, "l2/r2": 1, "l4/r4": 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, p := range got {
		key := p.LID + "/" + p.RID
		if want[key] != p.Dist {
			t.Errorf("unexpected pair %v", p)
		}
	}
}

func TestEditDistanceJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	words := []string{"acme", "acne", "apex", "apx", "zebra", "zebr", "zzebra", "corp", "corps", "a", "ab", ""}
	mk := func(n int) []StringRecord {
		out := make([]StringRecord, n)
		for i := range out {
			out[i] = StringRecord{ID: fmt.Sprintf("s%d", i), Str: words[rng.Intn(len(words))]}
		}
		return out
	}
	for trial := 0; trial < 5; trial++ {
		l, r := mk(40), mk(40)
		for _, k := range []int{0, 1, 2} {
			got, err := EditDistanceJoin(l, r, k)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, a := range l {
				for _, b := range r {
					if sim.LevenshteinDistance(a.Str, b.Str) <= k {
						count++
					}
				}
			}
			if len(got) != count {
				t.Fatalf("trial %d k=%d: filtered %d, naive %d", trial, k, len(got), count)
			}
		}
	}
}

func TestEditDistanceJoinValidation(t *testing.T) {
	if _, err := EditDistanceJoin(nil, nil, -1); err == nil {
		t.Error("want negative-bound error")
	}
}

// Property: the filtered join never loses a qualifying pair (no false
// negatives) on random inputs.
func TestJaccardJoinCompletenessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		l := randomRecords(20, lr)
		r := randomRecords(20, lr)
		_ = rng
		got, err := JaccardJoin(l, r, 0.6, WithWorkers(2))
		if err != nil {
			return false
		}
		want := naiveSetJoin(l, r, 0.6, sim.Jaccard)
		return pairsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeIntegration(t *testing.T) {
	// End-to-end: q-gram tokenized strings through a Jaccard join, the way
	// blockers call it.
	tok := tokenize.QGram{Q: 3, ReturnSet: true}
	l := []Record{{ID: "a", Tokens: tok.Tokenize("saving the amazon")}}
	r := []Record{{ID: "b", Tokens: tok.Tokenize("saving the amazonn")}}
	got, err := JaccardJoin(l, r, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("near-duplicate strings should join: %v", got)
	}
}

// TestPooledJoinsBitIdenticalAcrossWorkers pins the DESIGN.md §5 contract
// for every join now running on the shared pool: any Workers setting must
// reproduce the serial output bit for bit — IDs, similarity values, and
// row order included.
func TestPooledJoinsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := randomRecords(90, rng)
	r := randomRecords(90, rng)
	ls := make([]StringRecord, len(l))
	rs := make([]StringRecord, len(r))
	for i := range l {
		ls[i] = StringRecord{ID: l[i].ID, Str: strings.Join(l[i].Tokens, " ")}
	}
	for i := range r {
		rs[i] = StringRecord{ID: r[i].ID, Str: strings.Join(r[i].Tokens, " ")}
	}

	serialJac, err := JaccardJoin(l, r, 0.4, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	serialOv, err := OverlapJoin(l, r, 2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	serialEd, err := EditDistanceJoin(ls, rs, 2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, 32} {
		opts := WithWorkers(workers)
		jac, err := JaccardJoin(l, r, 0.4, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(jac, serialJac) {
			t.Fatalf("workers=%d: JaccardJoin output differs from serial", workers)
		}
		ov, err := OverlapJoin(l, r, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ov, serialOv) {
			t.Fatalf("workers=%d: OverlapJoin output differs from serial", workers)
		}
		ed, err := EditDistanceJoin(ls, rs, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ed, serialEd) {
			t.Fatalf("workers=%d: EditDistanceJoin output differs from serial", workers)
		}
	}
}

// TestJoinHotPathZeroAlloc pins the allocation-free contract of the
// per-candidate helpers the probe loop runs millions of times: overlap
// verification across every representation pairing, the pair-level
// overlap bound, the size-window binary search, and the epoch scratch.
func TestJoinHotPathZeroAlloc(t *testing.T) {
	probe := []uint32{1, 3, 5, 7, 9, 11}
	cand := []uint32{3, 4, 5, 9, 10, 11}
	probeSet := bitvec.FromSorted(probe)
	candSet := bitvec.FromSorted(cand)
	idx := &joinIndex{sizes: []int{1, 2, 2, 3, 5, 8}}
	scratch := newEpochScratch(16)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"verifyOverlap/merge", func() { verifyOverlap(probe, nil, cand, nil, 2) }},
		{"verifyOverlap/bitset", func() { verifyOverlap(probe, probeSet, cand, candSet, 2) }},
		{"verifyOverlap/probe-array", func() { verifyOverlap(probe[:1], nil, cand, candSet, 1) }},
		{"verifyOverlap/cand-array", func() { verifyOverlap(probe, probeSet, cand[:1], nil, 1) }},
		{"pairMinOverlap", func() { pairMinOverlap(measureJaccard, 0.8, len(probe), len(cand)) }},
		{"sizeWindow", func() { idx.sizeWindow(2, 5) }},
		{"epochScratch", func() {
			scratch.next()
			scratch.mark(3)
			scratch.mark(3)
		}},
	} {
		if allocs := testing.AllocsPerRun(50, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per run, want 0", tc.name, allocs)
		}
	}
}
