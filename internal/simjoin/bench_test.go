package simjoin

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchRecords builds n records of k tokens from a vocab-sized vocabulary.
func benchRecords(n, k, vocab int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		toks := make([]string, k)
		for j := range toks {
			toks[j] = fmt.Sprintf("t%d", rng.Intn(vocab))
		}
		out[i] = Record{ID: fmt.Sprintf("r%d", i), Tokens: toks}
	}
	return out
}

func BenchmarkJaccardJoin1K(b *testing.B) {
	l := benchRecords(1000, 5, 2000, 1)
	r := benchRecords(1000, 5, 2000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JaccardJoin(l, r, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJaccardNaive1K is the quadratic baseline the prefix filter is
// compared against.
func BenchmarkJaccardNaive1K(b *testing.B) {
	l := benchRecords(1000, 5, 2000, 1)
	r := benchRecords(1000, 5, 2000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveSetJoin(l, r, 0.5, jaccardForBench)
	}
}

func jaccardForBench(a, b []string) float64 {
	seen := make(map[string]bool, len(a))
	for _, t := range a {
		seen[t] = true
	}
	inter := 0
	seenB := make(map[string]bool, len(b))
	for _, t := range b {
		if !seenB[t] {
			seenB[t] = true
			if seen[t] {
				inter++
			}
		}
	}
	union := len(seen) + len(seenB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func BenchmarkOverlapJoin1K(b *testing.B) {
	l := benchRecords(1000, 5, 2000, 3)
	r := benchRecords(1000, 5, 2000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OverlapJoin(l, r, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEditDistanceJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) []StringRecord {
		out := make([]StringRecord, n)
		for i := range out {
			out[i] = StringRecord{ID: fmt.Sprintf("s%d", i), Str: fmt.Sprintf("entity-%06d", rng.Intn(5000))}
		}
		return out
	}
	l, r := mk(500), mk(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EditDistanceJoin(l, r, 1); err != nil {
			b.Fatal(err)
		}
	}
}
