package simjoin

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// This file preserves the pre-interning string-kernel join: per-record
// token sorting by a map-backed frequency table, a map[string][]posting
// index, a per-probe map[int]bool candidate set, and map-based set
// intersection per verification. It exists as the baseline the integer
// kernels are measured against (benchem -exp tokens) and as the oracle of
// the equivalence tests: the live joins must reproduce its output bit for
// bit. It is not wired into any production path.

// refPrepared is a record with canonicalized (deduped, globally ordered)
// string tokens.
type refPrepared struct {
	id   string
	toks []string // ordered by ascending global frequency
}

// refPrepare dedups all records' tokens and orders them rarest-first by the
// combined document frequency of both collections.
func refPrepare(l, r []Record) (pl, pr []refPrepared) {
	freq := make(map[string]int)
	dedup := func(rs []Record) [][]string {
		out := make([][]string, len(rs))
		for i, rec := range rs {
			seen := make(map[string]bool, len(rec.Tokens))
			toks := make([]string, 0, len(rec.Tokens))
			for _, t := range rec.Tokens {
				if !seen[t] {
					seen[t] = true
					toks = append(toks, t)
				}
			}
			out[i] = toks
			for _, t := range toks {
				freq[t]++
			}
		}
		return out
	}
	lt := dedup(l)
	rt := dedup(r)
	order := func(toks []string) {
		sort.Slice(toks, func(a, b int) bool {
			fa, fb := freq[toks[a]], freq[toks[b]]
			if fa != fb {
				return fa < fb
			}
			return toks[a] < toks[b]
		})
	}
	pl = make([]refPrepared, len(l))
	for i := range l {
		order(lt[i])
		pl[i] = refPrepared{id: l[i].ID, toks: lt[i]}
	}
	pr = make([]refPrepared, len(r))
	for i := range r {
		order(rt[i])
		pr[i] = refPrepared{id: r[i].ID, toks: rt[i]}
	}
	return pl, pr
}

// refIntersection is the map-based set intersection of the string kernels.
func refIntersection(a, b []string) (inter, sizeA, sizeB int) {
	sa := make(map[string]bool, len(a))
	for _, t := range a {
		sa[t] = true
	}
	sb := make(map[string]bool, len(b))
	for _, t := range b {
		sb[t] = true
	}
	small, large := sa, sb
	if len(small) > len(large) {
		small, large = large, small
	}
	for t := range small {
		if large[t] {
			inter++
		}
	}
	return inter, len(sa), len(sb)
}

func refVerify(m measure, a, b []string) float64 {
	inter, sa, sb := refIntersection(a, b)
	return simFromOverlap(m, inter, sa, sb)
}

// ReferenceJaccardJoin is the retained string-kernel JaccardJoin.
func ReferenceJaccardJoin(l, r []Record, threshold float64, opts ...JoinOption) ([]Pair, error) {
	return refSetJoin(l, r, threshold, measureJaccard, applyJoinOptions(opts))
}

// ReferenceCosineJoin is the retained string-kernel CosineJoin.
func ReferenceCosineJoin(l, r []Record, threshold float64, opts ...JoinOption) ([]Pair, error) {
	return refSetJoin(l, r, threshold, measureCosine, applyJoinOptions(opts))
}

// ReferenceDiceJoin is the retained string-kernel DiceJoin.
func ReferenceDiceJoin(l, r []Record, threshold float64, opts ...JoinOption) ([]Pair, error) {
	return refSetJoin(l, r, threshold, measureDice, applyJoinOptions(opts))
}

// refSetJoin is the retained string-kernel prefix-filter driver.
func refSetJoin(l, r []Record, threshold float64, m measure, opts Options) ([]Pair, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("simjoin: threshold %v out of (0, 1]", threshold)
	}
	pl, pr := refPrepare(l, r)

	type strPosting struct{ rec, pos int }
	index := make(map[string][]strPosting)
	for j, rec := range pr {
		n := len(rec.toks)
		if n == 0 {
			continue
		}
		prefix := n - minOverlap(m, threshold, n) + 1
		if prefix > n {
			prefix = n
		}
		for p := 0; p < prefix; p++ {
			index[rec.toks[p]] = append(index[rec.toks[p]], strPosting{j, p})
		}
	}

	shards, err := parallel.MapChunks(opts.Workers, len(pl), func(clo, chi int) (joinShard, error) {
		out := make([]Pair, 0, chi-clo)
		seen := make(map[int]bool)
		for i := clo; i < chi; i++ {
			rec := pl[i]
			n := len(rec.toks)
			if n == 0 {
				continue
			}
			lo, hi := sizeBounds(m, threshold, n)
			prefix := n - minOverlap(m, threshold, n) + 1
			if prefix > n {
				prefix = n
			}
			for k := range seen {
				delete(seen, k)
			}
			for p := 0; p < prefix; p++ {
				for _, post := range index[rec.toks[p]] {
					if seen[post.rec] {
						continue
					}
					seen[post.rec] = true
					cand := pr[post.rec]
					if len(cand.toks) < lo || len(cand.toks) > hi {
						continue
					}
					if s := refVerify(m, rec.toks, cand.toks); s >= threshold-1e-12 {
						out = append(out, Pair{LID: rec.id, RID: cand.id, Sim: s})
					}
				}
			}
		}
		return joinShard{pairs: out}, nil
	})
	if err != nil {
		return nil, err
	}
	all, _ := mergeShards(opts.Workers, shards)
	sortPairs(all)
	return all, nil
}

// ReferenceOverlapJoin is the retained string-kernel OverlapJoin.
func ReferenceOverlapJoin(l, r []Record, k int, jopts ...JoinOption) ([]Pair, error) {
	opts := applyJoinOptions(jopts)
	if k < 1 {
		return nil, fmt.Errorf("simjoin: overlap threshold %d must be >= 1", k)
	}
	pl, pr := refPrepare(l, r)
	index := make(map[string][]int)
	for j, rec := range pr {
		n := len(rec.toks)
		if n == 0 {
			continue
		}
		prefix := n - k + 1
		if prefix < 1 {
			continue
		}
		for p := 0; p < prefix; p++ {
			index[rec.toks[p]] = append(index[rec.toks[p]], j)
		}
	}
	shards, err := parallel.MapChunks(opts.Workers, len(pl), func(clo, chi int) (joinShard, error) {
		out := make([]Pair, 0, chi-clo)
		seen := make(map[int]bool)
		for i := clo; i < chi; i++ {
			rec := pl[i]
			n := len(rec.toks)
			if n < k {
				continue
			}
			prefix := n - k + 1
			for key := range seen {
				delete(seen, key)
			}
			for p := 0; p < prefix; p++ {
				for _, j := range index[rec.toks[p]] {
					if seen[j] {
						continue
					}
					seen[j] = true
					if ov, _, _ := refIntersection(rec.toks, pr[j].toks); ov >= k {
						out = append(out, Pair{LID: rec.id, RID: pr[j].id, Sim: float64(ov)})
					}
				}
			}
		}
		return joinShard{pairs: out}, nil
	})
	if err != nil {
		return nil, err
	}
	all, _ := mergeShards(opts.Workers, shards)
	sortPairs(all)
	return all, nil
}
