package simjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// denseRandomRecords builds records with large token sets over a small
// vocabulary, so that low DenseMinTokens / BitmapPostingMin knobs force
// every special-cased path: bitset-vs-bitset verification, asymmetric
// contains-probe verification, and bitmap postings on hot tokens.
func denseRandomRecords(n, minToks, maxToks int, rng *rand.Rand) []Record {
	const vocabSize = 120
	out := make([]Record, n)
	for i := range out {
		k := minToks + rng.Intn(maxToks-minToks+1)
		toks := make([]string, k)
		for j := range toks {
			idx := rng.Intn(vocabSize)
			if rng.Intn(2) == 0 {
				idx = rng.Intn(vocabSize/4 + 1) // skew: hot tokens
			}
			toks[j] = fmt.Sprintf("t%d", idx)
		}
		out[i] = Record{ID: fmt.Sprintf("r%d", i), Tokens: toks}
	}
	return out
}

// TestBitsetPathsBitIdentical is the equivalence oracle of the tentpole
// representation change: the same join run with bitmap postings and bitset
// verification forced on (tiny knobs) must be bit-identical — pairs AND
// similarity floats — to the run with both disabled (pure array postings
// and merge verification), at every worker count.
func TestBitsetPathsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// Mix of sparse and dense probes so both sides of each knob threshold
	// appear in one join.
	mk := func() []Record {
		return append(denseRandomRecords(40, 20, 60, rng), denseRandomRecords(40, 1, 6, rng)...)
	}
	l, r := mk(), mk()
	off := []JoinOption{WithDenseMinTokens(-1), WithBitmapPostingMin(-1)}
	joins := []struct {
		name string
		run  func(opts ...JoinOption) ([]Pair, error)
	}{
		{"jaccard", func(o ...JoinOption) ([]Pair, error) { return JaccardJoin(l, r, 0.4, o...) }},
		{"cosine", func(o ...JoinOption) ([]Pair, error) { return CosineJoin(l, r, 0.6, o...) }},
		{"dice", func(o ...JoinOption) ([]Pair, error) { return DiceJoin(l, r, 0.5, o...) }},
		{"overlap", func(o ...JoinOption) ([]Pair, error) { return OverlapJoin(l, r, 3, o...) }},
	}
	for _, j := range joins {
		want, err := j.run(off...)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: oracle produced no pairs — workload too sparse to test anything", j.name)
		}
		for _, denseMin := range []int{2, 16} {
			for _, bitmapMin := range []int{2, 8} {
				for _, workers := range []int{1, 4} {
					got, err := j.run(WithWorkers(workers), WithDenseMinTokens(denseMin), WithBitmapPostingMin(bitmapMin))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s dense=%d bitmap=%d workers=%d: %d pairs != reference %d (bit-identity broken)",
							j.name, denseMin, bitmapMin, workers, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestBitsetKnobsAsymmetric pins the one-sided dense cases: a dense left
// side probing a sparse right side (and vice versa) exercises the
// contains-probe verifier in both directions.
func TestBitsetKnobsAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dense := denseRandomRecords(50, 30, 70, rng)
	sparse := denseRandomRecords(50, 1, 5, rng)
	for _, tc := range []struct {
		name string
		l, r []Record
	}{
		{"dense_probes_sparse", dense, sparse},
		{"sparse_probes_dense", sparse, dense},
	} {
		want, err := JaccardJoin(tc.l, tc.r, 0.1, WithDenseMinTokens(-1), WithBitmapPostingMin(-1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := JaccardJoin(tc.l, tc.r, 0.1, WithDenseMinTokens(8), WithBitmapPostingMin(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: %d pairs != reference %d", tc.name, len(got), len(want))
		}
	}
}

// TestBitmapPostingsBuilt sanity-checks that the tiny knobs actually flip
// postings to bitmaps in buildIndex — guarding the tests above against
// silently testing the array path twice.
func TestBitmapPostingsBuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	l := denseRandomRecords(60, 10, 30, rng)
	il, _ := internRecords(l, l)
	_, pr, nids := prepare(nil, il)
	idx := buildIndex(pr, nids, func(n int) int { return n }, Options{BitmapPostingMin: 4})
	if idx.bits == nil {
		t.Fatal("BitmapPostingMin=4 on a hot vocabulary built no bitmap postings")
	}
	nbits := 0
	for t2, b := range idx.bits {
		if b != nil {
			nbits++
			if idx.posts[t2] != nil {
				t.Fatalf("token %d holds both array and bitmap postings", t2)
			}
		}
	}
	if nbits == 0 {
		t.Fatal("bitmap postings array allocated but empty")
	}
	// Dense records carry bitsets at the default threshold only when big
	// enough; with DenseMinTokens=-1 nothing does.
	idxOff := buildIndex(pr, nids, func(n int) int { return n }, Options{DenseMinTokens: -1})
	for _, d := range idxOff.dense {
		if d != nil {
			t.Fatal("DenseMinTokens=-1 still built record bitsets")
		}
	}
}
