package simjoin

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/tokenize"
)

// StringRecord is one raw-string input row of an edit-distance join.
type StringRecord struct {
	ID  string
	Str string
}

// DistPair is one output row of an edit-distance join.
type DistPair struct {
	LID, RID string
	Dist     int
}

// EditDistanceJoin returns all pairs with Levenshtein distance <= maxDist.
// It applies a length filter (||a|-|b|| <= maxDist) and a q-gram count
// filter (strings within distance k share at least
// max(|a|,|b|) - q + 1 - k*q positional-free q-grams) before verifying
// candidates with the exact distance. Strings shorter than one q-gram are
// compared against everything that passes the length filter.
func EditDistanceJoin(l, r []StringRecord, maxDist int, jopts ...JoinOption) ([]DistPair, error) {
	opts := applyJoinOptions(jopts)
	if maxDist < 0 {
		return nil, fmt.Errorf("simjoin: negative edit-distance bound %d", maxDist)
	}
	mrec := obs.Or(opts.Metrics)
	join := obs.L("join", "edit")
	defer obs.StartTimer(mrec, obs.SimjoinSeconds, join)()
	const q = 2
	tok := tokenize.QGram{Q: q}

	// Index right strings by q-gram; bucket by length for the length filter.
	type entry struct {
		id       string
		s        string
		distinct int // number of distinct q-grams
	}
	entries := make([]entry, len(r))
	index := make(map[string][]int)
	var short []int // right records too short for q-grams
	for j, rec := range r {
		entries[j] = entry{id: rec.ID, s: rec.Str}
		if len([]rune(rec.Str)) < q {
			short = append(short, j)
			continue
		}
		grams := tok.Tokenize(rec.Str)
		seen := make(map[string]bool, len(grams))
		for _, g := range grams {
			if !seen[g] {
				seen[g] = true
				index[g] = append(index[g], j)
			}
		}
		entries[j].distinct = len(seen)
		// A record with at most k*q distinct grams can be within distance
		// k of a string it shares no grams with; the index would never
		// surface it, so it must always be checked directly.
		if entries[j].distinct <= maxDist*q {
			short = append(short, j)
		}
	}

	// Probe in contiguous shards through the shared pool. Candidates
	// verified with the exact distance are tallied shard-locally and
	// recorded once after the join.
	type distShard struct {
		pairs []DistPair
		cands int
	}
	shards, err := parallel.MapChunks(opts.Workers, len(l), func(clo, chi int) (distShard, error) {
		var out []DistPair
		nc := 0
		counts := make(map[int]int)
		for i := clo; i < chi; i++ {
			rec := l[i]
			la := len([]rune(rec.Str))
			for k := range counts {
				delete(counts, k)
			}
			grams := tok.Tokenize(rec.Str)
			gramSet := make(map[string]bool, len(grams))
			for _, g := range grams {
				if !gramSet[g] {
					gramSet[g] = true
					for _, j := range index[g] {
						counts[j]++
					}
				}
			}
			check := func(j int) {
				e := entries[j]
				lb := len([]rune(e.s))
				if abs(la-lb) > maxDist {
					return
				}
				nc++
				if d := sim.LevenshteinDistance(rec.Str, e.s); d <= maxDist {
					out = append(out, DistPair{LID: rec.ID, RID: e.id, Dist: d})
				}
			}
			if la < q || len(gramSet) <= maxDist*q {
				// Too short to filter by grams, or so few distinct
				// grams that a within-distance partner may share none:
				// verify everything in the length window.
				for j := range entries {
					check(j)
				}
				continue
			}
			for j, c := range counts {
				if entries[j].distinct <= maxDist*q {
					continue // handled by the bypass scan below
				}
				// If ed(a,b) <= k, each edit can remove at most q
				// distinct gram types from either side, so the sides
				// share at least max(|D(a)|,|D(b)|) - k*q types.
				need := max(len(gramSet), entries[j].distinct) - maxDist*q
				if need < 1 {
					need = 1
				}
				if c >= need {
					check(j)
				}
			}
			// Right strings the index cannot surface reliably (too
			// short for grams, or too few distinct grams) bypass it.
			for _, j := range short {
				check(j)
			}
		}
		return distShard{pairs: out, cands: nc}, nil
	})
	if err != nil {
		return nil, err
	}
	var all []DistPair
	total := 0
	for _, s := range shards {
		all = append(all, s.pairs...)
		total += s.cands
	}
	mrec.Count(obs.SimjoinCandidates, float64(total), join)
	mrec.Count(obs.SimjoinPairs, float64(len(all)), join)
	sort.Slice(all, func(a, b int) bool {
		if all[a].LID != all[b].LID {
			return all[a].LID < all[b].LID
		}
		return all[a].RID < all[b].RID
	})
	return all, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
