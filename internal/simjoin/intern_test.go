package simjoin

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/intern"
)

// TestInternedJoinsMatchReference pins the tentpole equivalence: every
// integer-kernel join must reproduce the retained string-kernel
// implementation bit for bit — IDs, similarity values, and row order.
func TestInternedJoinsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		l := randomRecords(70, rng)
		r := randomRecords(70, rng)
		for _, th := range []float64{0.3, 0.5, 0.75, 1.0} {
			for name, pair := range map[string][2]func([]Record, []Record, float64, ...JoinOption) ([]Pair, error){
				"jaccard": {JaccardJoin, ReferenceJaccardJoin},
				"cosine":  {CosineJoin, ReferenceCosineJoin},
				"dice":    {DiceJoin, ReferenceDiceJoin},
			} {
				got, err := pair[0](l, r, th)
				if err != nil {
					t.Fatal(err)
				}
				want, err := pair[1](l, r, th)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s t=%v: interned join diverged from reference (%d vs %d pairs)",
						trial, name, th, len(got), len(want))
				}
			}
		}
		for _, k := range []int{1, 2, 3} {
			got, err := OverlapJoin(l, r, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ReferenceOverlapJoin(l, r, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d overlap k=%d: interned join diverged from reference", trial, k)
			}
		}
	}
}

// TestJoinIDsMatchesStringAPI: pre-interning through a caller-owned
// dictionary (the blocker path) must be indistinguishable from handing the
// join raw strings.
func TestJoinIDsMatchesStringAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	l := randomRecords(80, rng)
	r := randomRecords(80, rng)
	d := intern.NewDict()
	conv := func(rs []Record) []IDRecord {
		out := make([]IDRecord, len(rs))
		for i, rec := range rs {
			out[i] = IDRecord{ID: rec.ID, Tokens: d.InternTokens(rec.Tokens)}
		}
		return out
	}
	il, ir := conv(l), conv(r)

	gotJ, err := JaccardJoinIDs(il, ir, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantJ, err := JaccardJoin(l, r, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotJ, wantJ) {
		t.Error("JaccardJoinIDs diverged from JaccardJoin")
	}

	gotO, err := OverlapJoinIDs(il, ir, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantO, err := OverlapJoin(l, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotO, wantO) {
		t.Error("OverlapJoinIDs diverged from OverlapJoin")
	}
}

// TestJoinIDsValidation: the IDs APIs validate thresholds like the string
// APIs.
func TestJoinIDsValidation(t *testing.T) {
	if _, err := JaccardJoinIDs(nil, nil, 0); err == nil {
		t.Error("want threshold error for 0")
	}
	if _, err := OverlapJoinIDs(nil, nil, 0); err == nil {
		t.Error("want overlap threshold error")
	}
}

// TestEpochScratchWraparound: the epoch stamp survives uint32 wraparound
// without reporting stale marks.
func TestEpochScratchWraparound(t *testing.T) {
	e := newEpochScratch(3)
	e.epoch = ^uint32(0) - 1 // two probes away from wrapping
	e.next()
	if e.mark(1) {
		t.Fatal("fresh probe reported stale mark")
	}
	e.next() // wraps: stamps reset, epoch restarts at 1
	if e.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", e.epoch)
	}
	if e.mark(1) {
		t.Fatal("mark from before the wrap leaked through")
	}
	if !e.mark(1) {
		t.Fatal("second mark in same probe not reported")
	}
}
