package simjoin

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestJoinOptionsApplyInOrder pins the functional-options contract: options
// apply in order, so a later option overrides an earlier one.
func TestJoinOptionsApplyInOrder(t *testing.T) {
	o := applyJoinOptions([]JoinOption{
		WithWorkers(2),
		WithDenseMinTokens(7),
		WithBitmapPostingMin(9),
		WithWorkers(5),
	})
	want := Options{Workers: 5, DenseMinTokens: 7, BitmapPostingMin: 9}
	if o != want {
		t.Fatalf("applied options = %+v, want %+v", o, want)
	}
}

// TestWithOptionsShimEquivalent keeps the deprecated struct bridge honest:
// passing a legacy Options value through WithOptions must behave exactly
// like spelling the same knobs as individual options.
func TestWithOptionsShimEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	l := randomRecords(60, rng)
	r := randomRecords(60, rng)
	//emlint:allow nodeprecated -- this test is the shim's equivalence oracle
	got, err := JaccardJoin(l, r, 0.5, WithOptions(Options{Workers: 2, DenseMinTokens: 4, BitmapPostingMin: 4}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := JaccardJoin(l, r, 0.5, WithWorkers(2), WithDenseMinTokens(4), WithBitmapPostingMin(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WithOptions shim diverged: %d pairs vs %d", len(got), len(want))
	}
}
