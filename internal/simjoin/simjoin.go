// Package simjoin implements filter-based set-similarity joins — the Go
// counterpart of the Magellan ecosystem's py_stringsimjoin package. Given
// two collections of tokenized records it finds all cross pairs whose
// Jaccard, cosine, Dice, or overlap similarity clears a threshold, or whose
// edit distance is within a bound, without comparing all |L|×|R| pairs.
//
// The joins use the standard prefix-filter framework: tokens are globally
// ordered by ascending document frequency (rarest first); a record only
// needs its first few tokens ("the prefix") indexed, because two records
// whose prefixes are disjoint provably cannot reach the threshold. A size
// filter prunes candidates whose set sizes alone rule the threshold out,
// and every surviving candidate is verified with the exact similarity.
package simjoin

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Record is one tokenized input row of a join.
type Record struct {
	// ID identifies the row in its source table (usually the key value).
	ID string
	// Tokens is the token set of the join attribute. Duplicates are
	// collapsed internally.
	Tokens []string
}

// Pair is one output row of a join.
type Pair struct {
	LID, RID string
	// Sim is the verified similarity (for edit-distance joins, the
	// negated distance is not used; see EditDistanceJoin).
	Sim float64
}

// Options tunes join execution.
type Options struct {
	// Workers is the number of goroutines probing the index; 0 means
	// GOMAXPROCS (parallel.Resolve). The paper scales PyMatcher commands
	// with Dask on multicore machines; this is the equivalent knob.
	Workers int
	// Metrics receives join timings and candidate/output counters
	// (obs.SimjoinSeconds/Candidates/Pairs, labeled by join name); nil
	// means off.
	Metrics obs.Recorder
}

// joinShard is one worker's contiguous share of a join probe scan: the
// pairs it emitted and the candidates it verified. Shards concatenate in
// chunk order, reproducing the serial probe order exactly.
type joinShard struct {
	pairs []Pair
	cands int
}

// measure enumerates the supported set-similarity measures.
type measure int

const (
	measureJaccard measure = iota
	measureCosine
	measureDice
)

func (m measure) String() string {
	switch m {
	case measureJaccard:
		return "jaccard"
	case measureCosine:
		return "cosine"
	default:
		return "dice"
	}
}

// JaccardJoin returns all pairs with Jaccard similarity >= threshold.
func JaccardJoin(l, r []Record, threshold float64, opts Options) ([]Pair, error) {
	return setJoin(l, r, threshold, measureJaccard, opts)
}

// CosineJoin returns all pairs with set-cosine similarity >= threshold.
func CosineJoin(l, r []Record, threshold float64, opts Options) ([]Pair, error) {
	return setJoin(l, r, threshold, measureCosine, opts)
}

// DiceJoin returns all pairs with Dice similarity >= threshold.
func DiceJoin(l, r []Record, threshold float64, opts Options) ([]Pair, error) {
	return setJoin(l, r, threshold, measureDice, opts)
}

// prepared is a record with canonicalized (deduped, globally ordered)
// tokens.
type prepared struct {
	id   string
	toks []string // ordered by ascending global frequency
}

// prepare dedups all records' tokens and orders them rarest-first by the
// combined document frequency of both collections.
func prepare(l, r []Record) (pl, pr []prepared) {
	freq := make(map[string]int)
	dedup := func(rs []Record) [][]string {
		out := make([][]string, len(rs))
		for i, rec := range rs {
			seen := make(map[string]bool, len(rec.Tokens))
			toks := make([]string, 0, len(rec.Tokens))
			for _, t := range rec.Tokens {
				if !seen[t] {
					seen[t] = true
					toks = append(toks, t)
				}
			}
			out[i] = toks
			for _, t := range toks {
				freq[t]++
			}
		}
		return out
	}
	lt := dedup(l)
	rt := dedup(r)
	order := func(toks []string) {
		sort.Slice(toks, func(a, b int) bool {
			fa, fb := freq[toks[a]], freq[toks[b]]
			if fa != fb {
				return fa < fb
			}
			return toks[a] < toks[b]
		})
	}
	pl = make([]prepared, len(l))
	for i := range l {
		order(lt[i])
		pl[i] = prepared{id: l[i].ID, toks: lt[i]}
	}
	pr = make([]prepared, len(r))
	for i := range r {
		order(rt[i])
		pr[i] = prepared{id: r[i].ID, toks: rt[i]}
	}
	return pl, pr
}

// minOverlap returns the minimum token overlap a record of size n must
// share with any qualifying partner under the measure and threshold.
func minOverlap(m measure, t float64, n int) int {
	var o float64
	switch m {
	case measureJaccard:
		o = t * float64(n)
	case measureCosine:
		o = t * t * float64(n)
	case measureDice:
		o = t / (2 - t) * float64(n)
	}
	v := int(math.Ceil(o - 1e-9))
	if v < 1 {
		v = 1
	}
	return v
}

// sizeBounds returns the inclusive [lo, hi] partner-size window for a
// record of size n under the measure and threshold.
func sizeBounds(m measure, t float64, n int) (lo, hi int) {
	switch m {
	case measureJaccard:
		lo = int(math.Ceil(t*float64(n) - 1e-9))
		hi = int(math.Floor(float64(n)/t + 1e-9))
	case measureCosine:
		lo = int(math.Ceil(t*t*float64(n) - 1e-9))
		hi = int(math.Floor(float64(n)/(t*t) + 1e-9))
	case measureDice:
		lo = int(math.Ceil(t/(2-t)*float64(n) - 1e-9))
		hi = int(math.Floor((2-t)/t*float64(n) + 1e-9))
	}
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

func verify(m measure, a, b []string) float64 {
	switch m {
	case measureJaccard:
		return sim.Jaccard(a, b)
	case measureCosine:
		return sim.CosineSet(a, b)
	default:
		return sim.Dice(a, b)
	}
}

// setJoin is the shared prefix-filter join driver.
func setJoin(l, r []Record, threshold float64, m measure, opts Options) ([]Pair, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("simjoin: threshold %v out of (0, 1]", threshold)
	}
	rec := obs.Or(opts.Metrics)
	join := obs.L("join", m.String())
	defer obs.StartTimer(rec, obs.SimjoinSeconds, join)()
	pl, pr := prepare(l, r)

	// Index the right side: token -> postings of right-record indices that
	// contain the token within their prefix.
	type posting struct{ rec, pos int }
	index := make(map[string][]posting)
	for j, rec := range pr {
		n := len(rec.toks)
		if n == 0 {
			continue
		}
		prefix := n - minOverlap(m, threshold, n) + 1
		if prefix > n {
			prefix = n
		}
		for p := 0; p < prefix; p++ {
			index[rec.toks[p]] = append(index[rec.toks[p]], posting{j, p})
		}
	}

	// Probe the index in contiguous shards through the shared pool.
	// Candidates surviving the size filter (i.e. actually verified) are
	// tallied shard-locally and recorded once — the no-op path never sees
	// a per-pair recorder call.
	shards, err := parallel.MapChunks(opts.Workers, len(pl), func(clo, chi int) (joinShard, error) {
		out := make([]Pair, 0, chi-clo)
		nc := 0
		seen := make(map[int]bool)
		for i := clo; i < chi; i++ {
			rec := pl[i]
			n := len(rec.toks)
			if n == 0 {
				continue
			}
			lo, hi := sizeBounds(m, threshold, n)
			prefix := n - minOverlap(m, threshold, n) + 1
			if prefix > n {
				prefix = n
			}
			for k := range seen {
				delete(seen, k)
			}
			for p := 0; p < prefix; p++ {
				for _, post := range index[rec.toks[p]] {
					if seen[post.rec] {
						continue
					}
					seen[post.rec] = true
					cand := pr[post.rec]
					if len(cand.toks) < lo || len(cand.toks) > hi {
						continue
					}
					nc++
					if s := verify(m, rec.toks, cand.toks); s >= threshold-1e-12 {
						out = append(out, Pair{LID: rec.id, RID: cand.id, Sim: s})
					}
				}
			}
		}
		return joinShard{pairs: out, cands: nc}, nil
	})
	if err != nil {
		return nil, err
	}
	var all []Pair
	total := 0
	for _, s := range shards {
		all = append(all, s.pairs...)
		total += s.cands
	}
	rec.Count(obs.SimjoinCandidates, float64(total), join)
	rec.Count(obs.SimjoinPairs, float64(len(all)), join)
	sortPairs(all)
	return all, nil
}

// OverlapJoin returns all pairs sharing at least k tokens. Sim in the
// output is the raw overlap count.
func OverlapJoin(l, r []Record, k int, opts Options) ([]Pair, error) {
	if k < 1 {
		return nil, fmt.Errorf("simjoin: overlap threshold %d must be >= 1", k)
	}
	rec := obs.Or(opts.Metrics)
	join := obs.L("join", "overlap")
	defer obs.StartTimer(rec, obs.SimjoinSeconds, join)()
	pl, pr := prepare(l, r)
	index := make(map[string][]int)
	for j, rec := range pr {
		n := len(rec.toks)
		if n == 0 {
			continue
		}
		prefix := n - k + 1
		if prefix < 1 {
			continue // record too small to ever reach k overlaps
		}
		for p := 0; p < prefix; p++ {
			index[rec.toks[p]] = append(index[rec.toks[p]], j)
		}
	}
	shards, err := parallel.MapChunks(opts.Workers, len(pl), func(clo, chi int) (joinShard, error) {
		out := make([]Pair, 0, chi-clo)
		nc := 0
		seen := make(map[int]bool)
		for i := clo; i < chi; i++ {
			rec := pl[i]
			n := len(rec.toks)
			if n < k {
				continue
			}
			prefix := n - k + 1
			for key := range seen {
				delete(seen, key)
			}
			for p := 0; p < prefix; p++ {
				for _, j := range index[rec.toks[p]] {
					if seen[j] {
						continue
					}
					seen[j] = true
					nc++
					if ov := sim.OverlapSize(rec.toks, pr[j].toks); ov >= k {
						out = append(out, Pair{LID: rec.id, RID: pr[j].id, Sim: float64(ov)})
					}
				}
			}
		}
		return joinShard{pairs: out, cands: nc}, nil
	})
	if err != nil {
		return nil, err
	}
	var all []Pair
	total := 0
	for _, s := range shards {
		all = append(all, s.pairs...)
		total += s.cands
	}
	rec.Count(obs.SimjoinCandidates, float64(total), join)
	rec.Count(obs.SimjoinPairs, float64(len(all)), join)
	sortPairs(all)
	return all, nil
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].LID != ps[b].LID {
			return ps[a].LID < ps[b].LID
		}
		return ps[a].RID < ps[b].RID
	})
}
