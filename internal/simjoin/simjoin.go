// Package simjoin implements filter-based set-similarity joins — the Go
// counterpart of the Magellan ecosystem's py_stringsimjoin package. Given
// two collections of tokenized records it finds all cross pairs whose
// Jaccard, cosine, Dice, or overlap similarity clears a threshold, or whose
// edit distance is within a bound, without comparing all |L|×|R| pairs.
//
// The joins use the standard prefix-filter framework over interned integer
// token IDs (package intern): tokens are globally ordered by ascending
// document frequency (rarest first, ties by first-appearance ID); a record
// only needs its first few tokens ("the prefix") indexed, because two
// records whose prefixes are disjoint provably cannot reach the threshold.
// A size filter prunes candidates whose set sizes alone rule the threshold
// out, a PPJoin-style positional filter prunes candidates whose shared
// suffixes are too short, and every surviving candidate is verified with a
// zero-allocation merge that abandons the pair as soon as the remaining
// suffix cannot reach the required overlap.
//
// The string-token APIs (JaccardJoin etc.) intern their inputs into a
// per-call dictionary; callers that already hold interned IDs (the blockers
// in package block) use the *JoinIDs variants and share one dictionary
// across blocking, joining, and feature extraction. The retained map-based
// string implementation lives in reference.go as the equivalence-test and
// benchmark baseline.
package simjoin

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Record is one tokenized input row of a join.
type Record struct {
	// ID identifies the row in its source table (usually the key value).
	ID string
	// Tokens is the token set of the join attribute. Duplicates are
	// collapsed internally.
	Tokens []string
}

// IDRecord is one tokenized input row whose tokens are already interned to
// IDs by a caller-owned intern.Dict (shared across both sides of the join).
// Token order does not matter and duplicates are collapsed internally.
type IDRecord struct {
	ID     string
	Tokens []uint32
}

// Pair is one output row of a join.
type Pair struct {
	LID, RID string
	// Sim is the verified similarity (for edit-distance joins, the
	// negated distance is not used; see EditDistanceJoin).
	Sim float64
}

// Options tunes join execution.
type Options struct {
	// Workers is the number of goroutines probing the index; 0 means
	// GOMAXPROCS (parallel.Resolve). The paper scales PyMatcher commands
	// with Dask on multicore machines; this is the equivalent knob.
	Workers int
	// Metrics receives join timings and candidate/output counters
	// (obs.SimjoinSeconds/Candidates/Pairs, labeled by join name); nil
	// means off.
	Metrics obs.Recorder
}

// joinShard is one worker's contiguous share of a join probe scan: the
// pairs it emitted and the candidates it verified. Shards concatenate in
// chunk order, reproducing the serial probe order exactly.
type joinShard struct {
	pairs []Pair
	cands int
}

// measure enumerates the supported set-similarity measures.
type measure int

const (
	measureJaccard measure = iota
	measureCosine
	measureDice
)

func (m measure) String() string {
	switch m {
	case measureJaccard:
		return "jaccard"
	case measureCosine:
		return "cosine"
	default:
		return "dice"
	}
}

// JaccardJoin returns all pairs with Jaccard similarity >= threshold.
func JaccardJoin(l, r []Record, threshold float64, opts Options) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return setJoin(il, ir, threshold, measureJaccard, opts)
}

// CosineJoin returns all pairs with set-cosine similarity >= threshold.
func CosineJoin(l, r []Record, threshold float64, opts Options) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return setJoin(il, ir, threshold, measureCosine, opts)
}

// DiceJoin returns all pairs with Dice similarity >= threshold.
func DiceJoin(l, r []Record, threshold float64, opts Options) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return setJoin(il, ir, threshold, measureDice, opts)
}

// JaccardJoinIDs is JaccardJoin over pre-interned records.
func JaccardJoinIDs(l, r []IDRecord, threshold float64, opts Options) ([]Pair, error) {
	return setJoin(l, r, threshold, measureJaccard, opts)
}

// CosineJoinIDs is CosineJoin over pre-interned records.
func CosineJoinIDs(l, r []IDRecord, threshold float64, opts Options) ([]Pair, error) {
	return setJoin(l, r, threshold, measureCosine, opts)
}

// DiceJoinIDs is DiceJoin over pre-interned records.
func DiceJoinIDs(l, r []IDRecord, threshold float64, opts Options) ([]Pair, error) {
	return setJoin(l, r, threshold, measureDice, opts)
}

// internRecords interns both collections through one fresh dictionary —
// the adapter the string-token APIs run before the integer join.
func internRecords(l, r []Record) (il, ir []IDRecord) {
	d := intern.NewDict()
	conv := func(rs []Record) []IDRecord {
		out := make([]IDRecord, len(rs))
		for i, rec := range rs {
			out[i] = IDRecord{ID: rec.ID, Tokens: d.InternTokens(rec.Tokens)}
		}
		return out
	}
	return conv(l), conv(r)
}

// intRec is a canonicalized record: duplicate-free token IDs remapped to
// frequency order and sorted ascending, so the rarest tokens come first.
type intRec struct {
	id   string
	toks []uint32
}

// prepare canonicalizes both collections: per-record dedup, a document
// frequency count over both sides, a frequency-ordered remap of the ID
// space (intern.FrequencyRemap), and a final per-record sort. nids is the
// size of the remapped ID space, used to size the dense postings index.
func prepare(l, r []IDRecord) (pl, pr []intRec, nids int) {
	maxID := -1
	canon := func(rs []IDRecord) []intRec {
		out := make([]intRec, len(rs))
		for i, rec := range rs {
			toks := make([]uint32, len(rec.Tokens))
			copy(toks, rec.Tokens)
			toks = intern.SortedDedup(toks)
			if n := len(toks); n > 0 && int(toks[n-1]) > maxID {
				maxID = int(toks[n-1])
			}
			out[i] = intRec{id: rec.ID, toks: toks}
		}
		return out
	}
	pl, pr = canon(l), canon(r)
	freq := make([]int, maxID+1)
	for _, rec := range pl {
		for _, t := range rec.toks {
			freq[t]++
		}
	}
	for _, rec := range pr {
		for _, t := range rec.toks {
			freq[t]++
		}
	}
	remap := intern.FrequencyRemap(freq)
	reorder := func(rs []intRec) {
		for _, rec := range rs {
			for k, t := range rec.toks {
				rec.toks[k] = remap[t]
			}
			slices.Sort(rec.toks)
		}
	}
	reorder(pl)
	reorder(pr)
	return pl, pr, len(freq)
}

// minOverlap returns the minimum token overlap a record of size n must
// share with any qualifying partner under the measure and threshold.
func minOverlap(m measure, t float64, n int) int {
	var o float64
	switch m {
	case measureJaccard:
		o = t * float64(n)
	case measureCosine:
		o = t * t * float64(n)
	case measureDice:
		o = t / (2 - t) * float64(n)
	}
	v := int(math.Ceil(o - 1e-9))
	if v < 1 {
		v = 1
	}
	return v
}

// pairMinOverlap returns the minimum |x∩y| two records of sizes n1 and n2
// must share to clear the threshold — the bound behind the positional
// filter and the bounded verify. Its slack (1e-6) is deliberately wider
// than the verifier's 1e-12 so the filters never prune a pair the exact
// float comparison would keep.
func pairMinOverlap(m measure, t float64, n1, n2 int) int {
	var o float64
	switch m {
	case measureJaccard:
		o = t / (1 + t) * float64(n1+n2)
	case measureCosine:
		o = t * math.Sqrt(float64(n1)*float64(n2))
	case measureDice:
		o = t / 2 * float64(n1+n2)
	}
	v := int(math.Ceil(o - 1e-6))
	if v < 1 {
		v = 1
	}
	return v
}

// sizeBounds returns the inclusive [lo, hi] partner-size window for a
// record of size n under the measure and threshold.
func sizeBounds(m measure, t float64, n int) (lo, hi int) {
	switch m {
	case measureJaccard:
		lo = int(math.Ceil(t*float64(n) - 1e-9))
		hi = int(math.Floor(float64(n)/t + 1e-9))
	case measureCosine:
		lo = int(math.Ceil(t*t*float64(n) - 1e-9))
		hi = int(math.Floor(float64(n)/(t*t) + 1e-9))
	case measureDice:
		lo = int(math.Ceil(t/(2-t)*float64(n) - 1e-9))
		hi = int(math.Floor((2-t)/t*float64(n) + 1e-9))
	}
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

// simFromOverlap computes the exact similarity from a verified overlap and
// the two set sizes, mirroring the formulas of package sim bit for bit.
func simFromOverlap(m measure, inter, n1, n2 int) float64 {
	switch m {
	case measureJaccard:
		union := n1 + n2 - inter
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	case measureCosine:
		if n1 == 0 || n2 == 0 {
			return 0
		}
		return float64(inter) / math.Sqrt(float64(n1)*float64(n2))
	default:
		if n1+n2 == 0 {
			return 1
		}
		return 2 * float64(inter) / float64(n1+n2)
	}
}

// posting locates one indexed prefix token: which right-side record holds
// it and at which position of that record's canonical order.
type posting struct{ rec, pos int32 }

// epochScratch is the probe-local candidate-dedup structure: stamp[j] ==
// epoch marks right record j as already considered for the current probe.
// Bumping the epoch clears the whole array in O(1), replacing the
// per-probe map the join used to allocate and clear.
type epochScratch struct {
	stamp []uint32
	epoch uint32
}

func newEpochScratch(n int) *epochScratch {
	return &epochScratch{stamp: make([]uint32, n)}
}

// next starts a new probe, handling uint32 wraparound.
func (e *epochScratch) next() {
	e.epoch++
	if e.epoch == 0 {
		for k := range e.stamp {
			e.stamp[k] = 0
		}
		e.epoch = 1
	}
}

// mark reports whether j was already seen this probe, marking it if not.
func (e *epochScratch) mark(j int32) bool {
	if e.stamp[j] == e.epoch {
		return true
	}
	e.stamp[j] = e.epoch
	return false
}

// setJoin is the shared prefix-filter join driver over interned records.
func setJoin(l, r []IDRecord, threshold float64, m measure, opts Options) ([]Pair, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("simjoin: threshold %v out of (0, 1]", threshold)
	}
	rec := obs.Or(opts.Metrics)
	join := obs.L("join", m.String())
	defer obs.StartTimer(rec, obs.SimjoinSeconds, join)()
	pl, pr, nids := prepare(l, r)

	// Index the right side: token ID -> postings of right-record indices
	// that contain the token within their prefix, as a dense array over the
	// remapped ID space.
	index := make([][]posting, nids)
	for j, rrec := range pr {
		n := len(rrec.toks)
		if n == 0 {
			continue
		}
		prefix := n - minOverlap(m, threshold, n) + 1
		if prefix > n {
			prefix = n
		}
		for p := 0; p < prefix; p++ {
			t := rrec.toks[p]
			index[t] = append(index[t], posting{int32(j), int32(p)})
		}
	}

	// Probe the index in contiguous shards through the shared pool.
	// Candidates surviving the size and positional filters (i.e. actually
	// verified) are tallied shard-locally and recorded once — the no-op
	// path never sees a per-pair recorder call.
	shards, err := parallel.MapChunks(opts.Workers, len(pl), func(clo, chi int) (joinShard, error) {
		out := make([]Pair, 0, chi-clo)
		nc := 0
		seen := newEpochScratch(len(pr))
		for i := clo; i < chi; i++ {
			probe := pl[i]
			n := len(probe.toks)
			if n == 0 {
				continue
			}
			lo, hi := sizeBounds(m, threshold, n)
			prefix := n - minOverlap(m, threshold, n) + 1
			if prefix > n {
				prefix = n
			}
			seen.next()
			for p := 0; p < prefix; p++ {
				for _, post := range index[probe.toks[p]] {
					if seen.mark(post.rec) {
						continue
					}
					cand := pr[post.rec]
					cn := len(cand.toks)
					if cn < lo || cn > hi {
						continue
					}
					need := pairMinOverlap(m, threshold, n, cn)
					// Positional filter: a qualifying pair is first met at
					// its first common token, so everything before (p, pos)
					// is disjoint and the overlap is bounded by the shorter
					// remaining suffix (PPJoin's ubound).
					if ub := min(n-p, cn-int(post.pos)); ub < need {
						continue
					}
					nc++
					inter := sim.IntersectSortedU32Bounded(probe.toks, cand.toks, need)
					if inter < 0 {
						continue // suffix-length early exit: can't reach need
					}
					if s := simFromOverlap(m, inter, n, cn); s >= threshold-1e-12 {
						out = append(out, Pair{LID: probe.id, RID: cand.id, Sim: s})
					}
				}
			}
		}
		return joinShard{pairs: out, cands: nc}, nil
	})
	if err != nil {
		return nil, err
	}
	all, total := mergeShards(shards)
	rec.Count(obs.SimjoinCandidates, float64(total), join)
	rec.Count(obs.SimjoinPairs, float64(len(all)), join)
	sortPairs(all)
	return all, nil
}

// mergeShards concatenates shard outputs in chunk order into one slice
// preallocated from the summed shard sizes, and totals the verified
// candidate counts.
func mergeShards(shards []joinShard) ([]Pair, int) {
	npairs, total := 0, 0
	for _, s := range shards {
		npairs += len(s.pairs)
		total += s.cands
	}
	all := make([]Pair, 0, npairs)
	for _, s := range shards {
		all = append(all, s.pairs...)
	}
	return all, total
}

// OverlapJoin returns all pairs sharing at least k tokens. Sim in the
// output is the raw overlap count.
func OverlapJoin(l, r []Record, k int, opts Options) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return OverlapJoinIDs(il, ir, k, opts)
}

// OverlapJoinIDs is OverlapJoin over pre-interned records.
func OverlapJoinIDs(l, r []IDRecord, k int, opts Options) ([]Pair, error) {
	if k < 1 {
		return nil, fmt.Errorf("simjoin: overlap threshold %d must be >= 1", k)
	}
	rec := obs.Or(opts.Metrics)
	join := obs.L("join", "overlap")
	defer obs.StartTimer(rec, obs.SimjoinSeconds, join)()
	pl, pr, nids := prepare(l, r)
	index := make([][]posting, nids)
	for j, rrec := range pr {
		n := len(rrec.toks)
		prefix := n - k + 1
		if prefix < 1 {
			continue // record too small to ever reach k overlaps
		}
		for p := 0; p < prefix; p++ {
			t := rrec.toks[p]
			index[t] = append(index[t], posting{int32(j), int32(p)})
		}
	}
	shards, err := parallel.MapChunks(opts.Workers, len(pl), func(clo, chi int) (joinShard, error) {
		out := make([]Pair, 0, chi-clo)
		nc := 0
		seen := newEpochScratch(len(pr))
		for i := clo; i < chi; i++ {
			probe := pl[i]
			n := len(probe.toks)
			if n < k {
				continue
			}
			prefix := n - k + 1
			seen.next()
			for p := 0; p < prefix; p++ {
				for _, post := range index[probe.toks[p]] {
					if seen.mark(post.rec) {
						continue
					}
					cand := pr[post.rec]
					cn := len(cand.toks)
					// Positional filter with the fixed bound k.
					if ub := min(n-p, cn-int(post.pos)); ub < k {
						continue
					}
					nc++
					if ov := sim.IntersectSortedU32Bounded(probe.toks, cand.toks, k); ov >= k {
						out = append(out, Pair{LID: probe.id, RID: cand.id, Sim: float64(ov)})
					}
				}
			}
		}
		return joinShard{pairs: out, cands: nc}, nil
	})
	if err != nil {
		return nil, err
	}
	all, total := mergeShards(shards)
	rec.Count(obs.SimjoinCandidates, float64(total), join)
	rec.Count(obs.SimjoinPairs, float64(len(all)), join)
	sortPairs(all)
	return all, nil
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].LID != ps[b].LID {
			return ps[a].LID < ps[b].LID
		}
		return ps[a].RID < ps[b].RID
	})
}
