// Package simjoin implements filter-based set-similarity joins — the Go
// counterpart of the Magellan ecosystem's py_stringsimjoin package. Given
// two collections of tokenized records it finds all cross pairs whose
// Jaccard, cosine, Dice, or overlap similarity clears a threshold, or whose
// edit distance is within a bound, without comparing all |L|×|R| pairs.
//
// The joins use the standard prefix-filter framework over interned integer
// token IDs (package intern): tokens are globally ordered by ascending
// document frequency (rarest first, ties by first-appearance ID); a record
// only needs its first few tokens ("the prefix") indexed, because two
// records whose prefixes are disjoint provably cannot reach the threshold.
// A size filter prunes candidates whose set sizes alone rule the threshold
// out, a PPJoin-style positional filter prunes candidates whose shared
// suffixes are too short, and every surviving candidate is verified with a
// zero-allocation merge that abandons the pair as soon as the remaining
// suffix cannot reach the required overlap.
//
// The string-token APIs (JaccardJoin etc.) intern their inputs into a
// per-call dictionary; callers that already hold interned IDs (the blockers
// in package block) use the *JoinIDs variants and share one dictionary
// across blocking, joining, and feature extraction. The retained map-based
// string implementation lives in reference.go as the equivalence-test and
// benchmark baseline.
package simjoin

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Record is one tokenized input row of a join.
type Record struct {
	// ID identifies the row in its source table (usually the key value).
	ID string
	// Tokens is the token set of the join attribute. Duplicates are
	// collapsed internally.
	Tokens []string
}

// IDRecord is one tokenized input row whose tokens are already interned to
// IDs by a caller-owned intern.Dict (shared across both sides of the join).
// Token order does not matter and duplicates are collapsed internally.
type IDRecord struct {
	ID     string
	Tokens []uint32
}

// Pair is one output row of a join.
type Pair struct {
	LID, RID string
	// Sim is the verified similarity (for edit-distance joins, the
	// negated distance is not used; see EditDistanceJoin).
	Sim float64
}

// JoinOption tunes join execution; see WithWorkers, WithMetrics,
// WithDenseMinTokens, and WithBitmapPostingMin. Options apply in order, so
// later options win. The same option surface serves the string-token APIs
// (JaccardJoin et al.), the pre-interned *JoinIDs variants, the
// edit-distance join, and the frozen reference joins.
type JoinOption func(*Options)

// WithWorkers sets the number of goroutines probing the index; 0 (the
// default) means GOMAXPROCS (parallel.Resolve).
func WithWorkers(n int) JoinOption {
	return func(o *Options) { o.Workers = n }
}

// WithMetrics directs join timings and candidate/output counters
// (obs.SimjoinSeconds/Candidates/Pairs, labeled by join name) into r; nil
// (the default) means off.
func WithMetrics(r obs.Recorder) JoinOption {
	return func(o *Options) { o.Metrics = r }
}

// WithDenseMinTokens sets the token-set size at which a record additionally
// carries a compressed bitset (bitvec.Set), switching its verifications
// from the sorted merge to the word-level AND/popcount kernels. 0 means the
// default (64); negative disables bitset verification entirely.
func WithDenseMinTokens(n int) JoinOption {
	return func(o *Options) { o.DenseMinTokens = n }
}

// WithBitmapPostingMin sets the postings-list length at which a token's
// postings flip from an array of (record, position) entries to a compressed
// bitmap over right-record positions. 0 means the default (512); negative
// disables bitmap postings.
func WithBitmapPostingMin(n int) JoinOption {
	return func(o *Options) { o.BitmapPostingMin = n }
}

// WithOptions replaces the whole resolved option set with a legacy Options
// struct. It exists so pre-redesign call sites can migrate mechanically.
//
// Deprecated: pass WithWorkers, WithMetrics, WithDenseMinTokens, and
// WithBitmapPostingMin directly.
func WithOptions(o Options) JoinOption {
	return func(dst *Options) { *dst = o }
}

// applyJoinOptions resolves a variadic option list into the Options carrier.
func applyJoinOptions(opts []JoinOption) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Options is the resolved join configuration JoinOption values mutate.
// Construct it through the With* options; the exported fields remain only
// as the deprecated struct-literal surface WithOptions bridges.
type Options struct {
	// Workers is the number of goroutines probing the index; 0 means
	// GOMAXPROCS (parallel.Resolve). The paper scales PyMatcher commands
	// with Dask on multicore machines; this is the equivalent knob. Probe
	// scans below probeMinWork records stay serial regardless (the
	// parallel cost gate).
	//
	// Deprecated: set through WithWorkers.
	Workers int
	// Metrics receives join timings and candidate/output counters
	// (obs.SimjoinSeconds/Candidates/Pairs, labeled by join name); nil
	// means off.
	//
	// Deprecated: set through WithMetrics.
	Metrics obs.Recorder
	// DenseMinTokens is the token-set size at which a record additionally
	// carries a compressed bitset (bitvec.Set), switching its
	// verifications from the sorted merge to the word-level AND/popcount
	// kernels. 0 means the default (64); negative disables bitset
	// verification entirely.
	//
	// Deprecated: set through WithDenseMinTokens.
	DenseMinTokens int
	// BitmapPostingMin is the postings-list length at which a token's
	// postings flip from an array of (record, position) entries to a
	// compressed bitmap over right-record positions — the high-frequency
	// tokens every dense record shares. 0 means the default (512);
	// negative disables bitmap postings.
	//
	// Deprecated: set through WithBitmapPostingMin.
	BitmapPostingMin int
}

// Join tuning defaults. The GUIDE.md tuning section documents when to
// override them through Options.
const (
	// defaultDenseMinTokens: below ~64 tokens the zero-alloc bounded merge
	// wins; above it the container kernels start to pay, and the 8 KiB
	// worst-case bitmap cost amortizes.
	defaultDenseMinTokens = 64
	// defaultBitmapPostingMin: a postings list this long costs more to
	// re-scan per probe than a bitmap walk of the same members.
	defaultBitmapPostingMin = 512
	// bitsetVerifyRatio gates the asymmetric contains-probe verify: the
	// small side must be at least this many times smaller than the dense
	// side before per-ID probing beats the linear merge.
	bitsetVerifyRatio = 4
	// probeMinWork is the smallest probe scan worth fanning out: each
	// chunk allocates an epoch-stamp array over the whole right side, so
	// tiny scans lose to serial execution.
	probeMinWork = 128
)

func (o Options) denseMinTokens() int {
	if o.DenseMinTokens == 0 {
		return defaultDenseMinTokens
	}
	if o.DenseMinTokens < 0 {
		return math.MaxInt
	}
	return o.DenseMinTokens
}

func (o Options) bitmapPostingMin() int {
	if o.BitmapPostingMin == 0 {
		return defaultBitmapPostingMin
	}
	if o.BitmapPostingMin < 0 {
		return math.MaxInt
	}
	return o.BitmapPostingMin
}

// joinShard is one worker's contiguous share of a join probe scan: the
// pairs it emitted and the candidates it verified. Shards concatenate in
// chunk order, reproducing the serial probe order exactly.
type joinShard struct {
	pairs []Pair
	cands int
}

// measure enumerates the supported set-similarity measures.
type measure int

const (
	measureJaccard measure = iota
	measureCosine
	measureDice
)

func (m measure) String() string {
	switch m {
	case measureJaccard:
		return "jaccard"
	case measureCosine:
		return "cosine"
	default:
		return "dice"
	}
}

// JaccardJoin returns all pairs with Jaccard similarity >= threshold.
func JaccardJoin(l, r []Record, threshold float64, opts ...JoinOption) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return setJoin(il, ir, threshold, measureJaccard, applyJoinOptions(opts))
}

// CosineJoin returns all pairs with set-cosine similarity >= threshold.
func CosineJoin(l, r []Record, threshold float64, opts ...JoinOption) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return setJoin(il, ir, threshold, measureCosine, applyJoinOptions(opts))
}

// DiceJoin returns all pairs with Dice similarity >= threshold.
func DiceJoin(l, r []Record, threshold float64, opts ...JoinOption) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return setJoin(il, ir, threshold, measureDice, applyJoinOptions(opts))
}

// JaccardJoinIDs is JaccardJoin over pre-interned records.
func JaccardJoinIDs(l, r []IDRecord, threshold float64, opts ...JoinOption) ([]Pair, error) {
	return setJoin(l, r, threshold, measureJaccard, applyJoinOptions(opts))
}

// CosineJoinIDs is CosineJoin over pre-interned records.
func CosineJoinIDs(l, r []IDRecord, threshold float64, opts ...JoinOption) ([]Pair, error) {
	return setJoin(l, r, threshold, measureCosine, applyJoinOptions(opts))
}

// DiceJoinIDs is DiceJoin over pre-interned records.
func DiceJoinIDs(l, r []IDRecord, threshold float64, opts ...JoinOption) ([]Pair, error) {
	return setJoin(l, r, threshold, measureDice, applyJoinOptions(opts))
}

// internRecords interns both collections through one fresh dictionary —
// the adapter the string-token APIs run before the integer join.
func internRecords(l, r []Record) (il, ir []IDRecord) {
	d := intern.NewDict()
	conv := func(rs []Record) []IDRecord {
		out := make([]IDRecord, len(rs))
		for i, rec := range rs {
			out[i] = IDRecord{ID: rec.ID, Tokens: d.InternTokens(rec.Tokens)}
		}
		return out
	}
	return conv(l), conv(r)
}

// intRec is a canonicalized record: duplicate-free token IDs remapped to
// frequency order and sorted ascending, so the rarest tokens come first.
type intRec struct {
	id   string
	toks []uint32
}

// prepare canonicalizes both collections: per-record dedup, a document
// frequency count over both sides, a frequency-ordered remap of the ID
// space (intern.FrequencyRemap), and a final per-record sort. nids is the
// size of the remapped ID space, used to size the dense postings index.
func prepare(l, r []IDRecord) (pl, pr []intRec, nids int) {
	maxID := -1
	canon := func(rs []IDRecord) []intRec {
		out := make([]intRec, len(rs))
		for i, rec := range rs {
			toks := make([]uint32, len(rec.Tokens))
			copy(toks, rec.Tokens)
			toks = intern.SortedDedup(toks)
			if n := len(toks); n > 0 && int(toks[n-1]) > maxID {
				maxID = int(toks[n-1])
			}
			out[i] = intRec{id: rec.ID, toks: toks}
		}
		return out
	}
	pl, pr = canon(l), canon(r)
	freq := make([]int, maxID+1)
	for _, rec := range pl {
		for _, t := range rec.toks {
			freq[t]++
		}
	}
	for _, rec := range pr {
		for _, t := range rec.toks {
			freq[t]++
		}
	}
	remap := intern.FrequencyRemap(freq)
	reorder := func(rs []intRec) {
		for _, rec := range rs {
			for k, t := range rec.toks {
				rec.toks[k] = remap[t]
			}
			slices.Sort(rec.toks)
		}
	}
	reorder(pl)
	reorder(pr)
	return pl, pr, len(freq)
}

// minOverlap returns the minimum token overlap a record of size n must
// share with any qualifying partner under the measure and threshold.
func minOverlap(m measure, t float64, n int) int {
	var o float64
	switch m {
	case measureJaccard:
		o = t * float64(n)
	case measureCosine:
		o = t * t * float64(n)
	case measureDice:
		o = t / (2 - t) * float64(n)
	}
	v := int(math.Ceil(o - 1e-9))
	if v < 1 {
		v = 1
	}
	return v
}

// pairMinOverlap returns the minimum |x∩y| two records of sizes n1 and n2
// must share to clear the threshold — the bound behind the positional
// filter and the bounded verify. Its slack (1e-6) is deliberately wider
// than the verifier's 1e-12 so the filters never prune a pair the exact
// float comparison would keep.
//
//emlint:zeroalloc
func pairMinOverlap(m measure, t float64, n1, n2 int) int {
	var o float64
	switch m {
	case measureJaccard:
		o = t / (1 + t) * float64(n1+n2)
	case measureCosine:
		o = t * math.Sqrt(float64(n1)*float64(n2))
	case measureDice:
		o = t / 2 * float64(n1+n2)
	}
	v := int(math.Ceil(o - 1e-6))
	if v < 1 {
		v = 1
	}
	return v
}

// sizeBounds returns the inclusive [lo, hi] partner-size window for a
// record of size n under the measure and threshold.
func sizeBounds(m measure, t float64, n int) (lo, hi int) {
	switch m {
	case measureJaccard:
		lo = int(math.Ceil(t*float64(n) - 1e-9))
		hi = int(math.Floor(float64(n)/t + 1e-9))
	case measureCosine:
		lo = int(math.Ceil(t*t*float64(n) - 1e-9))
		hi = int(math.Floor(float64(n)/(t*t) + 1e-9))
	case measureDice:
		lo = int(math.Ceil(t/(2-t)*float64(n) - 1e-9))
		hi = int(math.Floor((2-t)/t*float64(n) + 1e-9))
	}
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

// simFromOverlap computes the exact similarity from a verified overlap and
// the two set sizes, mirroring the formulas of package sim bit for bit.
func simFromOverlap(m measure, inter, n1, n2 int) float64 {
	switch m {
	case measureJaccard:
		union := n1 + n2 - inter
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	case measureCosine:
		if n1 == 0 || n2 == 0 {
			return 0
		}
		return float64(inter) / math.Sqrt(float64(n1)*float64(n2))
	default:
		if n1+n2 == 0 {
			return 1
		}
		return 2 * float64(inter) / float64(n1+n2)
	}
}

// posting locates one indexed prefix token: which right-side record holds
// it (its position in the size-sorted order) and at which position of that
// record's canonical token order.
type posting struct{ rec, pos int32 }

// joinIndex is the probe-side view of the indexed right collection.
//
// Records are sorted by ascending token-set size (stable, so equal sizes
// keep their input order — the output is sorted at the end either way),
// which buys length-bucketed candidate generation: a probe's size window
// [lo, hi] becomes one contiguous record-index range found by two binary
// searches, postings lists are size-sorted for free (they are built in
// record order), and the per-candidate size check disappears.
//
// Each indexed token holds either an array postings list (posts[t]) or,
// once the list passes Options.BitmapPostingMin, a compressed bitmap over
// record positions (bitmaps[t]) — high-frequency tokens stop costing 8
// bytes per occurrence and intersect by whole 64-record words. Records at
// or above Options.DenseMinTokens also carry their token set as a
// bitvec.Set (dense[j]) for the bitset verifier.
type joinIndex struct {
	pr    []intRec
	sizes []int         // sizes[j] = len(pr[j].toks), ascending
	posts [][]posting   // array postings, nil where bitmaps[t] != nil
	bits  []*bitvec.Set // bitmap postings for high-frequency tokens
	dense []*bitvec.Set // token bitsets of dense records, else nil
}

// buildIndex size-sorts the right collection and indexes each record's
// prefix (per prefixFor) under its tokens. nids is the remapped ID-space
// size from prepare.
func buildIndex(pr []intRec, nids int, prefixFor func(n int) int, opts Options) *joinIndex {
	idx := &joinIndex{pr: pr}
	sort.SliceStable(idx.pr, func(a, b int) bool { return len(idx.pr[a].toks) < len(idx.pr[b].toks) })
	idx.sizes = make([]int, len(idx.pr))
	for j, rec := range idx.pr {
		idx.sizes[j] = len(rec.toks)
	}
	idx.posts = make([][]posting, nids)
	denseMin := opts.denseMinTokens()
	idx.dense = make([]*bitvec.Set, len(idx.pr))
	for j, rec := range idx.pr {
		n := len(rec.toks)
		if n >= denseMin {
			idx.dense[j] = bitvec.FromSorted(rec.toks)
		}
		prefix := prefixFor(n)
		for p := 0; p < prefix; p++ {
			t := rec.toks[p]
			idx.posts[t] = append(idx.posts[t], posting{int32(j), int32(p)})
		}
	}
	// Flip high-frequency postings lists to bitmaps. Record positions are
	// ascending within each list (built in record order), so they feed
	// bitvec.FromSorted directly.
	bitmapMin := opts.bitmapPostingMin()
	var scratch []uint32
	for t, list := range idx.posts {
		if len(list) < bitmapMin {
			continue
		}
		if cap(scratch) < len(list) {
			scratch = make([]uint32, len(list))
		}
		scratch = scratch[:len(list)]
		for i, post := range list {
			scratch[i] = uint32(post.rec)
		}
		if idx.bits == nil {
			idx.bits = make([]*bitvec.Set, nids)
		}
		idx.bits[t] = bitvec.FromSorted(scratch)
		idx.posts[t] = nil
	}
	return idx
}

// sizeWindow returns the contiguous record-index range [jlo, jhi) whose
// token-set sizes fall in [lo, hi] — the length bucket a probe scans.
//
//emlint:zeroalloc
func (idx *joinIndex) sizeWindow(lo, hi int) (jlo, jhi int) {
	return sort.SearchInts(idx.sizes, lo), sort.SearchInts(idx.sizes, hi+1)
}

// probeSets builds the probe-side dense bitsets (the left counterpart of
// joinIndex.dense), nil when bitset verification is disabled or no record
// qualifies.
func probeSets(pl []intRec, opts Options) []*bitvec.Set {
	denseMin := opts.denseMinTokens()
	var sets []*bitvec.Set
	for i, rec := range pl {
		if len(rec.toks) >= denseMin {
			if sets == nil {
				sets = make([]*bitvec.Set, len(pl))
			}
			sets[i] = bitvec.FromSorted(rec.toks)
		}
	}
	return sets
}

// verifyOverlap returns the exact overlap of probe and cand when it can
// still reach need (else -1, the shared early-exit convention), choosing
// the cheapest kernel the representations allow: word-level AND/popcount
// when both sides carry bitsets, per-ID contains-probing when exactly one
// side is dense and the other is enough smaller (bitsetVerifyRatio), and
// the zero-alloc bounded merge otherwise.
//
//emlint:zeroalloc
func verifyOverlap(probe []uint32, probeSet *bitvec.Set, cand []uint32, candSet *bitvec.Set, need int) int {
	if candSet != nil {
		if probeSet != nil {
			return bitvec.AndCountBounded(probeSet, candSet, need)
		}
		if len(probe)*bitsetVerifyRatio <= len(cand) {
			return bitvec.AndCountArrayBounded(candSet, probe, need)
		}
	} else if probeSet != nil && len(cand)*bitsetVerifyRatio <= len(probe) {
		return bitvec.AndCountArrayBounded(probeSet, cand, need)
	}
	return sim.IntersectSortedU32Bounded(probe, cand, need)
}

// epochScratch is the probe-local candidate-dedup structure: stamp[j] ==
// epoch marks right record j as already considered for the current probe.
// Bumping the epoch clears the whole array in O(1), replacing the
// per-probe map the join used to allocate and clear.
type epochScratch struct {
	stamp []uint32
	epoch uint32
}

func newEpochScratch(n int) *epochScratch {
	return &epochScratch{stamp: make([]uint32, n)}
}

// next starts a new probe, handling uint32 wraparound.
//
//emlint:zeroalloc
func (e *epochScratch) next() {
	e.epoch++
	if e.epoch == 0 {
		for k := range e.stamp {
			e.stamp[k] = 0
		}
		e.epoch = 1
	}
}

// mark reports whether j was already seen this probe, marking it if not.
//
//emlint:zeroalloc
//emlint:hotpath
func (e *epochScratch) mark(j int32) bool {
	if e.stamp[j] == e.epoch {
		return true
	}
	e.stamp[j] = e.epoch
	return false
}

// setJoin is the shared prefix-filter join driver over interned records.
func setJoin(l, r []IDRecord, threshold float64, m measure, opts Options) ([]Pair, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("simjoin: threshold %v out of (0, 1]", threshold)
	}
	rec := obs.Or(opts.Metrics)
	join := obs.L("join", m.String())
	defer obs.StartTimer(rec, obs.SimjoinSeconds, join)()
	pl, pr, nids := prepare(l, r)

	// Index the right side: token ID -> postings of the records holding
	// the token within their prefix, size-sorted with bitmap postings for
	// high-frequency tokens and bitsets on dense records.
	idx := buildIndex(pr, nids, func(n int) int {
		if n == 0 {
			return 0
		}
		prefix := n - minOverlap(m, threshold, n) + 1
		if prefix > n {
			prefix = n
		}
		return prefix
	}, opts)
	plSets := probeSets(pl, opts)

	// Probe the index in contiguous shards through the shared pool (kept
	// serial below probeMinWork probes — the cost gate). Candidates
	// surviving the size and positional filters (i.e. actually verified)
	// are tallied shard-locally and recorded once — the no-op path never
	// sees a per-pair recorder call.
	shards, err := parallel.MapChunksMin(opts.Workers, len(pl), probeMinWork, func(clo, chi int) (joinShard, error) {
		// Shard-local probe state, hoisted so the verify/visit closures
		// are allocated once per shard (per worker), not once per probe.
		out := make([]Pair, 0, chi-clo)
		nc := 0
		seen := newEpochScratch(len(idx.pr))
		var (
			probe intRec
			pset  *bitvec.Set
			n, p  int
		)
		// verify checks one candidate j first met at probe prefix position
		// p and candidate position pos; pos < 0 means "unknown" (bitmap
		// postings drop it), which weakens the positional filter to the
		// candidate's full length but never changes the verified result.
		verify := func(j, pos int) {
			cand := idx.pr[j]
			cn := len(cand.toks)
			need := pairMinOverlap(m, threshold, n, cn)
			// Positional filter: a qualifying pair is first met at its
			// first common token, so everything before (p, pos) is
			// disjoint and the overlap is bounded by the shorter
			// remaining suffix (PPJoin's ubound).
			rem := cn
			if pos >= 0 {
				rem = cn - pos
			}
			if ub := min(n-p, rem); ub < need {
				return
			}
			nc++
			inter := verifyOverlap(probe.toks, pset, cand.toks, idx.dense[j], need)
			if inter < 0 {
				return // suffix-length early exit: can't reach need
			}
			if s := simFromOverlap(m, inter, n, cn); s >= threshold-1e-12 {
				out = append(out, Pair{LID: probe.id, RID: cand.id, Sim: s})
			}
		}
		bmVisit := func(recPos uint32) bool {
			if j := int32(recPos); !seen.mark(j) {
				verify(int(j), -1)
			}
			return true
		}
		for i := clo; i < chi; i++ {
			probe = pl[i]
			n = len(probe.toks)
			if n == 0 {
				continue
			}
			pset = nil
			if plSets != nil {
				pset = plSets[i]
			}
			lo, hi := sizeBounds(m, threshold, n)
			jlo, jhi := idx.sizeWindow(lo, hi)
			if jlo >= jhi {
				continue
			}
			prefix := n - minOverlap(m, threshold, n) + 1
			if prefix > n {
				prefix = n
			}
			seen.next()
			for p = 0; p < prefix; p++ {
				t := probe.toks[p]
				if idx.bits != nil && idx.bits[t] != nil {
					idx.bits[t].ForEachIn(uint32(jlo), uint32(jhi), bmVisit)
					continue
				}
				list := idx.posts[t]
				// The size window is a contiguous rec range: postings are
				// rec-sorted, so binary search skips both tails wholesale.
				k := sort.Search(len(list), func(k int) bool { return int(list[k].rec) >= jlo })
				for ; k < len(list) && int(list[k].rec) < jhi; k++ {
					post := list[k]
					if seen.mark(post.rec) {
						continue
					}
					verify(int(post.rec), int(post.pos))
				}
			}
		}
		return joinShard{pairs: out, cands: nc}, nil
	})
	if err != nil {
		return nil, err
	}
	all, total := mergeShards(opts.Workers, shards)
	rec.Count(obs.SimjoinCandidates, float64(total), join)
	rec.Count(obs.SimjoinPairs, float64(len(all)), join)
	sortPairs(all)
	return all, nil
}

// mergeShards concatenates shard outputs in chunk order into one slice
// preallocated from the summed shard sizes (parallel.Concat — the copy
// itself fans out on large outputs), and totals the verified candidate
// counts.
func mergeShards(workers int, shards []joinShard) ([]Pair, int) {
	total := 0
	parts := make([][]Pair, len(shards))
	for i, s := range shards {
		parts[i] = s.pairs
		total += s.cands
	}
	return parallel.Concat(workers, parts), total
}

// OverlapJoin returns all pairs sharing at least k tokens. Sim in the
// output is the raw overlap count.
func OverlapJoin(l, r []Record, k int, opts ...JoinOption) ([]Pair, error) {
	il, ir := internRecords(l, r)
	return OverlapJoinIDs(il, ir, k, opts...)
}

// OverlapJoinIDs is OverlapJoin over pre-interned records.
func OverlapJoinIDs(l, r []IDRecord, k int, jopts ...JoinOption) ([]Pair, error) {
	opts := applyJoinOptions(jopts)
	if k < 1 {
		return nil, fmt.Errorf("simjoin: overlap threshold %d must be >= 1", k)
	}
	rec := obs.Or(opts.Metrics)
	join := obs.L("join", "overlap")
	defer obs.StartTimer(rec, obs.SimjoinSeconds, join)()
	pl, pr, nids := prepare(l, r)
	// Records with fewer than k tokens can never reach k overlaps; the
	// prefix length n-k+1 bottoms out at 0 for them, so they are simply
	// never indexed, and the probe side's size window starts at k.
	idx := buildIndex(pr, nids, func(n int) int {
		prefix := n - k + 1
		if prefix < 0 {
			return 0
		}
		return prefix
	}, opts)
	plSets := probeSets(pl, opts)
	shards, err := parallel.MapChunksMin(opts.Workers, len(pl), probeMinWork, func(clo, chi int) (joinShard, error) {
		out := make([]Pair, 0, chi-clo)
		nc := 0
		seen := newEpochScratch(len(idx.pr))
		var (
			probe intRec
			pset  *bitvec.Set
			n, p  int
		)
		verify := func(j, pos int) {
			cand := idx.pr[j]
			cn := len(cand.toks)
			// Positional filter with the fixed bound k; pos < 0 (bitmap
			// postings) falls back to the candidate's full length.
			rem := cn
			if pos >= 0 {
				rem = cn - pos
			}
			if ub := min(n-p, rem); ub < k {
				return
			}
			nc++
			if ov := verifyOverlap(probe.toks, pset, cand.toks, idx.dense[j], k); ov >= k {
				out = append(out, Pair{LID: probe.id, RID: cand.id, Sim: float64(ov)})
			}
		}
		bmVisit := func(recPos uint32) bool {
			if j := int32(recPos); !seen.mark(j) {
				verify(int(j), -1)
			}
			return true
		}
		// The overlap window is probe-independent: any record of size >= k
		// can qualify, so the length bucket is the suffix starting at the
		// first record with k tokens.
		jlo, jhi := idx.sizeWindow(k, math.MaxInt-1)
		for i := clo; i < chi; i++ {
			probe = pl[i]
			n = len(probe.toks)
			if n < k || jlo >= jhi {
				continue
			}
			pset = nil
			if plSets != nil {
				pset = plSets[i]
			}
			prefix := n - k + 1
			seen.next()
			for p = 0; p < prefix; p++ {
				t := probe.toks[p]
				if idx.bits != nil && idx.bits[t] != nil {
					idx.bits[t].ForEachIn(uint32(jlo), uint32(jhi), bmVisit)
					continue
				}
				list := idx.posts[t]
				kk := sort.Search(len(list), func(kk int) bool { return int(list[kk].rec) >= jlo })
				for ; kk < len(list) && int(list[kk].rec) < jhi; kk++ {
					post := list[kk]
					if seen.mark(post.rec) {
						continue
					}
					verify(int(post.rec), int(post.pos))
				}
			}
		}
		return joinShard{pairs: out, cands: nc}, nil
	})
	if err != nil {
		return nil, err
	}
	all, total := mergeShards(opts.Workers, shards)
	rec.Count(obs.SimjoinCandidates, float64(total), join)
	rec.Count(obs.SimjoinPairs, float64(len(all)), join)
	sortPairs(all)
	return all, nil
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].LID != ps[b].LID {
			return ps[a].LID < ps[b].LID
		}
		return ps[a].RID < ps[b].RID
	})
}
