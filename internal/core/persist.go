package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/block"
	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/rules"
)

// workflowDTO is the on-disk form of a Workflow: the equivalent of the
// "Python script of a sequence of commands" the paper captures a finished
// development-stage workflow as for the production stage.
type workflowDTO struct {
	Blocker  blockerDTO      `json:"blocker"`
	Features []feature.Spec  `json:"features"`
	Matcher  json.RawMessage `json:"matcher"`
	Promote  []string        `json:"promote_rules,omitempty"`
	Veto     []string        `json:"veto_rules,omitempty"`
}

// blockerDTO serializes the standard blocker configurations.
type blockerDTO struct {
	Type       string  `json:"type"`
	Attr       string  `json:"attr,omitempty"`
	MinOverlap int     `json:"min_overlap,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	Window     int     `json:"window,omitempty"`
}

// SaveWorkflow serializes the workflow to JSON. Custom blockers,
// transforms, and non-registry features are rejected with an explanatory
// error — those must live in code, exactly as custom Python steps do in
// the paper's scripts.
func SaveWorkflow(w *Workflow) ([]byte, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	dto := workflowDTO{}

	switch b := w.Blocker.(type) {
	case block.AttrEquivalenceBlocker:
		dto.Blocker = blockerDTO{Type: "attr_equiv", Attr: b.Attr}
	case block.OverlapBlocker:
		if b.Tokenizer != nil {
			return nil, fmt.Errorf("core: save: custom tokenizers do not serialize")
		}
		dto.Blocker = blockerDTO{Type: "overlap", Attr: b.Attr, MinOverlap: b.MinOverlap}
	case block.JaccardBlocker:
		if b.Tokenizer != nil {
			return nil, fmt.Errorf("core: save: custom tokenizers do not serialize")
		}
		dto.Blocker = blockerDTO{Type: "jaccard", Attr: b.Attr, Threshold: b.Threshold}
	case block.WholeTupleOverlapBlocker:
		dto.Blocker = blockerDTO{Type: "whole_tuple_overlap", MinOverlap: b.MinOverlap}
	case block.SortedNeighborhoodBlocker:
		if b.KeyFunc != nil {
			return nil, fmt.Errorf("core: save: custom key functions do not serialize")
		}
		dto.Blocker = blockerDTO{Type: "sorted_neighborhood", Attr: b.Attr, Window: b.Window}
	default:
		return nil, fmt.Errorf("core: save: blocker %T does not serialize", w.Blocker)
	}

	specs, err := w.Features.Specs()
	if err != nil {
		return nil, err
	}
	dto.Features = specs

	matcher, err := ml.Export(w.Matcher)
	if err != nil {
		return nil, err
	}
	dto.Matcher = matcher

	if w.Rules != nil {
		for _, r := range w.Rules.Promote.Rules {
			dto.Promote = append(dto.Promote, r.String())
		}
		for _, r := range w.Rules.Veto.Rules {
			dto.Veto = append(dto.Veto, r.String())
		}
	}
	return json.MarshalIndent(&dto, "", "  ")
}

// LoadWorkflow deserializes a workflow produced by SaveWorkflow.
func LoadWorkflow(data []byte) (*Workflow, error) {
	var dto workflowDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("core: load workflow: %w", err)
	}
	w := &Workflow{}

	switch dto.Blocker.Type {
	case "attr_equiv":
		w.Blocker = block.AttrEquivalenceBlocker{Attr: dto.Blocker.Attr}
	case "overlap":
		w.Blocker = block.OverlapBlocker{Attr: dto.Blocker.Attr, MinOverlap: dto.Blocker.MinOverlap}
	case "jaccard":
		w.Blocker = block.JaccardBlocker{Attr: dto.Blocker.Attr, Threshold: dto.Blocker.Threshold}
	case "whole_tuple_overlap":
		w.Blocker = block.WholeTupleOverlapBlocker{MinOverlap: dto.Blocker.MinOverlap}
	case "sorted_neighborhood":
		w.Blocker = block.SortedNeighborhoodBlocker{Attr: dto.Blocker.Attr, Window: dto.Blocker.Window}
	default:
		return nil, fmt.Errorf("core: load workflow: unknown blocker type %q", dto.Blocker.Type)
	}

	fs, err := feature.FromSpecs(dto.Features, feature.MissingZero)
	if err != nil {
		return nil, err
	}
	w.Features = fs

	matcher, err := ml.Import(dto.Matcher)
	if err != nil {
		return nil, err
	}
	w.Matcher = matcher

	if len(dto.Promote) > 0 || len(dto.Veto) > 0 {
		mr := &MatchRules{}
		for i, src := range dto.Promote {
			r, err := rules.Parse(fmt.Sprintf("promote#%d", i), src)
			if err != nil {
				return nil, err
			}
			mr.Promote.Add(r)
		}
		for i, src := range dto.Veto {
			r, err := rules.Parse(fmt.Sprintf("veto#%d", i), src)
			if err != nil {
				return nil, err
			}
			mr.Veto.Add(r)
		}
		w.Rules = mr
	}
	return w, w.Validate()
}

// SaveWorkflowFile writes the workflow to the named file.
func SaveWorkflowFile(w *Workflow, path string) error {
	data, err := SaveWorkflow(w)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadWorkflowFile reads a workflow from the named file.
func LoadWorkflowFile(path string) (*Workflow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadWorkflow(data)
}
