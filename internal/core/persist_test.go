package core

import (
	"path/filepath"
	"testing"

	"repro/internal/block"
	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/table"
)

// developWorkflow runs a short development session and returns the
// resulting production workflow plus its task.
func developWorkflow(t *testing.T) (*Workflow, *datagen.Task) {
	t.Helper()
	task := personTask(t, 250, 71)
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	blk := block.WholeTupleOverlapBlocker{MinOverlap: 2}
	if _, err := s.Block(blk); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleAndLabel(250, oracle); err != nil {
		t.Fatal(err)
	}
	_, model, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: 1} })
	if err != nil {
		t.Fatal(err)
	}
	var promote rules.RuleSet
	promote.Add(rules.MustParse("p", "exact_zip >= 1 AND monge_elkan_jw_name >= 0.9"))
	return &Workflow{
		Blocker:  blk,
		Features: s.Features,
		Matcher:  model,
		Rules:    &MatchRules{Promote: promote},
	}, task
}

func TestWorkflowSaveLoadRoundTrip(t *testing.T) {
	wf, task := developWorkflow(t)
	cat := table.NewCatalog()
	before, err := wf.Execute(task.A, task.B, cat)
	if err != nil {
		t.Fatal(err)
	}

	data, err := SaveWorkflow(wf)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWorkflow(data)
	if err != nil {
		t.Fatal(err)
	}
	after, err := loaded.Execute(task.A, task.B, table.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if before.Matches.Len() != after.Matches.Len() {
		t.Fatalf("round trip changed predictions: %d vs %d matches", before.Matches.Len(), after.Matches.Len())
	}
	bs := map[string]bool{}
	for i := 0; i < before.Matches.Len(); i++ {
		bs[before.Matches.Get(i, "ltable_id").AsString()+"/"+before.Matches.Get(i, "rtable_id").AsString()] = true
	}
	for i := 0; i < after.Matches.Len(); i++ {
		k := after.Matches.Get(i, "ltable_id").AsString() + "/" + after.Matches.Get(i, "rtable_id").AsString()
		if !bs[k] {
			t.Fatalf("round trip changed match set: %s appeared", k)
		}
	}
}

func TestWorkflowFileRoundTrip(t *testing.T) {
	wf, _ := developWorkflow(t)
	path := filepath.Join(t.TempDir(), "workflow.json")
	if err := SaveWorkflowFile(wf, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWorkflowFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if loaded.Rules == nil || loaded.Rules.Promote.Len() != 1 {
		t.Error("rules lost in file round trip")
	}
}

func TestSaveWorkflowRejectsCustoms(t *testing.T) {
	wf, _ := developWorkflow(t)
	wf.Blocker = block.BlackBoxBlocker{Keep: func(l, r table.Row) bool { return true }}
	if _, err := SaveWorkflow(wf); err == nil {
		t.Error("black-box blocker must not serialize")
	}
	wf, _ = developWorkflow(t)
	wf.Blocker = block.HashBlocker{Attr: "name", Transform: block.LowerTransform}
	if _, err := SaveWorkflow(wf); err == nil {
		t.Error("hash blocker with transform must not serialize")
	}
	wf, _ = developWorkflow(t)
	wf.Matcher = &ml.KNN{}
	if _, err := SaveWorkflow(wf); err == nil {
		t.Error("kNN matcher must not serialize")
	}
}

func TestLoadWorkflowErrors(t *testing.T) {
	if _, err := LoadWorkflow([]byte("{nope")); err == nil {
		t.Error("want JSON error")
	}
	if _, err := LoadWorkflow([]byte(`{"blocker":{"type":"ghost"}}`)); err == nil {
		t.Error("want unknown-blocker error")
	}
	if _, err := LoadWorkflowFile("/does/not/exist.json"); err == nil {
		t.Error("want file error")
	}
}

func TestAllBlockerTypesRoundTrip(t *testing.T) {
	wfBase, _ := developWorkflow(t)
	blockers := []block.Blocker{
		block.AttrEquivalenceBlocker{Attr: "name"},
		block.OverlapBlocker{Attr: "name", MinOverlap: 2},
		block.JaccardBlocker{Attr: "name", Threshold: 0.4},
		block.WholeTupleOverlapBlocker{MinOverlap: 3},
		block.SortedNeighborhoodBlocker{Attr: "name", Window: 7},
	}
	for _, blk := range blockers {
		wf := &Workflow{Blocker: blk, Features: wfBase.Features, Matcher: wfBase.Matcher}
		data, err := SaveWorkflow(wf)
		if err != nil {
			t.Fatalf("%s: %v", blk.Name(), err)
		}
		loaded, err := LoadWorkflow(data)
		if err != nil {
			t.Fatalf("%s: %v", blk.Name(), err)
		}
		if loaded.Blocker.Name() != blk.Name() {
			t.Errorf("blocker changed: %s -> %s", blk.Name(), loaded.Blocker.Name())
		}
	}
}
