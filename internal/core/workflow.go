package core

import (
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/feature"
	"repro/internal/ml"
	"repro/internal/table"
)

// Workflow is the production-stage artifact of a PyMatcher project: the
// blocker, feature set, trained matcher, and optional rule layer that the
// development stage converged on. It corresponds to the Python script of
// commands the paper captures a finished workflow as, and executes on the
// full tables using multicore scaling (the role Dask plays for PyMatcher).
type Workflow struct {
	// Blocker generates the candidate set.
	Blocker block.Blocker
	// Features scores candidate pairs.
	Features *feature.Set
	// Matcher is the trained classifier.
	Matcher ml.Classifier
	// Rules optionally post-processes the matcher's predictions.
	Rules *MatchRules
	// Workers parallelizes feature extraction; 0 means GOMAXPROCS.
	Workers int
}

// WorkflowResult reports a production run.
type WorkflowResult struct {
	// Matches is the predicted match pair table.
	Matches *table.Table
	// Candidates is the candidate-set size blocking produced.
	Candidates int
	// BlockTime, ExtractTime, and PredictTime break down the run.
	BlockTime, ExtractTime, PredictTime time.Duration
}

// Validate checks the workflow is executable.
func (w *Workflow) Validate() error {
	if w.Blocker == nil {
		return fmt.Errorf("core: workflow has no blocker")
	}
	if w.Features == nil || w.Features.Len() == 0 {
		return fmt.Errorf("core: workflow has no features")
	}
	if w.Matcher == nil {
		return fmt.Errorf("core: workflow has no matcher")
	}
	return nil
}

// Execute runs the workflow end to end on the full tables: block, extract
// feature vectors in parallel, predict, apply rules.
//
//emlint:allow nondeterminism -- stage durations are reported fields, not decision inputs
func (w *Workflow) Execute(a, b *table.Table, cat *table.Catalog) (*WorkflowResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	res := &WorkflowResult{}

	t0 := time.Now()
	cand, err := w.Blocker.Block(a, b, cat)
	if err != nil {
		return nil, fmt.Errorf("core: workflow blocking: %w", err)
	}
	res.BlockTime = time.Since(t0)
	res.Candidates = cand.Len()

	t0 = time.Now()
	x, err := feature.Vectors(w.Features, cand, cat, feature.ExtractOptions{Workers: w.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: workflow feature extraction: %w", err)
	}
	res.ExtractTime = time.Since(t0)

	t0 = time.Now()
	y := ml.PredictAll(w.Matcher, x)
	if w.Rules != nil {
		y, err = w.Rules.Apply(x, y, w.Features.Names())
		if err != nil {
			return nil, fmt.Errorf("core: workflow rules: %w", err)
		}
	}
	matches, err := table.NewPairTable("workflow_matches", a, b, cat)
	if err != nil {
		return nil, err
	}
	var kept []table.PairID
	for i := 0; i < cand.Len(); i++ {
		if y[i] == 1 {
			kept = append(kept, table.PairID{
				L: cand.Get(i, "ltable_id").AsString(),
				R: cand.Get(i, "rtable_id").AsString(),
			})
		}
	}
	table.AppendPairs(matches, kept)
	res.PredictTime = time.Since(t0)
	res.Matches = matches
	return res, nil
}
