// Package core implements PyMatcher, the power-user EM system of the
// Magellan project, as a Go library. It ties the ecosystem's packages
// (table, tokenize, sim, simjoin, block, feature, rules, ml, label)
// together behind the how-to guide of Figure 2:
//
//	A, B --down sample--> A', B' --try blockers--> pick X --block--> C
//	  --sample--> S --label--> G --cross-validate--> pick matcher V
//	  --predict on C--> +/- --evaluate, debug, iterate--
//
// A Session drives the development stage on down-sampled tables; the
// accurate configuration it converges to is captured as a Workflow — the
// equivalent of the Python script the paper ships to the production stage —
// which executes on the full tables with multicore scaling.
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/block"
	"repro/internal/feature"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/table"
)

// Session is one development-stage EM project over two tables.
type Session struct {
	// A and B are the (possibly down-sampled) tables being matched.
	A, B *table.Table
	// Catalog tracks pair-table metadata for every intermediate result.
	Catalog *table.Catalog
	// Features is the working feature set (auto-generated at session
	// start, user-editable afterwards — the paper's global variable F).
	Features *feature.Set
	// Workers parallelizes feature extraction and cross-validation folds;
	// 0 means GOMAXPROCS (the standard Workers convention, see DESIGN.md).
	Workers int
	// Metrics receives per-stage pipeline timers (obs.StageSeconds with a
	// stage label per guide step) and is forwarded to feature extraction
	// and cross-validation; nil means off (the standard Metrics convention,
	// see DESIGN.md).
	Metrics obs.Recorder

	// Candidates is the current candidate set (after Block).
	Candidates *table.Table
	// Labeled is the current labeled sample (after LabelSample).
	Labeled *LabeledSet

	// candX caches the candidate set's feature vectors between
	// SampleAndLabel and TrainAndPredict.
	candX [][]float64
	rng   *rand.Rand
}

// LabeledSet is a labeled pair sample: the set G of the guide.
type LabeledSet struct {
	Pairs *table.Table // pair table (subset of the candidate set)
	X     [][]float64  // feature vectors, aligned with Pairs rows
	Y     []int        // labels, aligned with Pairs rows
	Names []string     // feature names
}

// Dataset converts the labeled set to an ml.Dataset.
func (ls *LabeledSet) Dataset() (*ml.Dataset, error) {
	return ml.NewDataset(ls.X, ls.Y, ls.Names)
}

// NewSession validates the input tables (both need keys) and
// auto-generates the initial feature set.
func NewSession(a, b *table.Table, seed int64) (*Session, error) {
	if a.Key() == "" || b.Key() == "" {
		return nil, fmt.Errorf("core: both tables need keys (run SetKey first)")
	}
	fs, err := feature.AutoGenerate(a, b)
	if err != nil {
		return nil, err
	}
	return &Session{
		A: a, B: b,
		Catalog:  table.NewCatalog(),
		Features: fs,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// DownSample replaces the session tables with intelligently down-sampled
// versions (step 1 of the guide). The original tables are untouched; keep
// them for the production run.
func (s *Session) DownSample(sizeA, sizeB int) error {
	defer obs.StartTimer(obs.Or(s.Metrics), obs.StageSeconds, obs.L("stage", "downsample"))()
	a, b, err := table.DownSample(s.A, s.B, sizeA, sizeB, s.rng)
	if err != nil {
		return err
	}
	s.A, s.B = a, b
	s.Candidates = nil
	s.Labeled = nil
	s.candX = nil
	return nil
}

// BlockerReport scores one candidate blocker during blocker selection.
type BlockerReport struct {
	Name string
	// Candidates is the candidate-set size the blocker produced.
	Candidates int
	// LikelyMissed is how many of the debugger's top suggestions the
	// labeler confirmed as true matches the blocker dropped.
	LikelyMissed int
	// Err is non-nil when the blocker failed outright.
	Err error
}

// TryBlockers runs each blocker on the session tables and scores it: the
// "experiment with blockers X and Y, examine their output" step. For each
// blocker the blocking debugger proposes its topK most-similar dropped
// pairs and the labeler says which are true matches. The best blocker is
// the one confirmed to miss fewest matches, with candidate-set size as the
// tiebreak; its index is returned alongside the per-blocker reports.
func (s *Session) TryBlockers(blockers []block.Blocker, lab label.Labeler, topK int) (best int, reports []BlockerReport, err error) {
	if len(blockers) == 0 {
		return 0, nil, fmt.Errorf("core: no blockers to try")
	}
	defer obs.StartTimer(obs.Or(s.Metrics), obs.StageSeconds, obs.L("stage", "try_blockers"))()
	reports = make([]BlockerReport, len(blockers))
	for i, blk := range blockers {
		reports[i].Name = blk.Name()
		cand, berr := blk.Block(s.A, s.B, s.Catalog)
		if berr != nil {
			reports[i].Err = berr
			reports[i].LikelyMissed = 1 << 30
			continue
		}
		reports[i].Candidates = cand.Len()
		missed, derr := block.DebugBlocker(cand, s.Catalog, topK)
		if derr != nil {
			reports[i].Err = derr
			continue
		}
		for _, m := range missed {
			if lab.Label(m.LID, m.RID) {
				reports[i].LikelyMissed++
			}
		}
		s.Catalog.Drop(cand)
	}
	best = 0
	for i := 1; i < len(reports); i++ {
		if reports[i].Err != nil {
			continue
		}
		if reports[best].Err != nil ||
			reports[i].LikelyMissed < reports[best].LikelyMissed ||
			(reports[i].LikelyMissed == reports[best].LikelyMissed && reports[i].Candidates < reports[best].Candidates) {
			best = i
		}
	}
	if reports[best].Err != nil {
		return 0, reports, fmt.Errorf("core: every blocker failed; first error: %w", reports[best].Err)
	}
	return best, reports, nil
}

// Block runs the chosen blocker and stores the candidate set C.
func (s *Session) Block(blk block.Blocker) (*table.Table, error) {
	defer obs.StartTimer(obs.Or(s.Metrics), obs.StageSeconds, obs.L("stage", "block"))()
	cand, err := blk.Block(s.A, s.B, s.Catalog)
	if err != nil {
		return nil, err
	}
	s.Candidates = cand
	s.Labeled = nil
	s.candX = nil
	return cand, nil
}

// SampleAndLabel takes a sample S of n candidate pairs and labels it with
// the labeler, producing the labeled set G. Candidate sets are
// overwhelmingly non-matches, so a uniform sample would leave the matcher
// with almost no positive examples; half the sample is therefore taken
// from the pairs with the highest mean feature value (the likely matches a
// real user would make sure to label), half uniformly at random.
func (s *Session) SampleAndLabel(n int, lab label.Labeler) (*LabeledSet, error) {
	if s.Candidates == nil {
		return nil, fmt.Errorf("core: block before sampling (guide order)")
	}
	defer obs.StartTimer(obs.Or(s.Metrics), obs.StageSeconds, obs.L("stage", "sample_label"))()
	meta, _ := s.Catalog.PairMeta(s.Candidates)
	stop := obs.StartTimer(obs.Or(s.Metrics), obs.StageSeconds, obs.L("stage", "feature"))
	allX, err := feature.Vectors(s.Features, s.Candidates, s.Catalog, feature.ExtractOptions{Workers: s.Workers, Metrics: s.Metrics})
	stop()
	if err != nil {
		return nil, err
	}
	s.candX = allX

	idxs := biasedSample(allX, n, s.rng)
	sample := s.Candidates.Select(idxs)
	sample.SetName("labeled_sample")
	if err := s.Catalog.RegisterPair(sample, meta); err != nil {
		return nil, err
	}
	x := make([][]float64, len(idxs))
	y := make([]int, len(idxs))
	for k, i := range idxs {
		x[k] = allX[i]
		if lab.Label(sample.Get(k, meta.LID).AsString(), sample.Get(k, meta.RID).AsString()) {
			y[k] = 1
		}
	}
	s.Labeled = &LabeledSet{Pairs: sample, X: x, Y: y, Names: s.Features.Names()}
	return s.Labeled, nil
}

// biasedSample returns up to n row indices: half the rows with the
// highest mean feature value, half uniform from the remainder.
func biasedSample(x [][]float64, n int, rng *rand.Rand) []int {
	if n >= len(x) {
		out := make([]int, len(x))
		for i := range out {
			out[i] = i
		}
		return out
	}
	means := make([]float64, len(x))
	for i, row := range x {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if len(row) > 0 {
			means[i] = sum / float64(len(row))
		}
	}
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if means[order[a]] != means[order[b]] {
			return means[order[a]] > means[order[b]]
		}
		return order[a] < order[b]
	})
	top := order[:n/2]
	rest := append([]int(nil), order[n/2:]...)
	rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
	out := append(append([]int(nil), top...), rest[:n-len(top)]...)
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// SelectMatcher cross-validates the matcher lineup on the labeled set and
// returns the CV report, best first (the "select matcher via CV" step).
func (s *Session) SelectMatcher(factories []func() ml.Classifier, folds int) ([]ml.CVResult, error) {
	if s.Labeled == nil {
		return nil, fmt.Errorf("core: label a sample before selecting a matcher")
	}
	defer obs.StartTimer(obs.Or(s.Metrics), obs.StageSeconds, obs.L("stage", "cv"))()
	ds, err := s.Labeled.Dataset()
	if err != nil {
		return nil, err
	}
	return ml.SelectMatcher(factories, ds, folds, s.rng, ml.WithWorkers(s.Workers), ml.WithMetrics(s.Metrics))
}

// TrainAndPredict fits the matcher on the full labeled set and predicts
// over the candidate set, returning the predicted match pair table.
func (s *Session) TrainAndPredict(factory func() ml.Classifier) (*table.Table, ml.Classifier, error) {
	if s.Candidates == nil || s.Labeled == nil {
		return nil, nil, fmt.Errorf("core: need candidates and labels before predicting")
	}
	rec := obs.Or(s.Metrics)
	ds, err := s.Labeled.Dataset()
	if err != nil {
		return nil, nil, err
	}
	model := factory()
	stopTrain := obs.StartTimer(rec, obs.StageSeconds, obs.L("stage", "train"))
	err = model.Fit(ds)
	stopTrain()
	if err != nil {
		return nil, nil, err
	}
	defer obs.StartTimer(rec, obs.StageSeconds, obs.L("stage", "predict"))()
	x := s.candX
	if x == nil {
		x, err = feature.Vectors(s.Features, s.Candidates, s.Catalog, feature.ExtractOptions{Workers: s.Workers, Metrics: s.Metrics})
		if err != nil {
			return nil, nil, err
		}
	}
	meta, _ := s.Catalog.PairMeta(s.Candidates)
	matches, err := table.NewPairTable("predicted_matches", meta.LTable, meta.RTable, s.Catalog)
	if err != nil {
		return nil, nil, err
	}
	var kept []table.PairID
	for i := 0; i < s.Candidates.Len(); i++ {
		if ml.Predict(model, x[i]) == 1 {
			kept = append(kept, table.PairID{
				L: s.Candidates.Get(i, meta.LID).AsString(),
				R: s.Candidates.Get(i, meta.RID).AsString(),
			})
		}
	}
	table.AppendPairs(matches, kept)
	return matches, model, nil
}

// Evaluate scores a predicted match table against gold pairs.
func Evaluate(matches *table.Table, gold *label.Gold) ml.Confusion {
	var c ml.Confusion
	for i := 0; i < matches.Len(); i++ {
		if gold.IsMatch(matches.Get(i, "ltable_id").AsString(), matches.Get(i, "rtable_id").AsString()) {
			c.TP++
		} else {
			c.FP++
		}
	}
	c.FN = gold.Len() - c.TP
	if c.FN < 0 {
		c.FN = 0
	}
	return c
}

// MatchRules applies a rule layer on top of ML predictions: pairs on which
// a positive rule fires are added to the matches, and pairs on which a
// negative (veto) rule fires are removed. This is the "combination of ML
// and rules" the paper reports the most accurate real-world workflows use.
type MatchRules struct {
	// Promote rules force a pair to match.
	Promote rules.RuleSet
	// Veto rules force a pair to non-match and win over Promote.
	Veto rules.RuleSet
}

// Apply filters/extends the prediction y over feature matrix x.
func (mr MatchRules) Apply(x [][]float64, y []int, featureNames []string) ([]int, error) {
	promote, err := rules.CompileSet(mr.Promote, featureNames)
	if err != nil {
		return nil, err
	}
	veto, err := rules.CompileSet(mr.Veto, featureNames)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(y))
	copy(out, y)
	for i := range x {
		if fired, _ := promote.AnyFires(x[i]); fired {
			out[i] = 1
		}
		if fired, _ := veto.AnyFires(x[i]); fired {
			out[i] = 0
		}
	}
	return out, nil
}
