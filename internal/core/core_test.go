package core

import (
	"testing"

	"repro/internal/block"
	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/table"
)

func personTask(t *testing.T, n int, seed int64) *datagen.Task {
	t.Helper()
	task, err := datagen.Generate(datagen.Spec{
		Name: "people", Domain: datagen.PersonDomain(),
		SizeA: n, SizeB: n, MatchFraction: 0.5, Typo: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewSessionRequiresKeys(t *testing.T) {
	a := table.New("A", table.StringSchema("id", "name"))
	a.MustAppend(table.String("1"), table.String("x"))
	b := a.Clone()
	if _, err := NewSession(a, b, 1); err == nil {
		t.Fatal("want no-key error")
	}
}

func TestGuideEndToEnd(t *testing.T) {
	// The full Figure 2 guide: down sample, try blockers, block, sample,
	// label, select matcher by CV, predict, evaluate.
	task := personTask(t, 400, 31)
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DownSample(300, 300); err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)

	blockers := []block.Blocker{
		block.AttrEquivalenceBlocker{Attr: "state"},
		block.OverlapBlocker{Attr: "name", MinOverlap: 1},
		block.WholeTupleOverlapBlocker{MinOverlap: 2},
	}
	best, reports, err := s.TryBlockers(blockers, oracle, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if _, err := s.Block(blockers[best]); err != nil {
		t.Fatal(err)
	}
	if s.Candidates.Len() == 0 {
		t.Fatal("no candidates")
	}

	if _, err := s.SampleAndLabel(400, oracle); err != nil {
		t.Fatal(err)
	}
	if s.Labeled.Pairs.Len() == 0 {
		t.Fatal("no labeled pairs")
	}

	results, err := s.SelectMatcher(ml.DefaultMatcherFactories(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("cv results = %d", len(results))
	}
	winner := results[0]
	var factory func() ml.Classifier
	for _, f := range ml.DefaultMatcherFactories(1) {
		if f().Name() == winner.Name {
			factory = f
		}
	}
	matches, model, err := s.TrainAndPredict(factory)
	if err != nil {
		t.Fatal(err)
	}
	if model.Name() != winner.Name {
		t.Errorf("trained %q, selected %q", model.Name(), winner.Name)
	}
	conf := Evaluate(matches, task.Gold)
	if conf.Precision() < 0.85 {
		t.Errorf("precision %.3f too low: %+v", conf.Precision(), conf)
	}
	// Recall is measured against gold matches among the down-sampled
	// tables' pairs only in spirit; with a good blocker it stays decent.
	if conf.TP == 0 {
		t.Error("no true matches found at all")
	}
}

func TestGuideOrderEnforced(t *testing.T) {
	task := personTask(t, 100, 32)
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	if _, err := s.SampleAndLabel(10, oracle); err == nil {
		t.Error("sampling before blocking must fail")
	}
	if _, err := s.SelectMatcher(ml.DefaultMatcherFactories(1), 3); err == nil {
		t.Error("matcher selection before labeling must fail")
	}
	if _, _, err := s.TrainAndPredict(ml.DefaultMatcherFactories(1)[0]); err == nil {
		t.Error("prediction before labeling must fail")
	}
	if _, _, err := s.TryBlockers(nil, oracle, 5); err == nil {
		t.Error("empty blocker list must fail")
	}
}

func TestTryBlockersPrefersRecall(t *testing.T) {
	task := personTask(t, 300, 33)
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	// Exact-name equivalence drops most matches (names get corrupted);
	// token overlap keeps nearly all.
	blockers := []block.Blocker{
		block.AttrEquivalenceBlocker{Attr: "name"},
		block.OverlapBlocker{Attr: "name", MinOverlap: 1},
	}
	best, reports, err := s.TryBlockers(blockers, oracle, 15)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("best = %d (%s); expected the overlap blocker to win: %+v",
			best, reports[best].Name, reports)
	}
}

func TestTryBlockersAllFail(t *testing.T) {
	task := personTask(t, 50, 34)
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	blockers := []block.Blocker{block.AttrEquivalenceBlocker{Attr: "bogus"}}
	if _, _, err := s.TryBlockers(blockers, oracle, 5); err == nil {
		t.Fatal("want all-blockers-failed error")
	}
}

func TestWorkflowExecute(t *testing.T) {
	task := personTask(t, 300, 35)
	// Develop on a session.
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	blk := block.WholeTupleOverlapBlocker{MinOverlap: 2}
	if _, err := s.Block(blk); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleAndLabel(300, oracle); err != nil {
		t.Fatal(err)
	}
	_, model, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: 1} })
	if err != nil {
		t.Fatal(err)
	}

	// Ship it as a workflow and execute on the full tables.
	wf := &Workflow{Blocker: blk, Features: s.Features, Matcher: model}
	cat := table.NewCatalog()
	res, err := wf.Execute(task.A, task.B, cat)
	if err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(res.Matches, task.Gold)
	if conf.F1() < 0.8 {
		t.Errorf("production F1 %.3f too low: %+v", conf.F1(), conf)
	}
	if res.Candidates == 0 || res.BlockTime < 0 {
		t.Error("workflow stats missing")
	}
	// Parallel and serial extraction agree.
	wf.Workers = 1
	res1, err := wf.Execute(task.A, task.B, table.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Matches.Len() != res.Matches.Len() {
		t.Error("worker count changed the result")
	}
}

func TestWorkflowValidate(t *testing.T) {
	var w Workflow
	if err := w.Validate(); err == nil {
		t.Error("want no-blocker error")
	}
	w.Blocker = block.CrossBlocker{}
	if err := w.Validate(); err == nil {
		t.Error("want no-features error")
	}
}

func TestMatchRulesApply(t *testing.T) {
	names := []string{"sim_a", "sim_b"}
	mr := MatchRules{}
	mr.Promote.Add(rules.MustParse("promote", "sim_a >= 0.99"))
	mr.Veto.Add(rules.MustParse("veto", "sim_b <= 0.01"))
	x := [][]float64{
		{1.0, 0.5}, // promoted
		{0.5, 0.0}, // vetoed
		{1.0, 0.0}, // promoted then vetoed -> veto wins
		{0.5, 0.5}, // untouched
	}
	y := []int{0, 1, 1, 1}
	out, err := mr.Apply(x, y, names)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("rule layer: out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	// Unknown feature in a rule fails fast.
	mr.Promote.Add(rules.MustParse("bad", "missing > 0"))
	if _, err := mr.Apply(x, y, names); err == nil {
		t.Error("want unknown-feature error")
	}
}

func TestRuleMatcher(t *testing.T) {
	names := []string{"exact_isbn", "lev_title"}
	var rs rules.RuleSet
	rs.Add(rules.MustParse("isbn", "exact_isbn >= 1"))
	m, err := NewRuleMatcher(rs, names)
	if err != nil {
		t.Fatal(err)
	}
	if m.PredictProba([]float64{1, 0}) != 1 {
		t.Error("rule should fire")
	}
	if m.PredictProba([]float64{0, 1}) != 0 {
		t.Error("rule should not fire")
	}
	ds, err := ml.NewDataset([][]float64{{1, 0}}, []int{1}, names)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(ds); err != nil {
		t.Errorf("fit on matching names: %v", err)
	}
	wrong, err := ml.NewDataset([][]float64{{1, 0}}, []int{1}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(wrong); err == nil {
		t.Error("want feature-order mismatch error")
	}
	var rs2 rules.RuleSet
	rs2.Add(rules.MustParse("bad", "nope >= 1"))
	if _, err := NewRuleMatcher(rs2, names); err == nil {
		t.Error("want compile error")
	}
}

func TestMLBeatsRuleBaseline(t *testing.T) {
	// The Table 1 headline: the PyMatcher ML workflow beats a
	// conservative rule-only incumbent on recall at comparable precision.
	task := personTask(t, 300, 36)
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	blk := block.WholeTupleOverlapBlocker{MinOverlap: 2}
	if _, err := s.Block(blk); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleAndLabel(300, oracle); err != nil {
		t.Fatal(err)
	}
	mlMatches, _, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: 1} })
	if err != nil {
		t.Fatal(err)
	}
	mlConf := Evaluate(mlMatches, task.Gold)

	// The incumbent: exact name AND exact zip.
	var rs rules.RuleSet
	rs.Add(rules.MustParse("incumbent", "exact_name >= 1 AND exact_zip >= 1"))
	baseline, err := NewRuleMatcher(rs, s.Features.Names())
	if err != nil {
		t.Fatal(err)
	}
	blMatches, _, err := s.TrainAndPredict(func() ml.Classifier { return baseline })
	if err != nil {
		t.Fatal(err)
	}
	blConf := Evaluate(blMatches, task.Gold)

	if mlConf.Recall() <= blConf.Recall() {
		t.Errorf("ML recall %.3f should beat rule baseline %.3f", mlConf.Recall(), blConf.Recall())
	}
	if mlConf.Precision() < blConf.Precision()-0.1 {
		t.Errorf("ML precision %.3f collapsed vs baseline %.3f", mlConf.Precision(), blConf.Precision())
	}
}
