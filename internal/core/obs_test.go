package core

import (
	"testing"

	"repro/internal/block"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/obs"
)

// TestSessionStageMetrics: a session with a live recorder times every guide
// stage and forwards the recorder into blocking, feature extraction, and
// cross-validation.
func TestSessionStageMetrics(t *testing.T) {
	task := personTask(t, 200, 7)
	s, err := NewSession(task.A, task.B, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Metrics = reg
	if err := s.DownSample(150, 150); err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	blk := block.OverlapBlocker{Attr: "name", MinOverlap: 1, Metrics: reg}
	if _, err := s.Block(blk); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleAndLabel(200, oracle); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SelectMatcher(ml.DefaultMatcherFactories(1), 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: 1} }); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"downsample", "block", "sample_label", "feature", "cv", "train", "predict"} {
		if n := reg.TimerCount(obs.StageSeconds, obs.L("stage", stage)); n != 1 {
			t.Errorf("stage %q timers = %d, want 1", stage, n)
		}
	}
	bl := obs.L("blocker", blk.Name())
	if n := reg.TimerCount(obs.BlockSeconds, bl); n != 1 {
		t.Errorf("block timers = %d, want 1", n)
	}
	if v := reg.CounterValue(obs.BlockPairsEmitted, bl); v != float64(s.Candidates.Len()) {
		t.Errorf("pairs emitted = %v, want %d", v, s.Candidates.Len())
	}
	if v := reg.CounterValue(obs.FeatureVectors); v == 0 {
		t.Error("no feature vectors counted")
	}
	// Each of the 6 matchers cross-validates once, 3 folds each.
	if n := reg.TimerCount(obs.CVSeconds, obs.L("matcher", "random_forest")); n != 1 {
		t.Errorf("random_forest cv timers = %d, want 1", n)
	}
}

// TestSessionNilMetricsUnchanged: leaving Metrics nil must not change any
// pipeline output (the no-op recorder convention).
func TestSessionNilMetricsUnchanged(t *testing.T) {
	run := func(rec obs.Recorder) int {
		task := personTask(t, 150, 9)
		s, err := NewSession(task.A, task.B, 1)
		if err != nil {
			t.Fatal(err)
		}
		s.Metrics = rec
		oracle := label.NewOracle(task.Gold)
		if _, err := s.Block(block.OverlapBlocker{Attr: "name", MinOverlap: 1, Metrics: rec}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SampleAndLabel(150, oracle); err != nil {
			t.Fatal(err)
		}
		matches, _, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: 1} })
		if err != nil {
			t.Fatal(err)
		}
		return matches.Len()
	}
	if with, without := run(obs.NewRegistry()), run(nil); with != without {
		t.Errorf("recorder changed predictions: %d != %d", with, without)
	}
}
