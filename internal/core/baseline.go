package core

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/rules"
)

// RuleMatcher is a matcher driven entirely by hand-written match rules —
// no learning. It stands in for the incumbent "company solutions"
// PyMatcher was compared against in Table 1 (e.g. the vendor system the
// Land Use team had used for three years): such systems are typically
// conservative exact-or-near-exact rules with high precision and poor
// recall, which is exactly the behaviour the ablation benchmarks contrast
// ML against.
type RuleMatcher struct {
	// Match is the disjunction of rules that declare a pair a match.
	Match rules.RuleSet

	compiled *rules.CompiledRuleSet
	names    []string
}

// NewRuleMatcher compiles the rule set against the feature-name order the
// matcher will be scored with.
func NewRuleMatcher(match rules.RuleSet, featureNames []string) (*RuleMatcher, error) {
	c, err := rules.CompileSet(match, featureNames)
	if err != nil {
		return nil, err
	}
	return &RuleMatcher{Match: match, compiled: c, names: featureNames}, nil
}

// Name implements ml.Classifier.
func (m *RuleMatcher) Name() string { return "rule_matcher" }

// Fit implements ml.Classifier as a no-op: rules are not trained. It still
// validates that the dataset's feature names match the compiled order, the
// self-containment check that prevents silently scoring the wrong columns.
func (m *RuleMatcher) Fit(d *ml.Dataset) error {
	if m.compiled == nil {
		return fmt.Errorf("core: rule matcher not compiled; use NewRuleMatcher")
	}
	if d.Names != nil {
		if len(d.Names) != len(m.names) {
			return fmt.Errorf("core: rule matcher compiled for %d features, dataset has %d", len(m.names), len(d.Names))
		}
		for i := range d.Names {
			if d.Names[i] != m.names[i] {
				return fmt.Errorf("core: rule matcher feature order mismatch at %d: %q vs %q", i, m.names[i], d.Names[i])
			}
		}
	}
	return nil
}

// PredictProba implements ml.Classifier: 1 when any match rule fires.
func (m *RuleMatcher) PredictProba(x []float64) float64 {
	if m.compiled == nil {
		return 0
	}
	if fired, _ := m.compiled.AnyFires(x); fired {
		return 1
	}
	return 0
}
