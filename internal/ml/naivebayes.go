package ml

import "math"

// GaussianNB is a Gaussian naive Bayes classifier: each feature is modeled
// as an independent normal per class.
type GaussianNB struct {
	prior [2]float64   // log class priors
	mean  [2][]float64 // per-class feature means
	vari  [2][]float64 // per-class feature variances (floored)
	fit   bool
}

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "naive_bayes" }

// Fit implements Classifier.
func (g *GaussianNB) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return errEmpty(g.Name())
	}
	nf := d.NumFeatures()
	var count [2]int
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, nf)
		g.vari[c] = make([]float64, nf)
	}
	for i := range d.X {
		c := d.Y[i]
		count[c]++
		for j := 0; j < nf; j++ {
			g.mean[c][j] += d.X[i][j]
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			continue
		}
		for j := 0; j < nf; j++ {
			g.mean[c][j] /= float64(count[c])
		}
	}
	for i := range d.X {
		c := d.Y[i]
		for j := 0; j < nf; j++ {
			dx := d.X[i][j] - g.mean[c][j]
			g.vari[c][j] += dx * dx
		}
	}
	const varFloor = 1e-9
	for c := 0; c < 2; c++ {
		for j := 0; j < nf; j++ {
			if count[c] > 0 {
				g.vari[c][j] /= float64(count[c])
			}
			if g.vari[c][j] < varFloor {
				g.vari[c][j] = varFloor
			}
		}
		// Laplace-smoothed prior keeps a class absent from training data
		// from collapsing to -inf.
		g.prior[c] = math.Log(float64(count[c]+1) / float64(d.Len()+2))
	}
	g.fit = true
	return nil
}

// PredictProba implements Classifier.
func (g *GaussianNB) PredictProba(x []float64) float64 {
	if !g.fit {
		return 0
	}
	var logp [2]float64
	for c := 0; c < 2; c++ {
		lp := g.prior[c]
		for j := range x {
			v := g.vari[c][j]
			dx := x[j] - g.mean[c][j]
			lp += -0.5*math.Log(2*math.Pi*v) - dx*dx/(2*v)
		}
		logp[c] = lp
	}
	// Softmax over the two log joint probabilities.
	m := math.Max(logp[0], logp[1])
	e0 := math.Exp(logp[0] - m)
	e1 := math.Exp(logp[1] - m)
	return e1 / (e0 + e1)
}
