package ml

import (
	"math"
	"math/rand"
)

// LinearSVM is a linear support-vector classifier trained by stochastic
// subgradient descent on the L2-regularized hinge loss (Pegasos-style).
// PredictProba squashes the margin through a sigmoid, which is adequate
// for 0.5-thresholded EM matching.
type LinearSVM struct {
	// Epochs is the number of passes; 0 means 100.
	Epochs int
	// Lambda is the regularization strength; 0 means 1e-3.
	Lambda float64
	// Seed drives example shuffling.
	Seed int64

	w    []float64
	b    float64
	mean []float64
	std  []float64
}

// Name implements Classifier.
func (s *LinearSVM) Name() string { return "linear_svm" }

// Fit implements Classifier.
func (s *LinearSVM) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return errEmpty(s.Name())
	}
	nf := d.NumFeatures()
	s.mean = make([]float64, nf)
	s.std = make([]float64, nf)
	for j := 0; j < nf; j++ {
		var sum, sum2 float64
		for i := range d.X {
			sum += d.X[i][j]
		}
		m := sum / float64(d.Len())
		for i := range d.X {
			dx := d.X[i][j] - m
			sum2 += dx * dx
		}
		sd := math.Sqrt(sum2 / float64(d.Len()))
		if sd < 1e-12 {
			sd = 1
		}
		s.mean[j], s.std[j] = m, sd
	}

	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 100
	}
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	s.w = make([]float64, nf)
	s.b = 0
	rng := rand.New(rand.NewSource(s.Seed))
	order := rng.Perm(d.Len())
	z := make([]float64, nf)
	t := 1
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			eta := 1 / (lambda * float64(t))
			t++
			for j := 0; j < nf; j++ {
				z[j] = (d.X[i][j] - s.mean[j]) / s.std[j]
			}
			yi := float64(2*d.Y[i] - 1) // {-1, +1}
			margin := yi * (dot(s.w, z) + s.b)
			for j := 0; j < nf; j++ {
				s.w[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j := 0; j < nf; j++ {
					s.w[j] += eta * yi * z[j]
				}
				s.b += eta * yi
			}
		}
	}
	return nil
}

// Margin returns the signed decision value for x (positive means match).
func (s *LinearSVM) Margin(x []float64) float64 {
	if s.w == nil {
		return 0
	}
	var z float64
	for j := range s.w {
		z += s.w[j] * (x[j] - s.mean[j]) / s.std[j]
	}
	return z + s.b
}

// PredictProba implements Classifier.
func (s *LinearSVM) PredictProba(x []float64) float64 {
	if s.w == nil {
		return 0
	}
	return sigmoid(s.Margin(x))
}
