package ml

import (
	"math"
	"math/rand"
	"slices"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling. It is the workhorse classifier of Falcon/CloudMatcher: its
// trees are mined for candidate blocking rules, and its vote fraction is
// both the match probability and the active-learning uncertainty signal.
type RandomForest struct {
	// NumTrees is the ensemble size; 0 means 10 (Falcon's default).
	NumTrees int
	// MaxDepth bounds each tree; 0 means 10.
	MaxDepth int
	// MinSamplesLeaf is forwarded to each tree; 0 means 1.
	MinSamplesLeaf int
	// Alpha is the vote fraction required to declare a match (the
	// paper's αn rule); 0 means 0.5.
	Alpha float64
	// Seed makes training deterministic.
	Seed int64
	// Workers parallelizes tree training; 0 means GOMAXPROCS. Output is
	// bit-identical for every setting: all per-tree randomness (seed and
	// bootstrap sample) is pre-drawn from the forest RNG in serial order
	// before any tree trains.
	Workers int
	// Metrics receives fit timings (obs.ForestFitSeconds per Fit call,
	// obs.ForestTreeFitSeconds per tree); nil means off.
	Metrics obs.Recorder

	trees []*DecisionTree
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "random_forest" }

// Trees returns the fitted ensemble (nil before Fit). Falcon walks these to
// extract blocking rules. The slice is a copy, so callers cannot displace
// trees out from under a concurrently-predicting forest.
func (f *RandomForest) Trees() []*DecisionTree { return slices.Clone(f.trees) }

func (f *RandomForest) numTrees() int {
	if f.NumTrees <= 0 {
		return 10
	}
	return f.NumTrees
}

func (f *RandomForest) alpha() float64 {
	if f.Alpha <= 0 {
		return 0.5
	}
	return f.Alpha
}

// Fit implements Classifier.
func (f *RandomForest) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return errEmpty(f.Name())
	}
	rec := obs.Or(f.Metrics)
	defer obs.StartTimer(rec, obs.ForestFitSeconds)()
	rng := rand.New(rand.NewSource(f.Seed))
	maxFeat := int(math.Sqrt(float64(d.NumFeatures())))
	if maxFeat < 1 {
		maxFeat = 1
	}
	n := f.numTrees()
	// Pre-draw every tree's randomness from the forest RNG in the same
	// order the serial loop consumed it, so concurrent training cannot
	// perturb the stream and Workers=k reproduces Workers=1 bit for bit.
	seeds := make([]int64, n)
	boots := make([]*Dataset, n)
	for i := 0; i < n; i++ {
		seeds[i] = rng.Int63()
		boots[i] = d.Bootstrap(d.Len(), rng)
	}
	f.trees = make([]*DecisionTree, n)
	// One fit scratch per worker, reused across the trees that worker
	// trains: the partition/sort buffers are allocated once instead of per
	// node and per split. ForEachShard clamps shards the same way, so
	// every shard index stays inside the slice.
	nw := parallel.Resolve(f.Workers)
	if nw > n {
		nw = n
	}
	scratch := make([]treeFitScratch, nw)
	err := parallel.ForEachShard(f.Workers, n, func(shard, i int) error {
		stop := obs.StartTimer(rec, obs.ForestTreeFitSeconds)
		defer stop()
		t := &DecisionTree{
			MaxDepth:       f.MaxDepth,
			MinSamplesLeaf: f.MinSamplesLeaf,
			MaxFeatures:    maxFeat,
			Seed:           seeds[i],
		}
		if err := t.fit(boots[i], &scratch[shard]); err != nil {
			return err
		}
		f.trees[i] = t
		return nil
	})
	if err != nil {
		f.trees = nil
		return err
	}
	return nil
}

// VoteFraction returns the fraction of trees predicting match for x.
func (f *RandomForest) VoteFraction(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	votes := 0
	for _, t := range f.trees {
		if t.PredictProba(x) >= 0.5 {
			votes++
		}
	}
	return float64(votes) / float64(len(f.trees))
}

// PredictProba implements Classifier. The probability is the vote fraction
// shifted so that the αn voting rule of the paper coincides with the usual
// 0.5 threshold: a pair is a match iff at least α·n trees say so.
func (f *RandomForest) PredictProba(x []float64) float64 {
	return alphaShift(f.VoteFraction(x), f.alpha())
}

// alphaShift is the piecewise-linear map sending [0,a] -> [0,0.5] and
// [a,1] -> [0.5,1]. It is the single implementation shared by the pointer
// forest and FlatForest so the two paths stay bit-identical: both compute
// the same exact integer-valued vote fraction, then apply this same float
// expression.
//
//emlint:zeroalloc
//emlint:hotpath
func alphaShift(v, a float64) float64 {
	if v <= a {
		if a == 0 {
			return 1
		}
		return 0.5 * v / a
	}
	return 0.5 + 0.5*(v-a)/(1-a)
}

// Entropy returns the binary entropy of the vote fraction — the
// uncertainty score active learning uses to pick the next pairs to label.
func (f *RandomForest) Entropy(x []float64) float64 {
	p := f.VoteFraction(x)
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
