package ml

import "sort"

// KNN is a k-nearest-neighbors classifier under Euclidean distance. It
// memorizes the training set; PredictProba is the positive fraction among
// the k nearest training examples.
type KNN struct {
	// K is the neighborhood size; 0 means 5.
	K int

	x [][]float64
	y []int
}

// Name implements Classifier.
func (k *KNN) Name() string { return "knn" }

func (k *KNN) k() int {
	if k.K <= 0 {
		return 5
	}
	return k.K
}

// Fit implements Classifier.
func (k *KNN) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return errEmpty(k.Name())
	}
	k.x = d.X
	k.y = d.Y
	return nil
}

// PredictProba implements Classifier.
func (k *KNN) PredictProba(x []float64) float64 {
	if len(k.x) == 0 {
		return 0
	}
	type neigh struct {
		d float64
		y int
	}
	ns := make([]neigh, len(k.x))
	for i, xi := range k.x {
		var d float64
		for j := range x {
			dx := x[j] - xi[j]
			d += dx * dx
		}
		ns[i] = neigh{d, k.y[i]}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].d < ns[b].d })
	kk := k.k()
	if kk > len(ns) {
		kk = len(ns)
	}
	pos := 0
	for _, n := range ns[:kk] {
		pos += n.y
	}
	return float64(pos) / float64(kk)
}
