package ml

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// TestCrossValidateRecordsMetrics: WithMetrics must record one CV-run
// timer and k per-fold timers labeled by matcher name, without changing
// the result.
func TestCrossValidateRecordsMetrics(t *testing.T) {
	ds := benchDataset(200, 6, 9)
	factory := func() Classifier { return &DecisionTree{Seed: 3} }
	reg := obs.NewRegistry()
	withRec, err := CrossValidate(factory, ds, 5, rand.New(rand.NewSource(2)), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CrossValidate(factory, ds, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if withRec != plain {
		t.Errorf("metrics changed the result: %+v != %+v", withRec, plain)
	}
	name := obs.L("matcher", "decision_tree")
	if n := reg.TimerCount(obs.CVSeconds, name); n != 1 {
		t.Errorf("cv run timers = %d, want 1", n)
	}
	if n := reg.TimerCount(obs.CVFoldSeconds, name); n != 5 {
		t.Errorf("cv fold timers = %d, want 5", n)
	}
}

// TestForestFitRecordsMetrics: a forest with a live recorder times the
// whole fit and every tree.
func TestForestFitRecordsMetrics(t *testing.T) {
	ds := benchDataset(120, 5, 4)
	reg := obs.NewRegistry()
	f := &RandomForest{NumTrees: 8, Seed: 2, Metrics: reg}
	if err := f.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if n := reg.TimerCount(obs.ForestFitSeconds); n != 1 {
		t.Errorf("fit timers = %d, want 1", n)
	}
	if n := reg.TimerCount(obs.ForestTreeFitSeconds); n != 8 {
		t.Errorf("tree timers = %d, want 8", n)
	}
}
