package ml

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// TreeNode is one node of a CART decision tree. Internal nodes route
// x[Feature] <= Threshold to Left and the rest to Right; leaves carry the
// positive-class probability. The structure is exported because Falcon
// extracts blocking rules from tree branches (Figure 4 of the paper).
type TreeNode struct {
	Leaf      bool
	Proba     float64 // leaf: P(match)
	N         int     // training examples that reached this node
	Feature   int     // internal: feature index
	Threshold float64 // internal: split threshold
	Left      *TreeNode
	Right     *TreeNode
}

// DecisionTree is a CART classifier using Gini impurity.
type DecisionTree struct {
	// MaxDepth bounds tree depth; 0 means 10.
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting;
	// 0 means 2.
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum examples each child must receive;
	// 0 means 1.
	MinSamplesLeaf int
	// MaxFeatures bounds the number of features considered per split;
	// 0 means all. The random forest sets this to sqrt(d).
	MaxFeatures int
	// Seed drives feature subsampling when MaxFeatures > 0.
	Seed int64

	root *TreeNode
	d    int // feature dimensionality seen at fit time
	rng  *rand.Rand
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "decision_tree" }

// Root returns the fitted tree's root node (nil before Fit).
func (t *DecisionTree) Root() *TreeNode { return t.root }

// fv is one (feature value, label) pair — the unit bestSplit sorts per
// candidate feature.
type fv struct {
	v float64
	y int
}

// treeFitScratch holds the reusable working buffers of tree fitting. One
// scratch serves any number of sequential fits (RandomForest.Fit keeps one
// per worker), so the per-node left/right slices and per-split
// feature/value slices the old code allocated are paid once per worker
// instead of once per node/split.
type treeFitScratch struct {
	idxs  []int // row set of the tree, partitioned in place per node
	part  []int // right-half staging area of the stable partition
	feats []int // candidate feature indices per split
	vals  []fv  // (value, label) pairs sorted per candidate feature
}

// reset sizes the buffers for a fit over n rows and d features.
func (s *treeFitScratch) reset(n, d int) {
	if cap(s.idxs) < n {
		s.idxs = make([]int, n)
	}
	s.idxs = s.idxs[:n]
	if cap(s.part) < n {
		s.part = make([]int, n)
	}
	s.part = s.part[:n]
	if cap(s.feats) < d {
		s.feats = make([]int, d)
	}
	s.feats = s.feats[:d]
	if cap(s.vals) < n {
		s.vals = make([]fv, 0, n)
	}
}

// Fit implements Classifier.
func (t *DecisionTree) Fit(d *Dataset) error {
	return t.fit(d, &treeFitScratch{})
}

// fit is Fit with caller-owned scratch, the entry point for callers that
// train many trees (the forest reuses one scratch per worker).
func (t *DecisionTree) fit(d *Dataset, scr *treeFitScratch) error {
	if d.Len() == 0 {
		return errEmpty(t.Name())
	}
	t.d = d.NumFeatures()
	t.rng = rand.New(rand.NewSource(t.Seed))
	scr.reset(d.Len(), t.d)
	for i := range scr.idxs {
		scr.idxs[i] = i
	}
	t.root = t.build(d, scr, scr.idxs, 0)
	return nil
}

func (t *DecisionTree) maxDepth() int {
	if t.MaxDepth <= 0 {
		return 10
	}
	return t.MaxDepth
}

func (t *DecisionTree) minSplit() int {
	if t.MinSamplesSplit < 2 {
		return 2
	}
	return t.MinSamplesSplit
}

func (t *DecisionTree) minLeaf() int {
	if t.MinSamplesLeaf < 1 {
		return 1
	}
	return t.MinSamplesLeaf
}

// build grows the subtree over the rows idxs (a subslice of scr.idxs that
// build is free to reorder).
func (t *DecisionTree) build(d *Dataset, scr *treeFitScratch, idxs []int, depth int) *TreeNode {
	pos := 0
	for _, i := range idxs {
		pos += d.Y[i]
	}
	node := &TreeNode{N: len(idxs), Proba: float64(pos) / float64(len(idxs))}
	if depth >= t.maxDepth() || len(idxs) < t.minSplit() || pos == 0 || pos == len(idxs) {
		node.Leaf = true
		return node
	}
	feat, thresh, ok := t.bestSplit(d, scr, idxs)
	if !ok {
		node.Leaf = true
		return node
	}
	// Stable in-place partition: compact the left half down while staging
	// the right half in scr.part, then copy it back after the left half.
	// Both halves keep their relative order, so the recursion sees the
	// same row sequences the old append-built slices held — with zero
	// per-node allocation. scr.part is free again before the recursion.
	nl, nr := 0, 0
	for _, i := range idxs {
		if d.X[i][feat] <= thresh {
			idxs[nl] = i
			nl++
		} else {
			scr.part[nr] = i
			nr++
		}
	}
	copy(idxs[nl:], scr.part[:nr])
	if nl < t.minLeaf() || nr < t.minLeaf() {
		node.Leaf = true
		return node
	}
	node.Feature = feat
	node.Threshold = thresh
	node.Left = t.build(d, scr, idxs[:nl], depth+1)
	node.Right = t.build(d, scr, idxs[nl:], depth+1)
	return node
}

// bestSplit finds the (feature, threshold) pair minimizing weighted Gini
// impurity over a (possibly subsampled) feature set.
func (t *DecisionTree) bestSplit(d *Dataset, scr *treeFitScratch, idxs []int) (feat int, thresh float64, ok bool) {
	features := scr.feats
	for j := range features {
		features[j] = j
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < t.d {
		t.rng.Shuffle(len(features), func(a, b int) { features[a], features[b] = features[b], features[a] })
		features = features[:t.MaxFeatures]
	}

	bestGini := 2.0
	vals := scr.vals
	for _, j := range features {
		vals = vals[:0]
		for _, i := range idxs {
			vals = append(vals, fv{d.X[i][j], d.Y[i]})
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		totalPos := 0
		for _, e := range vals {
			totalPos += e.y
		}
		n := len(vals)
		leftPos, leftN := 0, 0
		for k := 0; k < n-1; k++ {
			leftPos += vals[k].y
			leftN++
			if vals[k].v == vals[k+1].v {
				continue // cannot split between equal values
			}
			rightPos := totalPos - leftPos
			rightN := n - leftN
			g := weightedGini(leftPos, leftN, rightPos, rightN)
			if g < bestGini {
				bestGini = g
				feat = j
				thresh = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

// weightedGini returns the size-weighted Gini impurity of a binary split.
func weightedGini(leftPos, leftN, rightPos, rightN int) float64 {
	gini := func(pos, n int) float64 {
		if n == 0 {
			return 0
		}
		p := float64(pos) / float64(n)
		return 2 * p * (1 - p)
	}
	total := float64(leftN + rightN)
	return float64(leftN)/total*gini(leftPos, leftN) + float64(rightN)/total*gini(rightPos, rightN)
}

// PredictProba implements Classifier.
func (t *DecisionTree) PredictProba(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.Leaf {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Proba
}

// Depth returns the depth of the fitted tree (a single leaf has depth 0).
func (t *DecisionTree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *TreeNode) int {
	if n == nil || n.Leaf {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders the fitted tree as an indented text diagram using the
// given feature names (nil falls back to f<i>).
func (t *DecisionTree) String(names []string) string {
	var b strings.Builder
	var walk func(n *TreeNode, indent string)
	walk = func(n *TreeNode, indent string) {
		if n == nil {
			return
		}
		if n.Leaf {
			label := "No"
			if n.Proba >= 0.5 {
				label = "Yes"
			}
			fmt.Fprintf(&b, "%sleaf %s (p=%.2f, n=%d)\n", indent, label, n.Proba, n.N)
			return
		}
		name := fmt.Sprintf("f%d", n.Feature)
		if names != nil && n.Feature < len(names) {
			name = names[n.Feature]
		}
		fmt.Fprintf(&b, "%s%s <= %.4g?\n", indent, name, n.Threshold)
		walk(n.Left, indent+"  ")
		walk(n.Right, indent+"  ")
	}
	walk(t.root, "")
	return b.String()
}
