package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFlatForestBitIdentical is the equivalence suite of ISSUE 10: over
// quick-generated forests (random shape, alpha, depth, seed) and random
// query vectors, FlatForest.PredictProba and PredictProbaBatch must return
// floats bit-identical to RandomForest.PredictProba.
func TestFlatForestBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rf := &RandomForest{
			NumTrees: 1 + rng.Intn(16),
			MaxDepth: 1 + rng.Intn(8),
			Alpha:    []float64{0, 0.3, 0.5, 0.9}[rng.Intn(4)],
			Seed:     rng.Int63(),
		}
		train := synthDataset(50+rng.Intn(200), rng.Intn(4), rng.Int63())
		if err := rf.Fit(train); err != nil {
			t.Fatal(err)
		}
		ff, err := NewFlatForest(rf)
		if err != nil {
			t.Fatal(err)
		}
		if ff.NumTrees() != rf.numTrees() {
			return false
		}
		nf := train.NumFeatures()
		xs := make([][]float64, 64)
		for i := range xs {
			x := make([]float64, nf)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			xs[i] = x
		}
		out := make([]float64, len(xs))
		ff.PredictProbaBatch(xs, out)
		for i, x := range xs {
			want := rf.PredictProba(x)
			if got := ff.PredictProba(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Logf("PredictProba diverged: got %v want %v", got, want)
				return false
			}
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Logf("PredictProbaBatch diverged: got %v want %v", out[i], want)
				return false
			}
			if vf := ff.VoteFraction(x); math.Float64bits(vf) != math.Float64bits(rf.VoteFraction(x)) {
				t.Logf("VoteFraction diverged")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFlatForestNotFitted(t *testing.T) {
	if _, err := NewFlatForest(nil); err != ErrNotFitted {
		t.Fatalf("NewFlatForest(nil) err = %v, want ErrNotFitted", err)
	}
	if _, err := NewFlatForest(&RandomForest{}); err != ErrNotFitted {
		t.Fatalf("NewFlatForest(unfitted) err = %v, want ErrNotFitted", err)
	}
}

// TestFlatForestZeroAlloc pins the //emlint:zeroalloc contracts on the flat
// traversal kernels and alphaShift.
func TestFlatForestZeroAlloc(t *testing.T) {
	rf := &RandomForest{NumTrees: 8, Seed: 3}
	if err := rf.Fit(synthDataset(200, 2, 7)); err != nil {
		t.Fatal(err)
	}
	ff, err := NewFlatForest(rf)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 16)
	rng := rand.New(rand.NewSource(9))
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	out := make([]float64, len(xs))
	var sink float64
	if allocs := testing.AllocsPerRun(50, func() {
		sink = ff.PredictProba(xs[0])
		sink += ff.VoteFraction(xs[1])
		if ff.vote(ff.roots[0], xs[2]) {
			sink++
		}
		ff.PredictProbaBatch(xs, out)
		sink += alphaShift(0.7, 0.4)
	}); allocs != 0 {
		t.Fatalf("flat inference allocs = %v, want 0", allocs)
	}
	_ = sink
}
