package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// CVResult holds the cross-validation scores of one classifier.
type CVResult struct {
	Name      string
	Folds     int
	Precision float64 // mean across folds
	Recall    float64
	F1        float64
}

// CrossValidate runs stratified k-fold cross-validation of the classifier
// factory on the dataset and returns mean precision/recall/F1. A factory is
// required (not an instance) because each fold needs a fresh model.
func CrossValidate(factory func() Classifier, d *Dataset, k int, rng *rand.Rand) (CVResult, error) {
	if k < 2 {
		return CVResult{}, fmt.Errorf("ml: cross-validation needs k >= 2, got %d", k)
	}
	if d.Len() < k {
		return CVResult{}, fmt.Errorf("ml: %d examples cannot fill %d folds", d.Len(), k)
	}
	folds := stratifiedFolds(d, k, rng)
	name := factory().Name()
	res := CVResult{Name: name, Folds: k}
	for fi := 0; fi < k; fi++ {
		var trainIdx, testIdx []int
		for fj, fold := range folds {
			if fj == fi {
				testIdx = append(testIdx, fold...)
			} else {
				trainIdx = append(trainIdx, fold...)
			}
		}
		if len(trainIdx) == 0 || len(testIdx) == 0 {
			continue
		}
		model := factory()
		if err := model.Fit(d.Subset(trainIdx)); err != nil {
			return CVResult{}, fmt.Errorf("ml: cv fold %d: %w", fi, err)
		}
		conf, err := Evaluate(model, d.Subset(testIdx))
		if err != nil {
			return CVResult{}, err
		}
		res.Precision += conf.Precision()
		res.Recall += conf.Recall()
		res.F1 += conf.F1()
	}
	res.Precision /= float64(k)
	res.Recall /= float64(k)
	res.F1 /= float64(k)
	return res, nil
}

// stratifiedFolds partitions example indices into k folds preserving the
// class ratio in each fold.
func stratifiedFolds(d *Dataset, k int, rng *rand.Rand) [][]int {
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(a, b int) { pos[a], pos[b] = pos[b], pos[a] })
	rng.Shuffle(len(neg), func(a, b int) { neg[a], neg[b] = neg[b], neg[a] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// SelectMatcher cross-validates every factory and returns all results
// sorted by descending F1, with the winner first. This is the "select the
// best matcher" step of the PyMatcher guide (Figure 2).
func SelectMatcher(factories []func() Classifier, d *Dataset, k int, rng *rand.Rand) ([]CVResult, error) {
	if len(factories) == 0 {
		return nil, fmt.Errorf("ml: no matchers to select among")
	}
	results := make([]CVResult, 0, len(factories))
	for _, f := range factories {
		r, err := CrossValidate(f, d, k, rng)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	sort.SliceStable(results, func(a, b int) bool { return results[a].F1 > results[b].F1 })
	return results, nil
}

// DefaultMatcherFactories returns the standard PyMatcher matcher lineup:
// decision tree, random forest, logistic regression, naive Bayes, linear
// SVM, and kNN, all seeded deterministically.
func DefaultMatcherFactories(seed int64) []func() Classifier {
	return []func() Classifier{
		func() Classifier { return &DecisionTree{Seed: seed} },
		func() Classifier { return &RandomForest{Seed: seed} },
		func() Classifier { return &LogisticRegression{Seed: seed} },
		func() Classifier { return &GaussianNB{} },
		func() Classifier { return &LinearSVM{Seed: seed} },
		func() Classifier { return &KNN{} },
	}
}
