package ml

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// CVResult holds the cross-validation scores of one classifier.
type CVResult struct {
	Name      string
	Folds     int
	Precision float64 // mean across folds
	Recall    float64
	F1        float64
}

// CVOption tunes cross-validation execution; see WithWorkers and
// WithMetrics. Options are applied in order, so later options win.
type CVOption func(*cvConfig)

// cvConfig is the resolved option set.
type cvConfig struct {
	workers int
	metrics obs.Recorder
}

func applyCVOptions(opts []CVOption) cvConfig {
	var c cvConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithWorkers parallelizes fold evaluation across n goroutines; 0 (the
// default) means GOMAXPROCS. The result is bit-identical for every
// setting: fold assignment is drawn from the caller's RNG before any fold
// runs, each fold's model draws only on its own factory-provided seed,
// and per-fold scores are accumulated in fold order.
func WithWorkers(n int) CVOption {
	return func(c *cvConfig) { c.workers = n }
}

// WithMetrics records per-run and per-fold timings
// (obs.CVSeconds/obs.CVFoldSeconds, labeled by matcher name) into r.
func WithMetrics(r obs.Recorder) CVOption {
	return func(c *cvConfig) { c.metrics = r }
}

// foldScore holds one evaluated fold's metrics.
type foldScore struct {
	ok            bool
	prec, rec, f1 float64
}

// CrossValidate runs stratified k-fold cross-validation of the classifier
// factory on the dataset and returns mean precision/recall/F1. A factory
// is required (not an instance) because each fold needs a fresh model.
// Degenerate folds (empty train or test split, possible when one class is
// rarer than k) are skipped, and the means are taken over the folds
// actually evaluated; it is an error for every fold to be degenerate.
func CrossValidate(factory func() Classifier, d *Dataset, k int, rng *rand.Rand, opts ...CVOption) (CVResult, error) {
	cfg := applyCVOptions(opts)
	if k < 2 {
		return CVResult{}, fmt.Errorf("ml: cross-validation needs k >= 2, got %d", k)
	}
	if d.Len() < k {
		return CVResult{}, fmt.Errorf("ml: %d examples cannot fill %d folds", d.Len(), k)
	}
	// All shared randomness is consumed here, before the folds fan out.
	folds := stratifiedFolds(d, k, rng)
	name := factory().Name()
	rec := obs.Or(cfg.metrics)
	defer obs.StartTimer(rec, obs.CVSeconds, obs.L("matcher", name))()
	scores := make([]foldScore, k)
	err := parallel.ForEach(cfg.workers, k, func(fi int) error {
		stop := obs.StartTimer(rec, obs.CVFoldSeconds, obs.L("matcher", name))
		defer stop()
		testIdx := make([]int, 0, len(folds[fi])) //emlint:allow hotalloc -- two exact-size slices per CV fold; the fold's model fit dominates
		trainIdx := make([]int, 0, d.Len()-len(folds[fi]))
		for fj, fold := range folds {
			if fj == fi {
				testIdx = append(testIdx, fold...)
			} else {
				trainIdx = append(trainIdx, fold...)
			}
		}
		if len(trainIdx) == 0 || len(testIdx) == 0 {
			return nil
		}
		model := factory()
		if err := model.Fit(d.Subset(trainIdx)); err != nil {
			return fmt.Errorf("ml: cv fold %d: %w", fi, err)
		}
		conf, err := Evaluate(model, d.Subset(testIdx))
		if err != nil {
			return err
		}
		scores[fi] = foldScore{ok: true, prec: conf.Precision(), rec: conf.Recall(), f1: conf.F1()}
		return nil
	})
	if err != nil {
		return CVResult{}, err
	}
	res := CVResult{Name: name, Folds: k}
	evaluated := 0
	for _, s := range scores { // fold order, so float accumulation is stable
		if !s.ok {
			continue
		}
		evaluated++
		res.Precision += s.prec
		res.Recall += s.rec
		res.F1 += s.f1
	}
	if evaluated == 0 {
		return CVResult{}, fmt.Errorf("ml: cross-validation of %s: all %d folds degenerate (empty train or test split)", name, k)
	}
	res.Precision /= float64(evaluated)
	res.Recall /= float64(evaluated)
	res.F1 /= float64(evaluated)
	return res, nil
}

// stratifiedFolds partitions example indices into k folds preserving the
// class ratio in each fold.
func stratifiedFolds(d *Dataset, k int, rng *rand.Rand) [][]int {
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(a, b int) { pos[a], pos[b] = pos[b], pos[a] })
	rng.Shuffle(len(neg), func(a, b int) { neg[a], neg[b] = neg[b], neg[a] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// SelectMatcher cross-validates every factory and returns all results
// sorted by descending F1, with the winner first. This is the "select the
// best matcher" step of the PyMatcher guide (Figure 2). The factories run
// in order (each consumes the shared RNG for its fold assignment, so
// reordering would change results); the folds inside each
// cross-validation run concurrently.
func SelectMatcher(factories []func() Classifier, d *Dataset, k int, rng *rand.Rand, opts ...CVOption) ([]CVResult, error) {
	if len(factories) == 0 {
		return nil, fmt.Errorf("ml: no matchers to select among")
	}
	results := make([]CVResult, 0, len(factories))
	for _, f := range factories {
		r, err := CrossValidate(f, d, k, rng, opts...)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	sort.SliceStable(results, func(a, b int) bool { return results[a].F1 > results[b].F1 })
	return results, nil
}

// DefaultMatcherFactories returns the standard PyMatcher matcher lineup:
// decision tree, random forest, logistic regression, naive Bayes, linear
// SVM, and kNN, all seeded deterministically.
func DefaultMatcherFactories(seed int64) []func() Classifier {
	return []func() Classifier{
		func() Classifier { return &DecisionTree{Seed: seed} },
		func() Classifier { return &RandomForest{Seed: seed} },
		func() Classifier { return &LogisticRegression{Seed: seed} },
		func() Classifier { return &GaussianNB{} },
		func() Classifier { return &LinearSVM{Seed: seed} },
		func() Classifier { return &KNN{} },
	}
}
