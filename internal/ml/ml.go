// Package ml is the machine-learning substrate of the Magellan
// reproduction: the role scikit-learn plays for PyMatcher. It provides
// binary classifiers (CART decision tree, random forest, logistic
// regression, Gaussian naive Bayes, k-nearest neighbors, linear SVM),
// k-fold cross-validation, matcher selection, and evaluation metrics.
//
// All classifiers implement Classifier over dense float64 feature vectors;
// labels are 0 (no-match) and 1 (match). Training is deterministic given
// the caller-supplied random seed.
package ml

import (
	"fmt"
	"math/rand"
)

// Dataset is a dense labeled design matrix.
type Dataset struct {
	// X holds one feature vector per example; all rows must have equal
	// length.
	X [][]float64
	// Y holds the binary label of each example: 0 or 1.
	Y []int
	// Names optionally names each feature column; used for rule
	// extraction and debugging output.
	Names []string
}

// NewDataset validates shapes and returns a Dataset.
func NewDataset(x [][]float64, y []int, names []string) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d feature rows but %d labels", len(x), len(y))
	}
	if len(x) > 0 {
		w := len(x[0])
		for i, r := range x {
			if len(r) != w {
				return nil, fmt.Errorf("ml: row %d has %d features, row 0 has %d", i, len(r), w)
			}
		}
		if names != nil && len(names) != w {
			return nil, fmt.Errorf("ml: %d names for %d features", len(names), w)
		}
	}
	for i, l := range y {
		if l != 0 && l != 1 {
			return nil, fmt.Errorf("ml: label %d at row %d is not binary", l, i)
		}
	}
	return &Dataset{X: x, Y: y, Names: names}, nil
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 when empty).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// FeatureName returns the name of feature j, or "f<j>" when unnamed.
func (d *Dataset) FeatureName(j int) string {
	if d.Names != nil && j < len(d.Names) {
		return d.Names[j]
	}
	return fmt.Sprintf("f%d", j)
}

// Subset returns a dataset view containing the rows at idxs (storage is
// shared; do not mutate).
func (d *Dataset) Subset(idxs []int) *Dataset {
	x := make([][]float64, len(idxs))
	y := make([]int, len(idxs))
	for k, i := range idxs {
		x[k] = d.X[i]
		y[k] = d.Y[i]
	}
	return &Dataset{X: x, Y: y, Names: d.Names}
}

// Bootstrap returns a bootstrap resample of the dataset (n rows drawn with
// replacement) using rng.
func (d *Dataset) Bootstrap(n int, rng *rand.Rand) *Dataset {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = rng.Intn(d.Len())
	}
	return d.Subset(idxs)
}

// Positives returns the number of label-1 examples.
func (d *Dataset) Positives() int {
	p := 0
	for _, l := range d.Y {
		p += l
	}
	return p
}

// Classifier is a trainable binary classifier.
type Classifier interface {
	// Fit trains on the dataset, replacing any previous state.
	Fit(d *Dataset) error
	// PredictProba returns P(label=1 | x) in [0, 1].
	PredictProba(x []float64) float64
	// Name identifies the model family (e.g. "random_forest").
	Name() string
}

// Predict thresholds PredictProba at 0.5.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictAll returns Predict for every row of x.
func PredictAll(c Classifier, x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = Predict(c, row)
	}
	return out
}

// errEmpty is returned by Fit on an empty dataset.
func errEmpty(model string) error { return fmt.Errorf("ml: %s: empty training set", model) }
