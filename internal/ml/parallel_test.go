package ml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestRandomForestParallelDeterminism: a forest trained with Workers=k
// must produce VoteFraction outputs bit-identical to Workers=1 for the
// same seed — the contract that lets every Falcon iteration train
// concurrently without changing results.
func TestRandomForestParallelDeterminism(t *testing.T) {
	ds := benchDataset(400, 12, 11)
	serial := &RandomForest{NumTrees: 32, Seed: 7, Workers: 1}
	if err := serial.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par := &RandomForest{NumTrees: 32, Seed: 7, Workers: workers}
		if err := par.Fit(ds); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ds.Len(); i++ {
			s, p := serial.VoteFraction(ds.X[i]), par.VoteFraction(ds.X[i])
			if s != p {
				t.Fatalf("workers=%d: VoteFraction(x[%d]) = %v, serial %v", workers, i, p, s)
			}
		}
	}
}

// TestCrossValidateParallelDeterminism: parallel fold evaluation returns a
// CVResult bit-identical to serial evaluation for the same RNG seed.
func TestCrossValidateParallelDeterminism(t *testing.T) {
	ds := benchDataset(300, 8, 3)
	factory := func() Classifier { return &RandomForest{NumTrees: 12, Seed: 5, Workers: 1} }
	serial, err := CrossValidate(factory, ds, 5, rand.New(rand.NewSource(2)), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5, 16} {
		par, err := CrossValidate(factory, ds, 5, rand.New(rand.NewSource(2)), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if par != serial {
			t.Fatalf("workers=%d: CVResult %+v != serial %+v", workers, par, serial)
		}
	}
}

// TestSelectMatcherParallelDeterminism: the full matcher-selection lineup
// ranks identically under concurrent fold evaluation.
func TestSelectMatcherParallelDeterminism(t *testing.T) {
	ds := benchDataset(200, 6, 9)
	serial, err := SelectMatcher(DefaultMatcherFactories(1), ds, 4, rand.New(rand.NewSource(4)), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := SelectMatcher(DefaultMatcherFactories(1), ds, 4, rand.New(rand.NewSource(4)), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("rank %d: %+v != %+v", i, par[i], serial[i])
		}
	}
}

// TestCrossValidateSkippedFoldsMean: with more folds than examples of one
// class, some folds are empty and skipped; the mean must be over the folds
// actually evaluated, not k (the historical bug silently deflated scores).
func TestCrossValidateSkippedFoldsMean(t *testing.T) {
	// 3 positives + 3 negatives into k=5 folds: round-robin fills folds
	// 0-2 and leaves folds 3-4 empty, so only 3 folds evaluate.
	x := [][]float64{{1}, {1}, {1}, {0}, {0}, {0}}
	y := []int{1, 1, 1, 0, 0, 0}
	ds, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A perfectly separable single feature: every evaluated fold scores
	// P=R=F1=1, so the mean must be exactly 1. Dividing by k=5 would
	// report 0.6.
	res, err := CrossValidate(func() Classifier { return &DecisionTree{Seed: 1} }, ds, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Precision-1) > 1e-12 || math.Abs(res.Recall-1) > 1e-12 || math.Abs(res.F1-1) > 1e-12 {
		t.Fatalf("means deflated by skipped folds: %+v", res)
	}
}

// TestCrossValidateAllFoldsDegenerate: an error (not zeroed scores) when
// no fold can be evaluated. One positive plus one negative with k=2 puts
// both examples in fold 0 (each class round-robins from fold 0), so fold 0
// has an empty train split and fold 1 an empty test split.
func TestCrossValidateAllFoldsDegenerate(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []int{0, 1}
	ds, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CrossValidate(func() Classifier { return &GaussianNB{} }, ds, 2, rand.New(rand.NewSource(1)))
	if err == nil || !strings.Contains(err.Error(), "degenerate") {
		t.Fatalf("err = %v, want all-folds-degenerate error", err)
	}
}

// TestCrossValidateFoldErrorPropagates: a fold whose Fit fails surfaces
// the error with the fold index, under both serial and parallel execution.
func TestCrossValidateFoldErrorPropagates(t *testing.T) {
	ds := benchDataset(50, 4, 6)
	factory := func() Classifier { return &failFitClassifier{} }
	for _, workers := range []int{1, 4} {
		_, err := CrossValidate(factory, ds, 5, rand.New(rand.NewSource(1)), WithWorkers(workers))
		if err == nil || !strings.Contains(err.Error(), "cv fold") {
			t.Fatalf("workers=%d: err = %v, want cv fold error", workers, err)
		}
	}
}

// TestCVOptionOrdering: options apply in order, so a later WithWorkers
// overrides an earlier one — the contract callers of the variadic API rely
// on when layering defaults under caller-supplied options.
func TestCVOptionOrdering(t *testing.T) {
	cfg := applyCVOptions([]CVOption{WithWorkers(3), WithWorkers(7)})
	if cfg.workers != 7 {
		t.Fatalf("workers = %d, want the later option (7) to win", cfg.workers)
	}
	ds := benchDataset(120, 4, 3)
	factory := func() Classifier { return &DecisionTree{Seed: 3} }
	a, err := CrossValidate(factory, ds, 4, rand.New(rand.NewSource(8)), WithWorkers(1), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(factory, ds, 4, rand.New(rand.NewSource(8)), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("layered options %+v != direct options %+v", a, b)
	}
}

type failFitClassifier struct{}

func (f *failFitClassifier) Fit(*Dataset) error               { return errEmpty("fail") }
func (f *failFitClassifier) PredictProba(x []float64) float64 { return 0 }
func (f *failFitClassifier) Name() string                     { return "fail" }

// TestTreeFitScratchReuse: fitting trees back to back through one shared
// scratch (the forest's per-worker pattern) must produce the same trees as
// fresh-scratch fits — stale buffer contents must never leak between fits.
func TestTreeFitScratchReuse(t *testing.T) {
	big := benchDataset(300, 9, 3)
	small := benchDataset(40, 4, 5)
	scr := &treeFitScratch{}
	for trial, ds := range []*Dataset{big, small, big} {
		shared := &DecisionTree{MaxFeatures: 2, Seed: int64(trial)}
		if err := shared.fit(ds, scr); err != nil {
			t.Fatal(err)
		}
		fresh := &DecisionTree{MaxFeatures: 2, Seed: int64(trial)}
		if err := fresh.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if got, want := shared.String(nil), fresh.String(nil); got != want {
			t.Fatalf("trial %d: shared-scratch tree differs from fresh fit:\n%s\nvs\n%s", trial, got, want)
		}
	}
}
