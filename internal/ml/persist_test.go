package ml

import (
	"testing"
)

func roundTrip(t *testing.T, c Classifier, ds *Dataset) Classifier {
	t.Helper()
	data, err := Export(c)
	if err != nil {
		t.Fatalf("export %s: %v", c.Name(), err)
	}
	back, err := Import(data)
	if err != nil {
		t.Fatalf("import %s: %v", c.Name(), err)
	}
	if back.Name() != c.Name() {
		t.Fatalf("round trip changed model: %s -> %s", c.Name(), back.Name())
	}
	for i := range ds.X {
		if got, want := back.PredictProba(ds.X[i]), c.PredictProba(ds.X[i]); got != want {
			t.Fatalf("%s: prediction changed after round trip: %v vs %v", c.Name(), got, want)
		}
	}
	return back
}

func TestExportImportRoundTrip(t *testing.T) {
	ds := synthDataset(300, 1, 61)
	models := []Classifier{
		&DecisionTree{Seed: 1},
		&RandomForest{NumTrees: 7, Alpha: 0.7, Seed: 1},
		&LogisticRegression{Seed: 1, Epochs: 50},
		&LinearSVM{Seed: 1, Epochs: 50},
		&GaussianNB{},
	}
	for _, m := range models {
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		roundTrip(t, m, ds)
	}
}

func TestForestRoundTripPreservesAlpha(t *testing.T) {
	ds := synthDataset(200, 0, 62)
	f := &RandomForest{NumTrees: 5, Alpha: 0.9, Seed: 1}
	if err := f.Fit(ds); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, f, ds).(*RandomForest)
	if back.Alpha != 0.9 {
		t.Errorf("alpha lost: %v", back.Alpha)
	}
	if len(back.Trees()) != 5 {
		t.Errorf("trees = %d", len(back.Trees()))
	}
}

func TestExportUnsupported(t *testing.T) {
	if _, err := Export(&KNN{}); err == nil {
		t.Fatal("kNN export should be refused")
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import([]byte("{nope")); err == nil {
		t.Error("want JSON error")
	}
	if _, err := Import([]byte(`{"model":"ghost","payload":{}}`)); err == nil {
		t.Error("want unknown-model error")
	}
}
