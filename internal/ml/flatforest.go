package ml

import "errors"

// FlatForest is a fitted RandomForest compiled into structure-of-arrays
// form for cache-friendly inference. The pointer forest stores one heap
// node per tree node and chases *TreeNode links per pair; FlatForest packs
// every node of every tree into four parallel arrays, with the two children
// of each internal node adjacent (right = left+1), so traversal is index
// arithmetic over contiguous memory. Scores are bit-identical to the
// pointer path: both count the same leaf votes and apply the same
// alphaShift, so the serving corpus can swap one for the other without the
// Rebuilt() oracle noticing.
//
// A FlatForest is immutable after NewFlatForest and safe for concurrent use.
type FlatForest struct {
	feats  []int32   // per node: feature index, or -1 for a leaf
	thresh []float64 // per node: split threshold (internal nodes only)
	left   []int32   // per node: left-child index; right child is left+1
	proba  []float64 // per node: leaf P(match) (leaves only)
	roots  []int32   // per tree: root node index
	alpha  float64
}

// ErrNotFitted is returned when compiling a forest that has no trees.
var ErrNotFitted = errors.New("ml: forest is not fitted")

// NewFlatForest compiles a fitted RandomForest. The forest must not be
// re-fit while the FlatForest is in use (Fit replaces the tree slice, so an
// already-compiled FlatForest stays valid but stale).
func NewFlatForest(f *RandomForest) (*FlatForest, error) {
	if f == nil || len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	ff := &FlatForest{
		roots: make([]int32, 0, len(f.trees)),
		alpha: f.alpha(),
	}
	for _, t := range f.trees {
		if t.root == nil {
			return nil, ErrNotFitted
		}
		ff.roots = append(ff.roots, ff.flatten(t.root))
	}
	return ff, nil
}

// flatten emits root's subtree into the SoA arrays and returns its index.
// Children are reserved in adjacent pairs when their parent is visited,
// which is what lets the arrays encode only the left index.
func (ff *FlatForest) flatten(root *TreeNode) int32 {
	type item struct {
		n   *TreeNode
		idx int32
	}
	rootIdx := ff.addNode()
	stack := []item{{root, rootIdx}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.n.Leaf {
			ff.feats[it.idx] = -1
			ff.proba[it.idx] = it.n.Proba
			continue
		}
		l := ff.addNode()
		r := ff.addNode() // adjacent to l by construction
		ff.feats[it.idx] = int32(it.n.Feature)
		ff.thresh[it.idx] = it.n.Threshold
		ff.left[it.idx] = l
		stack = append(stack, item{it.n.Right, r}, item{it.n.Left, l})
	}
	return rootIdx
}

func (ff *FlatForest) addNode() int32 {
	idx := int32(len(ff.feats))
	ff.feats = append(ff.feats, 0)
	ff.thresh = append(ff.thresh, 0)
	ff.left = append(ff.left, 0)
	ff.proba = append(ff.proba, 0)
	return idx
}

// Name identifies the compiled form in stats and bench rows.
func (ff *FlatForest) Name() string { return "flat_forest" }

// NumTrees returns the ensemble size.
func (ff *FlatForest) NumTrees() int { return len(ff.roots) }

// NumNodes returns the total node count across all trees.
func (ff *FlatForest) NumNodes() int { return len(ff.feats) }

// vote walks one tree iteratively and reports whether its leaf votes match.
//
//emlint:zeroalloc
func (ff *FlatForest) vote(root int32, x []float64) bool {
	idx := root
	for ff.feats[idx] >= 0 {
		if x[ff.feats[idx]] <= ff.thresh[idx] {
			idx = ff.left[idx]
		} else {
			idx = ff.left[idx] + 1
		}
	}
	return ff.proba[idx] >= 0.5
}

// VoteFraction returns the fraction of trees predicting match for x,
// bit-identical to RandomForest.VoteFraction on the source forest.
//
//emlint:zeroalloc
func (ff *FlatForest) VoteFraction(x []float64) float64 {
	votes := 0
	for _, root := range ff.roots {
		if ff.vote(root, x) {
			votes++
		}
	}
	return float64(votes) / float64(len(ff.roots))
}

// PredictProba scores one vector with zero allocations, bit-identical to
// RandomForest.PredictProba on the source forest.
//
//emlint:zeroalloc
func (ff *FlatForest) PredictProba(x []float64) float64 {
	return alphaShift(ff.VoteFraction(x), ff.alpha)
}

// PredictProbaBatch scores every row of xs into out (len(out) must equal
// len(xs)) and allocates nothing. The loop is tree-major: each tree's nodes
// stay hot in cache while it routes the whole batch, instead of every
// candidate faulting the full forest back in. Votes accumulate in out as
// exact small integers (counts <= NumTrees < 2^53), so the final fraction
// and alphaShift are bit-identical to the per-row pointer path.
//
//emlint:zeroalloc
func (ff *FlatForest) PredictProbaBatch(xs [][]float64, out []float64) {
	if len(out) != len(xs) {
		panicBatchLen()
	}
	for i := range out {
		out[i] = 0
	}
	for _, root := range ff.roots {
		for i, x := range xs {
			if ff.vote(root, x) {
				out[i]++
			}
		}
	}
	nt := float64(len(ff.roots))
	for i := range out {
		out[i] = alphaShift(out[i]/nt, ff.alpha)
	}
}

// panicBatchLen lives outside the zero-alloc kernel (and is kept out of
// line) so its message string does not count as an escape on the hot path.
//
//go:noinline
func panicBatchLen() {
	panic("ml: FlatForest.PredictProbaBatch: len(out) != len(xs)")
}
