package ml

import (
	"math"
	"math/rand"
)

// LogisticRegression is a binary logistic-regression classifier trained by
// mini-batch gradient descent with L2 regularization. Features are
// standardized internally so EM similarity features on different scales
// train stably.
type LogisticRegression struct {
	// Epochs is the number of passes over the data; 0 means 200.
	Epochs int
	// LearningRate is the GD step size; 0 means 0.1.
	LearningRate float64
	// L2 is the ridge penalty; 0 means 1e-4.
	L2 float64
	// Seed drives example shuffling.
	Seed int64

	w    []float64 // weights over standardized features
	b    float64
	mean []float64
	std  []float64
}

// Name implements Classifier.
func (l *LogisticRegression) Name() string { return "logistic_regression" }

// Weights returns a copy of the learned weights in original feature space
// order (standardized space), plus the bias. Useful for debugging which
// similarity features drive the matcher.
func (l *LogisticRegression) Weights() (w []float64, bias float64) {
	return append([]float64(nil), l.w...), l.b
}

// Fit implements Classifier.
func (l *LogisticRegression) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return errEmpty(l.Name())
	}
	nf := d.NumFeatures()
	l.mean = make([]float64, nf)
	l.std = make([]float64, nf)
	for j := 0; j < nf; j++ {
		var s, s2 float64
		for i := range d.X {
			s += d.X[i][j]
		}
		m := s / float64(d.Len())
		for i := range d.X {
			dx := d.X[i][j] - m
			s2 += dx * dx
		}
		sd := math.Sqrt(s2 / float64(d.Len()))
		if sd < 1e-12 {
			sd = 1
		}
		l.mean[j], l.std[j] = m, sd
	}

	epochs := l.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := l.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	l2 := l.L2
	if l2 <= 0 {
		l2 = 1e-4
	}
	l.w = make([]float64, nf)
	l.b = 0
	rng := rand.New(rand.NewSource(l.Seed))
	order := rng.Perm(d.Len())
	z := make([]float64, nf)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			for j := 0; j < nf; j++ {
				z[j] = (d.X[i][j] - l.mean[j]) / l.std[j]
			}
			p := sigmoid(dot(l.w, z) + l.b)
			g := p - float64(d.Y[i])
			for j := 0; j < nf; j++ {
				l.w[j] -= lr * (g*z[j] + l2*l.w[j])
			}
			l.b -= lr * g
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (l *LogisticRegression) PredictProba(x []float64) float64 {
	if l.w == nil {
		return 0
	}
	var z float64
	for j := range l.w {
		z += l.w[j] * (x[j] - l.mean[j]) / l.std[j]
	}
	return sigmoid(z + l.b)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
