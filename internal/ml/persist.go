package ml

import (
	"encoding/json"
	"fmt"
)

// Export serializes a trained classifier to JSON. Decision trees, random
// forests, logistic regressions, naive Bayes, and linear SVMs round-trip;
// kNN is intentionally excluded (it memorizes its training set, which is
// the session's data, not the model's).
func Export(c Classifier) ([]byte, error) {
	var payload any
	switch m := c.(type) {
	case *DecisionTree:
		payload = exportTree(m)
	case *RandomForest:
		trees := make([]*treeDTO, len(m.trees))
		for i, t := range m.trees {
			trees[i] = exportTree(t)
		}
		payload = &forestDTO{Alpha: m.Alpha, Trees: trees}
	case *LogisticRegression:
		payload = &linearDTO{W: m.w, B: m.b, Mean: m.mean, Std: m.std}
	case *LinearSVM:
		payload = &linearDTO{W: m.w, B: m.b, Mean: m.mean, Std: m.std}
	case *GaussianNB:
		payload = &nbDTO{
			Prior: m.prior, Mean0: m.mean[0], Mean1: m.mean[1],
			Var0: m.vari[0], Var1: m.vari[1], Fit: m.fit,
		}
	default:
		return nil, fmt.Errorf("ml: cannot export a %T", c)
	}
	return json.Marshal(&envelope{Model: c.Name(), Payload: mustRaw(payload)})
}

// Import deserializes a classifier produced by Export.
func Import(data []byte) (Classifier, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: import: %w", err)
	}
	switch env.Model {
	case "decision_tree":
		var dto treeDTO
		if err := json.Unmarshal(env.Payload, &dto); err != nil {
			return nil, err
		}
		return importTree(&dto), nil
	case "random_forest":
		var dto forestDTO
		if err := json.Unmarshal(env.Payload, &dto); err != nil {
			return nil, err
		}
		f := &RandomForest{Alpha: dto.Alpha, NumTrees: len(dto.Trees)}
		f.trees = make([]*DecisionTree, len(dto.Trees))
		for i, t := range dto.Trees {
			f.trees[i] = importTree(t)
		}
		return f, nil
	case "logistic_regression":
		var dto linearDTO
		if err := json.Unmarshal(env.Payload, &dto); err != nil {
			return nil, err
		}
		return &LogisticRegression{w: dto.W, b: dto.B, mean: dto.Mean, std: dto.Std}, nil
	case "linear_svm":
		var dto linearDTO
		if err := json.Unmarshal(env.Payload, &dto); err != nil {
			return nil, err
		}
		return &LinearSVM{w: dto.W, b: dto.B, mean: dto.Mean, std: dto.Std}, nil
	case "naive_bayes":
		var dto nbDTO
		if err := json.Unmarshal(env.Payload, &dto); err != nil {
			return nil, err
		}
		nb := &GaussianNB{prior: dto.Prior, fit: dto.Fit}
		nb.mean[0], nb.mean[1] = dto.Mean0, dto.Mean1
		nb.vari[0], nb.vari[1] = dto.Var0, dto.Var1
		return nb, nil
	default:
		return nil, fmt.Errorf("ml: import: unknown model %q", env.Model)
	}
}

type envelope struct {
	Model   string          `json:"model"`
	Payload json.RawMessage `json:"payload"`
}

type nodeDTO struct {
	Leaf      bool     `json:"leaf"`
	Proba     float64  `json:"proba,omitempty"`
	N         int      `json:"n,omitempty"`
	Feature   int      `json:"feature,omitempty"`
	Threshold float64  `json:"threshold,omitempty"`
	Left      *nodeDTO `json:"left,omitempty"`
	Right     *nodeDTO `json:"right,omitempty"`
}

type treeDTO struct {
	Root *nodeDTO `json:"root"`
}

type forestDTO struct {
	Alpha float64    `json:"alpha,omitempty"`
	Trees []*treeDTO `json:"trees"`
}

type linearDTO struct {
	W    []float64 `json:"w"`
	B    float64   `json:"b"`
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

type nbDTO struct {
	Prior [2]float64 `json:"prior"`
	Mean0 []float64  `json:"mean0"`
	Mean1 []float64  `json:"mean1"`
	Var0  []float64  `json:"var0"`
	Var1  []float64  `json:"var1"`
	Fit   bool       `json:"fit"`
}

func exportTree(t *DecisionTree) *treeDTO {
	return &treeDTO{Root: exportNode(t.root)}
}

func exportNode(n *TreeNode) *nodeDTO {
	if n == nil {
		return nil
	}
	return &nodeDTO{
		Leaf: n.Leaf, Proba: n.Proba, N: n.N,
		Feature: n.Feature, Threshold: n.Threshold,
		Left: exportNode(n.Left), Right: exportNode(n.Right),
	}
}

func importTree(dto *treeDTO) *DecisionTree {
	return &DecisionTree{root: importNode(dto.Root)}
}

func importNode(d *nodeDTO) *TreeNode {
	if d == nil {
		return nil
	}
	return &TreeNode{
		Leaf: d.Leaf, Proba: d.Proba, N: d.N,
		Feature: d.Feature, Threshold: d.Threshold,
		Left: importNode(d.Left), Right: importNode(d.Right),
	}
}

func mustRaw(v any) json.RawMessage {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err) // DTOs are plain data; marshaling cannot fail
	}
	return raw
}
