package ml

import (
	"math/rand"
	"testing"
)

func benchDataset(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0]+row[1] > 1 {
			y[i] = 1
		}
	}
	ds, err := NewDataset(x, y, nil)
	if err != nil {
		panic(err)
	}
	return ds
}

func BenchmarkDecisionTreeFit(b *testing.B) {
	ds := benchDataset(2000, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := &DecisionTree{Seed: 1}
		if err := t.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestFit(b *testing.B) {
	ds := benchDataset(1000, 20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &RandomForest{Seed: 1}
		if err := f.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestPredict(b *testing.B) {
	ds := benchDataset(1000, 20, 3)
	f := &RandomForest{Seed: 1}
	if err := f.Fit(ds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(ds.X[i%ds.Len()])
	}
}

func BenchmarkLogisticRegressionFit(b *testing.B) {
	ds := benchDataset(1000, 20, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := &LogisticRegression{Seed: 1, Epochs: 50}
		if err := l.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	ds := benchDataset(500, 10, 5)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(func() Classifier { return &DecisionTree{Seed: 1} }, ds, 5, rng); err != nil {
			b.Fatal(err)
		}
	}
}
