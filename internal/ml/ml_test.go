package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset builds a linearly separable-ish binary problem: label 1 when
// x0 + x1 > 1 (plus optional noise features).
func synthDataset(n, noiseFeatures int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 2+noiseFeatures)
		row[0] = rng.Float64()
		row[1] = rng.Float64()
		for j := 2; j < len(row); j++ {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0]+row[1] > 1 {
			y[i] = 1
		}
	}
	d, err := NewDataset(x, y, nil)
	if err != nil {
		panic(err)
	}
	return d
}

// xorDataset is not linearly separable; trees/forests must handle it.
func xorDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	d, err := NewDataset(x, y, nil)
	if err != nil {
		panic(err)
	}
	return d
}

func accuracyOn(t *testing.T, c Classifier, d *Dataset) float64 {
	t.Helper()
	conf, err := Evaluate(c, d)
	if err != nil {
		t.Fatal(err)
	}
	return conf.Accuracy()
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset([][]float64{{1}}, []int{0, 1}, nil); err == nil {
		t.Error("want row/label count mismatch error")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {3}}, []int{0, 1}, nil); err == nil {
		t.Error("want ragged matrix error")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{2}, nil); err == nil {
		t.Error("want non-binary label error")
	}
	if _, err := NewDataset([][]float64{{1, 2}}, []int{1}, []string{"only_one"}); err == nil {
		t.Error("want name count error")
	}
	d, err := NewDataset([][]float64{{1, 2}}, []int{1}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if d.FeatureName(0) != "a" || d.FeatureName(1) != "b" {
		t.Error("feature names lost")
	}
	un, err := NewDataset([][]float64{{1}}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.FeatureName(0) != "f0" {
		t.Errorf("unnamed feature = %q", un.FeatureName(0))
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := synthDataset(50, 0, 1)
	if d.NumFeatures() != 2 {
		t.Errorf("features = %d", d.NumFeatures())
	}
	sub := d.Subset([]int{0, 1, 2})
	if sub.Len() != 3 {
		t.Errorf("subset len = %d", sub.Len())
	}
	rng := rand.New(rand.NewSource(1))
	boot := d.Bootstrap(100, rng)
	if boot.Len() != 100 {
		t.Errorf("bootstrap len = %d", boot.Len())
	}
	if d.Positives() == 0 || d.Positives() == d.Len() {
		t.Errorf("degenerate synth dataset: %d/%d positives", d.Positives(), d.Len())
	}
	empty := &Dataset{}
	if empty.NumFeatures() != 0 {
		t.Error("empty dataset features != 0")
	}
}

func TestDecisionTreeLearnsLinear(t *testing.T) {
	train := synthDataset(400, 0, 1)
	test := synthDataset(200, 0, 2)
	tree := &DecisionTree{Seed: 1}
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, tree, test); acc < 0.9 {
		t.Errorf("tree accuracy = %.3f, want >= 0.9", acc)
	}
	if tree.Depth() == 0 {
		t.Error("tree did not split at all")
	}
	if tree.Root() == nil {
		t.Error("root missing after fit")
	}
}

func TestDecisionTreeLearnsXOR(t *testing.T) {
	train := xorDataset(600, 3)
	test := xorDataset(300, 4)
	tree := &DecisionTree{Seed: 1}
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, tree, test); acc < 0.9 {
		t.Errorf("xor accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestDecisionTreePureNodeStops(t *testing.T) {
	x := [][]float64{{0}, {0.1}, {0.2}}
	y := []int{1, 1, 1}
	d, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := &DecisionTree{}
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if !tree.Root().Leaf {
		t.Error("pure dataset should yield a single leaf")
	}
	if p := tree.PredictProba([]float64{5}); p != 1 {
		t.Errorf("pure-positive proba = %v", p)
	}
}

func TestDecisionTreeMaxDepth(t *testing.T) {
	train := xorDataset(500, 5)
	tree := &DecisionTree{MaxDepth: 1, Seed: 1}
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 1 {
		t.Errorf("depth = %d, want <= 1", d)
	}
}

func TestDecisionTreeMinSamplesLeaf(t *testing.T) {
	train := synthDataset(100, 0, 6)
	tree := &DecisionTree{MinSamplesLeaf: 30, Seed: 1}
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	var walk func(n *TreeNode) bool
	walk = func(n *TreeNode) bool {
		if n == nil {
			return true
		}
		if n.Leaf {
			return n.N >= 30 || n == tree.Root()
		}
		return walk(n.Left) && walk(n.Right)
	}
	if !walk(tree.Root()) {
		t.Error("a leaf has fewer than MinSamplesLeaf examples")
	}
}

func TestDecisionTreeEmptyFit(t *testing.T) {
	tree := &DecisionTree{}
	if err := tree.Fit(&Dataset{}); err == nil {
		t.Error("want empty-dataset error")
	}
	if p := (&DecisionTree{}).PredictProba([]float64{1}); p != 0 {
		t.Errorf("unfitted proba = %v", p)
	}
}

func TestDecisionTreeString(t *testing.T) {
	train := synthDataset(200, 0, 7)
	tree := &DecisionTree{MaxDepth: 2, Seed: 1}
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	s := tree.String([]string{"alpha", "beta"})
	if s == "" {
		t.Fatal("empty tree rendering")
	}
	if !containsAny(s, "alpha", "beta") {
		t.Errorf("rendering lacks feature names:\n%s", s)
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
		}
	}
	return false
}

func TestRandomForestLearns(t *testing.T) {
	train := xorDataset(600, 8)
	test := xorDataset(300, 9)
	rf := &RandomForest{NumTrees: 20, Seed: 1}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, rf, test); acc < 0.85 {
		t.Errorf("forest accuracy = %.3f, want >= 0.85", acc)
	}
	if len(rf.Trees()) != 20 {
		t.Errorf("trees = %d", len(rf.Trees()))
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	train := synthDataset(200, 2, 10)
	test := synthDataset(50, 2, 11)
	a := &RandomForest{NumTrees: 5, Seed: 42}
	b := &RandomForest{NumTrees: 5, Seed: 42}
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := range test.X {
		if a.PredictProba(test.X[i]) != b.PredictProba(test.X[i]) {
			t.Fatal("same seed gave different predictions")
		}
	}
}

func TestRandomForestAlphaVoting(t *testing.T) {
	train := synthDataset(300, 0, 12)
	rf := &RandomForest{NumTrees: 10, Alpha: 0.9, Seed: 1}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	// With alpha 0.9, a vote fraction of 0.6 must not be a match.
	for _, x := range train.X {
		v := rf.VoteFraction(x)
		match := rf.PredictProba(x) >= 0.5
		if v < 0.9 && match {
			t.Fatalf("vote %v declared match under alpha 0.9", v)
		}
		if v >= 0.9 && !match {
			t.Fatalf("vote %v not a match under alpha 0.9", v)
		}
	}
}

func TestRandomForestEntropy(t *testing.T) {
	train := synthDataset(300, 0, 13)
	rf := &RandomForest{NumTrees: 10, Seed: 1}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range train.X {
		e := rf.Entropy(x)
		if e < 0 || e > 1 || math.IsNaN(e) {
			t.Fatalf("entropy out of range: %v", e)
		}
	}
	// Entropy must be 0 at unanimous votes.
	if (&RandomForest{}).Entropy([]float64{1}) != 0 {
		t.Error("empty forest entropy != 0")
	}
}

func TestLogisticRegressionLearns(t *testing.T) {
	train := synthDataset(400, 0, 14)
	test := synthDataset(200, 0, 15)
	lr := &LogisticRegression{Seed: 1, Epochs: 100}
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, lr, test); acc < 0.9 {
		t.Errorf("logreg accuracy = %.3f, want >= 0.9", acc)
	}
	w, _ := lr.Weights()
	if len(w) != 2 {
		t.Errorf("weights = %v", w)
	}
	// Both true features should carry positive weight.
	if w[0] <= 0 || w[1] <= 0 {
		t.Errorf("weights should be positive for positively predictive features: %v", w)
	}
}

func TestLogisticRegressionConstantFeature(t *testing.T) {
	// A zero-variance feature must not produce NaNs.
	x := [][]float64{{1, 0}, {1, 1}, {1, 0.2}, {1, 0.9}}
	y := []int{0, 1, 0, 1}
	d, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	lr := &LogisticRegression{Seed: 1, Epochs: 200}
	if err := lr.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := lr.PredictProba([]float64{1, 1})
	if math.IsNaN(p) {
		t.Fatal("NaN probability with constant feature")
	}
	if p < 0.5 {
		t.Errorf("p(match|x1=1) = %v, want >= 0.5", p)
	}
}

func TestGaussianNBLearns(t *testing.T) {
	train := synthDataset(400, 0, 16)
	test := synthDataset(200, 0, 17)
	nb := &GaussianNB{}
	if err := nb.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, nb, test); acc < 0.85 {
		t.Errorf("nb accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestGaussianNBSingleClass(t *testing.T) {
	x := [][]float64{{0.1}, {0.2}, {0.3}}
	y := []int{1, 1, 1}
	d, err := NewDataset(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	nb := &GaussianNB{}
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := nb.PredictProba([]float64{0.2})
	if math.IsNaN(p) || p < 0.5 {
		t.Errorf("single-class proba = %v", p)
	}
}

func TestKNNLearns(t *testing.T) {
	train := xorDataset(500, 18)
	test := xorDataset(200, 19)
	knn := &KNN{K: 7}
	if err := knn.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, knn, test); acc < 0.85 {
		t.Errorf("knn accuracy = %.3f, want >= 0.85", acc)
	}
	// K larger than the training set must not panic.
	small, err := NewDataset([][]float64{{0}, {1}}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	big := &KNN{K: 50}
	if err := big.Fit(small); err != nil {
		t.Fatal(err)
	}
	if p := big.PredictProba([]float64{0.4}); p != 0.5 {
		t.Errorf("k>n proba = %v, want 0.5", p)
	}
}

func TestLinearSVMLearns(t *testing.T) {
	train := synthDataset(400, 0, 20)
	test := synthDataset(200, 0, 21)
	svm := &LinearSVM{Seed: 1}
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, svm, test); acc < 0.9 {
		t.Errorf("svm accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestAllClassifiersEmptyFit(t *testing.T) {
	for _, f := range DefaultMatcherFactories(1) {
		c := f()
		if err := c.Fit(&Dataset{}); err == nil {
			t.Errorf("%s: want empty-fit error", c.Name())
		}
	}
}

func TestUnfittedPredictProba(t *testing.T) {
	models := []Classifier{&DecisionTree{}, &RandomForest{}, &LogisticRegression{}, &GaussianNB{}, &KNN{}, &LinearSVM{}}
	for _, m := range models {
		if p := m.PredictProba([]float64{0.5, 0.5}); p != 0 {
			t.Errorf("%s unfitted proba = %v, want 0", m.Name(), p)
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	gold := []int{1, 1, 1, 0, 0, 0, 0, 1}
	pred := []int{1, 1, 0, 0, 0, 1, 0, 0}
	c, err := NewConfusion(gold, pred)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FP != 1 || c.FN != 2 || c.TN != 3 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-9 {
		t.Errorf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-0.5) > 1e-9 {
		t.Errorf("recall = %v", c.Recall())
	}
	wantF1 := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if math.Abs(c.F1()-wantF1) > 1e-9 {
		t.Errorf("f1 = %v, want %v", c.F1(), wantF1)
	}
	if math.Abs(c.Accuracy()-5.0/8) > 1e-9 {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
	if _, err := NewConfusion([]int{1}, []int{1, 0}); err == nil {
		t.Error("want length-mismatch error")
	}
	if s := c.String(); s == "" {
		t.Error("empty confusion string")
	}
}

func TestConfusionEdgeConventions(t *testing.T) {
	// No predicted positives: precision 1 by convention.
	c, err := NewConfusion([]int{1, 0}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Precision() != 1 {
		t.Errorf("vacuous precision = %v", c.Precision())
	}
	// No gold positives: recall 1 by convention.
	c, err = NewConfusion([]int{0, 0}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Recall() != 1 {
		t.Errorf("vacuous recall = %v", c.Recall())
	}
	var zero Confusion
	if zero.Accuracy() != 0 || zero.F1() == math.NaN() {
		t.Error("zero confusion should not NaN")
	}
}

func TestCrossValidate(t *testing.T) {
	d := synthDataset(300, 0, 22)
	rng := rand.New(rand.NewSource(1))
	res, err := CrossValidate(func() Classifier { return &DecisionTree{Seed: 1} }, d, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 5 || res.Name != "decision_tree" {
		t.Errorf("result meta = %+v", res)
	}
	if res.F1 < 0.85 {
		t.Errorf("cv f1 = %.3f, want >= 0.85", res.F1)
	}
	if _, err := CrossValidate(func() Classifier { return &DecisionTree{} }, d, 1, rng); err == nil {
		t.Error("want k>=2 error")
	}
	tiny := synthDataset(3, 0, 23)
	if _, err := CrossValidate(func() Classifier { return &DecisionTree{} }, tiny, 10, rng); err == nil {
		t.Error("want too-few-examples error")
	}
}

func TestSelectMatcher(t *testing.T) {
	d := xorDataset(400, 24)
	rng := rand.New(rand.NewSource(2))
	results, err := SelectMatcher(DefaultMatcherFactories(1), d, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].F1 > results[i-1].F1 {
			t.Error("results not sorted by F1 descending")
		}
	}
	// On XOR, tree-family models must beat the linear ones.
	if results[0].Name == "logistic_regression" || results[0].Name == "linear_svm" {
		t.Errorf("linear model won XOR: %+v", results[0])
	}
	if _, err := SelectMatcher(nil, d, 3, rng); err == nil {
		t.Error("want no-matchers error")
	}
}

func TestPredictThreshold(t *testing.T) {
	d := synthDataset(200, 0, 25)
	rf := &RandomForest{Seed: 1}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	preds := PredictAll(rf, d.X)
	if len(preds) != d.Len() {
		t.Fatalf("predictions = %d", len(preds))
	}
	for i, p := range preds {
		want := 0
		if rf.PredictProba(d.X[i]) >= 0.5 {
			want = 1
		}
		if p != want {
			t.Fatal("PredictAll disagrees with Predict")
		}
	}
}

// Property: probabilities stay in [0,1] over random inputs for every model.
func TestProbaRangeProperty(t *testing.T) {
	d := synthDataset(150, 1, 26)
	models := []Classifier{
		&DecisionTree{Seed: 1}, &RandomForest{NumTrees: 5, Seed: 1},
		&LogisticRegression{Seed: 1, Epochs: 30}, &GaussianNB{}, &KNN{}, &LinearSVM{Seed: 1, Epochs: 30},
	}
	for _, m := range models {
		if err := m.Fit(d); err != nil {
			t.Fatal(err)
		}
	}
	f := func(a, b, c float64) bool {
		x := []float64{clamp01(a), clamp01(b), clamp01(c)}
		for _, m := range models {
			p := m.PredictProba(x)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(v, 1))
}

// Property: weightedGini is within [0, 0.5] and zero for pure splits.
func TestGiniProperty(t *testing.T) {
	f := func(lp, ln, rp, rn uint8) bool {
		lN := int(ln%50) + 1
		rN := int(rn%50) + 1
		lP := int(lp) % (lN + 1)
		rP := int(rp) % (rN + 1)
		g := weightedGini(lP, lN, rP, rN)
		if g < 0 || g > 0.5+1e-12 {
			return false
		}
		if (lP == 0 || lP == lN) && (rP == 0 || rP == rN) && g > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
